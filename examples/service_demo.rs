//! The serving layer in action: several client threads sharing one
//! [`Service`], each printing its answers as they stream back, followed by
//! the service's one-line stats summary.
//!
//! Run with `cargo run --release --example service_demo`.
//!
//! What to look for in the output:
//! * clients submit concurrently, so the batching window coalesces their
//!   queries into shared waves (see `waves (mean …)` in the stats line);
//! * overlapping queries share deduplicated work units through the one
//!   engine — the cache hit rate at the end is the work the service never
//!   had to repeat;
//! * answers arrive per query (streamed), not per wave: the interleaving
//!   of the client prints is real concurrency, not buffered output.

use ppd::datagen::{polls_database, polls_q1_query, PollsConfig};
use ppd::prelude::*;
use std::time::{Duration, Instant};

fn main() {
    let db = polls_database(&PollsConfig {
        num_candidates: 10,
        num_voters: 120,
        seed: 7,
    });

    // One service, shared by reference across scoped client threads. The
    // 5 ms window lets concurrent submissions coalesce into waves.
    let service = Service::new(
        db,
        ServiceConfig::new(EvalConfig::exact())
            .with_max_batch(16)
            .with_max_wait(Duration::from_millis(5)),
    );

    // Three dashboard-ish clients with overlapping interests.
    let pair = ConjunctiveQuery::new("c0-over-c1").prefer(
        "Polls",
        vec![Term::any(), Term::any()],
        Term::val("cand0"),
        Term::val("cand1"),
    );
    let workloads: Vec<(&str, Vec<Request>)> = vec![
        (
            "alice",
            vec![
                Request::Boolean(polls_q1_query()),
                Request::Count(polls_q1_query()),
            ],
        ),
        (
            "bob",
            vec![
                Request::Boolean(pair.clone()),
                Request::TopK {
                    query: polls_q1_query(),
                    k: 3,
                    strategy: TopKStrategy::UpperBound {
                        edges_per_pattern: 2,
                    },
                },
            ],
        ),
        (
            "carol",
            vec![
                // Same question as alice's first — the wave answers it from
                // the same work units at zero marginal cost.
                Request::Boolean(polls_q1_query()),
                Request::SessionProbabilities(pair),
            ],
        ),
    ];

    let start = Instant::now();
    std::thread::scope(|scope| {
        for (client, requests) in workloads {
            let service = &service;
            scope.spawn(move || {
                // Submit everything first (so the wave can coalesce), then
                // print answers in the order they resolve.
                let tickets: Vec<Ticket> = requests
                    .into_iter()
                    .map(|request| service.submit(request).expect("admitted"))
                    .collect();
                for ticket in tickets {
                    let name = ticket.query_name().to_string();
                    let answer = ticket.wait().expect("query answers");
                    let at = start.elapsed();
                    match answer {
                        Answer::Boolean(p) => {
                            println!("[{at:>8.1?}] {client:>6}: Pr({name}) = {p:.4}")
                        }
                        Answer::Count(c) => {
                            println!("[{at:>8.1?}] {client:>6}: count({name}) = {c:.2}")
                        }
                        Answer::SessionProbabilities(probs) => println!(
                            "[{at:>8.1?}] {client:>6}: {name} holds in {} sessions (max p = {:.4})",
                            probs.len(),
                            probs.iter().map(|&(_, p)| p).fold(0.0, f64::max),
                        ),
                        Answer::TopK(scores) => println!(
                            "[{at:>8.1?}] {client:>6}: top-{} for {name}: {}",
                            scores.len(),
                            scores
                                .iter()
                                .map(|s| format!(
                                    "session {} ({:.3})",
                                    s.session_index, s.probability
                                ))
                                .collect::<Vec<_>>()
                                .join(", "),
                        ),
                        Answer::Updated { version, .. } => {
                            println!("[{at:>8.1?}] {client:>6}: database now at version {version}")
                        }
                    }
                }
            });
        }
    });

    // Graceful shutdown: drains anything still queued, then reports.
    let stats = service.shutdown();
    println!("\n{stats}");
}
