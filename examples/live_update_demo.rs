//! A live database under a query stream: sessions churn through
//! [`Service::submit_update`] while dashboard queries keep flowing, and
//! every answer reports the database version it was computed against.
//!
//! Run with `cargo run --release --example live_update_demo`.
//!
//! What to look for in the output:
//! * updates are admitted like queries but apply *between* waves, so each
//!   wave's answers all come from one consistent snapshot — the version id
//!   printed with every answer;
//! * each update's receipt names the units surgically invalidated: only
//!   cached work covering the replaced session is dropped, so the hit rate
//!   printed at the end stays high despite the churn.

use ppd::datagen::{polls_database, polls_q1_query, PollsConfig};
use ppd::prelude::*;
use std::time::Duration;

fn main() {
    let db = polls_database(&PollsConfig {
        num_candidates: 8,
        num_voters: 60,
        seed: 42,
    });
    let relation = db.preference_relation_names()[0].to_string();
    let arity = db
        .preference_relation(&relation)
        .expect("relation exists")
        .session_columns()
        .len();

    let service = Service::new(
        db,
        ServiceConfig::new(EvalConfig::exact())
            .with_max_batch(8)
            .with_max_wait(Duration::from_millis(2)),
    );

    // Alternate queries with session replacements: a rolling poll where
    // voters keep revising their rankings while dashboards refresh.
    for round in 0..4 {
        let ticket = service
            .submit(Request::Count(polls_q1_query()))
            .expect("admitted");
        let (answer, version) = ticket.wait_versioned();
        if let Ok(Answer::Count(c)) = answer {
            println!(
                "round {round}: E[sessions satisfying q1] = {c:.3}  \
                 (computed against version {})",
                version.expect("queries report their snapshot")
            );
        }

        // Voter `8 * round` changes their mind: a fresh Mallows model with
        // a rotated center and tighter dispersion.
        let items: Vec<u32> = (0..8u32).map(|j| (j + round + 1) % 8).collect();
        let session = Session::new(
            (0..arity)
                .map(|c| Value::from(format!("revised{round}-{c}")))
                .collect(),
            MallowsModel::new(Ranking::new(items).expect("permutation"), 0.35)
                .expect("valid model"),
        );
        let receipt = service
            .submit_update(Update::ReplaceSession {
                prelation: relation.clone(),
                index: (8 * round) as usize,
                session,
            })
            .expect("admitted")
            .wait()
            .expect("update applies");
        if let Answer::Updated {
            version,
            invalidated,
        } = receipt
        {
            println!("         update → version {version}, {invalidated} cached units invalidated");
        }
    }

    let stats = service.shutdown();
    let cache = &stats.cache;
    let hit_rate =
        cache.marginal_hits as f64 / (cache.marginal_hits + cache.marginal_misses).max(1) as f64;
    println!(
        "\n{} updates applied; cache hit rate {:.1}% despite the churn",
        stats.updates_applied,
        hit_rate * 100.0
    );
    println!("{stats}");
}
