//! Quickstart: build the paper's running example (Figure 1), ask the hard
//! query Q2, and evaluate it exactly and approximately.
//!
//! Run with `cargo run --release --example quickstart`.

use ppd::prelude::*;

fn main() {
    // ---- 1. The Candidates item relation (items get labels from attributes).
    let candidates = Relation::new(
        "Candidates",
        vec!["candidate", "party", "sex", "age", "edu", "reg"],
        vec![
            vec!["Trump", "R", "M", "70", "BS", "NE"],
            vec!["Clinton", "D", "F", "69", "JD", "NE"],
            vec!["Sanders", "D", "M", "75", "BS", "NE"],
            vec!["Rubio", "R", "M", "45", "JD", "S"],
        ]
        .into_iter()
        .map(|row| row.into_iter().map(Value::from).collect())
        .collect(),
    )
    .expect("valid relation");

    // ---- 2. The Polls preference relation: one Mallows model per session.
    // Item ids follow the order of the Candidates relation:
    // 0 = Trump, 1 = Clinton, 2 = Sanders, 3 = Rubio.
    let polls = PreferenceRelation::new(
        "Polls",
        vec!["voter", "date"],
        vec![
            Session::new(
                vec![Value::from("Ann"), Value::from("5/5")],
                MallowsModel::new(Ranking::new(vec![1, 2, 3, 0]).unwrap(), 0.3).unwrap(),
            ),
            Session::new(
                vec![Value::from("Bob"), Value::from("5/5")],
                MallowsModel::new(Ranking::new(vec![0, 3, 2, 1]).unwrap(), 0.3).unwrap(),
            ),
            Session::new(
                vec![Value::from("Dave"), Value::from("6/5")],
                MallowsModel::new(Ranking::new(vec![1, 2, 3, 0]).unwrap(), 0.5).unwrap(),
            ),
        ],
    )
    .expect("valid p-relation");

    let db = DatabaseBuilder::new()
        .item_relation(candidates, "candidate")
        .preference_relation(polls)
        .build()
        .expect("valid database");

    // ---- 3. Q2 of the paper: is some Democrat preferred to some Republican
    //         with the same education? The shared variable `e` makes the
    //         query non-itemwise (provably hard), so the engine grounds it
    //         into a union of itemwise queries behind the scenes.
    let q2 = ConjunctiveQuery::new("Q2")
        .prefer(
            "Polls",
            vec![Term::any(), Term::any()],
            Term::var("c1"),
            Term::var("c2"),
        )
        .atom(
            "Candidates",
            vec![
                Term::var("c1"),
                Term::val("D"),
                Term::any(),
                Term::any(),
                Term::var("e"),
                Term::any(),
            ],
        )
        .atom(
            "Candidates",
            vec![
                Term::var("c2"),
                Term::val("R"),
                Term::any(),
                Term::any(),
                Term::var("e"),
                Term::any(),
            ],
        );

    // ---- 4. Exact evaluation (auto-selected two-label solver per session).
    let exact = evaluate_boolean(&db, &q2, &EvalConfig::exact()).expect("exact evaluation");
    println!("Pr(Q2 holds in some session), exact        = {exact:.6}");

    // Per-session probabilities and the expected number of supporting sessions.
    for (session, p) in session_probabilities(&db, &q2, &EvalConfig::exact()).unwrap() {
        println!("  session #{session}: Pr(Q2) = {p:.6}");
    }
    let count = count_sessions(&db, &q2, &EvalConfig::exact()).unwrap();
    println!("expected number of supporting sessions     = {count:.4}");

    // ---- 5. Approximate evaluation with MIS-AMP-adaptive.
    let approx = evaluate_boolean(&db, &q2, &EvalConfig::approximate(1_000))
        .expect("approximate evaluation");
    println!("Pr(Q2 holds in some session), MIS-AMP      = {approx:.6}");

    // ---- 6. Which sessions support Q2 the most? (Most-Probable-Session.)
    let (top, _) = most_probable_sessions(
        &db,
        &q2,
        2,
        TopKStrategy::UpperBound {
            edges_per_pattern: 1,
        },
        &EvalConfig::exact(),
    )
    .expect("top-k evaluation");
    println!("top-2 supporting sessions:");
    for score in top {
        println!(
            "  session #{} with probability {:.6}",
            score.session_index, score.probability
        );
    }
}
