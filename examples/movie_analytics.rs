//! Movie-preference analytics over the MovieLens-like dataset: queries over
//! item attributes (year, genre, runtime) evaluated with the approximate
//! MIS-AMP solvers, which scale to catalogues of hundreds of movies.
//!
//! Run with `cargo run --release --example movie_analytics`.

use ppd::datagen::{movielens_database, MovieLensConfig};
use ppd::prelude::*;

fn main() {
    // Catalogue size is chosen so the example stays interactive: the adaptive
    // MIS-AMP solver costs O(d²·n·m²) per session and non-itemwise queries
    // over the genre join decompose into many sub-rankings, so m = 24 keeps
    // each approximate evaluation to a few hundred milliseconds. The figure
    // harnesses (fig06, fig07) sweep the larger catalogues.
    let db = movielens_database(&MovieLensConfig {
        num_movies: 24,
        num_components: 4,
        num_users: 12,
        phi: 0.3,
        seed: 7,
    });
    println!(
        "MovieLens-like database: {} movies, {} user sessions",
        db.num_items(),
        db.preference_relation("Ratings").unwrap().num_sessions()
    );

    // Query A: is a post-1990 movie preferred to a pre-1990 movie of the same
    // genre? (The genre join makes this a hard, non-itemwise query.)
    let q_era = ConjunctiveQuery::new("new-over-old-same-genre")
        .prefer("Ratings", vec![Term::any()], Term::var("x"), Term::var("y"))
        .atom(
            "Movies",
            vec![
                Term::var("x"),
                Term::any(),
                Term::var("y1"),
                Term::var("g"),
                Term::any(),
                Term::any(),
                Term::any(),
            ],
        )
        .atom(
            "Movies",
            vec![
                Term::var("y"),
                Term::any(),
                Term::var("y2"),
                Term::var("g"),
                Term::any(),
                Term::any(),
                Term::any(),
            ],
        )
        .compare("y1", CompareOp::Ge, 1990)
        .compare("y2", CompareOp::Lt, 1990);
    let p = evaluate_boolean(&db, &q_era, &EvalConfig::approximate(150)).unwrap();
    let expected = count_sessions(&db, &q_era, &EvalConfig::approximate(150)).unwrap();
    println!("\n[boolean] some user prefers a 90s+ movie to an older same-genre movie: {p:.4}");
    println!("[count]   expected number of such users: {expected:.1}");

    // Query B: short thriller preferred to a long drama — a two-label query
    // cheap enough to evaluate exactly, so we can sanity-check the sampler.
    let q_thriller = ConjunctiveQuery::new("short-thriller-over-long-drama")
        .prefer("Ratings", vec![Term::any()], Term::var("a"), Term::var("b"))
        .atom(
            "Movies",
            vec![
                Term::var("a"),
                Term::any(),
                Term::any(),
                Term::val("Thriller"),
                Term::val("short"),
                Term::any(),
                Term::any(),
            ],
        )
        .atom(
            "Movies",
            vec![
                Term::var("b"),
                Term::any(),
                Term::any(),
                Term::val("Drama"),
                Term::val("long"),
                Term::any(),
                Term::any(),
            ],
        );
    let exact = count_sessions(&db, &q_thriller, &EvalConfig::exact()).unwrap();
    let approx = count_sessions(&db, &q_thriller, &EvalConfig::approximate(200)).unwrap();
    println!("\n[count]   users preferring a short thriller to a long drama:");
    println!("            exact   = {exact:.2}");
    println!("            MIS-AMP = {approx:.2}");

    // Query C: which users most strongly prefer female-led movies to
    // male-led movies? (Most-Probable-Session over a two-label query.)
    let q_lead = ConjunctiveQuery::new("female-lead-over-male-lead")
        .prefer("Ratings", vec![Term::any()], Term::var("f"), Term::var("m"))
        .atom(
            "Movies",
            vec![
                Term::var("f"),
                Term::any(),
                Term::any(),
                Term::any(),
                Term::any(),
                Term::val("F"),
                Term::any(),
            ],
        )
        .atom(
            "Movies",
            vec![
                Term::var("m"),
                Term::any(),
                Term::any(),
                Term::any(),
                Term::any(),
                Term::val("M"),
                Term::any(),
            ],
        );
    let (top, _) =
        most_probable_sessions(&db, &q_lead, 3, TopKStrategy::Naive, &EvalConfig::exact()).unwrap();
    println!("\n[top-k] users most likely to rank some female-led movie above a male-led one:");
    for score in top {
        println!(
            "  user session #{:<4} probability {:.4}",
            score.session_index, score.probability
        );
    }
}
