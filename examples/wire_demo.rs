//! The wire protocol end to end: a multi-tenant service behind a TCP
//! [`WireServer`], queried by a [`WireClient`] speaking line-delimited
//! JSON — with a bitwise comparison against direct engine calls at the end.
//!
//! Run with `cargo run --release --example wire_demo`.

use ppd::datagen::{polls_database, polls_q1_query, PollsConfig};
use ppd::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // Two tenants: the same Polls schema at two sizes, registered under
    // their own database ids behind one admission layer.
    let polls_small = polls_database(&PollsConfig {
        num_candidates: 6,
        num_voters: 12,
        seed: 1,
    });
    let polls_large = polls_database(&PollsConfig {
        num_candidates: 6,
        num_voters: 40,
        seed: 2,
    });
    let eval = EvalConfig::exact();
    let service = Arc::new(Service::with_databases(
        vec![
            ("polls-small".into(), polls_small.clone()),
            ("polls-large".into(), polls_large.clone()),
        ],
        ServiceConfig::new(eval.clone()),
    ));

    // Port 0: the OS picks a free port; local_addr() reports it.
    let server = WireServer::bind_tcp("127.0.0.1:0", Arc::clone(&service)).expect("bind");
    let addr = server.local_addr().expect("bound address");
    println!("wire server listening on {addr}");

    let mut client = WireClient::connect_tcp(addr).expect("connect");
    let q = polls_q1_query();

    // Interactive Boolean query against each tenant.
    for id in ["polls-small", "polls-large"] {
        let answer = client
            .call(
                &Request::Boolean(q.clone()),
                &SubmitOptions::interactive().on_database(id),
            )
            .expect("query answers");
        println!("Pr(Q1) on {id}: {answer:?}");
    }

    // A batch-class top-k with a deadline, pipelined with a count — the
    // responses stream back in completion order and are matched by id.
    let topk_id = client
        .send(
            &Request::TopK {
                query: q.clone(),
                k: 3,
                strategy: TopKStrategy::Naive,
            },
            &SubmitOptions::batch()
                .on_database("polls-large")
                .with_deadline(Duration::from_secs(30)),
        )
        .expect("send");
    let count_id = client
        .send(
            &Request::Count(q.clone()),
            &SubmitOptions::batch().on_database("polls-large"),
        )
        .expect("send");
    println!("top-3 sessions: {:?}", client.recv(topk_id).expect("topk"));
    println!(
        "expected count: {:?}",
        client.recv(count_id).expect("count")
    );

    // An unknown database id fails fast with a structured error.
    let err = client
        .call(
            &Request::Boolean(q.clone()),
            &SubmitOptions::interactive().on_database("nope"),
        )
        .expect_err("unknown database must fail");
    println!("unknown database -> {err}");

    // The determinism contract holds across the socket: wire answers are
    // bit-identical to direct engine calls.
    let direct = Engine::new(eval);
    let wire_answer = client
        .call(
            &Request::Boolean(q.clone()),
            &SubmitOptions::interactive().on_database("polls-small"),
        )
        .expect("answers");
    let direct_answer = Answer::Boolean(direct.evaluate_boolean(&polls_small, &q).expect("direct"));
    assert_eq!(
        wire_answer, direct_answer,
        "wire answers must be bit-identical"
    );
    println!("wire answer == direct engine answer (bitwise): ok");

    drop(client);
    server.shutdown();
    println!("server drained and shut down");
}
