//! Most-Probable-Session at scale: find the workers most likely to satisfy a
//! demographically-personalised preference query over the CrowdRank-like
//! dataset, and show the effect of grouping identical requests.
//!
//! Run with `cargo run --release --example topk_sessions`.

use ppd::datagen::{crowdrank_database, CrowdRankConfig};
use ppd::prelude::*;
use std::time::Instant;

fn main() {
    let db = crowdrank_database(&CrowdRankConfig {
        num_movies: 20,
        num_models: 7,
        num_workers: 5_000,
        phi: 0.4,
        seed: 99,
    });
    println!(
        "CrowdRank-like database: {} movies, {} worker sessions",
        db.num_items(),
        db.preference_relation("HitRankings")
            .unwrap()
            .num_sessions()
    );

    // "The worker prefers a short movie whose lead matches their own sex to
    //  some thriller" — the query is personalised per worker through the
    //  Workers join, yet only a handful of distinct (model, pattern-union)
    //  groups exist, so grouped evaluation is fast.
    let query = ConjunctiveQuery::new("personalised")
        .prefer(
            "HitRankings",
            vec![Term::var("w")],
            Term::var("m1"),
            Term::var("m2"),
        )
        .atom(
            "Workers",
            vec![Term::var("w"), Term::var("sex"), Term::any()],
        )
        .atom(
            "Movies",
            vec![
                Term::var("m1"),
                Term::any(),
                Term::var("sex"),
                Term::any(),
                Term::val("short"),
            ],
        )
        .atom(
            "Movies",
            vec![
                Term::var("m2"),
                Term::val("Thriller"),
                Term::any(),
                Term::any(),
                Term::any(),
            ],
        );

    // Expected number of workers for whom the statement holds.
    let start = Instant::now();
    let expected = count_sessions(&db, &query, &EvalConfig::exact()).unwrap();
    let grouped_elapsed = start.elapsed();
    println!(
        "\n[count] expected #workers satisfying the personalised query: {expected:.0} \
         (grouped evaluation took {grouped_elapsed:.2?})"
    );

    // The same evaluation without grouping, on a small prefix of the workers,
    // to illustrate why grouping matters (Section 6.4 / Figure 15).
    let small_db = crowdrank_database(&CrowdRankConfig {
        num_movies: 20,
        num_models: 7,
        num_workers: 500,
        phi: 0.4,
        seed: 99,
    });
    let start = Instant::now();
    let _ = count_sessions(&small_db, &query, &EvalConfig::exact().without_grouping()).unwrap();
    let naive_elapsed = start.elapsed();
    println!("[count] naive (ungrouped) evaluation over just 500 workers took {naive_elapsed:.2?}");

    // Top-5 workers most likely to satisfy the query, with the upper-bound
    // optimization.
    let (top, stats) = most_probable_sessions(
        &db,
        &query,
        5,
        TopKStrategy::UpperBound {
            edges_per_pattern: 1,
        },
        &EvalConfig::exact(),
    )
    .unwrap();
    println!(
        "\n[top-k] most supportive workers (exact evaluations performed: {} of {}):",
        stats.exact_evaluations,
        db.preference_relation("HitRankings")
            .unwrap()
            .num_sessions()
    );
    let workers = db.relation("Workers").unwrap();
    for score in top {
        let row = &workers.tuples()[score.session_index];
        println!(
            "  {:<8} (sex {}, age {})  probability {:.4}",
            row[0].render(),
            row[1].render(),
            row[2].render(),
            score.probability
        );
    }
}
