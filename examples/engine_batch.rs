//! The evaluation engine as a service: one long-lived [`Engine`] serving a
//! batch of concurrent queries over the synthetic Polls database, with
//! cross-query work-unit deduplication and marginal caching.
//!
//! Run with `cargo run --release --example engine_batch`.
//!
//! Set `PPD_CACHE_PATH=/path/to/snapshot` to demonstrate cache persistence
//! across processes: the first invocation solves everything and saves a
//! marginal-cache snapshot on exit; a second invocation loads it and serves
//! the identical workload without running a single solver (the example
//! asserts zero cache misses on a warm start).

use ppd::datagen::{polls_database, PollsConfig};
use ppd::prelude::*;

fn main() {
    // A Polls database large enough that sessions share models (the
    // Section 6.4 grouping the engine exploits).
    let db = polls_database(&PollsConfig {
        num_candidates: 10,
        num_voters: 120,
        seed: 7,
    });

    // Three queries a polling dashboard would fire together.
    let f_over_m = ConjunctiveQuery::new("f-over-m")
        .prefer(
            "Polls",
            vec![Term::any(), Term::any()],
            Term::var("c1"),
            Term::var("c2"),
        )
        .atom(
            "Candidates",
            vec![
                Term::var("c1"),
                Term::any(),
                Term::val("F"),
                Term::any(),
                Term::any(),
                Term::any(),
            ],
        )
        .atom(
            "Candidates",
            vec![
                Term::var("c2"),
                Term::any(),
                Term::val("M"),
                Term::any(),
                Term::any(),
                Term::any(),
            ],
        );
    let cross_party = ConjunctiveQuery::new("d-over-r")
        .prefer(
            "Polls",
            vec![Term::any(), Term::any()],
            Term::var("d"),
            Term::var("r"),
        )
        .atom(
            "Candidates",
            vec![
                Term::var("d"),
                Term::val("D"),
                Term::any(),
                Term::any(),
                Term::any(),
                Term::any(),
            ],
        )
        .atom(
            "Candidates",
            vec![
                Term::var("r"),
                Term::val("R"),
                Term::any(),
                Term::any(),
                Term::any(),
                Term::any(),
            ],
        );
    // The dashboard re-asks the first query (e.g. for a second widget): the
    // engine answers it from the same work units at zero marginal cost.
    let queries = vec![f_over_m.clone(), cross_party, f_over_m];

    // threads = 0: one worker per hardware thread.
    let engine = Engine::new(EvalConfig::exact().with_threads(0));

    // Opt-in persistence: warm-start from a snapshot of a previous process.
    let cache_path = std::env::var_os("PPD_CACHE_PATH");
    let mut warm_start = false;
    if let Some(path) = &cache_path {
        if std::path::Path::new(path).exists() {
            let loaded = engine.load_marginals(path).expect("cache snapshot loads");
            println!("warm start: loaded {loaded} cached marginals from {path:?}\n");
            warm_start = loaded > 0;
        }
    }

    let answers = engine
        .evaluate_batch(&db, &queries)
        .expect("batch evaluates");

    for (query, answer) in queries.iter().zip(&answers) {
        println!(
            "{:>10}: Pr(some session) = {:.4}, expected satisfying sessions = {:6.2} \
             (over {} qualifying sessions)",
            query.name(),
            answer.boolean,
            answer.expected_count,
            answer.session_probabilities.len()
        );
    }

    let stats = engine.cache_stats();
    println!(
        "\nengine: {} work units solved, {} served from cache, {} distinct models prepared",
        stats.marginal_misses, stats.marginal_hits, stats.models_prepared
    );

    // A follow-up top-k on the same engine reuses the cached marginals.
    let (top, topk_stats) = engine
        .most_probable_sessions(
            &db,
            &queries[0],
            3,
            TopKStrategy::UpperBound {
                edges_per_pattern: 2,
            },
        )
        .expect("top-k evaluates");
    println!("\ntop-3 sessions for {}:", queries[0].name());
    for score in &top {
        println!(
            "  session {:>3}: probability {:.4}",
            score.session_index, score.probability
        );
    }
    println!(
        "  ({} upper bounds, {} full evaluations, cache hits now {})",
        topk_stats.upper_bounds_computed,
        topk_stats.exact_evaluations,
        engine.cache_stats().marginal_hits
    );

    if let Some(path) = &cache_path {
        if warm_start {
            // The snapshot covered this entire workload: nothing was solved.
            let stats = engine.cache_stats();
            assert_eq!(
                stats.marginal_misses, 0,
                "a warm-started engine re-running the same workload must not solve"
            );
            println!(
                "\nwarm start verified: {} hits, 0 misses — the whole workload was served \
                 from the persisted cache",
                stats.marginal_hits
            );
        }
        let saved = engine.save_marginals(path).expect("cache snapshot saves");
        println!("\nsaved {saved} cached marginals to {path:?} (load them with a second run)");
    }
}
