//! Election analytics over the synthetic Polls database: Boolean, count and
//! non-itemwise queries over a polling p-relation with hundreds of voters.
//!
//! Run with `cargo run --release --example polls_election`.

use ppd::datagen::{polls_database, PollsConfig};
use ppd::prelude::*;

fn main() {
    // A mid-sized polling database: 14 candidates, 200 voters (sessions).
    let db = polls_database(&PollsConfig {
        num_candidates: 14,
        num_voters: 200,
        seed: 20,
    });
    println!(
        "Polls database: {} candidates, {} voters/sessions",
        db.num_items(),
        db.preference_relation("Polls").unwrap().num_sessions()
    );

    // Query A (itemwise): is some female candidate preferred to some male one?
    let q_gender = ConjunctiveQuery::new("female-over-male")
        .prefer("Polls", vec![Term::any(), Term::any()], Term::var("c1"), Term::var("c2"))
        .atom(
            "Candidates",
            vec![Term::var("c1"), Term::any(), Term::val("F"), Term::any(), Term::any(), Term::any()],
        )
        .atom(
            "Candidates",
            vec![Term::var("c2"), Term::any(), Term::val("M"), Term::any(), Term::any(), Term::any()],
        );
    let expected_sessions = count_sessions(&db, &q_gender, &EvalConfig::exact()).unwrap();
    println!(
        "\n[count]  expected #sessions preferring a female to a male candidate: {expected_sessions:.1}"
    );

    // Query B (non-itemwise, the paper's Figure 4 query): a male candidate
    // preferred to a female candidate of the *same party*. The shared party
    // variable is grounded over the party domain.
    let q_same_party = ConjunctiveQuery::new("male-over-female-same-party")
        .prefer("Polls", vec![Term::any(), Term::any()], Term::var("l"), Term::var("r"))
        .atom(
            "Candidates",
            vec![Term::var("l"), Term::var("p"), Term::val("M"), Term::any(), Term::any(), Term::any()],
        )
        .atom(
            "Candidates",
            vec![Term::var("r"), Term::var("p"), Term::val("F"), Term::any(), Term::any(), Term::any()],
        );
    let p_exact = evaluate_boolean(&db, &q_same_party, &EvalConfig::exact()).unwrap();
    let p_approx = evaluate_boolean(&db, &q_same_party, &EvalConfig::approximate(400)).unwrap();
    println!("\n[boolean] same-party query, exact:        {p_exact:.6}");
    println!("[boolean] same-party query, MIS-AMP:      {p_approx:.6}");

    // Query C: voters polled on 5/5 who prefer an under-50 candidate from the
    // North-East to every... approximated here as: to some JD-educated
    // candidate (demonstrates comparisons + session selections together).
    let q_young_ne = ConjunctiveQuery::new("young-northeasterner")
        .prefer("Polls", vec![Term::any(), Term::var("d")], Term::var("x"), Term::var("y"))
        .atom(
            "Candidates",
            vec![Term::var("x"), Term::any(), Term::any(), Term::var("a"), Term::any(), Term::val("NE")],
        )
        .atom(
            "Candidates",
            vec![Term::var("y"), Term::any(), Term::any(), Term::any(), Term::val("JD"), Term::any()],
        )
        .compare("a", CompareOp::Lt, 50)
        .compare("d", CompareOp::Eq, "5/5");
    let per_session = session_probabilities(&db, &q_young_ne, &EvalConfig::exact()).unwrap();
    println!(
        "\n[sessions] {} sessions qualify for the 5/5 young-NE query",
        per_session.len()
    );
    let avg: f64 =
        per_session.iter().map(|&(_, p)| p).sum::<f64>() / per_session.len().max(1) as f64;
    println!("[sessions] average per-session probability: {avg:.4}");

    // Query D: which 5 voters most strongly prefer a Democrat to a Republican
    // with the same education (the hard Q2 shape), using the top-k optimizer.
    let q2 = ConjunctiveQuery::new("Q2")
        .prefer("Polls", vec![Term::any(), Term::any()], Term::var("c1"), Term::var("c2"))
        .atom(
            "Candidates",
            vec![Term::var("c1"), Term::val("D"), Term::any(), Term::any(), Term::var("e"), Term::any()],
        )
        .atom(
            "Candidates",
            vec![Term::var("c2"), Term::val("R"), Term::any(), Term::any(), Term::var("e"), Term::any()],
        );
    let (top, stats) = most_probable_sessions(
        &db,
        &q2,
        5,
        TopKStrategy::UpperBound { edges_per_pattern: 1 },
        &EvalConfig::exact(),
    )
    .unwrap();
    println!("\n[top-k] 5 most supportive sessions for Q2 (exact evaluations: {}):",
        stats.exact_evaluations);
    let voters = db.relation("Voters").unwrap();
    for score in top {
        let voter = voters.tuples()[score.session_index][0].render();
        println!("  {voter:<10} Pr(Q2) = {:.4}", score.probability);
    }
}
