//! Election analytics over the synthetic Polls database: Boolean, count and
//! non-itemwise queries over a polling p-relation with hundreds of voters.
//!
//! Run with `cargo run --release --example polls_election`.

use ppd::datagen::{polls_database, PollsConfig};
use ppd::prelude::*;

fn main() {
    // A mid-sized polling database: 14 candidates, 200 voters (sessions).
    let db = polls_database(&PollsConfig {
        num_candidates: 14,
        num_voters: 200,
        seed: 20,
    });
    println!(
        "Polls database: {} candidates, {} voters/sessions",
        db.num_items(),
        db.preference_relation("Polls").unwrap().num_sessions()
    );

    // Query A (itemwise): is some female candidate preferred to some male one?
    let q_gender = ConjunctiveQuery::new("female-over-male")
        .prefer(
            "Polls",
            vec![Term::any(), Term::any()],
            Term::var("c1"),
            Term::var("c2"),
        )
        .atom(
            "Candidates",
            vec![
                Term::var("c1"),
                Term::any(),
                Term::val("F"),
                Term::any(),
                Term::any(),
                Term::any(),
            ],
        )
        .atom(
            "Candidates",
            vec![
                Term::var("c2"),
                Term::any(),
                Term::val("M"),
                Term::any(),
                Term::any(),
                Term::any(),
            ],
        );
    let expected_sessions = count_sessions(&db, &q_gender, &EvalConfig::exact()).unwrap();
    println!(
        "\n[count]  expected #sessions preferring a female to a male candidate: {expected_sessions:.1}"
    );

    // Query B (non-itemwise, the paper's Figure 4 query): a male candidate
    // preferred to a female candidate of the *same party*. The shared party
    // variable is grounded over the party domain.
    let q_same_party = ConjunctiveQuery::new("male-over-female-same-party")
        .prefer(
            "Polls",
            vec![Term::any(), Term::any()],
            Term::var("l"),
            Term::var("r"),
        )
        .atom(
            "Candidates",
            vec![
                Term::var("l"),
                Term::var("p"),
                Term::val("M"),
                Term::any(),
                Term::any(),
                Term::any(),
            ],
        )
        .atom(
            "Candidates",
            vec![
                Term::var("r"),
                Term::var("p"),
                Term::val("F"),
                Term::any(),
                Term::any(),
                Term::any(),
            ],
        );
    let p_exact = evaluate_boolean(&db, &q_same_party, &EvalConfig::exact()).unwrap();
    println!("\n[boolean] same-party query, exact:        {p_exact:.6}");
    // The exact-vs-approximate comparison runs on a smaller sub-database:
    // MIS-AMP-adaptive costs seconds per session when its convergence check
    // keeps adding proposals, so spot-checking the agreement on 25 sessions
    // keeps the example interactive (fig04/fig09 sweep the full trade-off).
    let db_small = polls_database(&PollsConfig {
        num_candidates: 10,
        num_voters: 25,
        seed: 21,
    });
    let p_small_exact = evaluate_boolean(&db_small, &q_same_party, &EvalConfig::exact()).unwrap();
    let p_small_approx =
        evaluate_boolean(&db_small, &q_same_party, &EvalConfig::approximate(200)).unwrap();
    println!("[boolean] same query, 25-voter subset, exact:   {p_small_exact:.6}");
    println!("[boolean] same query, 25-voter subset, MIS-AMP: {p_small_approx:.6}");

    // Query C: voters polled on 5/5 who prefer an under-60 candidate from the
    // North-East to some JD-educated candidate (demonstrates comparisons and
    // session selections together).
    let q_under60_ne = ConjunctiveQuery::new("under-60-northeasterner")
        .prefer(
            "Polls",
            vec![Term::any(), Term::var("d")],
            Term::var("x"),
            Term::var("y"),
        )
        .atom(
            "Candidates",
            vec![
                Term::var("x"),
                Term::any(),
                Term::any(),
                Term::var("a"),
                Term::any(),
                Term::val("NE"),
            ],
        )
        .atom(
            "Candidates",
            vec![
                Term::var("y"),
                Term::any(),
                Term::any(),
                Term::any(),
                Term::val("JD"),
                Term::any(),
            ],
        )
        .compare("a", CompareOp::Lt, 60)
        .compare("d", CompareOp::Eq, "5/5");
    let per_session = session_probabilities(&db, &q_under60_ne, &EvalConfig::exact()).unwrap();
    println!(
        "\n[sessions] {} sessions qualify for the 5/5 under-60-NE query",
        per_session.len()
    );
    let avg: f64 =
        per_session.iter().map(|&(_, p)| p).sum::<f64>() / per_session.len().max(1) as f64;
    println!("[sessions] average per-session probability: {avg:.4}");

    // Query D: which 5 voters most strongly prefer a Democrat to a Republican
    // of the same sex (the hard Q2 shape), using the top-k optimizer. The
    // shared variable ranges over sex (2 values → a 2-pattern union): the
    // exact two-label DP is O(m^(2z'+1)) in the number of distinct selectors,
    // so grounding over a wide domain like education (6 values) is exact-
    // intractable at m = 14 and belongs to the approximate solvers instead.
    let q2 = ConjunctiveQuery::new("Q2")
        .prefer(
            "Polls",
            vec![Term::any(), Term::any()],
            Term::var("c1"),
            Term::var("c2"),
        )
        .atom(
            "Candidates",
            vec![
                Term::var("c1"),
                Term::val("D"),
                Term::var("s"),
                Term::any(),
                Term::any(),
                Term::any(),
            ],
        )
        .atom(
            "Candidates",
            vec![
                Term::var("c2"),
                Term::val("R"),
                Term::var("s"),
                Term::any(),
                Term::any(),
                Term::any(),
            ],
        );
    let (top, stats) = most_probable_sessions(
        &db,
        &q2,
        5,
        TopKStrategy::UpperBound {
            edges_per_pattern: 1,
        },
        &EvalConfig::exact(),
    )
    .unwrap();
    println!(
        "\n[top-k] 5 most supportive sessions for Q2 (exact evaluations: {}):",
        stats.exact_evaluations
    );
    let voters = db.relation("Voters").unwrap();
    for score in top {
        let voter = voters.tuples()[score.session_index][0].render();
        println!("  {voter:<10} Pr(Q2) = {:.4}", score.probability);
    }
}
