#!/usr/bin/env bash
# Smoke-runs every example in release mode, failing on the first error.
# Used by CI and handy locally: `scripts/run_examples.sh`.
set -euo pipefail
cd "$(dirname "$0")/.."

for example in quickstart engine_batch service_demo live_update_demo wire_demo polls_election movie_analytics topk_sessions; do
    echo "=== example: ${example} ==="
    cargo run --release -q --example "${example}"
    echo
done
echo "all examples completed"
