//! Pattern unions `G = g₁ ∪ … ∪ g_z` and their classification.

use crate::label::Labeling;
use crate::pattern::Pattern;
use crate::{PatternError, Result};
use ppd_rim::Item;

/// Classification of a pattern union, determining which specialized exact
/// solver applies (Section 4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnionClass {
    /// Every member is a two-label pattern (a single edge) — Algorithm 3
    /// applies.
    TwoLabel,
    /// Every member is a bipartite pattern — Algorithm 4 applies.
    Bipartite,
    /// Arbitrary DAG patterns — the general inclusion–exclusion solver is
    /// needed.
    General,
}

/// A union of label patterns. A ranking satisfies the union when it satisfies
/// at least one member pattern; query evaluation reduces to the marginal
/// probability of such unions over a labeled RIM model (Eq. 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternUnion {
    patterns: Vec<Pattern>,
}

impl PatternUnion {
    /// Builds a union from member patterns; the union must be non-empty and
    /// every member must be a valid DAG.
    pub fn new(patterns: Vec<Pattern>) -> Result<Self> {
        if patterns.is_empty() {
            return Err(PatternError::Empty);
        }
        for p in &patterns {
            p.validate()?;
        }
        Ok(PatternUnion { patterns })
    }

    /// A union with a single member.
    pub fn singleton(pattern: Pattern) -> Result<Self> {
        PatternUnion::new(vec![pattern])
    }

    /// The member patterns.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Number of member patterns (the paper's `z`).
    pub fn num_patterns(&self) -> usize {
        self.patterns.len()
    }

    /// Total number of nodes over all members (the paper's `q · z` when all
    /// members have `q` nodes).
    pub fn total_nodes(&self) -> usize {
        self.patterns.iter().map(|p| p.num_nodes()).sum()
    }

    /// Classifies the union into the solver family it belongs to.
    pub fn classify(&self) -> UnionClass {
        if self.patterns.iter().all(|p| p.is_two_label()) {
            UnionClass::TwoLabel
        } else if self.patterns.iter().all(|p| p.is_bipartite()) {
            UnionClass::Bipartite
        } else {
            UnionClass::General
        }
    }

    /// The conjunction of the member patterns selected by `indices`
    /// (used by the inclusion–exclusion expansion of the general solver).
    pub fn conjunction_of(&self, indices: &[usize]) -> Result<Pattern> {
        let mut iter = indices.iter();
        let first = *iter.next().ok_or(PatternError::Empty)?;
        let mut acc = self
            .patterns
            .get(first)
            .ok_or(PatternError::InvalidNodeIndex(first))?
            .clone();
        for &idx in iter {
            let next = self
                .patterns
                .get(idx)
                .ok_or(PatternError::InvalidNodeIndex(idx))?;
            acc = acc.conjunction(next)?;
        }
        Ok(acc)
    }

    /// Drops member patterns that cannot be satisfied because some selector
    /// has no candidate item in the universe. Returns `None` when no member
    /// survives (the union has probability 0).
    pub fn prune_unsatisfiable(
        &self,
        universe: &[Item],
        labeling: &Labeling,
    ) -> Option<PatternUnion> {
        let surviving: Vec<Pattern> = self
            .patterns
            .iter()
            .filter(|p| p.is_satisfiable_universe(universe, labeling))
            .cloned()
            .collect();
        if surviving.is_empty() {
            None
        } else {
            Some(PatternUnion {
                patterns: surviving,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeSelector;

    fn sel(l: u32) -> NodeSelector {
        NodeSelector::single(l)
    }

    #[test]
    fn empty_union_rejected() {
        assert_eq!(PatternUnion::new(vec![]).unwrap_err(), PatternError::Empty);
    }

    #[test]
    fn classification_of_unions() {
        let two = Pattern::two_label(sel(0), sel(1));
        let bip = Pattern::new(
            vec![sel(0), sel(1), sel(2), sel(3)],
            vec![(0, 2), (0, 3), (1, 3)],
        )
        .unwrap();
        let chain = Pattern::new(vec![sel(0), sel(1), sel(2)], vec![(0, 1), (1, 2)]).unwrap();

        assert_eq!(
            PatternUnion::new(vec![two.clone(), two.clone()])
                .unwrap()
                .classify(),
            UnionClass::TwoLabel
        );
        assert_eq!(
            PatternUnion::new(vec![two.clone(), bip.clone()])
                .unwrap()
                .classify(),
            UnionClass::Bipartite
        );
        assert_eq!(
            PatternUnion::new(vec![two, chain]).unwrap().classify(),
            UnionClass::General
        );
    }

    #[test]
    fn conjunction_of_members() {
        let g1 = Pattern::two_label(sel(0), sel(1));
        let g2 = Pattern::two_label(sel(2), sel(3));
        let union = PatternUnion::new(vec![g1, g2]).unwrap();
        let c = union.conjunction_of(&[0, 1]).unwrap();
        assert_eq!(c.num_nodes(), 4);
        assert_eq!(c.num_edges(), 2);
        assert!(union.conjunction_of(&[]).is_err());
        assert!(union.conjunction_of(&[5]).is_err());
    }

    #[test]
    fn prune_unsatisfiable_members() {
        let mut lab = Labeling::new();
        lab.add(0, 0);
        lab.add(1, 1);
        let good = Pattern::two_label(sel(0), sel(1));
        let bad = Pattern::two_label(sel(0), sel(9));
        let union = PatternUnion::new(vec![good.clone(), bad.clone()]).unwrap();
        let pruned = union.prune_unsatisfiable(&[0, 1], &lab).unwrap();
        assert_eq!(pruned.num_patterns(), 1);
        let all_bad = PatternUnion::new(vec![bad]).unwrap();
        assert!(all_bad.prune_unsatisfiable(&[0, 1], &lab).is_none());
    }

    #[test]
    fn total_nodes_counts_multiplicity() {
        let g1 = Pattern::two_label(sel(0), sel(1));
        let g2 = Pattern::new(vec![sel(0), sel(1), sel(2)], vec![(0, 1), (1, 2)]).unwrap();
        let union = PatternUnion::new(vec![g1, g2]).unwrap();
        assert_eq!(union.total_nodes(), 5);
    }
}
