//! Label patterns: DAGs of label selectors.

use crate::label::Labeling;
use crate::node::NodeSelector;
use crate::{PatternError, Result};
use ppd_rim::Item;
use std::collections::BTreeSet;

/// A directed pattern edge `from ≻ to` between node indices: the item matched
/// by `from` must be preferred to the item matched by `to`.
pub type PatternEdge = (usize, usize);

/// A label pattern: a DAG whose nodes are [`NodeSelector`]s and whose edges
/// are preference constraints between the matched items (Section 2.1 of the
/// paper, e.g. Figure 2's `F ≻ M`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    nodes: Vec<NodeSelector>,
    edges: Vec<PatternEdge>,
}

impl Pattern {
    /// Builds a pattern from nodes and edges, validating indices and
    /// acyclicity.
    pub fn new(nodes: Vec<NodeSelector>, edges: Vec<PatternEdge>) -> Result<Self> {
        let p = Pattern { nodes, edges };
        p.validate()?;
        Ok(p)
    }

    /// Convenience constructor for the common two-label pattern `l ≻ r`.
    pub fn two_label(l: NodeSelector, r: NodeSelector) -> Self {
        Pattern {
            nodes: vec![l, r],
            edges: vec![(0, 1)],
        }
    }

    /// Starts an empty pattern to be grown with [`Pattern::push_node`] and
    /// [`Pattern::push_edge`].
    pub fn builder() -> Pattern {
        Pattern {
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds a node and returns its index.
    pub fn push_node(&mut self, node: NodeSelector) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Adds the edge `from ≻ to`. Indices are validated by
    /// [`Pattern::validate`] / [`Pattern::new`].
    pub fn push_edge(&mut self, from: usize, to: usize) {
        self.edges.push((from, to));
    }

    /// Checks node indices and acyclicity.
    pub fn validate(&self) -> Result<()> {
        for &(a, b) in &self.edges {
            if a >= self.nodes.len() {
                return Err(PatternError::InvalidNodeIndex(a));
            }
            if b >= self.nodes.len() {
                return Err(PatternError::InvalidNodeIndex(b));
            }
            if a == b {
                return Err(PatternError::CyclicPattern);
            }
        }
        self.topological_order().map(|_| ())
    }

    /// The pattern's nodes.
    pub fn nodes(&self) -> &[NodeSelector] {
        &self.nodes
    }

    /// The pattern's edges (pairs of node indices).
    pub fn edges(&self) -> &[PatternEdge] {
        &self.edges
    }

    /// Number of nodes (the paper's `q`).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Indices of the direct predecessors (preferred side) of node `i`.
    pub fn parents(&self, i: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|&&(_, b)| b == i)
            .map(|&(a, _)| a)
            .collect()
    }

    /// Indices of the direct successors of node `i`.
    pub fn children(&self, i: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|&&(a, _)| a == i)
            .map(|&(_, b)| b)
            .collect()
    }

    /// A topological order of the node indices, or an error if the pattern
    /// graph is cyclic.
    pub fn topological_order(&self) -> Result<Vec<usize>> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for &(a, b) in &self.edges {
            if a >= n || b >= n {
                return Err(PatternError::InvalidNodeIndex(a.max(b)));
            }
            indeg[b] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop() {
            order.push(u);
            for &(a, b) in &self.edges {
                if a == u {
                    indeg[b] -= 1;
                    if indeg[b] == 0 {
                        queue.push(b);
                    }
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(PatternError::CyclicPattern)
        }
    }

    /// The transitive closure `tc(g)`: same nodes, every implied edge made
    /// explicit (Section 4.3.2).
    pub fn transitive_closure(&self) -> Result<Pattern> {
        let order = self.topological_order()?;
        let n = self.nodes.len();
        let mut reach: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for &u in order.iter().rev() {
            let mut set = BTreeSet::new();
            for v in self.children(u) {
                set.insert(v);
                let extra: Vec<usize> = reach[v].iter().copied().collect();
                set.extend(extra);
            }
            reach[u] = set;
        }
        let mut edges = Vec::new();
        for (u, set) in reach.iter().enumerate() {
            for &v in set {
                edges.push((u, v));
            }
        }
        Ok(Pattern {
            nodes: self.nodes.clone(),
            edges,
        })
    }

    /// `true` when this is a *two-label pattern*: a single preference edge
    /// between two selectors (Section 4.2).
    pub fn is_two_label(&self) -> bool {
        self.nodes.len() == 2 && self.edges.len() == 1
    }

    /// `true` when this is a *bipartite pattern*: every node is used only as
    /// the preferred side (L-type) or only as the less-preferred side
    /// (R-type) of edges, and no node is isolated (Section 4.3).
    pub fn is_bipartite(&self) -> bool {
        if self.edges.is_empty() {
            return false;
        }
        let mut is_source = vec![false; self.nodes.len()];
        let mut is_target = vec![false; self.nodes.len()];
        for &(a, b) in &self.edges {
            is_source[a] = true;
            is_target[b] = true;
        }
        (0..self.nodes.len()).all(|i| {
            let (s, t) = (is_source[i], is_target[i]);
            (s || t) && !(s && t)
        })
    }

    /// L-type node indices (only meaningful for bipartite patterns): nodes
    /// used as the preferred side of at least one edge.
    pub fn l_nodes(&self) -> Vec<usize> {
        let set: BTreeSet<usize> = self.edges.iter().map(|&(a, _)| a).collect();
        set.into_iter().collect()
    }

    /// R-type node indices: nodes used as the less-preferred side of at least
    /// one edge.
    pub fn r_nodes(&self) -> Vec<usize> {
        let set: BTreeSet<usize> = self.edges.iter().map(|&(_, b)| b).collect();
        set.into_iter().collect()
    }

    /// The conjunction `g ∧ g'` used by the inclusion–exclusion general
    /// solver: the pattern containing all nodes and edges of both patterns.
    ///
    /// The node sets are kept *disjoint* — a selector appearing in both
    /// patterns becomes two separate nodes. This is essential for
    /// correctness: the conjunction of the events "g is embedded" and
    /// "g' is embedded" allows the two embeddings to pick different witness
    /// items for the same selector (Example 4.4 of the paper illustrates a
    /// ranking satisfying `la ≻ lb` and `lb ≻ lc` with two different
    /// `lb`-witnesses while violating the chain `la ≻ lb ≻ lc`).
    pub fn conjunction(&self, other: &Pattern) -> Result<Pattern> {
        let mut nodes = self.nodes.clone();
        let offset = nodes.len();
        nodes.extend(other.nodes.iter().cloned());
        let mut edges: Vec<PatternEdge> = self.edges.clone();
        for &(a, b) in &other.edges {
            edges.push((a + offset, b + offset));
        }
        Pattern::new(nodes, edges)
    }

    /// Candidate items of every node under `labeling`, restricted to
    /// `universe`. Errors if some node matches no item (such a pattern can
    /// never be satisfied, which callers usually want to detect explicitly).
    pub fn candidate_sets(&self, universe: &[Item], labeling: &Labeling) -> Result<Vec<Vec<Item>>> {
        let mut out = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let cands = node.candidates(universe, labeling);
            if cands.is_empty() {
                return Err(PatternError::EmptySelector(node.describe()));
            }
            out.push(cands);
        }
        Ok(out)
    }

    /// `true` when every node matches at least one item of `universe`.
    pub fn is_satisfiable_universe(&self, universe: &[Item], labeling: &Labeling) -> bool {
        self.candidate_sets(universe, labeling).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Labeling;

    fn sel(l: u32) -> NodeSelector {
        NodeSelector::single(l)
    }

    #[test]
    fn validation_catches_bad_edges_and_cycles() {
        assert!(Pattern::new(vec![sel(0)], vec![(0, 1)]).is_err());
        assert!(Pattern::new(vec![sel(0), sel(1)], vec![(0, 0)]).is_err());
        assert!(Pattern::new(vec![sel(0), sel(1), sel(2)], vec![(0, 1), (1, 2), (2, 0)]).is_err());
        assert!(Pattern::new(vec![sel(0), sel(1)], vec![(0, 1)]).is_ok());
    }

    #[test]
    fn classification() {
        let two = Pattern::two_label(sel(0), sel(1));
        assert!(two.is_two_label());
        assert!(two.is_bipartite());

        // A ≻ C, A ≻ D, B ≻ D : bipartite but not two-label.
        let bip = Pattern::new(
            vec![sel(0), sel(1), sel(2), sel(3)],
            vec![(0, 2), (0, 3), (1, 3)],
        )
        .unwrap();
        assert!(!bip.is_two_label());
        assert!(bip.is_bipartite());
        assert_eq!(bip.l_nodes(), vec![0, 1]);
        assert_eq!(bip.r_nodes(), vec![2, 3]);

        // Chain l0 ≻ l1 ≻ l2 : not bipartite (node 1 is both source and target).
        let chain = Pattern::new(vec![sel(0), sel(1), sel(2)], vec![(0, 1), (1, 2)]).unwrap();
        assert!(!chain.is_bipartite());
        assert!(!chain.is_two_label());

        // Isolated node: not bipartite under our definition.
        let isolated = Pattern::new(vec![sel(0), sel(1), sel(2)], vec![(0, 1)]).unwrap();
        assert!(!isolated.is_bipartite());
    }

    #[test]
    fn parents_children_topo() {
        let p = Pattern::new(vec![sel(0), sel(1), sel(2)], vec![(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(p.parents(2), vec![1, 0]);
        assert_eq!(p.children(0), vec![1, 2]);
        let order = p.topological_order().unwrap();
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(0) < pos(1) && pos(1) < pos(2));
    }

    #[test]
    fn transitive_closure_adds_edges() {
        let p = Pattern::new(vec![sel(0), sel(1), sel(2)], vec![(0, 1), (1, 2)]).unwrap();
        let tc = p.transitive_closure().unwrap();
        assert_eq!(tc.num_edges(), 3);
        assert!(tc.edges().contains(&(0, 2)));
    }

    #[test]
    fn conjunction_keeps_node_copies_disjoint() {
        let g1 = Pattern::two_label(sel(0), sel(1));
        let g2 = Pattern::two_label(sel(0), sel(2));
        let c = g1.conjunction(&g2).unwrap();
        assert_eq!(c.num_nodes(), 4);
        assert_eq!(c.num_edges(), 2);
        // Even conjoining a pattern with itself keeps separate copies — the
        // two embeddings are allowed to use different witness items.
        let same = g1.conjunction(&g1).unwrap();
        assert_eq!(same.num_nodes(), 4);
        assert_eq!(same.num_edges(), 2);
        // Opposite edges over the same selectors must not create a cycle.
        let forward = Pattern::two_label(sel(0), sel(1));
        let backward = Pattern::two_label(sel(1), sel(0));
        let both = forward.conjunction(&backward).unwrap();
        assert!(both.validate().is_ok());
        assert_eq!(both.num_nodes(), 4);
    }

    #[test]
    fn candidate_sets_and_satisfiability() {
        let mut lab = Labeling::new();
        lab.add(0, 0);
        lab.add(1, 1);
        lab.add_item(2);
        let p = Pattern::two_label(sel(0), sel(1));
        let cands = p.candidate_sets(&[0, 1, 2], &lab).unwrap();
        assert_eq!(cands, vec![vec![0], vec![1]]);
        assert!(p.is_satisfiable_universe(&[0, 1, 2], &lab));
        let q = Pattern::two_label(sel(0), sel(9));
        assert!(!q.is_satisfiable_universe(&[0, 1, 2], &lab));
        assert!(q.candidate_sets(&[0, 1, 2], &lab).is_err());
    }
}
