//! Pattern nodes: label selectors.

use crate::label::{LabelId, Labeling};
use ppd_rim::Item;
use std::collections::BTreeSet;

/// A pattern node: a conjunction of labels that a matching item must carry.
///
/// The paper writes nodes either as atomic labels (`F`, `M`) or as sets of
/// labels (`{M, JD}`); both are instances of a selector. A selector with an
/// empty label set matches every item.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeSelector {
    labels: BTreeSet<LabelId>,
}

impl NodeSelector {
    /// A selector requiring a single label.
    pub fn single(label: LabelId) -> Self {
        NodeSelector {
            labels: [label].into_iter().collect(),
        }
    }

    /// A selector requiring all of the given labels.
    pub fn all_of(labels: impl IntoIterator<Item = LabelId>) -> Self {
        NodeSelector {
            labels: labels.into_iter().collect(),
        }
    }

    /// A selector that matches every item.
    pub fn any() -> Self {
        NodeSelector::default()
    }

    /// The labels required by this selector.
    pub fn labels(&self) -> &BTreeSet<LabelId> {
        &self.labels
    }

    /// `true` when `item` matches this selector under `labeling`.
    pub fn matches(&self, item: Item, labeling: &Labeling) -> bool {
        labeling.has_all_labels(item, &self.labels)
    }

    /// The candidate items of this selector within `universe`.
    pub fn candidates(&self, universe: &[Item], labeling: &Labeling) -> Vec<Item> {
        labeling.matching_items(universe, &self.labels)
    }

    /// A short human-readable rendering, e.g. `{3,7}`.
    pub fn describe(&self) -> String {
        let inner: Vec<String> = self.labels.iter().map(|l| l.to_string()).collect();
        format!("{{{}}}", inner.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_and_candidates() {
        let mut lab = Labeling::new();
        lab.add_all(0, [1, 2]);
        lab.add_all(1, [2]);
        lab.add_item(2);
        let universe = [0, 1, 2];

        let single = NodeSelector::single(2);
        assert!(single.matches(0, &lab));
        assert!(single.matches(1, &lab));
        assert!(!single.matches(2, &lab));
        assert_eq!(single.candidates(&universe, &lab), vec![0, 1]);

        let both = NodeSelector::all_of([1, 2]);
        assert_eq!(both.candidates(&universe, &lab), vec![0]);

        let any = NodeSelector::any();
        assert_eq!(any.candidates(&universe, &lab), vec![0, 1, 2]);
        assert!(any.matches(42, &lab));
    }

    #[test]
    fn describe_is_stable() {
        let sel = NodeSelector::all_of([7, 3]);
        assert_eq!(sel.describe(), "{3,7}");
    }
}
