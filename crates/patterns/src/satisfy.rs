//! Satisfaction semantics: does a ranking (with a labeling) match a pattern?
//!
//! This module is the single source of truth for the embedding semantics of
//! Section 2.3: every solver in `ppd-solvers` (brute force, exact DPs,
//! samplers) is validated against, or directly uses, these functions.

use crate::label::Labeling;
use crate::pattern::Pattern;
use crate::union::PatternUnion;
use ppd_rim::Ranking;

/// Finds an embedding of `pattern` into `ranking` (with respect to
/// `labeling`), returning for each pattern node the 0-based position of the
/// item it is matched to, or `None` if no embedding exists.
///
/// The embedding returned is the *earliest* one: processing nodes in
/// topological order, each node is matched to the earliest position that
/// carries its labels and lies strictly below all of its parents' matched
/// positions. Because making a node's position smaller never invalidates its
/// descendants, this greedy least fixpoint succeeds whenever any embedding
/// exists, so the check is both sound and complete.
pub fn find_embedding(
    ranking: &Ranking,
    labeling: &Labeling,
    pattern: &Pattern,
) -> Option<Vec<usize>> {
    let order = pattern.topological_order().ok()?;
    let m = ranking.len();
    let mut positions: Vec<Option<usize>> = vec![None; pattern.num_nodes()];
    for &u in &order {
        // The earliest admissible position is one past the latest parent.
        let mut lower = 0usize;
        for p in pattern.parents(u) {
            match positions[p] {
                Some(pos) => lower = lower.max(pos + 1),
                // Parents precede u in topological order; None means the
                // parent could not be matched, hence neither can u.
                None => return None,
            }
        }
        let selector = &pattern.nodes()[u];
        let mut found = None;
        for pos in lower..m {
            if selector.matches(ranking.item_at(pos), labeling) {
                found = Some(pos);
                break;
            }
        }
        positions[u] = found;
        positions[u]?;
    }
    Some(positions.into_iter().map(|p| p.expect("checked")).collect())
}

/// `true` when the ranking satisfies the pattern (`(τ, λ) |= g`).
pub fn satisfies_pattern(ranking: &Ranking, labeling: &Labeling, pattern: &Pattern) -> bool {
    find_embedding(ranking, labeling, pattern).is_some()
}

/// `true` when the ranking satisfies at least one member of the union
/// (`(τ, λ) |= G`).
pub fn satisfies_union(ranking: &Ranking, labeling: &Labeling, union: &PatternUnion) -> bool {
    union
        .patterns()
        .iter()
        .any(|g| satisfies_pattern(ranking, labeling, g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeSelector;

    fn sel(l: u32) -> NodeSelector {
        NodeSelector::single(l)
    }

    /// The polling example of the paper (Figures 1 and 2, Example 2.3):
    /// items 0=Trump, 1=Clinton, 2=Sanders, 3=Rubio; labels 0=F, 1=M.
    fn polling_labeling() -> Labeling {
        let mut lab = Labeling::new();
        lab.add(0, 1);
        lab.add(1, 0);
        lab.add(2, 1);
        lab.add(3, 1);
        lab
    }

    #[test]
    fn example_2_3_embedding() {
        let lab = polling_labeling();
        let g = Pattern::two_label(sel(0), sel(1)); // F ≻ M
        let tau = Ranking::new(vec![0, 1, 2, 3]).unwrap(); // Trump, Clinton, Sanders, Rubio
        let emb = find_embedding(&tau, &lab, &g).unwrap();
        // F matches Clinton at position 1, M matches Sanders at position 2
        // (the earliest M after Clinton).
        assert_eq!(emb, vec![1, 2]);
        assert!(satisfies_pattern(&tau, &lab, &g));
    }

    #[test]
    fn pattern_violated_when_no_order_exists() {
        let lab = polling_labeling();
        let g = Pattern::two_label(sel(0), sel(1)); // F ≻ M
                                                    // Clinton last: no male candidate after her.
        let tau = Ranking::new(vec![0, 2, 3, 1]).unwrap();
        assert!(!satisfies_pattern(&tau, &lab, &g));
    }

    #[test]
    fn chain_needs_intermediate_item() {
        // Pattern l0 ≻ l1 ≻ l2 over items 0:{l0}, 1:{l1}, 2:{l2}.
        let mut lab = Labeling::new();
        lab.add(0, 0);
        lab.add(1, 1);
        lab.add(2, 2);
        let chain = Pattern::new(vec![sel(0), sel(1), sel(2)], vec![(0, 1), (1, 2)]).unwrap();
        assert!(satisfies_pattern(
            &Ranking::new(vec![0, 1, 2]).unwrap(),
            &lab,
            &chain
        ));
        assert!(!satisfies_pattern(
            &Ranking::new(vec![1, 0, 2]).unwrap(),
            &lab,
            &chain
        ));
        assert!(!satisfies_pattern(
            &Ranking::new(vec![0, 2, 1]).unwrap(),
            &lab,
            &chain
        ));
    }

    #[test]
    fn example_4_4_upper_bound_gap() {
        // Example 4.4: τ = ⟨b1, a, c, b2⟩ with λ = {a:la, b1:lb, b2:lb, c:lc}
        // does NOT satisfy the chain la ≻ lb ≻ lc even though every pairwise
        // min/max constraint holds.
        let mut lab = Labeling::new();
        lab.add(0, 1); // b1 : lb
        lab.add(1, 0); // a  : la
        lab.add(2, 2); // c  : lc
        lab.add(3, 1); // b2 : lb
        let chain = Pattern::new(vec![sel(0), sel(1), sel(2)], vec![(0, 1), (1, 2)]).unwrap();
        let tau = Ranking::new(vec![0, 1, 2, 3]).unwrap();
        assert!(!satisfies_pattern(&tau, &lab, &chain));
        // But the two-edge relaxation {la ≻ lb} ∪-conjunction {lb ≻ lc} holds.
        let e1 = Pattern::two_label(sel(0), sel(1));
        let e2 = Pattern::two_label(sel(1), sel(2));
        assert!(satisfies_pattern(&tau, &lab, &e1));
        assert!(satisfies_pattern(&tau, &lab, &e2));
    }

    #[test]
    fn non_injective_embeddings_allowed() {
        // Two incomparable nodes may match the same position.
        let mut lab = Labeling::new();
        lab.add_all(0, [0, 1]);
        lab.add(1, 2);
        let g = Pattern::new(vec![sel(0), sel(1), sel(2)], vec![(0, 2), (1, 2)]).unwrap();
        let tau = Ranking::new(vec![0, 1]).unwrap();
        let emb = find_embedding(&tau, &lab, &g).unwrap();
        assert_eq!(emb, vec![0, 0, 1]);
    }

    #[test]
    fn union_satisfaction() {
        let lab = polling_labeling();
        let f_over_m = Pattern::two_label(sel(0), sel(1));
        let m_over_f = Pattern::two_label(sel(1), sel(0));
        let union = PatternUnion::new(vec![f_over_m, m_over_f]).unwrap();
        // Any ranking with both a male and a female candidate satisfies one
        // direction or the other.
        for tau in Ranking::enumerate_all(&[0, 1, 2, 3]) {
            assert!(satisfies_union(&tau, &lab, &union));
        }
    }

    #[test]
    fn selector_with_no_matching_item_fails() {
        let lab = polling_labeling();
        let g = Pattern::two_label(sel(0), sel(7));
        let tau = Ranking::new(vec![1, 0, 2, 3]).unwrap();
        assert!(!satisfies_pattern(&tau, &lab, &g));
    }

    #[test]
    fn exhaustive_embedding_consistency() {
        // The greedy embedding exists iff an exhaustive search over node→item
        // assignments finds one (cross-validation of the least-fixpoint
        // argument) on a small universe with overlapping labels.
        let mut lab = Labeling::new();
        lab.add_all(0, [0, 1]);
        lab.add_all(1, [1]);
        lab.add_all(2, [0, 2]);
        lab.add_all(3, [2]);
        let patterns = vec![
            Pattern::new(vec![sel(0), sel(1), sel(2)], vec![(0, 1), (1, 2)]).unwrap(),
            Pattern::new(vec![sel(0), sel(1), sel(2)], vec![(0, 1), (0, 2)]).unwrap(),
            Pattern::new(vec![sel(2), sel(1), sel(0)], vec![(0, 1), (1, 2)]).unwrap(),
        ];
        for pattern in &patterns {
            for tau in Ranking::enumerate_all(&[0, 1, 2, 3]) {
                let greedy = satisfies_pattern(&tau, &lab, pattern);
                let exhaustive = exhaustive_satisfies(&tau, &lab, pattern);
                assert_eq!(greedy, exhaustive, "pattern {pattern:?}, ranking {tau}");
            }
        }
    }

    /// Brute-force embedding search over all node→position assignments.
    fn exhaustive_satisfies(tau: &Ranking, lab: &Labeling, pattern: &Pattern) -> bool {
        let m = tau.len();
        let q = pattern.num_nodes();
        let mut assignment = vec![0usize; q];
        loop {
            let ok_labels =
                (0..q).all(|u| pattern.nodes()[u].matches(tau.item_at(assignment[u]), lab));
            let ok_edges = pattern
                .edges()
                .iter()
                .all(|&(a, b)| assignment[a] < assignment[b]);
            if ok_labels && ok_edges {
                return true;
            }
            // Increment the mixed-radix counter.
            let mut i = 0;
            loop {
                if i == q {
                    return false;
                }
                assignment[i] += 1;
                if assignment[i] < m {
                    break;
                }
                assignment[i] = 0;
                i += 1;
            }
        }
    }
}
