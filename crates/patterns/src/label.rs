//! Labels and labeling functions.
//!
//! Labels are values of item attributes (e.g. `sex=F`, `party=D`,
//! `genre=Thriller`). The labeling function `λ` maps every item to the finite
//! set of labels it carries. Patterns select items through conjunctions of
//! labels.

use ppd_rim::Item;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Interned identifier of a label.
pub type LabelId = u32;

/// Interns human-readable label names (e.g. `"sex=F"`) into dense
/// [`LabelId`]s, so patterns and labelings can use compact integer sets.
#[derive(Debug, Clone, Default)]
pub struct LabelInterner {
    by_name: HashMap<String, LabelId>,
    names: Vec<String>,
}

impl LabelInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        LabelInterner::default()
    }

    /// Interns a label name, returning its id (existing id if already known).
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as LabelId;
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Looks up the id of a label name without interning it.
    pub fn get(&self, name: &str) -> Option<LabelId> {
        self.by_name.get(name).copied()
    }

    /// The name of a label id, if known.
    pub fn name(&self, id: LabelId) -> Option<&str> {
        self.names.get(id as usize).map(|s| s.as_str())
    }

    /// Number of interned labels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when no label has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Convenience: interns an `attribute=value` pair.
    pub fn intern_attr(&mut self, attribute: &str, value: &str) -> LabelId {
        self.intern(&format!("{attribute}={value}"))
    }
}

/// The labeling function `λ`: maps each item to the set of labels it carries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Labeling {
    labels_of: BTreeMap<Item, BTreeSet<LabelId>>,
}

impl Labeling {
    /// Creates an empty labeling (every item maps to the empty label set).
    pub fn new() -> Self {
        Labeling::default()
    }

    /// Adds a label to an item.
    pub fn add(&mut self, item: Item, label: LabelId) {
        self.labels_of.entry(item).or_default().insert(label);
    }

    /// Adds several labels to an item.
    pub fn add_all(&mut self, item: Item, labels: impl IntoIterator<Item = LabelId>) {
        self.labels_of.entry(item).or_default().extend(labels);
    }

    /// Registers an item with no labels (so it is reported by
    /// [`Labeling::items`] even if unlabeled).
    pub fn add_item(&mut self, item: Item) {
        self.labels_of.entry(item).or_default();
    }

    /// The labels of an item (`λ(item)`), empty if unknown.
    pub fn labels_of(&self, item: Item) -> BTreeSet<LabelId> {
        self.labels_of.get(&item).cloned().unwrap_or_default()
    }

    /// `true` when `item` carries `label`.
    pub fn has_label(&self, item: Item, label: LabelId) -> bool {
        self.labels_of
            .get(&item)
            .map(|s| s.contains(&label))
            .unwrap_or(false)
    }

    /// `true` when `item` carries every label in `labels`.
    pub fn has_all_labels(&self, item: Item, labels: &BTreeSet<LabelId>) -> bool {
        match self.labels_of.get(&item) {
            Some(set) => labels.iter().all(|l| set.contains(l)),
            None => labels.is_empty(),
        }
    }

    /// All items known to the labeling.
    pub fn items(&self) -> Vec<Item> {
        self.labels_of.keys().copied().collect()
    }

    /// Items carrying every label in `labels`, restricted to `universe`.
    pub fn matching_items(&self, universe: &[Item], labels: &BTreeSet<LabelId>) -> Vec<Item> {
        universe
            .iter()
            .copied()
            .filter(|&it| self.has_all_labels(it, labels))
            .collect()
    }

    /// Number of items known to the labeling.
    pub fn len(&self) -> usize {
        self.labels_of.len()
    }

    /// `true` when the labeling knows no items.
    pub fn is_empty(&self) -> bool {
        self.labels_of.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_roundtrip() {
        let mut interner = LabelInterner::new();
        let f = interner.intern("sex=F");
        let m = interner.intern("sex=M");
        assert_ne!(f, m);
        assert_eq!(interner.intern("sex=F"), f);
        assert_eq!(interner.get("sex=M"), Some(m));
        assert_eq!(interner.get("missing"), None);
        assert_eq!(interner.name(f), Some("sex=F"));
        assert_eq!(interner.name(99), None);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.intern_attr("party", "D"), 2);
    }

    #[test]
    fn labeling_queries() {
        let mut lab = Labeling::new();
        lab.add(0, 1);
        lab.add(0, 2);
        lab.add(1, 2);
        lab.add_item(5);
        assert!(lab.has_label(0, 1));
        assert!(!lab.has_label(1, 1));
        assert!(!lab.has_label(42, 1));
        let both: BTreeSet<LabelId> = [1, 2].into_iter().collect();
        assert!(lab.has_all_labels(0, &both));
        assert!(!lab.has_all_labels(1, &both));
        assert!(lab.has_all_labels(42, &BTreeSet::new()));
        assert_eq!(lab.items(), vec![0, 1, 5]);
        assert_eq!(lab.matching_items(&[0, 1, 5], &both), vec![0]);
        let just_two: BTreeSet<LabelId> = [2].into_iter().collect();
        assert_eq!(lab.matching_items(&[0, 1, 5], &just_two), vec![0, 1]);
    }
}
