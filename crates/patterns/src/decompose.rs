//! Decomposition of patterns and pattern unions into item-level partial
//! orders and sub-rankings (Section 5.2 of the paper).
//!
//! A pattern `g` is satisfied by a ranking iff the ranking extends at least
//! one *instantiation* of the pattern: a partial order obtained by assigning
//! each pattern node a concrete candidate item and materialising the edges.
//! Each partial order is in turn equivalent to the union of its linear
//! extensions (sub-rankings). The importance-sampling solvers operate on the
//! resulting union of sub-rankings.

use crate::label::Labeling;
use crate::pattern::Pattern;
use crate::union::PatternUnion;
use crate::{PatternError, Result};
use ppd_rim::{Item, PartialOrder, SubRanking};
use std::collections::BTreeSet;

/// Caps applied during decomposition so that pathological inputs fail fast
/// instead of exhausting memory. The paper acknowledges that a pattern union
/// corresponds to exponentially many sub-rankings; MIS-AMP-lite only ever
/// consumes a prefix sorted by estimated distance, so a generous cap does not
/// change its behaviour on the benchmark workloads.
#[derive(Debug, Clone, Copy)]
pub struct DecompositionLimits {
    /// Maximum number of item-level partial orders per union.
    pub max_partial_orders: usize,
    /// Maximum number of sub-rankings per union.
    pub max_subrankings: usize,
}

impl Default for DecompositionLimits {
    fn default() -> Self {
        DecompositionLimits {
            max_partial_orders: 200_000,
            max_subrankings: 200_000,
        }
    }
}

/// The result of decomposing a pattern union.
#[derive(Debug, Clone)]
pub struct UnionDecomposition {
    /// Distinct item-level partial orders (the `υ ∈ ∆(g, λ)` of the paper),
    /// over all members of the union.
    pub partial_orders: Vec<PartialOrder>,
    /// Distinct sub-rankings (the `ψ` of the paper) over all members.
    pub subrankings: Vec<SubRanking>,
}

/// Decomposes a single pattern into its item-level partial orders under the
/// given labeling: one partial order per assignment of candidate items to
/// pattern nodes that does not contradict itself.
pub fn decompose_pattern(
    pattern: &Pattern,
    universe: &[Item],
    labeling: &Labeling,
    limits: &DecompositionLimits,
) -> Result<Vec<PartialOrder>> {
    let candidates = pattern.candidate_sets(universe, labeling)?;
    let q = pattern.num_nodes();
    let mut seen: BTreeSet<Vec<(Item, Item)>> = BTreeSet::new();
    let mut out: Vec<PartialOrder> = Vec::new();

    // Enumerate node→item assignments with a mixed-radix counter.
    let mut idx = vec![0usize; q];
    loop {
        // Build the instantiated partial order; skip contradictory ones.
        let mut edges: Vec<(Item, Item)> = Vec::with_capacity(pattern.num_edges());
        let mut valid = true;
        for &(a, b) in pattern.edges() {
            let (ia, ib) = (candidates[a][idx[a]], candidates[b][idx[b]]);
            if ia == ib {
                valid = false;
                break;
            }
            edges.push((ia, ib));
        }
        if valid {
            edges.sort_unstable();
            edges.dedup();
            if !seen.contains(&edges) {
                if let Ok(po) = PartialOrder::from_pairs(&edges) {
                    // Register isolated nodes of edgeless patterns so the
                    // partial order still mentions the matched items.
                    if pattern.num_edges() == 0 {
                        let mut po = po;
                        for (u, &choice) in idx.iter().enumerate() {
                            po.add_item(candidates[u][choice]);
                        }
                        seen.insert(edges);
                        out.push(po);
                    } else {
                        seen.insert(edges);
                        out.push(po);
                    }
                    if out.len() > limits.max_partial_orders {
                        return Err(PatternError::DecompositionTooLarge {
                            produced: out.len(),
                            cap: limits.max_partial_orders,
                        });
                    }
                }
                // Cyclic instantiations are simply skipped: no ranking can
                // extend them, so they contribute nothing to the union.
            }
        }
        // Advance the counter.
        let mut pos = 0;
        loop {
            if pos == q {
                return Ok(out);
            }
            idx[pos] += 1;
            if idx[pos] < candidates[pos].len() {
                break;
            }
            idx[pos] = 0;
            pos += 1;
        }
    }
}

/// Decomposes a pattern union into item-level partial orders and
/// sub-rankings. Both lists are deduplicated across members.
pub fn decompose_union(
    union: &PatternUnion,
    universe: &[Item],
    labeling: &Labeling,
    limits: &DecompositionLimits,
) -> Result<UnionDecomposition> {
    let mut partial_orders: Vec<PartialOrder> = Vec::new();
    let mut seen_po: BTreeSet<Vec<(Item, Item)>> = BTreeSet::new();
    let mut subrankings: Vec<SubRanking> = Vec::new();
    let mut seen_sub: BTreeSet<Vec<Item>> = BTreeSet::new();

    for pattern in union.patterns() {
        let pos = match decompose_pattern(pattern, universe, labeling, limits) {
            Ok(p) => p,
            // A member whose selector matches nothing contributes nothing.
            Err(PatternError::EmptySelector(_)) => continue,
            Err(e) => return Err(e),
        };
        for po in pos {
            let mut key = po.edges();
            key.sort_unstable();
            if !seen_po.insert(key) {
                continue;
            }
            let extensions = po.linear_extensions(limits.max_subrankings).ok_or(
                PatternError::DecompositionTooLarge {
                    produced: limits.max_subrankings,
                    cap: limits.max_subrankings,
                },
            )?;
            for ext in extensions {
                if seen_sub.insert(ext.items().to_vec()) {
                    subrankings.push(ext);
                    if subrankings.len() > limits.max_subrankings {
                        return Err(PatternError::DecompositionTooLarge {
                            produced: subrankings.len(),
                            cap: limits.max_subrankings,
                        });
                    }
                }
            }
            partial_orders.push(po);
        }
    }
    if subrankings.is_empty() {
        return Err(PatternError::EmptySelector(
            "no member of the union is satisfiable under the labeling".into(),
        ));
    }
    Ok(UnionDecomposition {
        partial_orders,
        subrankings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeSelector;
    use crate::satisfy::satisfies_union;
    use ppd_rim::Ranking;

    fn sel(l: u32) -> NodeSelector {
        NodeSelector::single(l)
    }

    /// Items 0,1 carry label 0; items 2,3 carry label 1; item 4 carries label 2.
    fn labeling() -> Labeling {
        let mut lab = Labeling::new();
        lab.add(0, 0);
        lab.add(1, 0);
        lab.add(2, 1);
        lab.add(3, 1);
        lab.add(4, 2);
        lab
    }

    #[test]
    fn two_label_pattern_decomposes_into_pairs() {
        let lab = labeling();
        let g = Pattern::two_label(sel(0), sel(1));
        let pos =
            decompose_pattern(&g, &[0, 1, 2, 3, 4], &lab, &DecompositionLimits::default()).unwrap();
        // 2 candidates for each side → 4 distinct pairs.
        assert_eq!(pos.len(), 4);
        for po in &pos {
            assert_eq!(po.edges().len(), 1);
        }
    }

    #[test]
    fn contradictory_instantiations_are_skipped() {
        let lab = labeling();
        // l0 ≻ l0 over two items with label 0: instantiations (0,1) and (1,0)
        // survive, (0,0) and (1,1) are contradictory.
        let g = Pattern::two_label(sel(0), sel(0));
        let pos = decompose_pattern(&g, &[0, 1], &lab, &DecompositionLimits::default()).unwrap();
        assert_eq!(pos.len(), 2);
    }

    #[test]
    fn empty_selector_is_an_error() {
        let lab = labeling();
        let g = Pattern::two_label(sel(0), sel(9));
        assert!(matches!(
            decompose_pattern(&g, &[0, 1, 2], &lab, &DecompositionLimits::default()),
            Err(PatternError::EmptySelector(_))
        ));
    }

    #[test]
    fn cap_is_enforced() {
        let lab = labeling();
        let g = Pattern::two_label(sel(0), sel(1));
        let limits = DecompositionLimits {
            max_partial_orders: 2,
            max_subrankings: 2,
        };
        assert!(matches!(
            decompose_pattern(&g, &[0, 1, 2, 3, 4], &lab, &limits),
            Err(PatternError::DecompositionTooLarge { .. })
        ));
    }

    #[test]
    fn union_decomposition_equivalence() {
        // Invariant from DESIGN.md: a ranking satisfies the union iff it is
        // consistent with at least one decomposed sub-ranking.
        let lab = labeling();
        let universe = [0u32, 1, 2, 3, 4];
        let g1 = Pattern::new(vec![sel(0), sel(1), sel(2)], vec![(0, 1), (1, 2)]).unwrap();
        let g2 = Pattern::two_label(sel(2), sel(0));
        let union = PatternUnion::new(vec![g1, g2]).unwrap();
        let dec =
            decompose_union(&union, &universe, &lab, &DecompositionLimits::default()).unwrap();
        assert!(!dec.subrankings.is_empty());
        assert!(!dec.partial_orders.is_empty());
        for tau in Ranking::enumerate_all(&universe) {
            let direct = satisfies_union(&tau, &lab, &union);
            let via_subrankings = dec.subrankings.iter().any(|psi| psi.is_consistent(&tau));
            let via_pos = dec.partial_orders.iter().any(|po| po.is_consistent(&tau));
            assert_eq!(direct, via_subrankings, "ranking {tau}");
            assert_eq!(direct, via_pos, "ranking {tau}");
        }
    }

    #[test]
    fn vee_pattern_produces_both_extensions() {
        // Pattern with two parents of one child over singleton candidate sets
        // reproduces the ψ1/ψ2 example of Section 5.2.
        let mut lab = Labeling::new();
        lab.add(0, 0);
        lab.add(1, 1);
        lab.add(2, 2);
        let g = Pattern::new(vec![sel(0), sel(1), sel(2)], vec![(0, 2), (1, 2)]).unwrap();
        let union = PatternUnion::singleton(g).unwrap();
        let dec =
            decompose_union(&union, &[0, 1, 2], &lab, &DecompositionLimits::default()).unwrap();
        assert_eq!(dec.partial_orders.len(), 1);
        assert_eq!(dec.subrankings.len(), 2);
    }

    #[test]
    fn wholly_unsatisfiable_union_is_an_error() {
        let lab = labeling();
        let g = Pattern::two_label(sel(9), sel(8));
        let union = PatternUnion::singleton(g).unwrap();
        assert!(decompose_union(&union, &[0, 1], &lab, &DecompositionLimits::default()).is_err());
    }
}
