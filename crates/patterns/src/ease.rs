//! The `ease` heuristic and relaxed upper-bound unions used by the
//! Most-Probable-Session top-k optimization (Sections 3.2 and 4.3.2).
//!
//! For a pattern `g`, every edge `(l, r)` of its transitive closure induces
//! the necessary condition `α(l) < β(r)` (the earliest `l`-item must precede
//! the latest `r`-item). Keeping only a few such constraints — preferably the
//! ones *hardest* to satisfy — yields a cheap-to-evaluate upper bound on the
//! probability of `g`. The `ease` of an edge estimates how easy the
//! constraint is to satisfy under `MAL(σ, φ)` by looking at label positions
//! in the centre ranking `σ`.

use crate::label::Labeling;
use crate::node::NodeSelector;
use crate::pattern::{Pattern, PatternEdge};
use crate::union::PatternUnion;
use crate::Result;
use ppd_rim::Ranking;

/// `ease(l, l' | σ) = β(l' | σ) − α(l | σ)`: the (signed) gap between the
/// lowest-ranked item matching the right selector and the highest-ranked item
/// matching the left selector, measured in the centre ranking `σ`. Larger
/// values mean the preference `l ≻ l'` is easier for a random permutation to
/// satisfy. Returns `None` when either selector matches no item of `σ`.
pub fn edge_ease(
    left: &NodeSelector,
    right: &NodeSelector,
    sigma: &Ranking,
    labeling: &Labeling,
) -> Option<i64> {
    let alpha = sigma
        .items()
        .iter()
        .enumerate()
        .filter(|&(_, &it)| left.matches(it, labeling))
        .map(|(pos, _)| pos as i64)
        .min()?;
    let beta = sigma
        .items()
        .iter()
        .enumerate()
        .filter(|&(_, &it)| right.matches(it, labeling))
        .map(|(pos, _)| pos as i64)
        .max()?;
    Some(beta - alpha)
}

/// Selects the `k` edges of `tc(pattern)` with the smallest ease values (the
/// hardest constraints), which give the tightest cheap upper bound. Edges
/// whose ease is undefined (selector matches nothing in `σ`) are treated as
/// hardest of all.
pub fn select_hardest_edges(
    pattern: &Pattern,
    sigma: &Ranking,
    labeling: &Labeling,
    k: usize,
) -> Result<Vec<PatternEdge>> {
    let closed = pattern.transitive_closure()?;
    let mut scored: Vec<(i64, PatternEdge)> = closed
        .edges()
        .iter()
        .map(|&(a, b)| {
            let ease = edge_ease(&closed.nodes()[a], &closed.nodes()[b], sigma, labeling)
                .unwrap_or(i64::MIN);
            (ease, (a, b))
        })
        .collect();
    scored.sort_by_key(|&(ease, edge)| (ease, edge));
    Ok(scored
        .into_iter()
        .take(k.max(1))
        .map(|(_, edge)| edge)
        .collect())
}

/// Builds the relaxed upper-bound union `G'` of Section 3.2: for every member
/// pattern, keep only the `edges_per_pattern` hardest transitive-closure
/// edges and treat each kept edge `(l, r)` as the independent constraint
/// `α(l) < β(r)`.
///
/// The relaxation is realised as a bipartite pattern in which the left and
/// right roles of a selector are *separate* nodes, so an embedding may pick
/// different witness items for the two roles — exactly the semantics of the
/// constraint set `U` in Section 4.3.2. Consequently
/// `Pr(G' | σ, Π, λ) ≥ Pr(G | σ, Π, λ)` (property-tested in `ppd-solvers`).
///
/// With `edges_per_pattern = 1` the result is a union of two-label patterns
/// ("1-edge" in Figure 8); with larger values it is a union of bipartite
/// patterns ("2-edge").
pub fn relaxed_upper_bound_union(
    union: &PatternUnion,
    sigma: &Ranking,
    labeling: &Labeling,
    edges_per_pattern: usize,
) -> Result<PatternUnion> {
    let mut relaxed_members = Vec::with_capacity(union.num_patterns());
    for pattern in union.patterns() {
        let closed = pattern.transitive_closure()?;
        let selected = select_hardest_edges(pattern, sigma, labeling, edges_per_pattern)?;
        let mut relaxed = Pattern::builder();
        // Map (selector, role) → node index in the relaxed pattern.
        let mut l_index: Vec<(NodeSelector, usize)> = Vec::new();
        let mut r_index: Vec<(NodeSelector, usize)> = Vec::new();
        for (a, b) in selected {
            let left_sel = closed.nodes()[a].clone();
            let right_sel = closed.nodes()[b].clone();
            let li = match l_index.iter().find(|(s, _)| *s == left_sel) {
                Some(&(_, idx)) => idx,
                None => {
                    let idx = relaxed.push_node(left_sel.clone());
                    l_index.push((left_sel, idx));
                    idx
                }
            };
            let ri = match r_index.iter().find(|(s, _)| *s == right_sel) {
                Some(&(_, idx)) => idx,
                None => {
                    let idx = relaxed.push_node(right_sel.clone());
                    r_index.push((right_sel, idx));
                    idx
                }
            };
            relaxed.push_edge(li, ri);
        }
        relaxed.validate()?;
        relaxed_members.push(relaxed);
    }
    PatternUnion::new(relaxed_members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::satisfy::{satisfies_pattern, satisfies_union};
    use crate::union::UnionClass;

    fn sel(l: u32) -> NodeSelector {
        NodeSelector::single(l)
    }

    /// σ = ⟨0,1,2,3,4,5⟩; labels: 0 on items {0,1}, 1 on {2,3}, 2 on {4,5}.
    fn setup() -> (Ranking, Labeling) {
        let sigma = Ranking::identity(6);
        let mut lab = Labeling::new();
        lab.add(0, 0);
        lab.add(1, 0);
        lab.add(2, 1);
        lab.add(3, 1);
        lab.add(4, 2);
        lab.add(5, 2);
        (sigma, lab)
    }

    #[test]
    fn ease_reflects_center_positions() {
        let (sigma, lab) = setup();
        // 0 ≻ 2 is easy (label 2 sits at the bottom of σ): ease = 5 − 0.
        assert_eq!(edge_ease(&sel(0), &sel(2), &sigma, &lab), Some(5));
        // 2 ≻ 0 is hard: ease = 1 − 4 = −3.
        assert_eq!(edge_ease(&sel(2), &sel(0), &sigma, &lab), Some(-3));
        // Undefined when a selector matches nothing.
        assert_eq!(edge_ease(&sel(9), &sel(0), &sigma, &lab), None);
    }

    #[test]
    fn hardest_edges_selected_from_transitive_closure() {
        let (sigma, lab) = setup();
        // Chain 2 ≻ 1 ≻ 0; tc adds 2 ≻ 0 which is the hardest edge.
        let chain = Pattern::new(vec![sel(2), sel(1), sel(0)], vec![(0, 1), (1, 2)]).unwrap();
        let hardest = select_hardest_edges(&chain, &sigma, &lab, 1).unwrap();
        assert_eq!(hardest.len(), 1);
        let (a, b) = hardest[0];
        assert_eq!(chain.nodes()[a], sel(2));
        assert_eq!(chain.nodes()[b], sel(0));
    }

    #[test]
    fn relaxed_union_class_matches_edge_budget() {
        let (sigma, lab) = setup();
        let chain = Pattern::new(vec![sel(2), sel(1), sel(0)], vec![(0, 1), (1, 2)]).unwrap();
        let union = PatternUnion::singleton(chain).unwrap();
        let one = relaxed_upper_bound_union(&union, &sigma, &lab, 1).unwrap();
        assert_eq!(one.classify(), UnionClass::TwoLabel);
        let two = relaxed_upper_bound_union(&union, &sigma, &lab, 2).unwrap();
        assert_eq!(two.classify(), UnionClass::Bipartite);
    }

    #[test]
    fn relaxation_is_an_upper_bound_pointwise() {
        // Every ranking satisfying the original union satisfies the relaxed
        // union (the probabilistic upper-bound property follows).
        let (sigma, lab) = setup();
        let chain = Pattern::new(vec![sel(0), sel(1), sel(2)], vec![(0, 1), (1, 2)]).unwrap();
        let other = Pattern::two_label(sel(2), sel(0));
        let union = PatternUnion::new(vec![chain, other]).unwrap();
        for k in 1..=3 {
            let relaxed = relaxed_upper_bound_union(&union, &sigma, &lab, k).unwrap();
            for tau in Ranking::enumerate_all(&[0, 1, 2, 3, 4, 5][..5]) {
                if satisfies_union(&tau, &lab, &union) {
                    assert!(
                        satisfies_union(&tau, &lab, &relaxed),
                        "k={k}, ranking {tau} breaks the upper bound"
                    );
                }
            }
        }
    }

    #[test]
    fn relaxed_pattern_allows_distinct_witnesses() {
        // Example 4.4: the relaxation of the chain la ≻ lb ≻ lc is satisfied
        // by ⟨b1, a, c, b2⟩ although the chain itself is not.
        let mut lab = Labeling::new();
        lab.add(0, 1); // b1: lb
        lab.add(1, 0); // a : la
        lab.add(2, 2); // c : lc
        lab.add(3, 1); // b2: lb
        let sigma = Ranking::new(vec![1, 0, 3, 2]).unwrap();
        let chain = Pattern::new(vec![sel(0), sel(1), sel(2)], vec![(0, 1), (1, 2)]).unwrap();
        let union = PatternUnion::singleton(chain.clone()).unwrap();
        let relaxed = relaxed_upper_bound_union(&union, &sigma, &lab, 3).unwrap();
        let tau = Ranking::new(vec![0, 1, 2, 3]).unwrap();
        assert!(!satisfies_pattern(&tau, &lab, &chain));
        assert!(satisfies_union(&tau, &lab, &relaxed));
    }
}
