//! # ppd-patterns
//!
//! Label patterns over labeled rankings — the intermediate representation that
//! query evaluation over RIM-PPDs reduces to.
//!
//! A *label pattern* (Section 2.1 of the paper) is a directed acyclic graph
//! whose nodes are label selectors (conjunctions of labels an item must carry)
//! and whose edges state preferences between the matched items. A ranking
//! `τ` with labeling `λ` *satisfies* a pattern `g` when there is an embedding
//! of the pattern's nodes into positions of `τ` such that labels and edges
//! match ([`satisfy`]).
//!
//! Hard queries reduce to the marginal probability of a **union of patterns**
//! over a labeled RIM model (Eq. 2 of the paper). This crate provides:
//!
//! * [`Labeling`] and [`LabelInterner`] — the labeling function `λ`;
//! * [`NodeSelector`], [`Pattern`], [`PatternUnion`] — patterns and unions,
//!   with classification into the two-label / bipartite / general families
//!   that determine which solver applies;
//! * [`satisfy`] — the single satisfaction semantics shared by the
//!   brute-force reference solver, the samplers and the tests;
//! * [`decompose`] — the pattern → partial orders → sub-rankings
//!   decomposition of Section 5.2, feeding the importance-sampling solvers;
//! * [`ease`] — the `ease` heuristic and the relaxed upper-bound unions used
//!   by the Most-Probable-Session top-k optimization (Sections 3.2, 4.3.2).

pub mod decompose;
pub mod ease;
pub mod label;
pub mod node;
pub mod pattern;
pub mod satisfy;
pub mod union;

pub use decompose::{decompose_pattern, decompose_union, DecompositionLimits, UnionDecomposition};
pub use ease::{edge_ease, relaxed_upper_bound_union, select_hardest_edges};
pub use label::{LabelId, LabelInterner, Labeling};
pub use node::NodeSelector;
pub use pattern::{Pattern, PatternEdge};
pub use satisfy::{find_embedding, satisfies_pattern, satisfies_union};
pub use union::{PatternUnion, UnionClass};

/// Errors produced by the pattern layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// A pattern edge refers to a node index that does not exist.
    InvalidNodeIndex(usize),
    /// The pattern's edge relation contains a cycle (patterns must be DAGs).
    CyclicPattern,
    /// A pattern or union is empty where a non-empty one is required.
    Empty,
    /// Decomposition exceeded the configured limits.
    DecompositionTooLarge { produced: usize, cap: usize },
    /// A selector has no candidate items under the given labeling, making the
    /// requested operation meaningless (e.g. a decomposition).
    EmptySelector(String),
}

impl std::fmt::Display for PatternError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatternError::InvalidNodeIndex(i) => write!(f, "invalid node index {i}"),
            PatternError::CyclicPattern => write!(f, "pattern graph contains a cycle"),
            PatternError::Empty => write!(f, "empty pattern or union"),
            PatternError::DecompositionTooLarge { produced, cap } => write!(
                f,
                "decomposition produced more than {cap} objects ({produced}+)"
            ),
            PatternError::EmptySelector(s) => {
                write!(f, "selector {s} matches no item under the labeling")
            }
        }
    }
}

impl std::error::Error for PatternError {}

/// Convenience result alias for the pattern layer.
pub type Result<T> = std::result::Result<T, PatternError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(PatternError::CyclicPattern.to_string().contains("cycle"));
        assert!(PatternError::InvalidNodeIndex(4).to_string().contains('4'));
        assert!(PatternError::DecompositionTooLarge {
            produced: 100,
            cap: 10
        }
        .to_string()
        .contains("10"));
    }
}
