//! Criterion micro-benchmarks of the solver kernels on small fixed instances.
//!
//! These complement the figure harnesses (`src/bin/figNN.rs`): the harnesses
//! sweep the paper's parameter ranges, while these benches give quick,
//! statistically robust numbers for the inner loops (one solve each).

use criterion::{criterion_group, criterion_main, Criterion};
use ppd_datagen::{benchmark_a, benchmark_c, benchmark_d, BenchmarkCConfig, BenchmarkDConfig};
use ppd_solvers::{
    ApproxSolver, BipartiteSolver, BruteForceSolver, ExactSolver, GeneralSolver, MisAmpLite,
    RejectionSampler, TwoLabelSolver,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn configure(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group("solver_kernels");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group
}

fn bench_exact_solvers(c: &mut Criterion) {
    let mut group = configure(c);

    // Two-label union, m = 20 (a Benchmark-D cell).
    let d = benchmark_d(
        &BenchmarkDConfig {
            num_items: 20,
            patterns_per_union: 2,
            items_per_label: 3,
            instances: 1,
            phi: 0.5,
        },
        1,
    )
    .remove(0);
    let d_rim = d.model.to_rim();
    group.bench_function("two_label_m20_z2", |b| {
        b.iter(|| {
            TwoLabelSolver::new()
                .solve(&d_rim, &d.labeling, &d.union)
                .unwrap()
        })
    });
    group.bench_function("bipartite_on_two_label_m20_z2", |b| {
        b.iter(|| {
            BipartiteSolver::new()
                .solve(&d_rim, &d.labeling, &d.union)
                .unwrap()
        })
    });

    // Bipartite union, m = 10 (a Benchmark-C cell).
    let cinst = benchmark_c(
        &BenchmarkCConfig {
            num_items: 10,
            patterns_per_union: 2,
            labels_per_pattern: 3,
            items_per_label: 3,
            instances: 1,
            phi: 0.1,
        },
        2,
    )
    .remove(0);
    let c_rim = cinst.model.to_rim();
    group.bench_function("bipartite_m10_q3_z2", |b| {
        b.iter(|| {
            BipartiteSolver::new()
                .solve(&c_rim, &cinst.labeling, &cinst.union)
                .unwrap()
        })
    });
    group.bench_function("general_m10_q3_z2", |b| {
        b.iter(|| {
            GeneralSolver::new()
                .solve(&c_rim, &cinst.labeling, &cinst.union)
                .unwrap()
        })
    });

    // Brute force reference on a tiny instance, for context.
    let tiny = benchmark_c(
        &BenchmarkCConfig {
            num_items: 7,
            patterns_per_union: 1,
            labels_per_pattern: 2,
            items_per_label: 2,
            instances: 1,
            phi: 0.5,
        },
        3,
    )
    .remove(0);
    let tiny_rim = tiny.model.to_rim();
    group.bench_function("brute_force_m7", |b| {
        b.iter(|| {
            BruteForceSolver::new()
                .solve(&tiny_rim, &tiny.labeling, &tiny.union)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_approx_solvers(c: &mut Criterion) {
    let mut group = configure(c);
    let a = benchmark_a(1, 99).remove(0);
    group.bench_function("mis_amp_lite_d5_benchmark_a", |b| {
        let lite = MisAmpLite::new(5, 200);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            lite.estimate(&a.model, &a.labeling, &a.union, &mut rng)
                .unwrap()
        })
    });
    group.bench_function("rejection_2000_samples_benchmark_a", |b| {
        let rs = RejectionSampler::new(2_000);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            rs.estimate(&a.model, &a.labeling, &a.union, &mut rng)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_exact_solvers, bench_approx_solvers);
criterion_main!(benches);
