//! Criterion ablation benchmarks for the design choices called out in
//! DESIGN.md: bipartite pruning, MIS compensation, and session grouping.

use criterion::{criterion_group, criterion_main, Criterion};
use ppd_core::{
    ground_query, session_probabilities_for_plan, ConjunctiveQuery, EvalConfig, Term as T,
};
use ppd_datagen::{benchmark_c, crowdrank_database, BenchmarkCConfig, CrowdRankConfig};
use ppd_solvers::{ApproxSolver, BipartiteSolver, ExactSolver, MisAmpLite};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn configure(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group
}

fn bench_bipartite_pruning(c: &mut Criterion) {
    let mut group = configure(c);
    let inst = benchmark_c(
        &BenchmarkCConfig {
            num_items: 10,
            patterns_per_union: 2,
            labels_per_pattern: 3,
            items_per_label: 3,
            instances: 1,
            phi: 0.1,
        },
        5,
    )
    .remove(0);
    let rim = inst.model.to_rim();
    group.bench_function("bipartite_pruned", |b| {
        b.iter(|| {
            BipartiteSolver::new()
                .solve(&rim, &inst.labeling, &inst.union)
                .unwrap()
        })
    });
    group.bench_function("bipartite_basic_no_pruning", |b| {
        b.iter(|| {
            BipartiteSolver::basic()
                .solve(&rim, &inst.labeling, &inst.union)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_compensation(c: &mut Criterion) {
    let mut group = configure(c);
    let inst = benchmark_c(
        &BenchmarkCConfig {
            num_items: 12,
            patterns_per_union: 2,
            labels_per_pattern: 3,
            items_per_label: 3,
            instances: 1,
            phi: 0.1,
        },
        6,
    )
    .remove(0);
    group.bench_function("mis_lite_with_compensation", |b| {
        let lite = MisAmpLite::new(3, 200);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(11);
            lite.estimate(&inst.model, &inst.labeling, &inst.union, &mut rng)
                .unwrap()
        })
    });
    group.bench_function("mis_lite_without_compensation", |b| {
        let lite = MisAmpLite::new(3, 200).without_compensation();
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(11);
            lite.estimate(&inst.model, &inst.labeling, &inst.union, &mut rng)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_session_grouping(c: &mut Criterion) {
    let mut group = configure(c);
    let db = crowdrank_database(&CrowdRankConfig {
        num_movies: 12,
        num_models: 5,
        num_workers: 300,
        phi: 0.4,
        seed: 9,
    });
    let q = ConjunctiveQuery::new("grouping")
        .prefer("HitRankings", vec![T::var("v")], T::var("m1"), T::var("m2"))
        .atom("Workers", vec![T::var("v"), T::var("sex"), T::any()])
        .atom(
            "Movies",
            vec![T::var("m1"), T::any(), T::var("sex"), T::any(), T::any()],
        )
        .atom(
            "Movies",
            vec![
                T::var("m2"),
                T::val("Thriller"),
                T::any(),
                T::any(),
                T::any(),
            ],
        );
    let plan = ground_query(&db, &q).unwrap();
    group.bench_function("evaluation_grouped", |b| {
        let config = EvalConfig::approximate(100);
        b.iter(|| session_probabilities_for_plan(&db, &plan, &config).unwrap())
    });
    group.bench_function("evaluation_naive", |b| {
        let config = EvalConfig::approximate(100).without_grouping();
        b.iter(|| session_probabilities_for_plan(&db, &plan, &config).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bipartite_pruning,
    bench_compensation,
    bench_session_grouping
);
criterion_main!(benches);
