//! # ppd-bench
//!
//! Experiment harnesses regenerating the figures of the paper's evaluation
//! (Section 6). Each binary `figNN` prints the series its figure plots and
//! writes a JSON record under `bench_results/`.
//!
//! Every harness supports two scales, selected with the `PPD_SCALE`
//! environment variable:
//!
//! * `small` (default) — parameters reduced so the whole suite finishes in
//!   minutes on a laptop; trends and solver orderings are preserved.
//! * `paper` — the parameter ranges of the paper (some runs take hours, as
//!   they did for the authors).
//!
//! The Criterion benches (`cargo bench -p ppd-bench`) cover the solver
//! kernels and the ablations called out in DESIGN.md.
//!
//! Latency percentiles in the harnesses come from [`ppd_obs::Histogram`] —
//! the same log-bucketed recorder the served `metrics` verb exposes — so
//! the benches and the service report quantiles through one implementation.

use std::path::PathBuf;
use std::time::{Duration, Instant};

/// The scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced parameters (default): minutes, not hours.
    Small,
    /// The paper's parameter ranges.
    Paper,
}

impl Scale {
    /// Reads the scale from the `PPD_SCALE` environment variable.
    pub fn from_env() -> Scale {
        match std::env::var("PPD_SCALE").unwrap_or_default().as_str() {
            "paper" => Scale::Paper,
            _ => Scale::Small,
        }
    }

    /// Picks between the small-scale and paper-scale value.
    pub fn pick<T>(&self, small: T, paper: T) -> T {
        match self {
            Scale::Small => small,
            Scale::Paper => paper,
        }
    }
}

/// Reads a `usize` override from the environment (the harnesses' shared
/// `PPD_VOTERS` / `PPD_CANDIDATES` / `PPD_ROUNDS` knobs).
pub fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Median of a slice of durations (returns zero for an empty slice).
pub fn median_duration(durations: &[Duration]) -> Duration {
    if durations.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = durations.to_vec();
    sorted.sort();
    sorted[sorted.len() / 2]
}

/// Median of a slice of floats (returns NaN for an empty slice).
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    sorted[sorted.len() / 2]
}

/// Relative error of an estimate against an exact value.
pub fn relative_error(exact: f64, estimate: f64) -> f64 {
    if exact == 0.0 {
        estimate.abs()
    } else {
        ((estimate - exact) / exact).abs()
    }
}

/// Writes an experiment record as pretty JSON under `bench_results/`.
pub fn write_results(name: &str, value: &serde_json::Value) {
    let dir = PathBuf::from("bench_results");
    if std::fs::create_dir_all(&dir).is_err() {
        eprintln!("warning: could not create bench_results/");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(body) => {
            if std::fs::write(&path, body).is_ok() {
                println!("\n[results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialise results: {e}"),
    }
}

/// Prints a simple aligned table: a header row followed by data rows.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("  {}", padded.join("  "));
    };
    line(header.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Small.pick(1, 2), 1);
        assert_eq!(Scale::Paper.pick(1, 2), 2);
    }

    #[test]
    fn statistics_helpers() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert!(median(&[]).is_nan());
        assert_eq!(
            median_duration(&[Duration::from_secs(3), Duration::from_secs(1)]),
            Duration::from_secs(3)
        );
        assert_eq!(relative_error(2.0, 1.0), 0.5);
        assert_eq!(relative_error(0.0, 0.25), 0.25);
    }

    #[test]
    fn timed_measures_something() {
        let (value, elapsed) = timed(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(elapsed < Duration::from_secs(1));
    }
}
