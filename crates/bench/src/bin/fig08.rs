//! Figure 8: the Most-Probable-Session top-k optimization over Polls — full
//! evaluation vs. the 1-edge and 2-edge upper-bound strategies.

use ppd_bench::{print_table, timed, write_results, Scale};
use ppd_core::{
    most_probable_sessions, CompareOp, ConjunctiveQuery, EvalConfig, Term as T, TopKStrategy,
};
use ppd_datagen::{polls_database, PollsConfig};
use serde_json::json;

/// The self-join query of Section 6.2.
fn fig8_query() -> ConjunctiveQuery {
    ConjunctiveQuery::new("fig8")
        .prefer(
            "Polls",
            vec![T::any(), T::var("date")],
            T::var("c1"),
            T::var("c2"),
        )
        .prefer(
            "Polls",
            vec![T::any(), T::var("date")],
            T::var("c1"),
            T::var("c3"),
        )
        .prefer(
            "Polls",
            vec![T::any(), T::var("date")],
            T::var("c1"),
            T::var("c4"),
        )
        .atom(
            "Candidates",
            vec![
                T::var("c1"),
                T::var("p"),
                T::any(),
                T::any(),
                T::any(),
                T::val("NE"),
            ],
        )
        .atom(
            "Candidates",
            vec![
                T::var("c2"),
                T::var("p"),
                T::any(),
                T::any(),
                T::any(),
                T::val("MW"),
            ],
        )
        .atom(
            "Candidates",
            vec![
                T::var("c3"),
                T::any(),
                T::any(),
                T::var("age"),
                T::any(),
                T::val("NE"),
            ],
        )
        .atom(
            "Candidates",
            vec![
                T::var("c4"),
                T::any(),
                T::val("M"),
                T::any(),
                T::val("BA"),
                T::any(),
            ],
        )
        .compare("date", CompareOp::Eq, "5/5")
        .compare("age", CompareOp::Eq, 50)
}

fn main() {
    let scale = Scale::from_env();
    let db = polls_database(&PollsConfig {
        num_candidates: scale.pick(10, 16),
        num_voters: scale.pick(40, 1000),
        seed: 808,
    });
    let ks: Vec<usize> = scale.pick(vec![1, 3], vec![1, 10, 100]);
    println!("Figure 8 — top-k optimization over Polls");
    println!(
        "scale: {scale:?}, {} candidates, {} sessions\n",
        db.num_items(),
        db.preference_relation("Polls").unwrap().num_sessions()
    );

    let q = fig8_query();
    let strategies = [
        ("full", TopKStrategy::Naive),
        (
            "1-edge",
            TopKStrategy::UpperBound {
                edges_per_pattern: 1,
            },
        ),
        (
            "2-edge",
            TopKStrategy::UpperBound {
                edges_per_pattern: 2,
            },
        ),
    ];
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for &k in &ks {
        let mut reference: Option<Vec<usize>> = None;
        for (name, strategy) in strategies {
            let ((scores, stats), elapsed) = timed(|| {
                most_probable_sessions(&db, &q, k, strategy, &EvalConfig::exact())
                    .expect("top-k evaluation")
            });
            let ids: Vec<usize> = scores.iter().map(|s| s.session_index).collect();
            match &reference {
                None => reference = Some(ids.clone()),
                Some(r) => assert_eq!(
                    r.len(),
                    ids.len(),
                    "strategies must return the same number of sessions"
                ),
            }
            rows.push(vec![
                k.to_string(),
                name.to_string(),
                format!("{:.3}", elapsed.as_secs_f64()),
                stats.exact_evaluations.to_string(),
                stats.upper_bounds_computed.to_string(),
            ]);
            records.push(json!({
                "k": k,
                "strategy": name,
                "seconds": elapsed.as_secs_f64(),
                "exact_evaluations": stats.exact_evaluations,
                "upper_bounds": stats.upper_bounds_computed,
            }));
        }
    }
    print_table(
        &["k", "strategy", "time (s)", "exact evals", "upper bounds"],
        &rows,
    );
    println!(
        "\nExpected shape (paper): the 1-edge and 2-edge strategies evaluate far fewer sessions \
         exactly and are several times faster than full evaluation, especially for small k."
    );
    write_results("fig08", &json!({ "series": records }));
}
