//! Figure 10: relative error of MIS-AMP-lite as a function of the number of
//! proposal distributions, over Benchmark-A and a Benchmark-C cell.

use ppd_bench::{median, print_table, relative_error, timed, write_results, Scale};
use ppd_datagen::{benchmark_a, benchmark_c, BenchmarkCConfig, SolverInstance};
use ppd_solvers::{ApproxSolver, BipartiteSolver, Budget, ExactSolver, MisAmpLite};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;
use std::time::Duration;

fn errors_for(
    name: &str,
    instances: &[SolverInstance],
    proposal_counts: &[usize],
    samples: usize,
    truth_budget: Duration,
    rows: &mut Vec<Vec<String>>,
    records: &mut Vec<serde_json::Value>,
) {
    // Exact ground truth (skip instances whose exact solve exceeds the budget).
    let mut with_truth = Vec::new();
    for inst in instances {
        let solver = BipartiteSolver::new().with_budget(Budget::with_time_limit(truth_budget));
        let (result, _) = timed(|| solver.solve(&inst.model.to_rim(), &inst.labeling, &inst.union));
        if let Ok(truth) = result {
            with_truth.push((inst, truth));
        }
    }
    for &d in proposal_counts {
        let mut errs = Vec::new();
        for (idx, (inst, truth)) in with_truth.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(10_000 + (d * 100 + idx) as u64);
            let lite = MisAmpLite::new(d, samples);
            let estimate = lite
                .estimate(&inst.model, &inst.labeling, &inst.union, &mut rng)
                .unwrap_or(f64::NAN);
            errs.push(relative_error(*truth, estimate));
        }
        rows.push(vec![
            name.to_string(),
            d.to_string(),
            format!("{:.4}", median(&errs)),
            with_truth.len().to_string(),
        ]);
        records.push(json!({
            "benchmark": name,
            "proposal_distributions": d,
            "median_relative_error": median(&errs),
            "instances": with_truth.len(),
        }));
    }
}

fn main() {
    let scale = Scale::from_env();
    let proposal_counts: Vec<usize> = vec![1, 2, 5, 10, 20];
    let samples = scale.pick(400, 2000);
    let truth_budget = scale.pick(Duration::from_secs(30), Duration::from_secs(3600));
    println!("Figure 10 — MIS-AMP-lite accuracy vs number of proposal distributions");
    println!("scale: {scale:?}\n");

    let mut rows = Vec::new();
    let mut records = Vec::new();
    let bench_a = benchmark_a(scale.pick(4, 33), 99);
    errors_for(
        "benchmark-a",
        &bench_a,
        &proposal_counts,
        samples,
        truth_budget,
        &mut rows,
        &mut records,
    );
    let bench_c = benchmark_c(
        &BenchmarkCConfig {
            num_items: scale.pick(10, 16),
            patterns_per_union: 3,
            labels_per_pattern: 3,
            items_per_label: 3,
            instances: scale.pick(4, 10),
            phi: 0.1,
        },
        123,
    );
    errors_for(
        "benchmark-c",
        &bench_c,
        &proposal_counts,
        samples,
        truth_budget,
        &mut rows,
        &mut records,
    );
    print_table(
        &["benchmark", "#proposals", "median rel. error", "#instances"],
        &rows,
    );
    println!(
        "\nExpected shape (paper): relative error decreases as proposal distributions are added \
         and plateaus around 20 distributions."
    );
    write_results("fig10", &json!({ "series": records }));
}
