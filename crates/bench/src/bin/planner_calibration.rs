//! Planner-calibration benchmark: the two wins of the cost-calibrated
//! hybrid planner.
//!
//! **Part A — measured costs fix the schedule.** A mixed workload (two-label,
//! bipartite-ish, and general-class units across two candidate-universe
//! sizes) is evaluated once on a calibrating engine, which records each
//! unit's real solve time. A fresh engine warm-started from the calibration
//! snapshot then reports, per unit, the static cost formula next to the
//! measured estimate ([`ppd_core::Engine::wave_cost_profile`]). Because the
//! static formula ranks solver *classes* (general ≫ bipartite ≫ two-label)
//! rather than real durations, the two rankings disagree; the harness
//! replays both orders through a greedy `k`-worker list schedule using the
//! measured durations as ground truth and reports the makespan each order
//! achieves. The calibrated order is LPT on the true durations, so its
//! makespan is the one a multi-worker wave actually sees.
//!
//! **Part B — error budgets buy only the samples they need.** Over the
//! solver menagerie the budgeted MIS-AMP estimator
//! ([`ppd_solvers::MisAmpBudgeted`]) runs with `ε = 0.05` at 95%
//! confidence; every converged run must land within `ε` of the exact
//! answer while spending a fraction of the worst-case fixed sample budget
//! the same guarantee would cost without adaptive stopping. The harness
//! also times the exact DP on a cheap union and on a deep-chain union,
//! showing why the engine's selection threshold sends cheap units to the
//! DP and expensive ones to the sampler.
//!
//! Results are written to `bench_results/planner_calibration.json`.
//!
//! Environment:
//! * `PPD_SCALE`           — `small` (default) or `paper`;
//! * `PPD_PLANNER_VOTERS`  — voters per generated database (default 24
//!   small, 80 paper);
//! * `PPD_PLANNER_WORKERS` — virtual workers in the makespan replay
//!   (default 4).

use ppd_bench::{env_usize, timed, write_results, Scale};
use ppd_core::{ConjunctiveQuery, Engine, EvalConfig, PpdDatabase, Term, WaveCostEstimate};
use ppd_datagen::{polls_database, PollsConfig};
use ppd_solvers::testutil::{cyclic_labeling, mallows, sample_unions, sel};
use ppd_solvers::{ExactSolver, GeneralSolver, MisAmpBudgeted};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A preference chain `cand0 > cand1 > … > cand{len}` — `len = 1` is a
/// plain two-label unit, longer chains classify as general-class unions.
fn chain_query(name: &str, len: usize) -> ConjunctiveQuery {
    let mut q = ConjunctiveQuery::new(name);
    for i in 0..len {
        q = q.prefer(
            "Polls",
            vec![Term::any(), Term::any()],
            Term::val(format!("cand{i}")),
            Term::val(format!("cand{}", i + 1)),
        );
    }
    q
}

/// A preference star `cand0 > cand1, …, cand0 > cand{edges}` — one
/// bipartite-class pattern whose node count grows with `edges` while its
/// static cost (`z·m⁴`, one pattern) does not: exactly the shape whose
/// solve time the static formula underestimates and measurement corrects.
fn star_query(name: &str, edges: usize) -> ConjunctiveQuery {
    let mut q = ConjunctiveQuery::new(name);
    for i in 1..=edges {
        q = q.prefer(
            "Polls",
            vec![Term::any(), Term::any()],
            Term::val("cand0".to_string()),
            Term::val(format!("cand{i}")),
        );
    }
    q
}

/// Indices sorted descending by cost, ties broken by index — the same
/// order contract the engine's scheduler uses.
fn descending_order(costs: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| {
        costs[b]
            .partial_cmp(&costs[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

/// Greedy list scheduling: jobs start in `order`, each on the
/// least-loaded of `workers` workers; returns the makespan in seconds.
fn makespan(order: &[usize], durations: &[f64], workers: usize) -> f64 {
    let mut loads = vec![0.0f64; workers.max(1)];
    for &job in order {
        let next = loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(w, _)| w)
            .unwrap();
        loads[next] += durations[job];
    }
    loads.into_iter().fold(0.0, f64::max)
}

/// Pairs ordered differently by the two cost columns — the static
/// formula's misranking that measured timings correct.
fn inversions(static_costs: &[f64], measured: &[f64]) -> usize {
    let n = static_costs.len();
    let mut count = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            let s = static_costs[i].partial_cmp(&static_costs[j]);
            let m = measured[i].partial_cmp(&measured[j]);
            if let (Some(s), Some(m)) = (s, m) {
                if s != std::cmp::Ordering::Equal && m != std::cmp::Ordering::Equal && s != m {
                    count += 1;
                }
            }
        }
    }
    count
}

fn part_a(scale: Scale, workers: usize) -> serde_json::Value {
    let voters = env_usize("PPD_PLANNER_VOTERS").unwrap_or_else(|| scale.pick(24, 80));
    let db = |m: usize| {
        polls_database(&PollsConfig {
            num_candidates: m,
            num_voters: voters,
            seed: 41 + m as u64,
        })
    };
    // Two universes, chosen so the static formula misranks across them:
    // deep chains on the small universe carry the largest *static* costs
    // (general class is exponential in chain length) but solve in well
    // under a millisecond, while wide bipartite stars on the large
    // universe keep a flat mid-table static cost (`z·m⁴` never sees the
    // node count) yet are the genuinely heavy units. A static-order
    // schedule starts the chains and strands the stars in the tail.
    let (small_m, large_m) = scale.pick((7usize, 12usize), (8, 14));
    let workloads: Vec<(String, PpdDatabase, Vec<ConjunctiveQuery>)> = vec![
        (
            format!("polls-m{small_m}"),
            db(small_m),
            vec![
                chain_query("pair", 1),
                chain_query("chain3", 2),
                chain_query("chain4", 3),
                chain_query("deep-chain", 5),
            ],
        ),
        (
            format!("polls-m{large_m}"),
            db(large_m),
            vec![
                chain_query("pair", 1),
                chain_query("chain3", 2),
                star_query("star5", 4),
                star_query("star6", 5),
                star_query("star7", 6),
            ],
        ),
    ];

    // Measure: one calibrating engine evaluates the whole workload, so the
    // store holds the real solve time of every deduplicated unit.
    let warm = Engine::new(EvalConfig::exact());
    for (_, db, queries) in &workloads {
        for q in queries {
            warm.session_probabilities(db, q)
                .expect("workload evaluates");
        }
    }
    let snapshot = std::env::temp_dir().join(format!(
        "ppd-planner-calibration-{}.bin",
        std::process::id()
    ));
    warm.save_calibration(&snapshot).expect("snapshot saves");

    // Profile: a fresh engine warm-started from the snapshot sees every
    // unit as pending (cold marginal cache) with a measured estimate.
    let fresh = Engine::new(EvalConfig::exact());
    fresh
        .load_calibration(&snapshot)
        .expect("snapshot loads whole");
    let mut units: Vec<WaveCostEstimate> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (name, db, queries) in &workloads {
        for q in queries {
            let profile = fresh.wave_cost_profile(db, q).expect("workload profiles");
            let total_ms: f64 = profile.iter().map(|u| u.scheduling_cost).sum::<f64>() * 1e3;
            rows.push(vec![
                format!("{name}/{}", q.name()),
                profile.len().to_string(),
                format!(
                    "{:.0}",
                    profile.iter().map(|u| u.static_cost).fold(0.0, f64::max)
                ),
                format!("{total_ms:.2}"),
            ]);
            units.extend(profile);
        }
    }
    std::fs::remove_file(&snapshot).ok();

    let static_costs: Vec<f64> = units.iter().map(|u| u.static_cost).collect();
    let measured: Vec<f64> = units.iter().map(|u| u.scheduling_cost).collect();
    let static_order = descending_order(&static_costs);
    let calibrated_order = descending_order(&measured);
    let span_static = makespan(&static_order, &measured, workers);
    let span_calibrated = makespan(&calibrated_order, &measured, workers);
    let total: f64 = measured.iter().sum();
    let lower_bound = (total / workers as f64).max(measured.iter().fold(0.0f64, |a, &b| a.max(b)));
    let misranked = inversions(&static_costs, &measured);

    println!(
        "Part A — calibrated scheduling ({} units, {workers} virtual workers)\n",
        units.len()
    );
    ppd_bench::print_table(
        &["workload", "units", "max static cost", "measured total ms"],
        &rows,
    );
    println!(
        "\n  makespan, static order:     {:.3} ms\n  makespan, calibrated order: {:.3} ms \
         (lower bound {:.3} ms)\n  speedup {:.2}x; {misranked} unit pairs misranked by the \
         static formula\n",
        span_static * 1e3,
        span_calibrated * 1e3,
        lower_bound * 1e3,
        span_static / span_calibrated.max(1e-12),
    );

    serde_json::json!({
        "voters": voters,
        "workers": workers,
        "units": units.len(),
        "misranked_pairs": misranked,
        "makespan_static_ms": span_static * 1e3,
        "makespan_calibrated_ms": span_calibrated * 1e3,
        "makespan_lower_bound_ms": lower_bound * 1e3,
        "speedup": span_static / span_calibrated.max(1e-12),
    })
}

fn part_b(scale: Scale) -> serde_json::Value {
    let (epsilon, confidence) = (0.05, 0.95);
    let m = 6;
    let phi = 0.5;
    let solver = MisAmpBudgeted::new(epsilon, confidence);
    // `initial_samples` is a round's *total* mixture budget, doubling each
    // round.
    let worst_case = solver.initial_samples * ((1 << solver.max_rounds) - 1);
    let model = mallows(m, phi);
    let rim = model.to_rim();
    let lab = cyclic_labeling(m, 4);

    let mut converged = 0usize;
    let mut fell_back = 0usize;
    let mut max_err: f64 = 0.0;
    let mut sample_shares: Vec<f64> = Vec::new();
    let mut exact_us: Vec<f64> = Vec::new();
    let mut budgeted_us: Vec<f64> = Vec::new();
    for (ui, union) in sample_unions().iter().enumerate() {
        let (exact, t_exact) = timed(|| GeneralSolver::new().solve(&rim, &lab, union).unwrap());
        exact_us.push(t_exact.as_secs_f64() * 1e6);
        let mut rng = StdRng::seed_from_u64(0xCA11B + ui as u64);
        let (outcome, t_budget) = timed(|| solver.run(&model, &lab, union, &mut rng).unwrap());
        budgeted_us.push(t_budget.as_secs_f64() * 1e6);
        if outcome.converged {
            converged += 1;
            max_err = max_err.max((outcome.estimate - exact).abs());
            sample_shares.push(outcome.total_samples as f64 / worst_case as f64);
        } else {
            fell_back += 1;
        }
    }
    assert!(
        max_err <= epsilon + 1e-12,
        "a converged run missed its ±{epsilon} budget: {max_err}"
    );
    let mean_share = sample_shares.iter().sum::<f64>() / sample_shares.len().max(1) as f64;

    // Why the threshold: the exact DP on a cheap (two-label) union vs the
    // budgeted sampler certifying the same answer, then a deep chain where
    // the DP's state space has grown by orders of magnitude.
    let cheap =
        ppd_patterns::PatternUnion::singleton(ppd_patterns::Pattern::two_label(sel(1), sel(0)))
            .unwrap();
    let (_, cheap_exact) = timed(|| GeneralSolver::new().solve(&rim, &lab, &cheap).unwrap());
    let mut rng = StdRng::seed_from_u64(0xCA11B0);
    let (_, cheap_budget) = timed(|| solver.run(&model, &lab, &cheap, &mut rng).unwrap());

    let deep_m = scale.pick(8, 10);
    let deep_nodes = scale.pick(6, 7);
    let chain = ppd_patterns::Pattern::new(
        (0..deep_nodes as u32).map(sel).collect(),
        (0..deep_nodes - 1).map(|i| (i, i + 1)).collect(),
    )
    .unwrap();
    let deep = ppd_patterns::PatternUnion::singleton(chain).unwrap();
    let deep_model = mallows(deep_m, phi);
    let deep_lab = cyclic_labeling(deep_m, deep_nodes as u32);
    let (_, deep_exact) = timed(|| {
        GeneralSolver::new()
            .solve(&deep_model.to_rim(), &deep_lab, &deep)
            .unwrap()
    });
    let mut rng = StdRng::seed_from_u64(0xCA11B1);
    let (_, deep_budget) = timed(|| solver.run(&deep_model, &deep_lab, &deep, &mut rng).unwrap());

    println!("Part B — error-budgeted selection (ε = {epsilon}, confidence {confidence})\n");
    println!(
        "  menagerie, m={m} φ={phi}: {converged} converged / {fell_back} fell back \
         (exact fallback); max |err| {max_err:.4}\n  \
         mean sample spend {:.1}% of the {worst_case}-sample worst case\n  \
         exact DP median {:.0} µs vs budgeted sampler median {:.0} µs per union\n  \
         cheap two-label union: exact {:.0} µs, budgeted {:.0} µs — the threshold \
         keeps it on the DP\n  deep chain ({deep_nodes} nodes, m={deep_m}): exact {:.1} ms, \
         budgeted {:.1} ms\n",
        mean_share * 100.0,
        ppd_bench::median(&exact_us),
        ppd_bench::median(&budgeted_us),
        cheap_exact.as_secs_f64() * 1e6,
        cheap_budget.as_secs_f64() * 1e6,
        deep_exact.as_secs_f64() * 1e3,
        deep_budget.as_secs_f64() * 1e3,
    );

    serde_json::json!({
        "epsilon": epsilon,
        "confidence": confidence,
        "m": m,
        "phi": phi,
        "worst_case_samples": worst_case,
        "converged": converged,
        "fell_back": fell_back,
        "max_abs_err": max_err,
        "mean_sample_share": mean_share,
        "exact_median_us": ppd_bench::median(&exact_us),
        "budgeted_median_us": ppd_bench::median(&budgeted_us),
        "cheap_exact_us": cheap_exact.as_secs_f64() * 1e6,
        "cheap_budgeted_us": cheap_budget.as_secs_f64() * 1e6,
        "deep_chain": {
            "nodes": deep_nodes,
            "m": deep_m,
            "exact_ms": deep_exact.as_secs_f64() * 1e3,
            "budgeted_ms": deep_budget.as_secs_f64() * 1e3,
        },
    })
}

fn main() {
    let scale = Scale::from_env();
    let workers = env_usize("PPD_PLANNER_WORKERS").unwrap_or(4);

    let planner = part_a(scale, workers);
    let budget = part_b(scale);

    write_results(
        "planner_calibration",
        &serde_json::json!({
            "scale": format!("{scale:?}"),
            "planner": planner,
            "budget": budget,
        }),
    );
}
