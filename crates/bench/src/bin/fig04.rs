//! Figure 4: runtimes of the two-label, bipartite and general exact solvers
//! and of MIS-AMP-adaptive on a two-label query over the Polls database
//! ("a male candidate preferred to a female candidate of the same party"),
//! as the number of candidates grows; plus the accuracy of the approximate
//! solver.

use ppd_bench::{median_duration, print_table, relative_error, timed, write_results, Scale};
use ppd_core::{ground_query, ConjunctiveQuery, Term as T};
use ppd_datagen::{polls_database, PollsConfig};
use ppd_solvers::{
    ApproxSolver, BipartiteSolver, ExactSolver, GeneralSolver, MisAmpAdaptive, TwoLabelSolver,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;
use std::time::Duration;

fn fig4_query() -> ConjunctiveQuery {
    ConjunctiveQuery::new("fig4")
        .prefer("Polls", vec![T::any(), T::any()], T::var("l"), T::var("r"))
        .atom(
            "Candidates",
            vec![
                T::var("l"),
                T::var("p"),
                T::val("M"),
                T::any(),
                T::any(),
                T::any(),
            ],
        )
        .atom(
            "Candidates",
            vec![
                T::var("r"),
                T::var("p"),
                T::val("F"),
                T::any(),
                T::any(),
                T::any(),
            ],
        )
}

fn main() {
    let scale = Scale::from_env();
    let ms: Vec<usize> = scale.pick(vec![10, 12, 14], vec![20, 22, 24, 26, 28, 30]);
    let voters = scale.pick(5, 20);
    let samples = scale.pick(300, 1000);
    println!("Figure 4 — exact vs approximate solvers on the Polls two-label query");
    println!("scale: {scale:?}, candidates m ∈ {ms:?}, {voters} sessions per m\n");

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for &m in &ms {
        let db = polls_database(&PollsConfig {
            num_candidates: m,
            num_voters: voters,
            seed: 2016 + m as u64,
        });
        let plan = ground_query(&db, &fig4_query()).expect("query grounds");
        let prel = db.preference_relation("Polls").unwrap();
        let mut per_solver: Vec<(&str, Vec<Duration>, Vec<f64>)> = vec![
            ("two-label", Vec::new(), Vec::new()),
            ("bipartite", Vec::new(), Vec::new()),
            ("general", Vec::new(), Vec::new()),
            ("mis-amp-adaptive", Vec::new(), Vec::new()),
        ];
        for (order, squery) in plan.sessions.iter().enumerate() {
            let model = prel.sessions()[squery.session_index].model();
            let rim = model.to_rim();
            let (exact, t_two) =
                timed(|| TwoLabelSolver::new().solve(&rim, &plan.labeling, &squery.union));
            let exact = exact.expect("two-label solve");
            per_solver[0].1.push(t_two);
            per_solver[0].2.push(exact);
            let (p_bip, t_bip) =
                timed(|| BipartiteSolver::new().solve(&rim, &plan.labeling, &squery.union));
            per_solver[1].1.push(t_bip);
            per_solver[1].2.push(p_bip.expect("bipartite solve"));
            let (p_gen, t_gen) =
                timed(|| GeneralSolver::new().solve(&rim, &plan.labeling, &squery.union));
            per_solver[2].1.push(t_gen);
            per_solver[2].2.push(p_gen.expect("general solve"));
            let mut rng = StdRng::seed_from_u64(1000 + order as u64);
            let adaptive = MisAmpAdaptive::new(samples);
            let (p_apx, t_apx) =
                timed(|| adaptive.estimate(model, &plan.labeling, &squery.union, &mut rng));
            per_solver[3].1.push(t_apx);
            per_solver[3]
                .2
                .push(relative_error(exact, p_apx.expect("adaptive estimate")));
        }
        for (name, times, values) in &per_solver {
            let median = median_duration(times);
            let accuracy = if *name == "mis-amp-adaptive" {
                format!("median rel.err {:.3}", ppd_bench::median(values))
            } else {
                String::new()
            };
            rows.push(vec![
                m.to_string(),
                name.to_string(),
                format!("{:.3}", median.as_secs_f64()),
                accuracy.clone(),
            ]);
            records.push(json!({
                "m": m,
                "solver": name,
                "median_seconds": median.as_secs_f64(),
                "note": accuracy,
            }));
        }
    }
    print_table(&["m", "solver", "median time (s)", "accuracy"], &rows);
    println!(
        "\nExpected shape (paper): two-label < bipartite < general in runtime; \
         MIS-AMP-adaptive scales best with low relative error."
    );
    write_results("fig04", &json!({ "series": records }));
}
