//! Engine scaling: wall-clock speedup of the parallel evaluation engine as a
//! function of worker-thread count, on a Polls workload with hundreds of
//! sessions.
//!
//! For each solver family the harness grounds one query, then evaluates the
//! plan with `threads ∈ {1, 2, 4, 0 (= all hardware threads)}` on a cold
//! engine per run, verifying that every thread count produces bit-identical
//! probabilities. It reports per-run wall-clock, speedup over the serial
//! engine, and the work-unit deduplication factor, and writes
//! `bench_results/engine_scaling.json`.
//!
//! Environment:
//! * `PPD_SCALE`  — `small` (default, 240 voters) or `paper` (2000 voters);
//! * `PPD_VOTERS` / `PPD_CANDIDATES` — explicit overrides (the CI smoke run
//!   uses a tiny instance this way).

use ppd_bench::{env_usize, timed, write_results, Scale};
use ppd_core::{ground_query, Engine, EvalConfig, SolverChoice};
use ppd_datagen::{polls_database, polls_q1_query, PollsConfig};
use std::time::Duration;

struct Run {
    threads: usize,
    elapsed: Duration,
    speedup_vs_serial: f64,
}

fn main() {
    let scale = Scale::from_env();
    let num_voters = env_usize("PPD_VOTERS").unwrap_or_else(|| scale.pick(240, 2000));
    let num_candidates = env_usize("PPD_CANDIDATES").unwrap_or_else(|| scale.pick(16, 20));
    let db = polls_database(&PollsConfig {
        num_candidates,
        num_voters,
        seed: 2016,
    });
    let q = polls_q1_query();
    let plan = ground_query(&db, &q).expect("query grounds");
    let sessions = plan.sessions.len();

    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "engine_scaling: {num_voters} voters × {num_candidates} candidates, \
         {sessions} qualifying sessions, {hardware} hardware threads\n"
    );

    let solvers: Vec<(&str, SolverChoice)> = vec![
        ("exact-auto", SolverChoice::ExactAuto),
        (
            "approximate",
            SolverChoice::Approximate {
                samples_per_proposal: 200,
            },
        ),
    ];
    let thread_counts = [1usize, 2, 4, 0];

    let mut records = Vec::new();
    for (name, solver) in &solvers {
        // Unit statistics from a throwaway engine: how much the plan dedups.
        let probe = Engine::new(EvalConfig {
            solver: solver.clone(),
            ..EvalConfig::default()
        });
        let units = probe.plan_units(&db, &q).expect("plan units").len();

        let mut reference: Option<Vec<(usize, f64)>> = None;
        let mut serial = Duration::ZERO;
        let mut runs: Vec<Run> = Vec::new();
        for &threads in &thread_counts {
            // A cold engine per run: measure solving, not cache hits.
            let engine = Engine::new(
                EvalConfig {
                    solver: solver.clone(),
                    ..EvalConfig::default()
                }
                .with_threads(threads),
            );
            let (result, elapsed) = timed(|| engine.session_probabilities_for_plan(&db, &plan));
            let result = result.expect("evaluation succeeds");
            match &reference {
                None => {
                    serial = elapsed;
                    reference = Some(result);
                }
                Some(expected) => assert_eq!(
                    expected, &result,
                    "{name}: threads={threads} is not bit-identical to threads=1"
                ),
            }
            runs.push(Run {
                threads,
                elapsed,
                speedup_vs_serial: serial.as_secs_f64() / elapsed.as_secs_f64().max(1e-12),
            });
        }

        println!("solver: {name} ({sessions} sessions → {units} work units)");
        ppd_bench::print_table(
            &["threads", "wall-clock", "speedup vs 1"],
            &runs
                .iter()
                .map(|r| {
                    vec![
                        if r.threads == 0 {
                            format!("0 (auto={hardware})")
                        } else {
                            r.threads.to_string()
                        },
                        format!("{:.1?}", r.elapsed),
                        format!("{:.2}x", r.speedup_vs_serial),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        println!();

        records.push(serde_json::json!({
            "solver": name,
            "sessions": sessions,
            "work_units": units,
            "dedup_factor": sessions as f64 / units.max(1) as f64,
            "runs": runs.iter().map(|r| serde_json::json!({
                "threads": r.threads,
                "effective_threads": if r.threads == 0 { hardware } else { r.threads },
                "wall_clock_ms": r.elapsed.as_secs_f64() * 1e3,
                "speedup_vs_serial": r.speedup_vs_serial,
            })).collect::<Vec<_>>(),
        }));
    }

    write_results(
        "engine_scaling",
        &serde_json::json!({
            "experiment": "engine_scaling",
            "num_voters": num_voters,
            "num_candidates": num_candidates,
            "hardware_threads": hardware,
            "workloads": records,
        }),
    );
}
