//! Cache churn: hit rate, eviction behaviour, and persistence costs of the
//! engine's sharded marginal cache under repeated traffic.
//!
//! A long-lived service replays overlapping queries against one engine; this
//! harness models that as R rounds of the same Polls workload per engine and
//! sweeps the cache configuration:
//!
//! * shard count 1 vs. 16 (the lock-granularity knob),
//! * capacity unbounded, half the working set, and a tiny bound (the LRU
//!   eviction knob — a cyclic scan over a working set larger than the
//!   capacity is LRU's worst case, so the bounded rows show the floor, not
//!   the typical, hit rate),
//!
//! verifying that every configuration produces bit-identical probabilities,
//! then measures the persistence path: snapshot save, cold-process load,
//! and a warm-started replay that must be served entirely from the
//! snapshot. Writes `bench_results/cache_churn.json`.
//!
//! Environment: `PPD_SCALE` (`small`/`paper`), `PPD_VOTERS`,
//! `PPD_CANDIDATES`, `PPD_ROUNDS` overrides.

use ppd_bench::{env_usize, timed, write_results, Scale};
use ppd_core::{CacheCapacity, Engine, EvalConfig, SolverChoice};
use ppd_datagen::{polls_database, polls_q1_query, PollsConfig};

fn capacity_label(capacity: CacheCapacity) -> String {
    match capacity {
        CacheCapacity::Unbounded => "unbounded".into(),
        CacheCapacity::Entries(n) => format!("{n} entries"),
        CacheCapacity::Bytes(b) => format!("{b} bytes"),
    }
}

fn main() {
    let scale = Scale::from_env();
    let num_voters = env_usize("PPD_VOTERS").unwrap_or_else(|| scale.pick(120, 1000));
    let num_candidates = env_usize("PPD_CANDIDATES").unwrap_or_else(|| scale.pick(10, 16));
    let rounds = env_usize("PPD_ROUNDS").unwrap_or(3);
    let db = polls_database(&PollsConfig {
        num_candidates,
        num_voters,
        seed: 2016,
    });
    let q = polls_q1_query();
    let solver = SolverChoice::Approximate {
        samples_per_proposal: 200,
    };

    let base = || EvalConfig {
        solver: solver.clone(),
        ..EvalConfig::default()
    };
    let working_set = Engine::new(base())
        .plan_units(&db, &q)
        .expect("plan units")
        .len();
    println!(
        "cache_churn: {num_voters} voters × {num_candidates} candidates, \
         working set {working_set} units, {rounds} rounds per engine\n"
    );

    let capacities = [
        CacheCapacity::Unbounded,
        CacheCapacity::Entries(working_set.div_ceil(2).max(1)),
        CacheCapacity::Entries(8),
    ];
    let shard_counts = [1usize, 16];

    let mut reference: Option<Vec<(usize, f64)>> = None;
    let mut records = Vec::new();
    let mut rows = Vec::new();
    for &shards in &shard_counts {
        for &capacity in &capacities {
            let engine = Engine::new(
                base()
                    .with_cache_shards(shards)
                    .with_cache_capacity(capacity),
            );
            let mut round_records = Vec::new();
            let mut last = (0u64, 0u64, 0u64); // hits, misses, evictions
            let mut total_ms = 0.0;
            let mut steady_hit_rate = 0.0;
            for round in 0..rounds {
                let (result, elapsed) = timed(|| engine.session_probabilities(&db, &q));
                let result = result.expect("evaluation succeeds");
                match &reference {
                    None => reference = Some(result),
                    Some(expected) => assert_eq!(
                        expected, &result,
                        "shards={shards} capacity={capacity:?} round={round} \
                         is not bit-identical to the first configuration"
                    ),
                }
                let stats = engine.cache_stats();
                let now = (
                    stats.marginal_hits,
                    stats.marginal_misses,
                    stats.marginal_evictions,
                );
                let (hits, misses, evictions) = (now.0 - last.0, now.1 - last.1, now.2 - last.2);
                last = now;
                total_ms += elapsed.as_secs_f64() * 1e3;
                steady_hit_rate = hits as f64 / (hits + misses).max(1) as f64;
                round_records.push(serde_json::json!({
                    "round": round,
                    "wall_clock_ms": elapsed.as_secs_f64() * 1e3,
                    "hits": hits,
                    "misses": misses,
                    "evictions": evictions,
                    "hit_rate": steady_hit_rate,
                }));
            }
            let stats = engine.cache_stats();
            rows.push(vec![
                shards.to_string(),
                capacity_label(capacity),
                format!("{:.0}%", steady_hit_rate * 100.0),
                stats.marginal_evictions.to_string(),
                engine.cached_marginals().to_string(),
                format!("{total_ms:.1} ms"),
            ]);
            records.push(serde_json::json!({
                "shards": shards,
                "capacity": capacity_label(capacity),
                "rounds": round_records,
                "total_hits": stats.marginal_hits,
                "total_misses": stats.marginal_misses,
                "total_evictions": stats.marginal_evictions,
                "resident_entries": engine.cached_marginals(),
            }));
        }
    }
    ppd_bench::print_table(
        &[
            "shards",
            "capacity",
            "steady hit rate",
            "evictions",
            "resident",
            "total wall-clock",
        ],
        &rows,
    );

    // Persistence: snapshot a warm engine, warm-start a cold one, and replay.
    let warm = Engine::new(base());
    warm.session_probabilities(&db, &q)
        .expect("warm run succeeds");
    let path = std::path::Path::new("bench_results").join("cache_churn.mcache");
    std::fs::create_dir_all("bench_results").expect("bench_results dir");
    let (saved, save_elapsed) = timed(|| warm.save_marginals(&path).expect("snapshot saves"));
    let cold = Engine::new(base());
    let (loaded, load_elapsed) = timed(|| cold.load_marginals(&path).expect("snapshot loads"));
    let (replayed, replay_elapsed) = timed(|| cold.session_probabilities(&db, &q));
    let replayed = replayed.expect("replay succeeds");
    assert_eq!(
        reference.as_ref().expect("reference exists"),
        &replayed,
        "persistence round-trip is not bit-identical"
    );
    let cold_stats = cold.cache_stats();
    assert_eq!(
        cold_stats.marginal_misses, 0,
        "a warm-started engine must serve the identical query without solving"
    );
    println!(
        "\npersistence: saved {saved} entries in {:.1?}, loaded {loaded} in {:.1?}, \
         replay served {} hits / 0 misses in {:.1?}",
        save_elapsed, load_elapsed, cold_stats.marginal_hits, replay_elapsed
    );
    let _ = std::fs::remove_file(&path);

    write_results(
        "cache_churn",
        &serde_json::json!({
            "experiment": "cache_churn",
            "num_voters": num_voters,
            "num_candidates": num_candidates,
            "working_set_units": working_set,
            "rounds_per_engine": rounds,
            "samples_per_proposal": 200,
            "configurations": records,
            "persistence": {
                "entries": saved,
                "save_ms": save_elapsed.as_secs_f64() * 1e3,
                "load_ms": load_elapsed.as_secs_f64() * 1e3,
                "warm_replay_ms": replay_elapsed.as_secs_f64() * 1e3,
                "warm_replay_hits": cold_stats.marginal_hits,
                "warm_replay_misses": cold_stats.marginal_misses,
            },
        }),
    );
}
