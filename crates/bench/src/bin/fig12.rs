//! Figure 12: effect of the compensation factors of MIS-AMP-lite on
//! Benchmark-C — relative error with vs. without compensation, one proposal
//! distribution per instance.

use ppd_bench::{print_table, relative_error, write_results, Scale};
use ppd_datagen::{benchmark_c, BenchmarkCConfig};
use ppd_solvers::{ApproxSolver, BipartiteSolver, ExactSolver, MisAmpLite};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;

fn main() {
    let scale = Scale::from_env();
    let config = BenchmarkCConfig {
        num_items: scale.pick(10, 14),
        patterns_per_union: 2,
        labels_per_pattern: 3,
        items_per_label: 3,
        instances: scale.pick(8, 30),
        phi: 0.1,
    };
    let samples = scale.pick(500, 2000);
    let instances = benchmark_c(&config, 12);
    println!("Figure 12 — compensation ablation of MIS-AMP-lite over Benchmark-C");
    println!(
        "scale: {scale:?}, {} instances, 1 proposal distribution\n",
        instances.len()
    );

    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut improved = 0usize;
    let mut total = 0usize;
    for (idx, inst) in instances.iter().enumerate() {
        let Ok(truth) =
            BipartiteSolver::new().solve(&inst.model.to_rim(), &inst.labeling, &inst.union)
        else {
            continue;
        };
        let with = MisAmpLite::new(1, samples);
        let without = MisAmpLite::new(1, samples).without_compensation();
        let mut rng_a = StdRng::seed_from_u64(1200 + idx as u64);
        let mut rng_b = StdRng::seed_from_u64(1200 + idx as u64);
        let est_with = with
            .estimate(&inst.model, &inst.labeling, &inst.union, &mut rng_a)
            .unwrap();
        let est_without = without
            .estimate(&inst.model, &inst.labeling, &inst.union, &mut rng_b)
            .unwrap();
        let err_with = relative_error(truth, est_with);
        let err_without = relative_error(truth, est_without);
        total += 1;
        if err_with <= err_without + 1e-9 {
            improved += 1;
        }
        rows.push(vec![
            idx.to_string(),
            format!("{err_without:.4}"),
            format!("{err_with:.4}"),
        ]);
        records.push(json!({
            "instance": idx,
            "relative_error_without_compensation": err_without,
            "relative_error_with_compensation": err_with,
        }));
    }
    print_table(
        &["instance", "rel. error w/o comp.", "rel. error w/ comp."],
        &rows,
    );
    println!(
        "\n{improved}/{total} instances improved (or unchanged) with compensation.\n\
         Expected shape (paper): most points fall below the diagonal — compensation reduces the \
         error, dramatically so for instances that were nearly 100% off without it."
    );
    write_results(
        "fig12",
        &json!({ "series": records, "improved": improved, "total": total }),
    );
}
