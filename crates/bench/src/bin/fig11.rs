//! Figure 11: per-instance behaviour of MIS-AMP-lite — a typical Benchmark-A
//! instance, an atypical one, and the effect of disabling compensation.

use ppd_bench::{print_table, relative_error, write_results, Scale};
use ppd_datagen::benchmark_a;
use ppd_solvers::{ApproxSolver, BipartiteSolver, ExactSolver, MisAmpLite};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;

fn main() {
    let scale = Scale::from_env();
    let instances = benchmark_a(scale.pick(4, 33), 99);
    let proposal_counts = [1usize, 5, 10, 20];
    let samples = scale.pick(500, 2000);
    println!("Figure 11 — per-instance accuracy of MIS-AMP-lite on Benchmark-A");
    println!("scale: {scale:?}\n");

    // Ground truths; keep the two instances with the largest / smallest
    // probability as "typical" and "atypical" stand-ins.
    let mut solved: Vec<(usize, f64)> = Vec::new();
    for (idx, inst) in instances.iter().enumerate() {
        if let Ok(truth) =
            BipartiteSolver::new().solve(&inst.model.to_rim(), &inst.labeling, &inst.union)
        {
            solved.push((idx, truth));
        }
    }
    solved.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let atypical = solved.first().copied().expect("at least one instance");
    let typical = solved.last().copied().expect("at least one instance");

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (panel, (idx, truth), compensation) in [
        ("a: typical", typical, true),
        ("b: atypical", atypical, true),
        ("c: atypical, no compensation", atypical, false),
    ] {
        let inst = &instances[idx];
        for &d in &proposal_counts {
            let lite = if compensation {
                MisAmpLite::new(d, samples)
            } else {
                MisAmpLite::new(d, samples).without_compensation()
            };
            let mut rng = StdRng::seed_from_u64(1100 + d as u64);
            let estimate = lite
                .estimate(&inst.model, &inst.labeling, &inst.union, &mut rng)
                .unwrap();
            let err = relative_error(truth, estimate);
            rows.push(vec![
                panel.to_string(),
                d.to_string(),
                format!("{truth:.3e}"),
                format!("{err:.4}"),
            ]);
            records.push(json!({
                "panel": panel,
                "proposal_distributions": d,
                "exact": truth,
                "relative_error": err,
            }));
        }
    }
    print_table(
        &["panel", "#proposals", "exact probability", "relative error"],
        &rows,
    );
    println!(
        "\nExpected shape (paper): more proposal distributions improve accuracy; for the \
         atypical instance most of the improvement comes from compensation, and with \
         compensation disabled the error decreases with the number of proposals again."
    );
    write_results("fig11", &json!({ "series": records }));
}
