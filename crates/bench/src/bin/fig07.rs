//! Figure 7: scalability of the bipartite solver over Benchmark-C —
//! (a) runtime vs. number of items and labels per pattern,
//! (b) runtime vs. number of items and patterns per union.

use ppd_bench::{median_duration, print_table, timed, write_results, Scale};
use ppd_datagen::{benchmark_c, BenchmarkCConfig};
use ppd_solvers::{BipartiteSolver, Budget, ExactSolver};
use serde_json::json;
use std::time::Duration;

fn run_cell(config: &BenchmarkCConfig, seed: u64, budget: Duration) -> (Duration, usize, usize) {
    let family = benchmark_c(config, seed);
    let mut times = Vec::new();
    let mut timeouts = 0usize;
    for inst in &family {
        let solver = BipartiteSolver::new().with_budget(Budget::with_time_limit(budget));
        let (result, elapsed) =
            timed(|| solver.solve(&inst.model.to_rim(), &inst.labeling, &inst.union));
        match result {
            Ok(_) => times.push(elapsed),
            Err(_) => timeouts += 1,
        }
    }
    (median_duration(&times), times.len(), timeouts)
}

fn main() {
    let scale = Scale::from_env();
    let ms: Vec<usize> = scale.pick(vec![8, 10, 12], vec![10, 12, 14, 16]);
    let instances = scale.pick(4, 10);
    let budget = scale.pick(Duration::from_secs(10), Duration::from_secs(3600));
    println!("Figure 7 — bipartite solver scalability over Benchmark-C");
    println!("scale: {scale:?}, per-instance budget {budget:?}\n");

    // (a) 3 patterns/union, 3 items/label; vary #labels per pattern.
    let mut rows_a = Vec::new();
    let mut records = Vec::new();
    for &labels in &[2usize, 3, 4] {
        for &m in &ms {
            let config = BenchmarkCConfig {
                num_items: m,
                patterns_per_union: 3,
                labels_per_pattern: labels,
                items_per_label: 3,
                instances,
                phi: 0.1,
            };
            let (median, finished, timeouts) = run_cell(&config, 7 + (labels * m) as u64, budget);
            rows_a.push(vec![
                m.to_string(),
                labels.to_string(),
                format!("{:.3}", median.as_secs_f64()),
                format!("{finished}/{}", finished + timeouts),
            ]);
            records.push(json!({
                "panel": "a", "m": m, "labels_per_pattern": labels,
                "median_seconds": median.as_secs_f64(),
                "finished": finished, "timeouts": timeouts,
            }));
        }
    }
    println!("(a) 3 patterns/union, 3 items/label");
    print_table(
        &["m", "#labels/pattern", "median time (s)", "finished"],
        &rows_a,
    );

    // (b) 3 labels/pattern, 3 items/label; vary #patterns per union.
    let mut rows_b = Vec::new();
    for &patterns in &[1usize, 2, 3] {
        for &m in &ms {
            let config = BenchmarkCConfig {
                num_items: m,
                patterns_per_union: patterns,
                labels_per_pattern: 3,
                items_per_label: 3,
                instances,
                phi: 0.1,
            };
            let (median, finished, timeouts) =
                run_cell(&config, 31 + (patterns * m) as u64, budget);
            rows_b.push(vec![
                m.to_string(),
                patterns.to_string(),
                format!("{:.3}", median.as_secs_f64()),
                format!("{finished}/{}", finished + timeouts),
            ]);
            records.push(json!({
                "panel": "b", "m": m, "patterns_per_union": patterns,
                "median_seconds": median.as_secs_f64(),
                "finished": finished, "timeouts": timeouts,
            }));
        }
    }
    println!("\n(b) 3 labels/pattern, 3 items/label");
    print_table(
        &["m", "#patterns/union", "median time (s)", "finished"],
        &rows_b,
    );
    println!(
        "\nExpected shape (paper): runtime grows quickly with both the number of items and \
         the total number of labels, but stays practical for small m."
    );
    write_results("fig07", &json!({ "series": records }));
}
