//! Figure 6: fraction of Benchmark-D instances the two-label solver finishes
//! within a time budget, as a function of the number of items and of the
//! number of patterns per union.

use ppd_bench::{print_table, write_results, Scale};
use ppd_datagen::{benchmark_d, BenchmarkDConfig};
use ppd_solvers::{Budget, ExactSolver, TwoLabelSolver};
use serde_json::json;
use std::time::Duration;

fn main() {
    let scale = Scale::from_env();
    let ms: Vec<usize> = scale.pick(vec![12, 16, 20], vec![20, 30, 40, 50, 60]);
    let pattern_counts: Vec<usize> = scale.pick(vec![2, 3], vec![2, 3, 4, 5]);
    let instances = scale.pick(4, 10);
    let time_limit = scale.pick(Duration::from_secs(2), Duration::from_secs(600));
    println!("Figure 6 — two-label solver completion rate over Benchmark-D");
    println!("scale: {scale:?}, per-instance budget {time_limit:?}\n");

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for &patterns in &pattern_counts {
        for &m in &ms {
            let config = BenchmarkDConfig {
                num_items: m,
                patterns_per_union: patterns,
                items_per_label: 3,
                instances,
                phi: 0.5,
            };
            let family = benchmark_d(&config, 100 + (m * patterns) as u64);
            let mut finished = 0usize;
            for inst in &family {
                let solver = TwoLabelSolver::with_budget(Budget::with_time_limit(time_limit));
                if solver
                    .solve(&inst.model.to_rim(), &inst.labeling, &inst.union)
                    .is_ok()
                {
                    finished += 1;
                }
            }
            let fraction = finished as f64 / family.len() as f64;
            rows.push(vec![
                m.to_string(),
                patterns.to_string(),
                format!("{:.0}%", fraction * 100.0),
            ]);
            records.push(json!({
                "m": m,
                "patterns_per_union": patterns,
                "finished_fraction": fraction,
            }));
        }
    }
    print_table(&["m", "#patterns", "finished within budget"], &rows);
    println!(
        "\nExpected shape (paper): completion rate decreases with both the number of items \
         and the number of patterns per union."
    );
    write_results("fig06", &json!({ "series": records }));
}
