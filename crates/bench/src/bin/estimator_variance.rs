//! Estimator-variance benchmark: the two wins of the mixture-proposal MIS
//! sampler.
//!
//! **Part A — the balance heuristic cuts estimator variance.** On
//! high-dispersion multimodal menagerie unions (several prepared proposals
//! with heavily overlapping supports) the bench replicates two unbiased
//! estimators of the union probability many times at the *same* total
//! sample budget and compares the empirical variance of their estimates:
//!
//! * **per-proposal IS** — the classic one-proposal-at-a-time scheme:
//!   every proposal keeps its own draws, weighs them only against its own
//!   density (`w = p(τ)/q_own(τ)`), and overlap is deduplicated by
//!   first-match — a draw whose ranking is already covered by an earlier
//!   proposal's sub-ranking is zeroed. Where supports overlap heavily the
//!   zeroing throws most of the budget away, and each kept weight swings
//!   between zero and its full importance ratio.
//! * **mixture** — the production estimator
//!   ([`MisAmpLite::estimate_prepared_total`]): the same stratified draws
//!   weighed against the full mixture density (`w = p(τ)/Σᵢ cᵢ·qᵢ(τ)`).
//!   A ranking several proposals cover is tempered by all of their
//!   densities instead of being zeroed — every sample contributes.
//!
//! The bench asserts the mixture estimator's variance is at most **half**
//! the per-proposal scheme's (median over the selected unions), and that
//! both estimators agree with the exact answer on average.
//!
//! **Part B — finer rounds reach ε sooner.** The budgeted estimator's
//! doubling loop now grows a *total* mixture budget starting at 64 samples
//! instead of 64-per-proposal (640 for the default 10-proposal pool), so
//! easy instances stop an order of magnitude earlier. The bench runs the
//! same ε = 0.05 certification under both round schedules (the old
//! granularity is simulated with `initial_samples = 640`) over instances
//! whose proposals match the posterior closely, and asserts the new
//! schedule converges in at least **30% fewer** total samples.
//!
//! Results are written to `bench_results/estimator_variance.json`.
//!
//! Environment:
//! * `PPD_EST_REPS`    — sampling repetitions per union in Part A
//!   (default 8);
//! * `PPD_EST_SAMPLES` — per-proposal quota defining Part A's total budget
//!   (default 400);
//! * `PPD_EST_M`       — item-universe size for Part A (default 6);
//! * `PPD_EST_EPSILON` — Part B's target half-width (default 0.05).

use ppd_bench::{env_usize, median, print_table, write_results, Scale};
use ppd_solvers::testutil::{cyclic_labeling, mallows, sample_unions};
use ppd_solvers::{stratified_allocation, ExactSolver, MisAmpBudgeted, MisAmpLite};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Unbiased sample variance of a set of replicate estimates.
fn sample_variance(estimates: &[f64]) -> f64 {
    let n = estimates.len() as f64;
    let mean = estimates.iter().sum::<f64>() / n;
    estimates.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / (n - 1.0)
}

struct VarianceCase {
    union_index: usize,
    proposals: usize,
    exact: f64,
    per_proposal_var: f64,
    mixture_var: f64,
    ratio: f64,
}

/// Part A: replicate variance of the two estimators at one equal total
/// budget per union.
fn part_a(m: usize, reps: usize, per_proposal: usize) -> (Vec<VarianceCase>, f64) {
    let phi = 0.9;
    let model = mallows(m, phi);
    let rim = model.to_rim();
    let lab = cyclic_labeling(m, 4);
    let mut cases = Vec::new();
    for (ui, union) in sample_unions().iter().enumerate() {
        // Pool size = full sub-ranking count: no pruning, so both schemes
        // weigh the identical proposal set and compensation is identity.
        let probe = MisAmpLite::new(64, 1).prepare(&model, &lab, union).unwrap();
        let proposals = probe.num_proposals();
        if proposals < 3 {
            continue; // the mixture only matters when supports overlap
        }
        let exact = ppd_solvers::GeneralSolver::new()
            .solve(&rim, &lab, union)
            .unwrap();
        let solver = MisAmpLite::new(proposals, per_proposal);
        let total = proposals * per_proposal;
        let mut baseline_estimates = Vec::with_capacity(reps);
        let mut mixture_estimates = Vec::with_capacity(reps);
        for rep in 0..reps {
            let seed = 0xE57 + (ui * 1000 + rep) as u64;
            let prepared = solver.prepare(&model, &lab, union).unwrap();
            let samplers = prepared.samplers();
            let allocation = stratified_allocation(total, samplers.len());

            // Classic per-proposal IS with first-match deduplication: each
            // proposal judges its own draws, and a draw already covered by
            // an earlier proposal's sub-ranking (detected through its
            // density, positive iff consistent) is zeroed so overlap is
            // not double counted.
            let mut rng = StdRng::seed_from_u64(seed);
            let mut estimate = 0.0;
            for (i, (sampler, quota)) in samplers.iter().zip(&allocation).enumerate() {
                let mut stratum = 0.0;
                for _ in 0..*quota {
                    let (tau, q_own) = sampler.sample_with_prob(&mut rng);
                    let first = samplers[..i].iter().all(|other| other.prob_of(&tau) <= 0.0);
                    if first {
                        stratum += model.prob_of(&tau) / q_own;
                    }
                }
                estimate += stratum / (*quota).max(1) as f64;
            }
            baseline_estimates.push(estimate.clamp(0.0, 1.0));

            // The production mixture path — the exact single-pass code the
            // engine runs — at the same budget, fresh but equally seeded
            // RNG (the two schemes share draw counts, not draws).
            let mut rng = StdRng::seed_from_u64(seed);
            let (est, moments) = solver.estimate_prepared_total(&model, &prepared, total, &mut rng);
            assert_eq!(moments.samples, total, "the mixture must spend the budget");
            mixture_estimates.push(est);
        }
        let baseline_mean = baseline_estimates.iter().sum::<f64>() / reps as f64;
        let mixture_mean = mixture_estimates.iter().sum::<f64>() / reps as f64;
        for (name, mean) in [("per-proposal", baseline_mean), ("mixture", mixture_mean)] {
            assert!(
                (mean - exact).abs() < 0.05,
                "union#{ui}: {name} estimator is biased: mean {mean} vs exact {exact}"
            );
        }
        let per_proposal_var = sample_variance(&baseline_estimates);
        let mixture_var = sample_variance(&mixture_estimates);
        cases.push(VarianceCase {
            union_index: ui,
            proposals,
            exact,
            per_proposal_var,
            mixture_var,
            ratio: mixture_var / per_proposal_var.max(f64::MIN_POSITIVE),
        });
    }
    assert!(
        !cases.is_empty(),
        "the menagerie must contain multimodal unions"
    );
    let ratios: Vec<f64> = cases.iter().map(|c| c.ratio).collect();
    (cases, median(&ratios))
}

struct BudgetCase {
    label: &'static str,
    old_samples: usize,
    new_samples: usize,
}

/// Part B: total samples to certify ±ε under the old per-proposal round
/// granularity (640-sample initial rounds) vs the new total-budget rounds
/// (64-sample initial rounds).
fn part_b(epsilon: f64) -> (Vec<BudgetCase>, f64, f64) {
    let confidence = 0.95;
    let new_schedule = MisAmpBudgeted::new(epsilon, confidence);
    let old_schedule = MisAmpBudgeted {
        initial_samples: 640,
        ..MisAmpBudgeted::new(epsilon, confidence)
    };
    // Instances whose proposals track the conditioned posterior closely —
    // unique-label universes (one 2-item sub-ranking per proposal, an exact
    // posterior match) and a concentrated two-label case. These converge in
    // the first round or two, which is exactly where round granularity is
    // the whole story.
    let instances: Vec<(&'static str, usize, f64, u32, usize)> = vec![
        ("unique-labels m=5 φ=0.5", 5, 0.5, 5, 0),
        ("unique-labels m=5 φ=0.9", 5, 0.9, 5, 0),
        ("unique-labels m=6 φ=0.5", 6, 0.5, 6, 0),
        ("two-label m=6 φ=0.8", 6, 0.8, 3, 0),
    ];
    let mut cases = Vec::new();
    for (label, m, phi, labels, ui) in instances {
        let model = mallows(m, phi);
        let lab = cyclic_labeling(m, labels);
        let union = &sample_unions()[ui];
        let mut rng = StdRng::seed_from_u64(0xB2D6);
        let old = old_schedule.run(&model, &lab, union, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(0xB2D6);
        let new = new_schedule.run(&model, &lab, union, &mut rng).unwrap();
        assert!(
            old.converged && new.converged,
            "{label}: both schedules must certify ±{epsilon} \
             (old {}, new {})",
            old.converged,
            new.converged
        );
        cases.push(BudgetCase {
            label,
            old_samples: old.total_samples,
            new_samples: new.total_samples,
        });
    }
    let old_total: usize = cases.iter().map(|c| c.old_samples).sum();
    let new_total: usize = cases.iter().map(|c| c.new_samples).sum();
    let reduction = 1.0 - new_total as f64 / old_total as f64;
    (cases, old_total as f64, reduction)
}

fn main() {
    let scale = Scale::from_env();
    let reps = env_usize("PPD_EST_REPS").unwrap_or(scale.pick(48, 200));
    let per_proposal = env_usize("PPD_EST_SAMPLES").unwrap_or(scale.pick(50, 200));
    let m = env_usize("PPD_EST_M").unwrap_or(6);
    let epsilon = env_f64("PPD_EST_EPSILON").unwrap_or(0.05);

    println!("Part A — estimator variance, per-proposal IS vs mixture (m={m}, φ=0.9)\n");
    let (cases, median_ratio) = part_a(m, reps, per_proposal);
    print_table(
        &[
            "union",
            "proposals",
            "exact",
            "per-proposal var",
            "mixture var",
            "ratio",
        ],
        &cases
            .iter()
            .map(|c| {
                vec![
                    format!("#{}", c.union_index),
                    c.proposals.to_string(),
                    format!("{:.4}", c.exact),
                    format!("{:.3e}", c.per_proposal_var),
                    format!("{:.3e}", c.mixture_var),
                    format!("{:.3}", c.ratio),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("\n  median variance ratio: {median_ratio:.3} (must be ≤ 0.5)\n");
    assert!(
        median_ratio <= 0.5,
        "mixture weighting must at least halve the per-sample variance \
         on multimodal unions: median ratio {median_ratio:.3}"
    );

    println!("Part B — samples to certify ±{epsilon} (old 640-sample rounds vs new 64)\n");
    let (budget_cases, old_total, reduction) = part_b(epsilon);
    print_table(
        &["instance", "old samples", "new samples"],
        &budget_cases
            .iter()
            .map(|c| {
                vec![
                    c.label.to_string(),
                    c.old_samples.to_string(),
                    c.new_samples.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\n  total: {:.0} old vs {} new — {:.1}% fewer samples (must be ≥ 30%)\n",
        old_total,
        budget_cases.iter().map(|c| c.new_samples).sum::<usize>(),
        reduction * 100.0
    );
    assert!(
        reduction >= 0.30,
        "the total-budget round schedule must reach ε in ≥30% fewer samples: \
         got {:.1}%",
        reduction * 100.0
    );

    write_results(
        "estimator_variance",
        &serde_json::json!({
            "scale": format!("{scale:?}"),
            "variance": {
                "m": m,
                "phi": 0.9,
                "reps": reps,
                "per_proposal_quota": per_proposal,
                "median_ratio": median_ratio,
                "cases": cases.iter().map(|c| serde_json::json!({
                    "union": c.union_index,
                    "proposals": c.proposals,
                    "exact": c.exact,
                    "per_proposal_var": c.per_proposal_var,
                    "mixture_var": c.mixture_var,
                    "ratio": c.ratio,
                })).collect::<Vec<_>>(),
            },
            "budget": {
                "epsilon": epsilon,
                "sample_reduction": reduction,
                "cases": budget_cases.iter().map(|c| serde_json::json!({
                    "instance": c.label,
                    "old_samples": c.old_samples,
                    "new_samples": c.new_samples,
                })).collect::<Vec<_>>(),
            },
        }),
    );
}
