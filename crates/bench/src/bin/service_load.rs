//! Service load test: N closed-loop client threads hammering one
//! `ppd_service::Service` with a mixed Boolean / count / per-session /
//! top-k Polls workload.
//!
//! Reports end-to-end throughput, client-observed latency percentiles
//! (p50/p99), the wave-size histogram (how much the batching window
//! actually coalesces), and the engine's cache hit rate, and writes
//! `bench_results/service_load.json`. Before the timed run it spot-checks
//! the determinism contract: the service's answers for the workload mix
//! are bit-identical to direct engine calls.
//!
//! A second, **mixed-priority** phase then measures the QoS isolation the
//! two admission classes buy: interactive p99 latency is measured unloaded,
//! then again while flooder threads saturate a deliberately shallow batch
//! lane. The phase asserts the PR-6 acceptance criteria in-process —
//! interactive p99 under batch flood stays within 2× of unloaded, and the
//! flood itself sheds with `Overloaded` — and the numbers land in the same
//! JSON artifact under `"qos"`.
//!
//! Environment:
//! * `PPD_SCALE`   — `small` (default: 120 voters) or `paper` (1000);
//! * `PPD_VOTERS` / `PPD_CANDIDATES` — explicit size overrides;
//! * `PPD_CLIENTS` — client threads (default 4);
//! * `PPD_QUERIES` — queries per client (default 24 small / 100 paper);
//! * `PPD_QOS_QUERIES` — interactive probes per QoS measurement (default 40);
//! * `PPD_FLOODERS` — batch flooder threads in the loaded phase (default 4).

use ppd_bench::{env_usize, print_table, write_results, Scale};
use ppd_core::{ConjunctiveQuery, Engine, EvalConfig, Term, TopKStrategy};
use ppd_datagen::{polls_database, polls_q1_query, PollsConfig};
use ppd_obs::Histogram;
use ppd_service::{Answer, Request, Service, ServiceConfig, ServiceError, SubmitOptions};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

fn pair_query() -> ConjunctiveQuery {
    ConjunctiveQuery::new("pair").prefer(
        "Polls",
        vec![Term::any(), Term::any()],
        Term::val("cand0"),
        Term::val("cand1"),
    )
}

fn chain_query() -> ConjunctiveQuery {
    ConjunctiveQuery::new("chain")
        .prefer(
            "Polls",
            vec![Term::any(), Term::any()],
            Term::val("cand0"),
            Term::val("cand1"),
        )
        .prefer(
            "Polls",
            vec![Term::any(), Term::any()],
            Term::val("cand1"),
            Term::val("cand2"),
        )
}

/// The request mix, cycled per client with a per-client offset so
/// concurrent waves blend kinds.
fn mix() -> Vec<Request> {
    vec![
        Request::Boolean(polls_q1_query()),
        Request::Count(chain_query()),
        Request::SessionProbabilities(pair_query()),
        Request::TopK {
            query: polls_q1_query(),
            k: 5,
            strategy: TopKStrategy::UpperBound {
                edges_per_pattern: 2,
            },
        },
        Request::Boolean(pair_query()),
    ]
}

/// Direct-engine reference answer for one request.
fn direct(engine: &Engine, db: &ppd_core::PpdDatabase, request: &Request) -> Answer {
    match request {
        Request::Boolean(q) => Answer::Boolean(engine.evaluate_boolean(db, q).unwrap()),
        Request::Count(q) => Answer::Count(engine.count_sessions(db, q).unwrap()),
        Request::SessionProbabilities(q) => {
            Answer::SessionProbabilities(engine.session_probabilities(db, q).unwrap())
        }
        Request::TopK { query, k, strategy } => Answer::TopK(
            engine
                .most_probable_sessions(db, query, *k, *strategy)
                .unwrap()
                .0,
        ),
    }
}

/// The mixed-priority QoS phase: interactive p99 unloaded vs. under a batch
/// flood into a deliberately shallow batch lane. Asserts the isolation
/// contract (p99 ratio ≤ 2, flood sheds with `Overloaded`, interactive
/// admission untouched) and returns the numbers for the JSON artifact.
fn qos_phase(db: &ppd_core::PpdDatabase) -> serde_json::Value {
    let probes = env_usize("PPD_QOS_QUERIES").unwrap_or(40).max(10);
    let flooders = env_usize("PPD_FLOODERS").unwrap_or(4).max(1);
    // A shallow batch lane (2) under a generous interactive lane: the flood
    // saturates and sheds from its own lane, never queueing in front of
    // interactive traffic. The 2 ms window dominates both measurements, so
    // the loaded/unloaded ratio isolates what the flood actually adds.
    let service = Service::new(
        db.clone(),
        ServiceConfig::new(EvalConfig::exact())
            .with_max_batch(16)
            .with_max_wait(Duration::from_millis(2))
            .with_max_queue(1024)
            .with_max_queue_batch(2),
    );
    let probe = Request::Boolean(polls_q1_query());
    let flood = Request::Count(pair_query());
    // Warm both queries' work units so the phases run cache-hot, the way a
    // long-lived service would.
    for request in [probe.clone(), flood.clone()] {
        service
            .submit(request)
            .expect("admitted")
            .wait()
            .expect("warmup answers");
    }

    // Latencies land in the observability crate's log-bucketed histogram —
    // the same recorder the served `metrics` verb exposes — instead of a
    // sorted vector, so quantiles come from one implementation.
    let measure = |phase: &str| -> Histogram {
        let latencies = Histogram::standalone();
        for _ in 0..probes {
            let submitted = Instant::now();
            service
                .submit_with(probe.clone(), SubmitOptions::interactive())
                .unwrap_or_else(|e| panic!("interactive admission failed ({phase}): {e}"))
                .wait()
                .unwrap_or_else(|e| panic!("interactive query failed ({phase}): {e}"));
            latencies.record_duration(submitted.elapsed());
        }
        latencies
    };

    let unloaded = measure("unloaded");
    let p99_unloaded = unloaded.percentile_ms(99.0);

    let stop = AtomicBool::new(false);
    let mut shed = 0u64;
    let mut flood_answered = 0u64;
    let mut loaded = Histogram::standalone();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..flooders)
            .map(|_| {
                let (service, stop, flood) = (&service, &stop, &flood);
                scope.spawn(move || {
                    let (mut answered, mut local_shed) = (0u64, 0u64);
                    while !stop.load(Ordering::Relaxed) {
                        match service.submit_with(flood.clone(), SubmitOptions::batch()) {
                            Ok(ticket) => {
                                ticket.wait().expect("batch queries answer");
                                answered += 1;
                            }
                            Err(ServiceError::Overloaded { .. }) => {
                                local_shed += 1;
                                std::thread::yield_now();
                            }
                            Err(e) => panic!("batch submit failed: {e}"),
                        }
                    }
                    (answered, local_shed)
                })
            })
            .collect();
        // Let the flood saturate its lane before probing.
        std::thread::sleep(Duration::from_millis(20));
        loaded = measure("loaded");
        stop.store(true, Ordering::Relaxed);
        for worker in workers {
            let (answered, local_shed) = worker.join().expect("flooder panicked");
            flood_answered += answered;
            shed += local_shed;
        }
    });
    let p99_loaded = loaded.percentile_ms(99.0);
    let stats = service.shutdown();

    assert!(
        shed > 0,
        "the batch flood must shed with Overloaded (lane bound 2, {flooders} flooders)"
    );
    assert_eq!(
        stats.interactive_rejected, 0,
        "a batch flood must never close interactive admission"
    );
    assert!(
        p99_loaded <= 2.0 * p99_unloaded,
        "interactive p99 under batch flood ({p99_loaded:.2}ms) exceeded 2× the \
         unloaded p99 ({p99_unloaded:.2}ms) — class isolation is broken"
    );

    println!("\nQoS phase ({probes} probes, {flooders} batch flooders):");
    print_table(
        &["phase", "p50", "p99"],
        &[
            vec![
                "interactive unloaded".into(),
                format!("{:.2}ms", unloaded.percentile_ms(50.0)),
                format!("{p99_unloaded:.2}ms"),
            ],
            vec![
                "interactive + batch flood".into(),
                format!("{:.2}ms", loaded.percentile_ms(50.0)),
                format!("{p99_loaded:.2}ms"),
            ],
        ],
    );
    println!(
        "batch flood: {flood_answered} answered, {shed} shed with Overloaded; \
         interactive p99 ratio {:.2}",
        p99_loaded / p99_unloaded.max(1e-9)
    );

    serde_json::json!({
        "probes": probes,
        "flooders": flooders,
        "interactive_p50_unloaded_ms": unloaded.percentile_ms(50.0),
        "interactive_p99_unloaded_ms": p99_unloaded,
        "interactive_p50_loaded_ms": loaded.percentile_ms(50.0),
        "interactive_p99_loaded_ms": p99_loaded,
        "p99_ratio": p99_loaded / p99_unloaded.max(1e-9),
        "batch_answered": flood_answered,
        "batch_shed": shed,
    })
}

fn main() {
    let scale = Scale::from_env();
    let num_voters = env_usize("PPD_VOTERS").unwrap_or_else(|| scale.pick(120, 1000));
    let num_candidates = env_usize("PPD_CANDIDATES")
        .unwrap_or_else(|| scale.pick(10, 20))
        .max(3);
    let clients = env_usize("PPD_CLIENTS").unwrap_or(4).max(1);
    let per_client = env_usize("PPD_QUERIES")
        .unwrap_or_else(|| scale.pick(24, 100))
        .max(1);
    let db = polls_database(&PollsConfig {
        num_candidates,
        num_voters,
        seed: 2016,
    });
    let eval = EvalConfig::exact();
    let service = Service::new(
        db.clone(),
        ServiceConfig::new(eval.clone())
            .with_max_batch(16)
            .with_max_wait(Duration::from_millis(1)),
    );
    println!(
        "service_load: {num_voters} voters × {num_candidates} candidates, \
         {clients} clients × {per_client} queries\n"
    );

    // Determinism spot-check before the timed run (also warms the cache the
    // way any long-lived service would be warm).
    let reference_engine = Engine::new(eval);
    for request in mix() {
        let served = service
            .submit(request.clone())
            .expect("admitted")
            .wait()
            .expect("answers");
        assert_eq!(
            served,
            direct(&reference_engine, &db, &request),
            "service answers must be bit-identical to direct engine calls"
        );
    }

    let start = Instant::now();
    // Client threads record straight into one shared log-bucketed histogram
    // (cloned handles share the cells; recording is lock-free), replacing
    // the old collect-sort-index percentile path.
    let latencies = Histogram::standalone();
    let mut retries = 0u64;
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|client| {
                let service = &service;
                let latencies = latencies.clone();
                scope.spawn(move || {
                    let requests = mix();
                    let mut local_retries = 0u64;
                    for i in 0..per_client {
                        let request = requests[(client + i) % requests.len()].clone();
                        let submitted = Instant::now();
                        // Closed loop with backpressure handling: on
                        // Overloaded, yield and retry.
                        let ticket = loop {
                            match service.submit(request.clone()) {
                                Ok(ticket) => break ticket,
                                Err(ServiceError::Overloaded { .. }) => {
                                    local_retries += 1;
                                    std::thread::yield_now();
                                }
                                Err(e) => panic!("submit failed: {e}"),
                            }
                        };
                        ticket.wait().expect("query answers");
                        latencies.record_duration(submitted.elapsed());
                    }
                    local_retries
                })
            })
            .collect();
        for worker in workers {
            retries += worker.join().expect("client thread panicked");
        }
    });
    let wall = start.elapsed();
    let stats = service.shutdown();
    println!("{stats}\n");

    let total_queries = latencies.count() as usize;
    let throughput = total_queries as f64 / wall.as_secs_f64().max(1e-9);
    let p50 = latencies.percentile_ms(50.0);
    let p99 = latencies.percentile_ms(99.0);
    let mean = latencies.mean() * 1e-6;
    print_table(
        &["queries", "wall-clock", "throughput", "p50", "p99", "mean"],
        &[vec![
            total_queries.to_string(),
            format!("{:.1?}", wall),
            format!("{throughput:.1}/s"),
            format!("{p50:.2}ms"),
            format!("{p99:.2}ms"),
            format!("{mean:.2}ms"),
        ]],
    );
    println!("\nwave sizes:");
    print_table(
        &["size", "waves"],
        &stats
            .wave_sizes
            .iter()
            .map(|&(size, count)| vec![size.to_string(), count.to_string()])
            .collect::<Vec<_>>(),
    );

    let qos = qos_phase(&db);

    write_results(
        "service_load",
        &serde_json::json!({
            "experiment": "service_load",
            "num_voters": num_voters,
            "num_candidates": num_candidates,
            "clients": clients,
            "queries_per_client": per_client,
            "total_queries": total_queries,
            "wall_clock_ms": wall.as_secs_f64() * 1e3,
            "throughput_qps": throughput,
            "latency_ms": { "p50": p50, "p99": p99, "mean": mean },
            "overload_retries": retries,
            "waves": stats.waves,
            "mean_wave_size": stats.mean_wave_size(),
            "max_wave": stats.max_wave,
            "wave_size_histogram": stats.wave_sizes.iter()
                .map(|&(size, count)| serde_json::json!({"size": size, "waves": count}))
                .collect::<Vec<_>>(),
            "cache_hit_rate": stats.cache.hit_rate(),
            "marginals_solved": stats.cache.marginal_misses,
            "marginals_hit": stats.cache.marginal_hits,
            "qos": qos,
        }),
    );
}
