//! Figure 9: rejection sampling vs. MIS-AMP-lite on the rare event
//! `σ_m ≻ σ_1` under `MAL(⟨σ_1…σ_m⟩, 0.1)`.

use ppd_bench::{print_table, timed, write_results, Scale};
use ppd_patterns::{Labeling, NodeSelector, Pattern, PatternUnion};
use ppd_rim::{MallowsModel, Ranking};
use ppd_solvers::{ApproxSolver, ExactSolver, MisAmpLite, RejectionSampler, TwoLabelSolver};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;

fn main() {
    let scale = Scale::from_env();
    let ms: Vec<usize> = scale.pick((5..=8).collect(), (5..=10).collect());
    let max_samples = scale.pick(300_000, 20_000_000);
    println!("Figure 9 — rejection sampling vs MIS-AMP-lite on a rare event");
    println!("scale: {scale:?}, m ∈ {ms:?}\n");

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for &m in &ms {
        let model = MallowsModel::new(Ranking::identity(m), 0.1).unwrap();
        let mut labeling = Labeling::new();
        for item in 0..m as u32 {
            labeling.add_item(item);
        }
        labeling.add((m - 1) as u32, 0); // label 0: the last item of σ
        labeling.add(0, 1); // label 1: the first item of σ
        let union = PatternUnion::singleton(Pattern::two_label(
            NodeSelector::single(0),
            NodeSelector::single(1),
        ))
        .unwrap();
        let truth = TwoLabelSolver::new()
            .solve(&model.to_rim(), &labeling, &union)
            .unwrap();

        let mut rng = StdRng::seed_from_u64(9 + m as u64);
        let rs = RejectionSampler::new(1);
        let (needed, rs_time) = timed(|| {
            rs.samples_until_relative_error(
                &model,
                &labeling,
                &union,
                truth,
                0.01,
                max_samples,
                &mut rng,
            )
        });
        let rs_note = match needed {
            Some(n) => format!("{n} samples"),
            None => format!(">{max_samples} samples (gave up)"),
        };

        let mut rng = StdRng::seed_from_u64(90 + m as u64);
        let lite = MisAmpLite::new(1, scale.pick(2_000, 10_000));
        let (estimate, lite_time) =
            timed(|| lite.estimate(&model, &labeling, &union, &mut rng).unwrap());
        let rel_err = ppd_bench::relative_error(truth, estimate);

        rows.push(vec![
            m.to_string(),
            format!("{truth:.2e}"),
            format!("{:.3}", rs_time.as_secs_f64()),
            rs_note.clone(),
            format!("{:.3}", lite_time.as_secs_f64()),
            format!("{rel_err:.3}"),
        ]);
        records.push(json!({
            "m": m,
            "true_probability": truth,
            "rejection_seconds": rs_time.as_secs_f64(),
            "rejection_converged": needed,
            "mis_lite_seconds": lite_time.as_secs_f64(),
            "mis_lite_relative_error": rel_err,
        }));
    }
    print_table(
        &[
            "m",
            "Pr(σm≻σ1)",
            "RS time (s)",
            "RS outcome",
            "MIS-lite time (s)",
            "MIS-lite rel.err",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper): rejection sampling cost explodes exponentially with m while \
         MIS-AMP-lite stays fast and accurate."
    );
    write_results("fig09", &json!({ "series": records }));
}
