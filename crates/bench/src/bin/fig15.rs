//! Figure 15: scalability over the number of sessions in the CrowdRank-like
//! dataset — naive per-session evaluation vs. grouping identical requests.

use ppd_bench::{print_table, timed, write_results, Scale};
use ppd_core::{
    ground_query, session_probabilities_for_plan, ConjunctiveQuery, EvalConfig, Term as T,
};
use ppd_datagen::{crowdrank_database, CrowdRankConfig};
use serde_json::json;

/// The Section 6.4 query: the worker prefers a short movie whose lead matches
/// their sex to a short movie whose lead is around their age, which is in
/// turn preferred to some thriller.
fn fig15_query() -> ConjunctiveQuery {
    ConjunctiveQuery::new("fig15")
        .prefer("HitRankings", vec![T::var("v")], T::var("m1"), T::var("m2"))
        .prefer("HitRankings", vec![T::var("v")], T::var("m2"), T::var("m3"))
        .atom("Workers", vec![T::var("v"), T::var("sex"), T::var("age")])
        .atom(
            "Movies",
            vec![
                T::var("m1"),
                T::any(),
                T::var("sex"),
                T::any(),
                T::val("short"),
            ],
        )
        .atom(
            "Movies",
            vec![
                T::var("m2"),
                T::any(),
                T::any(),
                T::var("age"),
                T::val("short"),
            ],
        )
        .atom(
            "Movies",
            vec![
                T::var("m3"),
                T::val("Thriller"),
                T::any(),
                T::any(),
                T::any(),
            ],
        )
}

fn main() {
    let scale = Scale::from_env();
    let session_counts: Vec<usize> = scale.pick(
        vec![100, 1_000, 5_000],
        vec![100, 1_000, 10_000, 100_000, 200_000],
    );
    let naive_cap = scale.pick(500, 2_000);
    let samples = scale.pick(100, 300);
    println!("Figure 15 — session scalability on the CrowdRank-like dataset");
    println!(
        "scale: {scale:?}, session counts {session_counts:?}, naive evaluation capped at {naive_cap} sessions\n"
    );

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for &count in &session_counts {
        let db = crowdrank_database(&CrowdRankConfig {
            num_movies: 20,
            num_models: 7,
            num_workers: count,
            phi: 0.4,
            seed: 1515,
        });
        let q = fig15_query();
        let (plan, grounding_time) = timed(|| ground_query(&db, &q).expect("query grounds"));
        let grouped_config = EvalConfig::approximate(samples);
        let (grouped, grouped_time) =
            timed(|| session_probabilities_for_plan(&db, &plan, &grouped_config).unwrap());
        let naive_note;
        let naive_seconds;
        if count <= naive_cap {
            let naive_config = EvalConfig::approximate(samples).without_grouping();
            let (_, naive_time) =
                timed(|| session_probabilities_for_plan(&db, &plan, &naive_config).unwrap());
            naive_seconds = Some(naive_time.as_secs_f64());
            naive_note = format!("{:.2}", naive_time.as_secs_f64());
        } else {
            naive_seconds = None;
            naive_note = "skipped (linear in #sessions)".to_string();
        }
        rows.push(vec![
            count.to_string(),
            grouped.len().to_string(),
            format!("{:.2}", grounding_time.as_secs_f64()),
            format!("{:.2}", grouped_time.as_secs_f64()),
            naive_note,
        ]);
        records.push(json!({
            "sessions": count,
            "evaluated": grouped.len(),
            "grounding_seconds": grounding_time.as_secs_f64(),
            "grouped_seconds": grouped_time.as_secs_f64(),
            "naive_seconds": naive_seconds,
        }));
    }
    print_table(
        &[
            "#sessions",
            "evaluated",
            "grounding (s)",
            "grouped inference (s)",
            "naive inference (s)",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper): naive evaluation grows linearly with the number of sessions, \
         while grouping identical (model, pattern-union) requests converges to a constant \
         inference cost — only grounding remains linear."
    );
    write_results("fig15", &json!({ "series": records }));
}
