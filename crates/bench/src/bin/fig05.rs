//! Figure 5: running time of the general solver's exact pattern subroutine as
//! a function of the number of patterns in a conjunction, over Benchmark-A.

use ppd_bench::{median_duration, print_table, timed, write_results, Scale};
use ppd_solvers::{Budget, GeneralSolver};
use serde_json::json;
use std::time::Duration;

fn main() {
    let scale = Scale::from_env();
    let instances = ppd_datagen::benchmark_a(scale.pick(3, 33), 99);
    let max_conjunction = scale.pick(2, 3);
    let time_limit = scale.pick(Duration::from_secs(20), Duration::from_secs(3600));
    println!("Figure 5 — exact conjunction cost over Benchmark-A");
    println!(
        "scale: {scale:?}, {} unions, conjunction sizes 1..={max_conjunction}, per-conjunction budget {time_limit:?}\n",
        instances.len()
    );

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for size in 1..=max_conjunction {
        let mut times = Vec::new();
        let mut timeouts = 0usize;
        for inst in &instances {
            let indices: Vec<usize> = (0..size).collect();
            let solver = GeneralSolver::new().with_budget(Budget::with_time_limit(time_limit));
            let rim = inst.model.to_rim();
            let (result, elapsed) = timed(|| {
                solver.conjunction_probability(&rim, &inst.labeling, &inst.union, &indices)
            });
            match result {
                Ok(_) => times.push(elapsed),
                Err(_) => timeouts += 1,
            }
        }
        let median = median_duration(&times);
        rows.push(vec![
            size.to_string(),
            format!("{:.3}", median.as_secs_f64()),
            times.len().to_string(),
            timeouts.to_string(),
        ]);
        records.push(json!({
            "patterns_in_conjunction": size,
            "median_seconds": median.as_secs_f64(),
            "finished": times.len(),
            "timeouts": timeouts,
        }));
    }
    print_table(
        &[
            "#patterns in conjunction",
            "median time (s)",
            "finished",
            "timeouts",
        ],
        &rows,
    );
    println!("\nExpected shape (paper): roughly exponential growth with the conjunction size.");
    write_results("fig05", &json!({ "series": records }));
}
