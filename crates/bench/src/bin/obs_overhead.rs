//! Observability overhead A/B: the same closed-loop mixed workload as
//! `service_load`, run against one service with observability fully off and
//! one with metrics + tracing fully on, in interleaved rounds so machine
//! drift cancels. The acceptance bar: full observability costs at most
//! `PPD_OBS_MAX_OVERHEAD` (default 5%) of median throughput.
//!
//! Two smoke checks ride along, both over a real TCP socket:
//!
//! * the `metrics` verb's exposition parses strictly and names the core
//!   instruments (queue wait, wave window, unit solve, cache hits);
//! * the `trace` verb returns a span timeline ending in `delivered` for a
//!   traced submission.
//!
//! Writes `bench_results/obs_overhead.json`.
//!
//! Environment: `PPD_SCALE` (`small`/`paper`), `PPD_VOTERS`,
//! `PPD_CANDIDATES`, `PPD_CLIENTS`, `PPD_QUERIES` (per client per round),
//! `PPD_ROUNDS` (A/B round pairs, default 5), `PPD_OBS_MAX_OVERHEAD`
//! (fraction, default 0.05).

use ppd_bench::{env_usize, median, print_table, write_results, Scale};
use ppd_core::{ConjunctiveQuery, EvalConfig, Term, TopKStrategy};
use ppd_datagen::{polls_database, polls_q1_query, PollsConfig};
use ppd_obs::parse_exposition;
use ppd_service::{
    ObsConfig, Request, Service, ServiceConfig, ServiceError, SubmitOptions, WireClient, WireServer,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn pair_query() -> ConjunctiveQuery {
    ConjunctiveQuery::new("pair").prefer(
        "Polls",
        vec![Term::any(), Term::any()],
        Term::val("cand0"),
        Term::val("cand1"),
    )
}

fn mix() -> Vec<Request> {
    vec![
        Request::Boolean(polls_q1_query()),
        Request::Count(pair_query()),
        Request::SessionProbabilities(pair_query()),
        Request::TopK {
            query: polls_q1_query(),
            k: 5,
            strategy: TopKStrategy::UpperBound {
                edges_per_pattern: 2,
            },
        },
    ]
}

/// One closed-loop round against `service`: every client thread drives
/// `per_client` queries from the mix; returns the round's throughput in
/// queries per second.
fn run_round(service: &Service, clients: usize, per_client: usize) -> f64 {
    let start = Instant::now();
    let mut total = 0usize;
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|client| {
                let service = &service;
                scope.spawn(move || {
                    let requests = mix();
                    for i in 0..per_client {
                        let request = requests[(client + i) % requests.len()].clone();
                        let ticket = loop {
                            match service.submit(request.clone()) {
                                Ok(ticket) => break ticket,
                                Err(ServiceError::Overloaded { .. }) => {
                                    std::thread::yield_now();
                                }
                                Err(e) => panic!("submit failed: {e}"),
                            }
                        };
                        ticket.wait().expect("query answers");
                    }
                    per_client
                })
            })
            .collect();
        for worker in workers {
            total += worker.join().expect("client thread panicked");
        }
    });
    total as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

fn build_service(db: &ppd_core::PpdDatabase, obs: ObsConfig) -> Service {
    Service::new(
        db.clone(),
        ServiceConfig::new(EvalConfig::exact())
            .with_max_batch(16)
            .with_max_wait(Duration::from_millis(1))
            .with_obs(obs),
    )
}

/// The wire smoke: scrape `metrics` and fetch a `trace` timeline over TCP,
/// asserting the exposition parses and the core instruments are present.
fn wire_smoke(db: &ppd_core::PpdDatabase) -> serde_json::Value {
    let service = Arc::new(build_service(db, ObsConfig::full()));
    let server =
        WireServer::bind_tcp("127.0.0.1:0", Arc::clone(&service)).expect("bind obs smoke server");
    let addr = server.local_addr().expect("tcp address");
    let mut client = WireClient::connect_tcp(addr).expect("connect obs smoke client");

    // Drive one query through so every layer has recorded something, and
    // keep its trace id for the timeline check.
    let id = client
        .send(
            &Request::Boolean(polls_q1_query()),
            &SubmitOptions::default(),
        )
        .expect("send");
    let (_, _, trace) = client.recv_traced(id).expect("answer");
    assert_ne!(trace, 0, "responses must carry the trace id");

    let text = client.metrics().expect("metrics verb answers");
    let samples = parse_exposition(&text).expect("exposition parses strictly");
    let core = [
        "ppd_queue_wait_seconds",
        "ppd_wave_window_seconds",
        "ppd_unit_solve_seconds",
        "ppd_cache_hits_total",
        "ppd_cache_misses_total",
        "ppd_queue_depth",
        "ppd_in_flight_waves",
        "ppd_uptime_seconds",
    ];
    for name in core {
        assert!(
            samples.iter().any(|(series, _)| series.starts_with(name)),
            "core instrument {name} missing from the exposition:\n{text}"
        );
    }

    let events = client.trace(trace).expect("trace verb answers");
    assert!(
        !events.is_empty(),
        "a traced submission must have a span timeline"
    );
    assert_eq!(
        events.last().expect("events nonempty").event.name(),
        "delivered",
        "the timeline ends at delivery: {events:?}"
    );

    server.shutdown();
    serde_json::json!({
        "exposition_samples": samples.len(),
        "trace_events": events.len(),
        "core_instruments": core.to_vec(),
    })
}

fn main() {
    let scale = Scale::from_env();
    let num_voters = env_usize("PPD_VOTERS").unwrap_or_else(|| scale.pick(80, 600));
    let num_candidates = env_usize("PPD_CANDIDATES")
        .unwrap_or_else(|| scale.pick(8, 15))
        .max(3);
    let clients = env_usize("PPD_CLIENTS").unwrap_or(4).max(1);
    let per_client = env_usize("PPD_QUERIES")
        .unwrap_or_else(|| scale.pick(24, 100))
        .max(1);
    let rounds = env_usize("PPD_ROUNDS").unwrap_or(5).max(1);
    let max_overhead: f64 = std::env::var("PPD_OBS_MAX_OVERHEAD")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05);

    let db = polls_database(&PollsConfig {
        num_candidates,
        num_voters,
        seed: 2016,
    });
    println!(
        "obs_overhead: {num_voters} voters × {num_candidates} candidates, \
         {clients} clients × {per_client} queries × {rounds} A/B rounds, \
         bar {:.0}%\n",
        max_overhead * 100.0
    );

    // Both services live for the whole comparison (caches warm once, like
    // any long-lived deployment), and each round pair runs off-then-on so
    // drift hits both arms alike.
    let service_off = build_service(&db, ObsConfig::off());
    let service_on = build_service(&db, ObsConfig::full());
    run_round(&service_off, clients, per_client); // warmup
    run_round(&service_on, clients, per_client);

    let mut thr_off = Vec::new();
    let mut thr_on = Vec::new();
    for round in 0..rounds {
        thr_off.push(run_round(&service_off, clients, per_client));
        thr_on.push(run_round(&service_on, clients, per_client));
        println!(
            "round {round}: off {:.1}/s, on {:.1}/s",
            thr_off[round], thr_on[round]
        );
    }
    let median_off = median(&thr_off);
    let median_on = median(&thr_on);
    let overhead = (median_off - median_on) / median_off.max(1e-9);
    service_off.shutdown();
    let stats_on = service_on.shutdown();
    assert!(
        stats_on.answered > 0,
        "the observed service must have answered queries"
    );

    print_table(
        &["arm", "median throughput", "overhead"],
        &[
            vec!["obs off".into(), format!("{median_off:.1}/s"), "—".into()],
            vec![
                "obs full".into(),
                format!("{median_on:.1}/s"),
                format!("{:.1}%", overhead * 100.0),
            ],
        ],
    );
    assert!(
        overhead <= max_overhead,
        "full observability cost {:.1}% of throughput, over the {:.0}% bar \
         (off {median_off:.1}/s, on {median_on:.1}/s)",
        overhead * 100.0,
        max_overhead * 100.0
    );

    let smoke = wire_smoke(&db);
    println!("\nwire smoke: metrics exposition parsed, trace timeline served");

    write_results(
        "obs_overhead",
        &serde_json::json!({
            "experiment": "obs_overhead",
            "num_voters": num_voters,
            "num_candidates": num_candidates,
            "clients": clients,
            "queries_per_client": per_client,
            "rounds": rounds,
            "throughput_off_qps": thr_off,
            "throughput_on_qps": thr_on,
            "median_off_qps": median_off,
            "median_on_qps": median_on,
            "overhead_fraction": overhead,
            "max_overhead_fraction": max_overhead,
            "wire_smoke": smoke,
        }),
    );
}
