//! Figure 14: MIS-AMP-adaptive runtime over the MovieLens-like dataset as the
//! number of movies grows (the Section 6.3 query, grounded over genres).

use ppd_bench::{print_table, timed, write_results, Scale};
use ppd_core::{
    ground_query, session_probabilities_for_plan, CompareOp, ConjunctiveQuery, EvalConfig,
    Term as T,
};
use ppd_datagen::{movielens_database, MovieLensConfig};
use serde_json::json;

/// The Section 6.3 query: a fixed movie preferred to another fixed movie, and
/// some post-1990 movie preferred both to a pre-1990 movie of the same genre
/// and to the second fixed movie.
fn fig14_query(favourite: i64, baseline: i64) -> ConjunctiveQuery {
    ConjunctiveQuery::new("fig14")
        .prefer(
            "Ratings",
            vec![T::any()],
            T::val(favourite),
            T::val(baseline),
        )
        .prefer("Ratings", vec![T::any()], T::var("x"), T::val(baseline))
        .prefer("Ratings", vec![T::any()], T::var("x"), T::var("y"))
        .atom(
            "Movies",
            vec![
                T::var("x"),
                T::any(),
                T::var("year1"),
                T::var("g"),
                T::any(),
                T::any(),
                T::any(),
            ],
        )
        .atom(
            "Movies",
            vec![
                T::var("y"),
                T::any(),
                T::var("year2"),
                T::var("g"),
                T::any(),
                T::any(),
                T::any(),
            ],
        )
        .compare("year1", CompareOp::Ge, 1990)
        .compare("year2", CompareOp::Lt, 1990)
}

fn main() {
    let scale = Scale::from_env();
    let movie_counts: Vec<usize> = scale.pick(vec![20, 30, 40], vec![40, 80, 120, 160, 200]);
    let users = scale.pick(4, 16);
    let samples = scale.pick(150, 500);
    println!("Figure 14 — MIS-AMP-adaptive over the MovieLens-like dataset");
    println!("scale: {scale:?}, m ∈ {movie_counts:?}, {users} user sessions per m\n");

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for &m in &movie_counts {
        let db = movielens_database(&MovieLensConfig {
            num_movies: m,
            num_components: 16,
            num_users: users,
            phi: 0.3,
            seed: 1414,
        });
        let q = fig14_query(3, 7);
        let plan = ground_query(&db, &q).expect("query grounds");
        let patterns_per_union = plan
            .sessions
            .first()
            .map(|s| s.union.num_patterns())
            .unwrap_or(0);
        let config = EvalConfig::approximate(samples);
        let (result, elapsed) = timed(|| session_probabilities_for_plan(&db, &plan, &config));
        let evaluated = result.expect("evaluation succeeds").len();
        rows.push(vec![
            m.to_string(),
            patterns_per_union.to_string(),
            evaluated.to_string(),
            format!("{:.2}", elapsed.as_secs_f64()),
        ]);
        records.push(json!({
            "m": m,
            "patterns_per_union": patterns_per_union,
            "sessions_evaluated": evaluated,
            "seconds": elapsed.as_secs_f64(),
        }));
    }
    print_table(
        &["m", "#patterns/union", "sessions", "total time (s)"],
        &rows,
    );
    println!(
        "\nExpected shape (paper): runtime grows with the number of movies, mostly because more \
         genres survive into the grounded union (more patterns per union)."
    );
    write_results("fig14", &json!({ "series": records }));
}
