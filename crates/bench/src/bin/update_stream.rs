//! Live-update stream: cache hit-rate recovery after bursts of database
//! updates, with surgical invalidation keeping the recomputation bounded.
//!
//! A long-lived engine answers the same Polls workload in rounds while the
//! database absorbs bursts of session replacements between rounds:
//!
//! * warm rounds establish the steady-state hit rate (misses → 0);
//! * an update burst replaces a slice of the sessions, invalidating only
//!   the cached work units covering them — never the whole cache;
//! * the degraded round pays misses only for the churned sessions;
//! * the recovery round must return to at least 80% of the steady-state
//!   hit rate (the acceptance bar for the live-database path).
//!
//! Every round's answers are checked bit-identical to a fresh engine on
//! the current database snapshot, and the post-churn cache is snapshotted
//! through the segment store to time the incremental persistence path.
//! Writes `bench_results/update_stream.json`.
//!
//! Environment: `PPD_SCALE` (`small`/`paper`), `PPD_VOTERS`,
//! `PPD_CANDIDATES`, `PPD_ROUNDS` (warm rounds), `PPD_UPDATES` (burst
//! size) overrides.

use ppd_bench::{env_usize, timed, write_results, Scale};
use ppd_core::{Engine, EvalConfig, PpdDatabase, Session, Update, Value};
use ppd_datagen::{polls_database, polls_q1_query, PollsConfig};
use ppd_obs::Histogram;
use ppd_rim::{MallowsModel, Ranking};

/// A deterministic replacement session for burst slot `i`: the identity
/// ranking rotated by `i + 1` under a slot-dependent dispersion.
fn replacement(db: &PpdDatabase, relation: &str, i: usize, num_candidates: usize) -> Session {
    let arity = db
        .preference_relation(relation)
        .expect("relation exists")
        .session_columns()
        .len();
    let items: Vec<u32> = (0..num_candidates)
        .map(|j| ((j + i + 1) % num_candidates) as u32)
        .collect();
    let phi = 0.3 + 0.4 * (i as f64 + 1.0) / 10.0_f64.max(i as f64 + 1.0);
    Session::new(
        (0..arity)
            .map(|c| Value::from(format!("upd{i}-{c}")))
            .collect(),
        MallowsModel::new(Ranking::new(items).expect("permutation"), phi).expect("mallows"),
    )
}

/// One query round: answers checked against a fresh engine, returns the
/// round's incremental (hit, miss) counters and hit rate.
fn round(
    engine: &Engine,
    db: &PpdDatabase,
    last: &mut (u64, u64),
    latencies: &Histogram,
    label: &str,
) -> serde_json::Value {
    let q = polls_q1_query();
    let (result, elapsed) = timed(|| engine.session_probabilities(db, &q));
    latencies.record_duration(elapsed);
    let result = result.expect("evaluation succeeds");
    let fresh = Engine::new(EvalConfig::exact())
        .session_probabilities(db, &q)
        .expect("fresh evaluation succeeds");
    assert_eq!(
        result, fresh,
        "{label}: live engine is not bit-identical to a fresh engine"
    );
    let stats = engine.cache_stats();
    let (hits, misses) = (stats.marginal_hits - last.0, stats.marginal_misses - last.1);
    *last = (stats.marginal_hits, stats.marginal_misses);
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    println!(
        "{label:>10}: {hits:>5} hits, {misses:>5} misses (hit rate {:>5.1}%) in {elapsed:.1?}",
        hit_rate * 100.0
    );
    serde_json::json!({
        "label": label,
        "hits": hits,
        "misses": misses,
        "hit_rate": hit_rate,
        "wall_clock_ms": elapsed.as_secs_f64() * 1e3,
    })
}

fn hit_rate_of(record: &serde_json::Value) -> f64 {
    record
        .get("hit_rate")
        .and_then(|v| v.as_f64())
        .expect("hit rate recorded")
}

fn main() {
    let scale = Scale::from_env();
    let num_voters = env_usize("PPD_VOTERS").unwrap_or_else(|| scale.pick(60, 500));
    let num_candidates = env_usize("PPD_CANDIDATES").unwrap_or_else(|| scale.pick(8, 12));
    let warm_rounds = env_usize("PPD_ROUNDS").unwrap_or(3).max(1);
    let burst = env_usize("PPD_UPDATES")
        .unwrap_or_else(|| scale.pick(4, 25))
        .max(1)
        .min(num_voters);

    let mut db = polls_database(&PollsConfig {
        num_candidates,
        num_voters,
        seed: 2020,
    });
    let relation = db.preference_relation_names()[0].to_string();
    let engine = Engine::new(EvalConfig::exact());
    println!(
        "update_stream: {num_voters} voters × {num_candidates} candidates, \
         {warm_rounds} warm rounds, burst of {burst} replacements\n"
    );

    let mut rounds = Vec::new();
    let mut last = (0u64, 0u64);
    // Round latencies accumulate in the observability crate's log-bucketed
    // histogram (the recorder behind the service's `metrics` verb), not a
    // sorted vector.
    let round_latencies = Histogram::standalone();
    for r in 0..warm_rounds {
        rounds.push(round(
            &engine,
            &db,
            &mut last,
            &round_latencies,
            &format!("warm {r}"),
        ));
    }
    let steady = hit_rate_of(rounds.last().expect("at least one warm round"));
    let cached_before = engine.cached_marginals();

    // The burst: replace `burst` sessions spread across the relation.
    let stride = (num_voters / burst).max(1);
    let mut invalidated = 0u64;
    let (_, burst_elapsed) = timed(|| {
        for i in 0..burst {
            let update = Update::ReplaceSession {
                prelation: relation.clone(),
                index: i * stride,
                session: replacement(&db, &relation, i, num_candidates),
            };
            let (_, dropped) = engine
                .apply_update(&mut db, update)
                .expect("update applies");
            invalidated += dropped;
        }
    });
    assert!(
        (invalidated as usize) <= cached_before,
        "invalidation must be bounded by the covering units \
         ({invalidated} dropped of {cached_before} cached)"
    );
    println!(
        "\n     burst: {burst} replacements in {burst_elapsed:.1?}, \
         {invalidated} of {cached_before} cached units invalidated \
         (database now at version {})\n",
        db.version()
    );

    let degraded = round(&engine, &db, &mut last, &round_latencies, "degraded");
    let recovered = round(&engine, &db, &mut last, &round_latencies, "recovered");
    let recovery_ratio = hit_rate_of(&recovered) / steady.max(f64::MIN_POSITIVE);
    assert!(
        recovery_ratio >= 0.8,
        "hit rate must recover to ≥80% of steady state after one round \
         (steady {steady:.3}, recovered {:.3})",
        hit_rate_of(&recovered)
    );

    // Incremental persistence: snapshot the post-churn cache (tombstones
    // for the invalidated units ride along) and cold-load it back.
    std::fs::create_dir_all("bench_results").expect("bench_results dir");
    let path = std::path::Path::new("bench_results").join("update_stream.mcache");
    let _ = std::fs::remove_dir_all(&path);
    let (saved, save_elapsed) = timed(|| engine.save_marginals(&path).expect("snapshot saves"));
    let cold = Engine::new(EvalConfig::exact());
    let (loaded, load_elapsed) = timed(|| cold.load_marginals(&path).expect("snapshot loads"));
    println!(
        "\npersistence: saved {saved} entries in {save_elapsed:.1?}, \
         cold-loaded {loaded} in {load_elapsed:.1?}"
    );
    let _ = std::fs::remove_dir_all(&path);

    println!(
        "\nrecovery: steady {:.1}% → degraded {:.1}% → recovered {:.1}% \
         ({:.0}% of steady state)",
        steady * 100.0,
        hit_rate_of(&degraded) * 100.0,
        hit_rate_of(&recovered) * 100.0,
        recovery_ratio * 100.0
    );

    write_results(
        "update_stream",
        &serde_json::json!({
            "experiment": "update_stream",
            "num_voters": num_voters,
            "num_candidates": num_candidates,
            "warm_rounds": warm_rounds,
            "burst_updates": burst,
            "rounds": rounds,
            "burst": {
                "wall_clock_ms": burst_elapsed.as_secs_f64() * 1e3,
                "units_invalidated": invalidated,
                "cached_before": cached_before,
                "database_version": db.version(),
            },
            "degraded": degraded,
            "recovered": recovered,
            "steady_hit_rate": steady,
            "recovery_ratio": recovery_ratio,
            "round_latency_ms": {
                "p50": round_latencies.percentile_ms(50.0),
                "max": round_latencies.max() as f64 * 1e-6,
                "mean": round_latencies.mean() * 1e-6,
            },
            "persistence": {
                "entries_saved": saved,
                "entries_loaded": loaded,
                "save_ms": save_elapsed.as_secs_f64() * 1e3,
                "load_ms": load_elapsed.as_secs_f64() * 1e3,
            },
        }),
    );
}
