//! Solver-kernel microbenchmark: per-solve latency of the exact DP kernels
//! (two-label, bipartite, pattern) across `m` and `z′` sweeps, packed kernel
//! vs. the retained map-based reference kernel.
//!
//! This is the repo's first solver-level perf baseline: every marginal the
//! engine serves on a cache miss bottoms out in these kernels, so their
//! constant factors dominate end-to-end latency. On every sweep point the
//! harness additionally asserts the packed result is **bit-identical** to
//! the reference result, then reports the per-point speedup and the
//! geometric-mean speedup per kernel family. Results are written to
//! `bench_results/solver_kernels.json`.
//!
//! Environment:
//! * `PPD_SCALE`       — `small` (default) or `paper` (larger `m` sweep);
//! * `PPD_KERNEL_REPS` — timed repetitions per point (default 7 small,
//!   5 paper); the per-solve latency reported is the median;
//! * `PPD_KERNEL_MAX_M` — drop sweep points above this `m` (the CI smoke
//!   run uses a tiny cap this way).

use ppd_bench::{env_usize, median_duration, timed, write_results, Scale};
use ppd_patterns::{Labeling, Pattern, PatternUnion};
use ppd_rim::RimModel;
use ppd_solvers::testutil::{cyclic_labeling, rim, sel};
use ppd_solvers::{BipartiteSolver, ExactSolver, PatternSolver, TwoLabelSolver};
use std::time::Duration;

/// A boxed solve closure over a fixed union/pattern.
type SolveFn = Box<dyn Fn(&RimModel, &Labeling) -> f64>;

/// One sweep point: a kernel family, an instance, and the two solvers to
/// compare on it. The model/labeling are built once at construction so the
/// reported `packed_width` always describes the instance that gets timed.
struct Point {
    family: &'static str,
    m: usize,
    /// Distinct tracked selectors (`z′`) for the DP families; pattern nodes
    /// for the general DP.
    z_prime: usize,
    label: String,
    model: RimModel,
    lab: Labeling,
    packed: SolveFn,
    reference: SolveFn,
    packed_width: Option<u32>,
}

fn two_label_union(z: usize) -> PatternUnion {
    let members: Vec<Pattern> = match z {
        1 => vec![Pattern::two_label(sel(1), sel(0))],
        2 => vec![
            Pattern::two_label(sel(1), sel(0)),
            Pattern::two_label(sel(2), sel(0)),
        ],
        _ => vec![
            Pattern::two_label(sel(1), sel(0)),
            Pattern::two_label(sel(2), sel(0)),
            Pattern::two_label(sel(3), sel(2)),
        ],
    };
    PatternUnion::new(members).unwrap()
}

fn bipartite_union(shape: &str) -> PatternUnion {
    let vee = Pattern::new(vec![sel(2), sel(0), sel(1)], vec![(0, 1), (0, 2)]).unwrap();
    let a_shape = Pattern::new(
        vec![sel(0), sel(1), sel(2), sel(3)],
        vec![(0, 2), (0, 3), (1, 3)],
    )
    .unwrap();
    match shape {
        "vee" => PatternUnion::singleton(vee).unwrap(),
        "a-shape" => PatternUnion::singleton(a_shape).unwrap(),
        _ => PatternUnion::new(vec![vee, Pattern::two_label(sel(3), sel(1))]).unwrap(),
    }
}

fn main() {
    let scale = Scale::from_env();
    let reps = env_usize("PPD_KERNEL_REPS").unwrap_or_else(|| scale.pick(7, 5));
    let max_m = env_usize("PPD_KERNEL_MAX_M").unwrap_or(usize::MAX);

    let two_label_ms: Vec<usize> = scale.pick(vec![8, 10, 12, 14], vec![10, 14, 18, 22]);
    let bipartite_ms: Vec<usize> = scale.pick(vec![8, 10, 12], vec![10, 12, 14]);
    let pattern_ms: Vec<usize> = scale.pick(vec![6, 7, 8], vec![7, 8, 9]);
    let phi = 0.5;

    let mut points: Vec<Point> = Vec::new();
    for &m in two_label_ms.iter().filter(|&&m| m <= max_m) {
        for z in [1usize, 2, 3] {
            let union = two_label_union(z);
            let lab = cyclic_labeling(m, 4);
            let model = rim(m, phi);
            let width = TwoLabelSolver::packed_state_width(&model, &lab, &union);
            let (u1, u2) = (union.clone(), union);
            points.push(Point {
                family: "two-label",
                m,
                z_prime: z + 1, // z edges share selector 0 on the right
                label: format!("two-label m={m} z={z}"),
                model,
                lab,
                packed: Box::new(move |r, l| TwoLabelSolver::new().solve(r, l, &u1).unwrap()),
                reference: Box::new(move |r, l| {
                    TwoLabelSolver::reference().solve(r, l, &u2).unwrap()
                }),
                packed_width: width,
            });
        }
    }
    for &m in bipartite_ms.iter().filter(|&&m| m <= max_m) {
        for shape in ["vee", "a-shape", "vee+two"] {
            let union = bipartite_union(shape);
            let lab = cyclic_labeling(m, 4);
            let model = rim(m, phi);
            let width = BipartiteSolver::packed_state_width(&model, &lab, &union);
            let z_prime = union.total_nodes();
            let (u1, u2) = (union.clone(), union);
            points.push(Point {
                family: "bipartite",
                m,
                z_prime,
                label: format!("bipartite m={m} {shape}"),
                model,
                lab,
                packed: Box::new(move |r, l| BipartiteSolver::new().solve(r, l, &u1).unwrap()),
                reference: Box::new(move |r, l| {
                    BipartiteSolver::reference().solve(r, l, &u2).unwrap()
                }),
                packed_width: width,
            });
        }
    }
    for &m in pattern_ms.iter().filter(|&&m| m <= max_m) {
        let chain = Pattern::new(vec![sel(0), sel(1), sel(2)], vec![(0, 1), (1, 2)]).unwrap();
        let lab = cyclic_labeling(m, 3);
        let model = rim(m, phi);
        let width = PatternSolver::packed_state_width(&model, &lab, &chain);
        let (c1, c2) = (chain.clone(), chain);
        points.push(Point {
            family: "pattern",
            m,
            z_prime: 3,
            label: format!("pattern m={m} chain3"),
            model,
            lab,
            packed: Box::new(move |r, l| PatternSolver::new().solve_pattern(r, l, &c1).unwrap()),
            reference: Box::new(move |r, l| {
                PatternSolver::reference().solve_pattern(r, l, &c2).unwrap()
            }),
            packed_width: width,
        });
    }

    println!(
        "solver_kernels: {} points, {reps} reps each (phi = {phi})\n",
        points.len()
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut records = Vec::new();
    let mut speedups_by_family: std::collections::BTreeMap<&str, Vec<f64>> =
        std::collections::BTreeMap::new();
    for point in &points {
        let (model, lab) = (&point.model, &point.lab);
        // Warm-up solve of each kernel, which also pins bit-identity.
        let p0 = (point.packed)(model, lab);
        let r0 = (point.reference)(model, lab);
        assert_eq!(
            p0.to_bits(),
            r0.to_bits(),
            "{}: packed {p0} vs reference {r0} must be bit-identical",
            point.label
        );
        let mut packed_times: Vec<Duration> = Vec::with_capacity(reps);
        let mut reference_times: Vec<Duration> = Vec::with_capacity(reps);
        for _ in 0..reps {
            let (p, t) = timed(|| (point.packed)(model, lab));
            assert_eq!(
                p.to_bits(),
                p0.to_bits(),
                "{}: unstable result",
                point.label
            );
            packed_times.push(t);
            let (r, t) = timed(|| (point.reference)(model, lab));
            assert_eq!(
                r.to_bits(),
                r0.to_bits(),
                "{}: unstable result",
                point.label
            );
            reference_times.push(t);
        }
        let packed_us = median_duration(&packed_times).as_secs_f64() * 1e6;
        let reference_us = median_duration(&reference_times).as_secs_f64() * 1e6;
        let speedup = reference_us / packed_us.max(1e-9);
        speedups_by_family
            .entry(point.family)
            .or_default()
            .push(speedup);
        rows.push(vec![
            point.label.clone(),
            match point.packed_width {
                Some(w) => format!("{w}b"),
                None => "fallback".into(),
            },
            format!("{reference_us:.1}"),
            format!("{packed_us:.1}"),
            format!("{speedup:.2}x"),
        ]);
        records.push(serde_json::json!({
            "family": point.family,
            "m": point.m,
            "z_prime": point.z_prime,
            "label": point.label.clone(),
            "packed_width_bits": point.packed_width,
            "probability": p0,
            "reference_us": reference_us,
            "packed_us": packed_us,
            "speedup": speedup,
        }));
    }

    ppd_bench::print_table(
        &["point", "state", "reference µs", "packed µs", "speedup"],
        &rows,
    );
    println!();

    let geomean =
        |v: &[f64]| -> f64 { (v.iter().map(|s| s.ln()).sum::<f64>() / v.len() as f64).exp() };
    let mut summaries: std::collections::BTreeMap<String, serde_json::Value> =
        std::collections::BTreeMap::new();
    for (family, speedups) in &speedups_by_family {
        let g = geomean(speedups);
        println!(
            "{family}: geometric-mean speedup {g:.2}x over {} points",
            speedups.len()
        );
        summaries.insert(family.to_string(), serde_json::json!(g));
    }

    write_results(
        "solver_kernels",
        &serde_json::json!({
            "scale": format!("{scale:?}"),
            "phi": phi,
            "reps": reps,
            "points": records,
            "geomean_speedup": serde_json::Value::Object(summaries),
        }),
    );
}
