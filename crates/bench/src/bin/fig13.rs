//! Figure 13: MIS-AMP-adaptive over Benchmark-B — (a) proposal-construction
//! overhead vs. query size, (b) sampling/convergence time vs. number of items.

use ppd_bench::{median_duration, print_table, timed, write_results, Scale};
use ppd_datagen::{benchmark_b, BenchmarkBConfig};
use ppd_solvers::MisAmpLite;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;

fn main() {
    let scale = Scale::from_env();
    let instances_per_cell = scale.pick(3, 10);
    let proposals = scale.pick(5, 10);
    let samples = scale.pick(300, 1000);
    println!("Figure 13 — MIS-AMP proposal-construction overhead and sampling time (Benchmark-B)");
    println!("scale: {scale:?}\n");

    let mut rows_a = Vec::new();
    let mut records = Vec::new();
    // (a) overhead: m fixed, 3 patterns/union, vary labels and items/label.
    let m_a = scale.pick(30, 100);
    for &labels in &[3usize, 4, 5] {
        for &items in scale.pick(&[3usize, 5][..], &[3usize, 5, 7][..]) {
            let config = BenchmarkBConfig {
                num_items: m_a,
                phi: 0.1,
                patterns_per_union: 3,
                labels_per_pattern: labels,
                items_per_label: items,
                instances: instances_per_cell,
            };
            let family = benchmark_b(&config, 13 + (labels * items) as u64);
            let mut overheads = Vec::new();
            for inst in &family {
                let lite = MisAmpLite::new(proposals, samples);
                let (prepared, overhead) =
                    timed(|| lite.prepare(&inst.model, &inst.labeling, &inst.union));
                if prepared.is_ok() {
                    overheads.push(overhead);
                }
            }
            let median = median_duration(&overheads);
            rows_a.push(vec![
                labels.to_string(),
                items.to_string(),
                format!("{:.3}", median.as_secs_f64()),
            ]);
            records.push(json!({
                "panel": "a", "m": m_a, "labels_per_pattern": labels,
                "items_per_label": items,
                "median_overhead_seconds": median.as_secs_f64(),
            }));
        }
    }
    println!("(a) proposal-construction overhead, m = {m_a}, 3 patterns/union");
    print_table(
        &["#labels/pattern", "#items/label", "median overhead (s)"],
        &rows_a,
    );

    // (b) sampling time: 2 patterns/union, 5 items/label, vary m and labels.
    let mut rows_b = Vec::new();
    for &labels in &[3usize, 4, 5] {
        for &m in scale.pick(&[10usize, 20, 40][..], &[20usize, 50, 100, 200][..]) {
            let config = BenchmarkBConfig {
                num_items: m,
                phi: 0.1,
                patterns_per_union: 2,
                labels_per_pattern: labels,
                items_per_label: 5,
                instances: instances_per_cell,
            };
            let family = benchmark_b(&config, 77 + (labels * m) as u64);
            let mut sampling_times = Vec::new();
            for (idx, inst) in family.iter().enumerate() {
                let lite = MisAmpLite::new(proposals, samples);
                let Ok(prepared) = lite.prepare(&inst.model, &inst.labeling, &inst.union) else {
                    continue;
                };
                let mut rng = StdRng::seed_from_u64(1300 + idx as u64);
                let (_, sampling) =
                    timed(|| lite.estimate_prepared(&inst.model, &prepared, &mut rng));
                sampling_times.push(sampling);
            }
            let median = median_duration(&sampling_times);
            rows_b.push(vec![
                m.to_string(),
                labels.to_string(),
                format!("{:.3}", median.as_secs_f64()),
            ]);
            records.push(json!({
                "panel": "b", "m": m, "labels_per_pattern": labels,
                "median_sampling_seconds": median.as_secs_f64(),
            }));
        }
    }
    println!("\n(b) sampling (convergence) time, 2 patterns/union, 5 items/label");
    print_table(&["m", "#labels/pattern", "median sampling (s)"], &rows_b);
    println!(
        "\nExpected shape (paper): the construction overhead rises sharply with the number of \
         labels and items per label, while the sampling time grows only moderately with m and is \
         largely insensitive to the query size."
    );
    write_results("fig13", &json!({ "series": records }));
}
