//! Request routing: the per-database tenant registry behind the front
//! door's single admission layer.
//!
//! Each registered database gets its own [`Engine`] — engines pin their
//! evaluation configuration and own content-addressed caches, and content
//! hashes from different databases must never share a marginal cache
//! keyspace conceptually (two tenants coincidentally producing the same
//! unit content *may* share bits safely, but isolation keeps per-tenant
//! cache capacity and stats meaningful). Routing is by database id at
//! submission time; an unknown id fails fast with
//! [`ServiceError::UnknownDatabase`](crate::ServiceError::UnknownDatabase)
//! before anything is queued.

use crate::request::ServiceError;
use ppd_core::{Engine, EvalConfig, PpdDatabase};
use std::collections::HashMap;

/// One database and the engine dedicated to it.
pub(crate) struct Tenant {
    pub(crate) id: String,
    pub(crate) db: PpdDatabase,
    pub(crate) engine: Engine,
}

/// The tenant registry: id → engine/database, fixed at service start.
///
/// The first registered tenant is the *default*: requests that name no
/// database route there, which is what keeps the single-database API
/// (`Service::new` + `Service::submit`) working unchanged on top of the
/// multi-tenant core.
pub(crate) struct Router {
    tenants: Vec<Tenant>,
    by_id: HashMap<String, usize>,
}

impl Router {
    /// Builds the registry, one fresh engine per database, all sharing one
    /// evaluation configuration (the determinism contract is per-config).
    /// Duplicate ids keep the first registration.
    pub(crate) fn new(databases: Vec<(String, PpdDatabase)>, eval: &EvalConfig) -> Self {
        let mut tenants: Vec<Tenant> = Vec::with_capacity(databases.len());
        let mut by_id = HashMap::new();
        for (id, db) in databases {
            if by_id.contains_key(&id) {
                continue;
            }
            by_id.insert(id.clone(), tenants.len());
            tenants.push(Tenant {
                id,
                db,
                engine: Engine::new(eval.clone()),
            });
        }
        assert!(!tenants.is_empty(), "a service needs at least one database");
        Router { tenants, by_id }
    }

    /// Resolves a request's database id to a tenant index; `None` routes to
    /// the default (first) tenant.
    pub(crate) fn route(&self, database: Option<&str>) -> Result<usize, ServiceError> {
        match database {
            None => Ok(0),
            Some(id) => self
                .by_id
                .get(id)
                .copied()
                .ok_or_else(|| ServiceError::UnknownDatabase(id.to_string())),
        }
    }

    pub(crate) fn tenant(&self, index: usize) -> &Tenant {
        &self.tenants[index]
    }

    pub(crate) fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppd_datagen::{polls_database, PollsConfig};

    fn db(seed: u64) -> PpdDatabase {
        polls_database(&PollsConfig {
            num_candidates: 4,
            num_voters: 3,
            seed,
        })
    }

    #[test]
    fn routes_by_id_with_a_default() {
        let router = Router::new(
            vec![("a".into(), db(1)), ("b".into(), db(2))],
            &EvalConfig::exact(),
        );
        assert_eq!(router.route(None).unwrap(), 0);
        assert_eq!(router.route(Some("a")).unwrap(), 0);
        assert_eq!(router.route(Some("b")).unwrap(), 1);
        assert!(matches!(
            router.route(Some("c")),
            Err(ServiceError::UnknownDatabase(id)) if id == "c"
        ));
        assert_eq!(router.tenants().len(), 2);
        assert_eq!(router.tenant(1).id, "b");
    }

    #[test]
    fn duplicate_ids_keep_the_first_registration() {
        let first = db(1);
        let router = Router::new(
            vec![("a".into(), first.clone()), ("a".into(), db(2))],
            &EvalConfig::exact(),
        );
        assert_eq!(router.tenants().len(), 1);
    }
}
