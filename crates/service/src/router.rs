//! Request routing: the per-database tenant registry behind the front
//! door's single admission layer.
//!
//! Each registered database gets its own [`Engine`] — engines pin their
//! evaluation configuration and own content-addressed caches, and content
//! hashes from different databases must never share a marginal cache
//! keyspace conceptually (two tenants coincidentally producing the same
//! unit content *may* share bits safely, but isolation keeps per-tenant
//! cache capacity and stats meaningful). Routing is by database id at
//! submission time; an unknown id fails fast with
//! [`ServiceError::UnknownDatabase`](crate::ServiceError::UnknownDatabase)
//! before anything is queued.

use crate::request::ServiceError;
use ppd_core::{
    Engine, EngineObs, ErrorBudget, EvalConfig, PoolCache, PpdDatabase, PpdError, SolverChoice,
    Update,
};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard};

/// How many per-budget engines one tenant keeps alive at once. Requests
/// carrying distinct error budgets legitimately produce different answer
/// bits, so each distinct budget needs its own engine — but an unbounded
/// registry would let a scan over budgets pin unbounded cache memory. Past
/// this bound the least-recently-used engine is retired, donating its
/// calibration timings to the tenant's base engine first.
pub(crate) const MAX_BUDGET_ENGINES: usize = 8;

/// One lazily created error-budget engine plus its last-use tick, the LRU
/// retirement key.
struct BudgetSlot {
    engine: Arc<Engine>,
    last_used: u64,
}

/// One database and the engine dedicated to it.
pub(crate) struct Tenant {
    pub(crate) id: String,
    /// The live database. Written only by the dispatcher *between* waves
    /// (see `run_wave`), read for the duration of each wave group — so
    /// wave-mates always evaluate one fixed snapshot.
    pub(crate) db: RwLock<PpdDatabase>,
    pub(crate) engine: Engine,
    /// The tenant's base evaluation configuration, kept so per-request
    /// error-budget engines inherit everything except the solver choice.
    eval: EvalConfig,
    /// The tenant's engine instrument bundle: cloned into every engine this
    /// tenant spawns, so the base and all budget engines aggregate into one
    /// labelled set of cells. Purely observational.
    obs: EngineObs,
    /// The tenant's shared proposal-pool cache, handed to the base engine
    /// and every budget engine: pools are keyed by unit content and are
    /// budget independent, so a request arriving under a new error budget
    /// reuses the union decompositions and greedy-modal walks an earlier
    /// budget already paid for. Sharing never crosses tenants — different
    /// databases keep separate pool keyspaces like every other cache.
    pools: Arc<PoolCache>,
    /// Lazily created engines for requests that override the solver with an
    /// [`ErrorBudget`], keyed by `(epsilon.to_bits(), confidence.to_bits())`
    /// so bit-identical budgets share one engine (and its caches) while
    /// distinct budgets — which legitimately produce different answer bits —
    /// never share a marginal-cache keyspace with the base engine. Bounded
    /// to [`MAX_BUDGET_ENGINES`] with LRU retirement.
    budget_engines: Mutex<BTreeMap<(u64, u64), BudgetSlot>>,
    /// Monotonic use counter ordering budget-engine retirement. A logical
    /// clock rather than wall time: deterministic under test and immune to
    /// clock steps.
    use_tick: AtomicU64,
}

impl Tenant {
    /// The database version currently served.
    pub(crate) fn version(&self) -> u64 {
        self.read_db().version()
    }

    pub(crate) fn read_db(&self) -> RwLockReadGuard<'_, PpdDatabase> {
        self.db.read().expect("tenant database poisoned")
    }

    /// Applies one update to this tenant's database and surgically
    /// invalidates *every* engine serving it — the base engine and all live
    /// budget engines cache work units keyed by session content, so all of
    /// them must drop the units covering changed sessions. Returns the new
    /// version id and the total number of cached units invalidated. On a
    /// rejected update nothing changes anywhere.
    pub(crate) fn apply_update(&self, update: Update) -> Result<(u64, u64), PpdError> {
        let mut db = self.db.write().expect("tenant database poisoned");
        let (version, changed) = db.apply(update)?;
        let mut invalidated = self.engine.invalidate(&changed);
        let engines = self
            .budget_engines
            .lock()
            .expect("budget engine registry poisoned");
        for slot in engines.values() {
            invalidated += slot.engine.invalidate(&changed);
        }
        Ok((version, invalidated))
    }

    /// The engine that serves requests carrying `budget`: created on first
    /// sight of that exact `(ε, confidence)` pair, reused afterwards so its
    /// marginal and calibration caches warm up across requests. Creating
    /// one past the [`MAX_BUDGET_ENGINES`] bound retires the least recently
    /// used engine, donating its calibration timings to the base engine so
    /// measured costs outlive the engine that measured them.
    pub(crate) fn budget_engine(&self, budget: ErrorBudget) -> Arc<Engine> {
        let key = (budget.epsilon.to_bits(), budget.confidence.to_bits());
        let tick = self.use_tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut engines = self
            .budget_engines
            .lock()
            .expect("budget engine registry poisoned");
        if let Some(slot) = engines.get_mut(&key) {
            slot.last_used = tick;
            return Arc::clone(&slot.engine);
        }
        if engines.len() >= MAX_BUDGET_ENGINES {
            let oldest = engines
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(&key, _)| key)
                .expect("non-empty registry has an LRU entry");
            let retired = engines.remove(&oldest).expect("LRU key resolves");
            retired.engine.donate_calibration(&self.engine);
        }
        let mut eval = self.eval.clone();
        eval.solver = SolverChoice::ErrorBudget(budget);
        let engine = Arc::new(Engine::with_pool_cache(
            eval,
            self.obs.clone(),
            Arc::clone(&self.pools),
        ));
        engines.insert(
            key,
            BudgetSlot {
                engine: Arc::clone(&engine),
                last_used: tick,
            },
        );
        engine
    }

    /// Cache counters over *all* of this tenant's engines: the base engine
    /// plus every budget engine currently alive.
    pub(crate) fn engine_cache_stats(&self) -> Vec<ppd_core::CacheStats> {
        let mut all = vec![self.engine.cache_stats()];
        let engines = self
            .budget_engines
            .lock()
            .expect("budget engine registry poisoned");
        all.extend(engines.values().map(|slot| slot.engine.cache_stats()));
        all
    }
}

/// The tenant registry: id → engine/database, fixed at service start.
///
/// The first registered tenant is the *default*: requests that name no
/// database route there, which is what keeps the single-database API
/// (`Service::new` + `Service::submit`) working unchanged on top of the
/// multi-tenant core.
pub(crate) struct Router {
    tenants: Vec<Tenant>,
    by_id: HashMap<String, usize>,
}

impl Router {
    /// Builds the registry, one fresh engine per database, all sharing one
    /// evaluation configuration (the determinism contract is per-config).
    /// `engine_obs` yields each tenant's instrument bundle by id. Duplicate
    /// ids keep the first registration.
    pub(crate) fn new(
        databases: Vec<(String, PpdDatabase)>,
        eval: &EvalConfig,
        engine_obs: impl Fn(&str) -> EngineObs,
    ) -> Self {
        let mut tenants: Vec<Tenant> = Vec::with_capacity(databases.len());
        let mut by_id = HashMap::new();
        for (id, db) in databases {
            if by_id.contains_key(&id) {
                continue;
            }
            by_id.insert(id.clone(), tenants.len());
            let obs = engine_obs(&id);
            let pools = Arc::new(PoolCache::default());
            tenants.push(Tenant {
                id,
                db: RwLock::new(db),
                engine: Engine::with_pool_cache(eval.clone(), obs.clone(), Arc::clone(&pools)),
                eval: eval.clone(),
                obs,
                pools,
                budget_engines: Mutex::new(BTreeMap::new()),
                use_tick: AtomicU64::new(0),
            });
        }
        assert!(!tenants.is_empty(), "a service needs at least one database");
        Router { tenants, by_id }
    }

    /// Resolves a request's database id to a tenant index; `None` routes to
    /// the default (first) tenant.
    pub(crate) fn route(&self, database: Option<&str>) -> Result<usize, ServiceError> {
        match database {
            None => Ok(0),
            Some(id) => self
                .by_id
                .get(id)
                .copied()
                .ok_or_else(|| ServiceError::UnknownDatabase(id.to_string())),
        }
    }

    pub(crate) fn tenant(&self, index: usize) -> &Tenant {
        &self.tenants[index]
    }

    pub(crate) fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppd_datagen::{polls_database, PollsConfig};

    fn db(seed: u64) -> PpdDatabase {
        polls_database(&PollsConfig {
            num_candidates: 4,
            num_voters: 3,
            seed,
        })
    }

    #[test]
    fn routes_by_id_with_a_default() {
        let router = Router::new(
            vec![("a".into(), db(1)), ("b".into(), db(2))],
            &EvalConfig::exact(),
            |_| EngineObs::disabled(),
        );
        assert_eq!(router.route(None).unwrap(), 0);
        assert_eq!(router.route(Some("a")).unwrap(), 0);
        assert_eq!(router.route(Some("b")).unwrap(), 1);
        assert!(matches!(
            router.route(Some("c")),
            Err(ServiceError::UnknownDatabase(id)) if id == "c"
        ));
        assert_eq!(router.tenants().len(), 2);
        assert_eq!(router.tenant(1).id, "b");
    }

    #[test]
    fn budget_engines_are_created_once_per_distinct_budget() {
        let router = Router::new(vec![("a".into(), db(1))], &EvalConfig::exact(), |_| {
            EngineObs::disabled()
        });
        let tenant = router.tenant(0);
        let budget = ErrorBudget {
            epsilon: 0.01,
            confidence: 0.95,
        };
        let first = tenant.budget_engine(budget);
        let again = tenant.budget_engine(budget);
        assert!(
            Arc::ptr_eq(&first, &again),
            "bit-identical budgets share one engine"
        );
        let other = tenant.budget_engine(ErrorBudget {
            epsilon: 0.05,
            confidence: 0.95,
        });
        assert!(!Arc::ptr_eq(&first, &other), "distinct budgets do not");
        // Base engine + two budget engines.
        assert_eq!(tenant.engine_cache_stats().len(), 3);
    }

    #[test]
    fn budget_engines_share_one_proposal_pool_cache_per_tenant() {
        use ppd_datagen::polls_q1_query;
        // Zero threshold forces every unit onto the budgeted sampler so
        // each unique unit needs a proposal pool.
        let eval = EvalConfig::exact().with_exact_cost_threshold(0.0);
        let router = Router::new(vec![("a".into(), db(1))], &eval, |_| EngineObs::disabled());
        let tenant = router.tenant(0);
        let q = polls_q1_query();

        let loose = tenant.budget_engine(ErrorBudget {
            epsilon: 0.05,
            confidence: 0.9,
        });
        loose.session_probabilities(&tenant.read_db(), &q).unwrap();
        let built = loose.cache_stats().pools_built;
        assert!(built > 0, "budgeted units must build pools");

        // A second engine under a different budget re-estimates the same
        // units: its marginal cache is cold, but every proposal pool comes
        // from the tenant's shared cache — zero new decompositions.
        let tight = tenant.budget_engine(ErrorBudget {
            epsilon: 0.01,
            confidence: 0.9,
        });
        tight.session_probabilities(&tenant.read_db(), &q).unwrap();
        let stats = tight.cache_stats();
        assert_eq!(
            stats.pools_built, built,
            "a sibling budget engine must not rebuild pools"
        );
        assert_eq!(
            stats.pool_hits, built,
            "every budgeted unit must reuse the sibling's pool"
        );
    }

    #[test]
    fn budget_engines_retire_least_recently_used_past_the_bound() {
        let router = Router::new(vec![("a".into(), db(1))], &EvalConfig::exact(), |_| {
            EngineObs::disabled()
        });
        let tenant = router.tenant(0);
        let budget = |i: usize| ErrorBudget {
            epsilon: 0.01 + i as f64 * 0.001,
            confidence: 0.9,
        };
        let first = tenant.budget_engine(budget(0));
        let second = tenant.budget_engine(budget(1));
        for i in 2..MAX_BUDGET_ENGINES {
            tenant.budget_engine(budget(i));
        }
        // Touch the oldest so budget(1) becomes the LRU victim...
        assert!(Arc::ptr_eq(&first, &tenant.budget_engine(budget(0))));
        // ...then overflow the bound, retiring it.
        tenant.budget_engine(budget(MAX_BUDGET_ENGINES));
        assert_eq!(
            tenant.engine_cache_stats().len(),
            1 + MAX_BUDGET_ENGINES,
            "the registry must stay bounded"
        );
        assert!(
            Arc::ptr_eq(&first, &tenant.budget_engine(budget(0))),
            "recently used engines survive"
        );
        let second_after = tenant.budget_engine(budget(1));
        assert!(
            !Arc::ptr_eq(&second, &second_after),
            "the LRU victim was retired and is rebuilt on next use"
        );
    }

    #[test]
    fn tenant_updates_bump_the_version_and_invalidate_every_engine() {
        use ppd_core::{MallowsModel, Ranking, Session, Update, Value};
        let router = Router::new(vec![("a".into(), db(1))], &EvalConfig::exact(), |_| {
            EngineObs::disabled()
        });
        let tenant = router.tenant(0);
        assert_eq!(tenant.version(), 1);
        let relation = tenant.read_db().preference_relation_names()[0].to_string();
        let arity = tenant
            .read_db()
            .preference_relation(&relation)
            .unwrap()
            .session_columns()
            .len();
        let session = Session::new(
            (0..arity).map(|i| Value::from(format!("s{i}"))).collect(),
            MallowsModel::new(Ranking::new(vec![1, 0, 2, 3]).unwrap(), 0.4).unwrap(),
        );
        let (version, invalidated) = tenant
            .apply_update(Update::InsertSession {
                prelation: relation.clone(),
                session,
            })
            .unwrap();
        assert_eq!(version, 2);
        assert_eq!(invalidated, 0, "nothing was cached yet");
        assert_eq!(tenant.version(), 2);
        assert!(tenant
            .apply_update(Update::DeleteSession {
                prelation: relation,
                index: 99,
            })
            .is_err());
        assert_eq!(tenant.version(), 2, "rejected updates change nothing");
    }

    #[test]
    fn duplicate_ids_keep_the_first_registration() {
        let first = db(1);
        let router = Router::new(
            vec![("a".into(), first.clone()), ("a".into(), db(2))],
            &EvalConfig::exact(),
            |_| EngineObs::disabled(),
        );
        assert_eq!(router.tenants().len(), 1);
    }
}
