//! Request routing: the per-database tenant registry behind the front
//! door's single admission layer.
//!
//! Each registered database gets its own [`Engine`] — engines pin their
//! evaluation configuration and own content-addressed caches, and content
//! hashes from different databases must never share a marginal cache
//! keyspace conceptually (two tenants coincidentally producing the same
//! unit content *may* share bits safely, but isolation keeps per-tenant
//! cache capacity and stats meaningful). Routing is by database id at
//! submission time; an unknown id fails fast with
//! [`ServiceError::UnknownDatabase`](crate::ServiceError::UnknownDatabase)
//! before anything is queued.

use crate::request::ServiceError;
use ppd_core::{Engine, ErrorBudget, EvalConfig, PpdDatabase, SolverChoice};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// One database and the engine dedicated to it.
pub(crate) struct Tenant {
    pub(crate) id: String,
    pub(crate) db: PpdDatabase,
    pub(crate) engine: Engine,
    /// The tenant's base evaluation configuration, kept so per-request
    /// error-budget engines inherit everything except the solver choice.
    eval: EvalConfig,
    /// Lazily created engines for requests that override the solver with an
    /// [`ErrorBudget`], keyed by `(epsilon.to_bits(), confidence.to_bits())`
    /// so bit-identical budgets share one engine (and its caches) while
    /// distinct budgets — which legitimately produce different answer bits —
    /// never share a marginal-cache keyspace with the base engine.
    budget_engines: Mutex<BTreeMap<(u64, u64), Arc<Engine>>>,
}

impl Tenant {
    /// The engine that serves requests carrying `budget`: created on first
    /// sight of that exact `(ε, confidence)` pair, reused afterwards so its
    /// marginal and calibration caches warm up across requests.
    pub(crate) fn budget_engine(&self, budget: ErrorBudget) -> Arc<Engine> {
        let key = (budget.epsilon.to_bits(), budget.confidence.to_bits());
        let mut engines = self
            .budget_engines
            .lock()
            .expect("budget engine registry poisoned");
        Arc::clone(engines.entry(key).or_insert_with(|| {
            let mut eval = self.eval.clone();
            eval.solver = SolverChoice::ErrorBudget(budget);
            Arc::new(Engine::new(eval))
        }))
    }

    /// Cache counters over *all* of this tenant's engines: the base engine
    /// plus every budget engine spawned so far.
    pub(crate) fn engine_cache_stats(&self) -> Vec<ppd_core::CacheStats> {
        let mut all = vec![self.engine.cache_stats()];
        let engines = self
            .budget_engines
            .lock()
            .expect("budget engine registry poisoned");
        all.extend(engines.values().map(|engine| engine.cache_stats()));
        all
    }
}

/// The tenant registry: id → engine/database, fixed at service start.
///
/// The first registered tenant is the *default*: requests that name no
/// database route there, which is what keeps the single-database API
/// (`Service::new` + `Service::submit`) working unchanged on top of the
/// multi-tenant core.
pub(crate) struct Router {
    tenants: Vec<Tenant>,
    by_id: HashMap<String, usize>,
}

impl Router {
    /// Builds the registry, one fresh engine per database, all sharing one
    /// evaluation configuration (the determinism contract is per-config).
    /// Duplicate ids keep the first registration.
    pub(crate) fn new(databases: Vec<(String, PpdDatabase)>, eval: &EvalConfig) -> Self {
        let mut tenants: Vec<Tenant> = Vec::with_capacity(databases.len());
        let mut by_id = HashMap::new();
        for (id, db) in databases {
            if by_id.contains_key(&id) {
                continue;
            }
            by_id.insert(id.clone(), tenants.len());
            tenants.push(Tenant {
                id,
                db,
                engine: Engine::new(eval.clone()),
                eval: eval.clone(),
                budget_engines: Mutex::new(BTreeMap::new()),
            });
        }
        assert!(!tenants.is_empty(), "a service needs at least one database");
        Router { tenants, by_id }
    }

    /// Resolves a request's database id to a tenant index; `None` routes to
    /// the default (first) tenant.
    pub(crate) fn route(&self, database: Option<&str>) -> Result<usize, ServiceError> {
        match database {
            None => Ok(0),
            Some(id) => self
                .by_id
                .get(id)
                .copied()
                .ok_or_else(|| ServiceError::UnknownDatabase(id.to_string())),
        }
    }

    pub(crate) fn tenant(&self, index: usize) -> &Tenant {
        &self.tenants[index]
    }

    pub(crate) fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppd_datagen::{polls_database, PollsConfig};

    fn db(seed: u64) -> PpdDatabase {
        polls_database(&PollsConfig {
            num_candidates: 4,
            num_voters: 3,
            seed,
        })
    }

    #[test]
    fn routes_by_id_with_a_default() {
        let router = Router::new(
            vec![("a".into(), db(1)), ("b".into(), db(2))],
            &EvalConfig::exact(),
        );
        assert_eq!(router.route(None).unwrap(), 0);
        assert_eq!(router.route(Some("a")).unwrap(), 0);
        assert_eq!(router.route(Some("b")).unwrap(), 1);
        assert!(matches!(
            router.route(Some("c")),
            Err(ServiceError::UnknownDatabase(id)) if id == "c"
        ));
        assert_eq!(router.tenants().len(), 2);
        assert_eq!(router.tenant(1).id, "b");
    }

    #[test]
    fn budget_engines_are_created_once_per_distinct_budget() {
        let router = Router::new(vec![("a".into(), db(1))], &EvalConfig::exact());
        let tenant = router.tenant(0);
        let budget = ErrorBudget {
            epsilon: 0.01,
            confidence: 0.95,
        };
        let first = tenant.budget_engine(budget);
        let again = tenant.budget_engine(budget);
        assert!(
            Arc::ptr_eq(&first, &again),
            "bit-identical budgets share one engine"
        );
        let other = tenant.budget_engine(ErrorBudget {
            epsilon: 0.05,
            confidence: 0.95,
        });
        assert!(!Arc::ptr_eq(&first, &other), "distinct budgets do not");
        // Base engine + two budget engines.
        assert_eq!(tenant.engine_cache_stats().len(), 3);
    }

    #[test]
    fn duplicate_ids_keep_the_first_registration() {
        let first = db(1);
        let router = Router::new(
            vec![("a".into(), first.clone()), ("a".into(), db(2))],
            &EvalConfig::exact(),
        );
        assert_eq!(router.tenants().len(), 1);
    }
}
