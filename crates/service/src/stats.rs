//! Service observability: the [`ServiceStats`] snapshot and its internal
//! collector.

use ppd_core::CacheStats;
use std::collections::BTreeMap;
use std::time::Duration;

/// Snapshot of a service's activity since construction.
///
/// `answered + failed` accounts for every query that left the queue;
/// `submitted − rejected − answered − failed − queue_depth` is the number
/// currently being solved.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceStats {
    /// Queries admitted by [`Service::submit`](crate::Service::submit).
    pub submitted: u64,
    /// Queries refused by admission control (`Overloaded`).
    pub rejected: u64,
    /// Queries answered successfully.
    pub answered: u64,
    /// Queries delivered an evaluation error.
    pub failed: u64,
    /// Queries currently waiting in the admission queue.
    pub queue_depth: usize,
    /// Waves dispatched so far.
    pub waves: u64,
    /// Size of the largest wave.
    pub max_wave: usize,
    /// Wave-size histogram: `(size, number of waves of that size)`,
    /// ascending by size.
    pub wave_sizes: Vec<(usize, u64)>,
    /// Mean submit-to-delivery latency over answered and failed queries.
    pub mean_latency: Duration,
    /// Worst submit-to-delivery latency.
    pub max_latency: Duration,
    /// The engine's cache counters, carried over so one snapshot tells the
    /// whole story (the hit rate is where batching pays off).
    pub cache: CacheStats,
}

impl ServiceStats {
    /// Mean wave size (0 before the first wave).
    pub fn mean_wave_size(&self) -> f64 {
        if self.waves == 0 {
            return 0.0;
        }
        let batched: u64 = self
            .wave_sizes
            .iter()
            .map(|&(size, count)| size as u64 * count)
            .sum();
        batched as f64 / self.waves as f64
    }
}

/// One-line summary for service logs, e.g. `service: 40 submitted (2
/// rejected), 37 answered, 1 failed, 0 queued; 5 waves (mean 7.6, max 12);
/// latency mean 3.2ms, max 11.0ms | marginals …`.
impl std::fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "service: {} submitted ({} rejected), {} answered, {} failed, {} queued; \
             {} waves (mean {:.1}, max {}); latency mean {:.1?}, max {:.1?} | {}",
            self.submitted,
            self.rejected,
            self.answered,
            self.failed,
            self.queue_depth,
            self.waves,
            self.mean_wave_size(),
            self.max_wave,
            self.mean_latency,
            self.max_latency,
            self.cache
        )
    }
}

/// The mutable half, updated by the service under its stats lock.
#[derive(Debug, Default)]
pub(crate) struct StatsCollector {
    submitted: u64,
    rejected: u64,
    answered: u64,
    failed: u64,
    waves: u64,
    max_wave: usize,
    wave_sizes: BTreeMap<usize, u64>,
    latency_total: Duration,
    latency_max: Duration,
}

impl StatsCollector {
    pub(crate) fn record_submit(&mut self) {
        self.submitted += 1;
    }

    pub(crate) fn record_reject(&mut self) {
        self.rejected += 1;
    }

    pub(crate) fn record_wave(&mut self, size: usize) {
        self.waves += 1;
        self.max_wave = self.max_wave.max(size);
        *self.wave_sizes.entry(size).or_insert(0) += 1;
    }

    pub(crate) fn record_delivery(&mut self, latency: Duration, ok: bool) {
        if ok {
            self.answered += 1;
        } else {
            self.failed += 1;
        }
        self.latency_total += latency;
        self.latency_max = self.latency_max.max(latency);
    }

    pub(crate) fn snapshot(&self, queue_depth: usize, cache: CacheStats) -> ServiceStats {
        let delivered = self.answered + self.failed;
        ServiceStats {
            submitted: self.submitted,
            rejected: self.rejected,
            answered: self.answered,
            failed: self.failed,
            queue_depth,
            waves: self.waves,
            max_wave: self.max_wave,
            wave_sizes: self.wave_sizes.iter().map(|(&s, &c)| (s, c)).collect(),
            mean_latency: self
                .latency_total
                .checked_div(delivered as u32)
                .unwrap_or(Duration::ZERO),
            max_latency: self.latency_max,
            cache,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_aggregates_and_snapshots() {
        let mut c = StatsCollector::default();
        for _ in 0..4 {
            c.record_submit();
        }
        c.record_reject();
        c.record_wave(3);
        c.record_wave(1);
        c.record_wave(3);
        c.record_delivery(Duration::from_millis(10), true);
        c.record_delivery(Duration::from_millis(30), false);
        let stats = c.snapshot(2, CacheStats::default());
        assert_eq!(stats.submitted, 4);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.answered, 1);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.queue_depth, 2);
        assert_eq!(stats.waves, 3);
        assert_eq!(stats.max_wave, 3);
        assert_eq!(stats.wave_sizes, vec![(1, 1), (3, 2)]);
        assert!((stats.mean_wave_size() - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(stats.mean_latency, Duration::from_millis(20));
        assert_eq!(stats.max_latency, Duration::from_millis(30));
    }

    #[test]
    fn display_is_one_line() {
        let stats = StatsCollector::default().snapshot(0, CacheStats::default());
        let line = stats.to_string();
        assert!(line.starts_with("service:"), "{line}");
        assert!(
            line.contains("marginals"),
            "cache summary rides along: {line}"
        );
        assert!(!line.contains('\n'), "{line}");
    }

    #[test]
    fn empty_stats_have_zero_means() {
        let stats = ServiceStats::default();
        assert_eq!(stats.mean_wave_size(), 0.0);
        assert_eq!(stats.mean_latency, Duration::ZERO);
    }
}
