//! Service observability: the [`ServiceStats`] snapshot and its internal
//! collector.

use crate::request::AdmissionClass;
use ppd_core::CacheStats;
use std::collections::BTreeMap;
use std::time::Duration;

/// Snapshot of a service's activity since construction.
///
/// `answered + failed + expired` accounts for every query that left the
/// queue; `submitted − rejected − answered − failed − expired − queue_depth`
/// is the number currently being solved. Per-class splits of `submitted`
/// and `rejected` are in the `interactive_*` / `batch_*` fields.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceStats {
    /// Queries admitted across both classes.
    pub submitted: u64,
    /// Queries refused by admission control (`Overloaded`), both classes.
    pub rejected: u64,
    /// Interactive queries admitted.
    pub interactive_submitted: u64,
    /// Interactive queries refused by admission control.
    pub interactive_rejected: u64,
    /// Batch queries admitted.
    pub batch_submitted: u64,
    /// Batch queries refused by admission control.
    pub batch_rejected: u64,
    /// Queries answered successfully.
    pub answered: u64,
    /// Queries delivered an evaluation error.
    pub failed: u64,
    /// Queries resolved `DeadlineExceeded` or abandoned by cancellation.
    pub expired: u64,
    /// Database updates applied (admitted like requests, applied between
    /// waves; rejected updates count under `failed`).
    pub updates_applied: u64,
    /// Queries currently waiting in the admission queue (both lanes).
    pub queue_depth: usize,
    /// Queries currently waiting in the interactive lane.
    pub interactive_queue_depth: usize,
    /// Queries currently waiting in the batch lane.
    pub batch_queue_depth: usize,
    /// Time since the service started.
    pub uptime: Duration,
    /// Waves being executed right now (0 or 1 with one dispatcher).
    pub in_flight_waves: u64,
    /// Waves dispatched so far.
    pub waves: u64,
    /// Size of the largest wave.
    pub max_wave: usize,
    /// Wave-size histogram: `(size, number of waves of that size)`,
    /// ascending by size.
    pub wave_sizes: Vec<(usize, u64)>,
    /// Mean submit-to-delivery latency over delivered queries.
    pub mean_latency: Duration,
    /// Worst submit-to-delivery latency.
    pub max_latency: Duration,
    /// The engines' cache counters summed across tenants, carried over so
    /// one snapshot tells the whole story (the hit rate is where batching
    /// pays off).
    pub cache: CacheStats,
}

impl ServiceStats {
    /// Mean wave size (0 before the first wave).
    pub fn mean_wave_size(&self) -> f64 {
        if self.waves == 0 {
            return 0.0;
        }
        let batched: u64 = self
            .wave_sizes
            .iter()
            .map(|&(size, count)| size as u64 * count)
            .sum();
        batched as f64 / self.waves as f64
    }
}

/// One-line summary for service logs, e.g. `service: 40 submitted (30
/// interactive / 10 batch, 2 rejected), 36 answered, 1 failed, 1 expired,
/// 0 queued; 5 waves (mean 7.6, max 12); latency mean 3.2ms, max 11.0ms |
/// marginals …`.
impl std::fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "service: {} submitted ({} interactive / {} batch, {} rejected), \
             {} answered, {} failed, {} expired, {} updates, {} queued; \
             {} waves (mean {:.1}, max {}); latency mean {:.1?}, max {:.1?} | {}",
            self.submitted,
            self.interactive_submitted,
            self.batch_submitted,
            self.rejected,
            self.answered,
            self.failed,
            self.expired,
            self.updates_applied,
            self.queue_depth,
            self.waves,
            self.mean_wave_size(),
            self.max_wave,
            self.mean_latency,
            self.max_latency,
            self.cache
        )
    }
}

/// How one delivery resolved, for the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DeliveryKind {
    Answered,
    Failed,
    Expired,
}

/// The mutable half, updated by the service under its stats lock.
#[derive(Debug, Default)]
pub(crate) struct StatsCollector {
    submitted: [u64; 2],
    rejected: [u64; 2],
    answered: u64,
    failed: u64,
    expired: u64,
    updates_applied: u64,
    waves: u64,
    max_wave: usize,
    wave_sizes: BTreeMap<usize, u64>,
    latency_total: Duration,
    latency_max: Duration,
}

impl StatsCollector {
    pub(crate) fn record_submit(&mut self, class: AdmissionClass) {
        self.submitted[class.lane()] += 1;
    }

    pub(crate) fn record_reject(&mut self, class: AdmissionClass) {
        self.rejected[class.lane()] += 1;
    }

    pub(crate) fn record_update(&mut self) {
        self.updates_applied += 1;
    }

    pub(crate) fn record_wave(&mut self, size: usize) {
        self.waves += 1;
        self.max_wave = self.max_wave.max(size);
        *self.wave_sizes.entry(size).or_insert(0) += 1;
    }

    pub(crate) fn record_delivery(&mut self, latency: Duration, kind: DeliveryKind) {
        match kind {
            DeliveryKind::Answered => self.answered += 1,
            DeliveryKind::Failed => self.failed += 1,
            DeliveryKind::Expired => self.expired += 1,
        }
        self.latency_total += latency;
        self.latency_max = self.latency_max.max(latency);
    }

    pub(crate) fn snapshot(
        &self,
        interactive_queue_depth: usize,
        batch_queue_depth: usize,
        uptime: Duration,
        in_flight_waves: u64,
        cache: CacheStats,
    ) -> ServiceStats {
        let delivered = self.answered + self.failed + self.expired;
        ServiceStats {
            submitted: self.submitted.iter().sum(),
            rejected: self.rejected.iter().sum(),
            interactive_submitted: self.submitted[AdmissionClass::Interactive.lane()],
            interactive_rejected: self.rejected[AdmissionClass::Interactive.lane()],
            batch_submitted: self.submitted[AdmissionClass::Batch.lane()],
            batch_rejected: self.rejected[AdmissionClass::Batch.lane()],
            answered: self.answered,
            failed: self.failed,
            expired: self.expired,
            updates_applied: self.updates_applied,
            queue_depth: interactive_queue_depth + batch_queue_depth,
            interactive_queue_depth,
            batch_queue_depth,
            uptime,
            in_flight_waves,
            waves: self.waves,
            max_wave: self.max_wave,
            wave_sizes: self.wave_sizes.iter().map(|(&s, &c)| (s, c)).collect(),
            mean_latency: self
                .latency_total
                .checked_div(delivered as u32)
                .unwrap_or(Duration::ZERO),
            max_latency: self.latency_max,
            cache,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_aggregates_and_snapshots() {
        let mut c = StatsCollector::default();
        for _ in 0..3 {
            c.record_submit(AdmissionClass::Interactive);
        }
        c.record_submit(AdmissionClass::Batch);
        c.record_reject(AdmissionClass::Batch);
        c.record_wave(3);
        c.record_wave(1);
        c.record_wave(3);
        c.record_delivery(Duration::from_millis(10), DeliveryKind::Answered);
        c.record_delivery(Duration::from_millis(30), DeliveryKind::Failed);
        c.record_delivery(Duration::from_millis(20), DeliveryKind::Expired);
        c.record_update();
        c.record_update();
        let stats = c.snapshot(2, 1, Duration::from_secs(7), 1, CacheStats::default());
        assert_eq!(stats.updates_applied, 2);
        assert_eq!(stats.uptime, Duration::from_secs(7));
        assert_eq!(stats.in_flight_waves, 1);
        assert_eq!(stats.submitted, 4);
        assert_eq!(stats.interactive_submitted, 3);
        assert_eq!(stats.batch_submitted, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.batch_rejected, 1);
        assert_eq!(stats.interactive_rejected, 0);
        assert_eq!(stats.answered, 1);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.queue_depth, 3);
        assert_eq!(stats.interactive_queue_depth, 2);
        assert_eq!(stats.batch_queue_depth, 1);
        assert_eq!(stats.waves, 3);
        assert_eq!(stats.max_wave, 3);
        assert_eq!(stats.wave_sizes, vec![(1, 1), (3, 2)]);
        assert!((stats.mean_wave_size() - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(stats.mean_latency, Duration::from_millis(20));
        assert_eq!(stats.max_latency, Duration::from_millis(30));
    }

    #[test]
    fn display_is_one_line() {
        let stats =
            StatsCollector::default().snapshot(0, 0, Duration::ZERO, 0, CacheStats::default());
        let line = stats.to_string();
        assert!(line.starts_with("service:"), "{line}");
        assert!(line.contains("interactive"), "{line}");
        assert!(
            line.contains("marginals"),
            "cache summary rides along: {line}"
        );
        assert!(!line.contains('\n'), "{line}");
    }

    #[test]
    fn empty_stats_have_zero_means() {
        let stats = ServiceStats::default();
        assert_eq!(stats.mean_wave_size(), 0.0);
        assert_eq!(stats.mean_latency, Duration::ZERO);
    }
}
