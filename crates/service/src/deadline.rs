//! Deadline and cancellation bookkeeping: the token shared between a
//! [`Ticket`](crate::Ticket) and its in-flight job.
//!
//! A token is cancelled either *explicitly* (the client dropped its ticket
//! — nobody will read the answer) or *implicitly* (the request's deadline
//! passed). The dispatcher polls tokens at wave formation and the engine
//! polls them before each unit solve, so an expired or abandoned query
//! releases its work units instead of occupying the pool; the ticket side
//! turns deadline expiry into
//! [`ServiceError::DeadlineExceeded`](crate::ServiceError::DeadlineExceeded)
//! instead of blocking past it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Shared cancel state: an explicit flag plus an optional absolute deadline.
#[derive(Debug)]
struct CancelState {
    dropped: AtomicBool,
    deadline: Option<Instant>,
}

/// A cheaply clonable handle onto one request's cancel state.
///
/// `is_cancelled` is a single relaxed atomic load plus (when a deadline is
/// set) a monotonic-clock read — cheap enough to poll from engine worker
/// threads before every unit solve. Once it returns `true` it returns
/// `true` forever: the explicit flag is never cleared and `Instant` never
/// goes backwards, which is the monotonicity the engine's cancellation
/// contract requires.
#[derive(Debug, Clone)]
pub(crate) struct CancelToken {
    state: Arc<CancelState>,
}

impl CancelToken {
    /// A token expiring at `deadline` (`None` = never expires on its own).
    pub(crate) fn new(deadline: Option<Instant>) -> Self {
        CancelToken {
            state: Arc::new(CancelState {
                dropped: AtomicBool::new(false),
                deadline,
            }),
        }
    }

    /// Explicitly cancels the request (ticket dropped / client gone).
    pub(crate) fn cancel(&self) {
        self.state.dropped.store(true, Ordering::Relaxed);
    }

    /// Whether the request should no longer be worked on.
    pub(crate) fn is_cancelled(&self) -> bool {
        self.state.dropped.load(Ordering::Relaxed) || self.deadline_expired()
    }

    /// Whether the deadline (if any) has passed — distinguishes
    /// `DeadlineExceeded` from an abandoned-ticket cancellation.
    pub(crate) fn deadline_expired(&self) -> bool {
        self.state
            .deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
    }

    /// The absolute deadline, if one was set.
    pub(crate) fn deadline(&self) -> Option<Instant> {
        self.state.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn explicit_cancel_is_sticky() {
        let token = CancelToken::new(None);
        assert!(!token.is_cancelled());
        token.cancel();
        assert!(token.is_cancelled());
        assert!(!token.deadline_expired());
        // Clones observe the shared state.
        let clone = token.clone();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn deadline_expiry_cancels_without_a_flag() {
        let token = CancelToken::new(Some(Instant::now() - Duration::from_millis(1)));
        assert!(token.is_cancelled());
        assert!(token.deadline_expired());
        let future = CancelToken::new(Some(Instant::now() + Duration::from_secs(3600)));
        assert!(!future.is_cancelled());
        assert!(future.deadline().is_some());
    }
}
