//! The service proper: admission, the dispatcher thread, wave execution,
//! and graceful shutdown.

use crate::admission::{AdmissionQueue, AdmitError};
use crate::config::ServiceConfig;
use crate::request::{Answer, Delivery, Request, ServiceError, Ticket};
use crate::stats::{ServiceStats, StatsCollector};
use ppd_core::{BatchAnswer, ConjunctiveQuery, Engine, PpdDatabase};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One admitted query on its way to a wave.
struct Job {
    request: Request,
    submitted: Instant,
    reply: mpsc::Sender<Delivery>,
}

/// Everything the dispatcher thread and the client-facing handle share.
struct Inner {
    config: ServiceConfig,
    db: PpdDatabase,
    engine: Engine,
    queue: AdmissionQueue<Job>,
    stats: Mutex<StatsCollector>,
}

/// An in-process query-serving layer over one [`Engine`].
///
/// Clients on any thread [`submit`](Service::submit) queries and block on
/// (or poll) the returned [`Ticket`]s; a dispatcher thread coalesces the
/// admission queue into waves and streams each query's answer back as its
/// work units complete. See the [crate documentation](crate) for the
/// architecture and the determinism contract.
///
/// The service is `Sync`: share it by reference (e.g. across scoped
/// threads) or behind an `Arc`. Dropping it shuts it down gracefully —
/// every admitted query is answered first.
pub struct Service {
    inner: Arc<Inner>,
    dispatcher: Option<JoinHandle<()>>,
}

impl Service {
    /// Builds a service over its own copy of the database and a fresh
    /// engine, and starts the dispatcher thread.
    pub fn new(db: PpdDatabase, config: ServiceConfig) -> Self {
        let inner = Arc::new(Inner {
            engine: Engine::new(config.eval.clone()),
            queue: AdmissionQueue::new(config.max_queue),
            stats: Mutex::new(StatsCollector::default()),
            db,
            config,
        });
        let dispatcher = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("ppd-service-dispatcher".into())
                .spawn(move || dispatch_loop(&inner))
                .expect("spawn service dispatcher")
        };
        Service {
            inner,
            dispatcher: Some(dispatcher),
        }
    }

    /// Submits a query. On admission, returns a [`Ticket`] that resolves
    /// when the query's own work units finish; under overload or shutdown,
    /// fails fast instead of queueing unbounded work.
    pub fn submit(&self, request: Request) -> Result<Ticket, ServiceError> {
        let (reply, receiver) = mpsc::channel();
        let query_name = request.query().name().to_string();
        let job = Job {
            request,
            submitted: Instant::now(),
            reply,
        };
        match self.inner.queue.push(job) {
            Ok(_) => {
                self.lock_stats().record_submit();
                Ok(Ticket::new(query_name, receiver))
            }
            Err(AdmitError::Overloaded { depth }) => {
                self.lock_stats().record_reject();
                Err(ServiceError::Overloaded { depth })
            }
            Err(AdmitError::ShuttingDown) => Err(ServiceError::ShuttingDown),
        }
    }

    /// Snapshot of the service's activity, including the engine's cache
    /// counters.
    pub fn stats(&self) -> ServiceStats {
        self.lock_stats()
            .snapshot(self.inner.queue.depth(), self.inner.engine.cache_stats())
    }

    /// The engine behind this service — for cache persistence
    /// (`save_marginals` / `load_marginals`) and introspection. Evaluating
    /// through it directly is safe (answers are bit-identical either way)
    /// but bypasses admission control.
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// The database this service serves.
    pub fn database(&self) -> &PpdDatabase {
        &self.inner.db
    }

    /// The service's configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// Begins graceful shutdown without blocking: new submissions fail with
    /// [`ServiceError::ShuttingDown`], while every already-admitted query
    /// is still solved and delivered. Use [`Service::shutdown`] (or drop
    /// the service) to also wait for the drain to finish.
    pub fn initiate_shutdown(&self) {
        self.inner.queue.shutdown();
    }

    /// Gracefully shuts down: stops admission, waits until every admitted
    /// query has been answered and the dispatcher has exited, and returns
    /// the final stats.
    pub fn shutdown(mut self) -> ServiceStats {
        self.join_dispatcher();
        self.stats()
    }

    fn join_dispatcher(&mut self) {
        self.inner.queue.shutdown();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }

    fn lock_stats(&self) -> std::sync::MutexGuard<'_, StatsCollector> {
        self.inner.stats.lock().expect("service stats poisoned")
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.join_dispatcher();
    }
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("config", &self.inner.config)
            .field("queue_depth", &self.inner.queue.depth())
            .finish_non_exhaustive()
    }
}

/// The dispatcher: pops waves off the admission queue until shutdown has
/// drained it.
fn dispatch_loop(inner: &Inner) {
    while let Some(wave) = inner
        .queue
        .next_wave(inner.config.max_batch, inner.config.max_wait)
    {
        inner
            .stats
            .lock()
            .expect("service stats poisoned")
            .record_wave(wave.len());
        run_wave(inner, wave);
    }
}

/// Executes one wave: the streamable kinds (Boolean / count / per-session)
/// go through the engine as a single streamed batch — sharing deduplicated
/// work units and delivering each answer the moment its units finish — and
/// top-k queries follow one by one on the same warm engine.
fn run_wave(inner: &Inner, wave: Vec<Job>) {
    let mut batched: Vec<Mutex<Option<Job>>> = Vec::new();
    let mut batched_queries: Vec<ConjunctiveQuery> = Vec::new();
    let mut topk: Vec<Job> = Vec::new();
    for job in wave {
        match &job.request {
            Request::TopK { .. } => topk.push(job),
            streamable => {
                batched_queries.push(streamable.query().clone());
                batched.push(Mutex::new(Some(job)));
            }
        }
    }

    if !batched_queries.is_empty() {
        inner
            .engine
            .evaluate_batch_streamed(&inner.db, &batched_queries, |qi, outcome| {
                // Exactly-once per query, possibly from an engine worker
                // thread — the hand-off below is all that happens here.
                let taken = batched[qi]
                    .lock()
                    .expect("wave delivery slot poisoned")
                    .take();
                if let Some(job) = taken {
                    let delivery = match outcome {
                        Ok(answer) => Ok(project(&job.request, answer)),
                        Err(e) => Err(ServiceError::Eval(e)),
                    };
                    finish(inner, job, delivery);
                }
            });
        // The engine delivers every query exactly once; anything still here
        // would be a contract violation, surfaced instead of hung on.
        for slot in &batched {
            if let Some(job) = slot.lock().expect("wave delivery slot poisoned").take() {
                debug_assert!(false, "engine failed to deliver a batched query");
                finish(inner, job, Err(ServiceError::Disconnected));
            }
        }
    }

    for job in topk {
        let Request::TopK { query, k, strategy } = &job.request else {
            unreachable!("only top-k jobs are deferred past the streamed batch");
        };
        let delivery = inner
            .engine
            .most_probable_sessions(&inner.db, query, *k, *strategy)
            .map(|(scores, _stats)| Answer::TopK(scores))
            .map_err(ServiceError::Eval);
        finish(inner, job, delivery);
    }
}

/// Projects the engine's batch answer onto the shape the request asked for.
fn project(request: &Request, answer: BatchAnswer) -> Answer {
    match request {
        Request::Boolean(_) => Answer::Boolean(answer.boolean),
        Request::Count(_) => Answer::Count(answer.expected_count),
        Request::SessionProbabilities(_) => {
            Answer::SessionProbabilities(answer.session_probabilities)
        }
        Request::TopK { .. } => unreachable!("top-k jobs are not batched"),
    }
}

/// Records the delivery and sends it; a client that dropped its ticket just
/// discards the answer.
fn finish(inner: &Inner, job: Job, delivery: Delivery) {
    let latency = job.submitted.elapsed();
    inner
        .stats
        .lock()
        .expect("service stats poisoned")
        .record_delivery(latency, delivery.is_ok());
    let _ = job.reply.send(delivery);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppd_core::{EvalConfig, Term};
    use ppd_datagen::{polls_database, polls_q1_query, PollsConfig};

    fn tiny_db() -> PpdDatabase {
        polls_database(&PollsConfig {
            num_candidates: 5,
            num_voters: 8,
            seed: 11,
        })
    }

    #[test]
    fn answers_every_request_kind() {
        let db = tiny_db();
        let service = Service::new(db.clone(), ServiceConfig::new(EvalConfig::exact()));
        let q = polls_q1_query();
        let tickets = vec![
            service.submit(Request::Boolean(q.clone())).unwrap(),
            service.submit(Request::Count(q.clone())).unwrap(),
            service
                .submit(Request::SessionProbabilities(q.clone()))
                .unwrap(),
            service
                .submit(Request::TopK {
                    query: q.clone(),
                    k: 3,
                    strategy: ppd_core::TopKStrategy::Naive,
                })
                .unwrap(),
        ];
        let answers: Vec<Answer> = tickets
            .into_iter()
            .map(|t| t.wait().expect("query answers"))
            .collect();
        let engine = Engine::new(EvalConfig::exact());
        assert_eq!(
            answers[0],
            Answer::Boolean(engine.evaluate_boolean(&db, &q).unwrap())
        );
        assert_eq!(
            answers[1],
            Answer::Count(engine.count_sessions(&db, &q).unwrap())
        );
        assert_eq!(
            answers[2],
            Answer::SessionProbabilities(engine.session_probabilities(&db, &q).unwrap())
        );
        assert_eq!(
            answers[3],
            Answer::TopK(
                engine
                    .most_probable_sessions(&db, &q, 3, ppd_core::TopKStrategy::Naive)
                    .unwrap()
                    .0
            )
        );
        let stats = service.shutdown();
        assert_eq!(stats.submitted, 4);
        assert_eq!(stats.answered, 4);
        assert_eq!(stats.failed + stats.rejected, 0);
        assert_eq!(stats.queue_depth, 0);
        assert!(stats.waves >= 1);
    }

    #[test]
    fn evaluation_errors_are_delivered_not_hung() {
        let service = Service::new(tiny_db(), ServiceConfig::new(EvalConfig::exact()));
        let bad = ConjunctiveQuery::new("bad").prefer(
            "NoSuchRelation",
            vec![Term::any(), Term::any()],
            Term::val("cand0"),
            Term::val("cand1"),
        );
        let ticket = service.submit(Request::Boolean(bad)).unwrap();
        assert!(matches!(ticket.wait(), Err(ServiceError::Eval(_))));
        let stats = service.shutdown();
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn drop_drains_admitted_queries() {
        let db = tiny_db();
        let service = Service::new(db, ServiceConfig::new(EvalConfig::exact()));
        let tickets: Vec<Ticket> = (0..6)
            .map(|_| service.submit(Request::Boolean(polls_q1_query())).unwrap())
            .collect();
        drop(service);
        for ticket in tickets {
            assert!(
                ticket.wait().is_ok(),
                "dropping the service must still answer admitted queries"
            );
        }
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let service = Service::new(tiny_db(), ServiceConfig::new(EvalConfig::exact()));
        service.initiate_shutdown();
        assert!(matches!(
            service.submit(Request::Boolean(polls_q1_query())),
            Err(ServiceError::ShuttingDown)
        ));
    }
}
