//! The service proper: admission, routing, the dispatcher thread, wave
//! execution with class priority and cancellation, between-wave database
//! updates, and graceful shutdown.

use crate::admission::{AdmissionQueue, AdmitError};
use crate::config::ServiceConfig;
use crate::deadline::CancelToken;
use crate::obs::ServiceObs;
use crate::request::{
    AdmissionClass, Answer, Delivery, Outcome, Request, ServiceError, SubmitOptions, Ticket,
};
use crate::router::{Router, Tenant};
use crate::stats::{DeliveryKind, ServiceStats, StatsCollector};
use ppd_core::{
    BatchAnswer, CacheStats, ConjunctiveQuery, Engine, ErrorBudget, PpdDatabase, PpdError, Update,
};
use ppd_obs::SpanRecord;
use std::collections::BTreeMap;
use std::sync::{mpsc, Arc, Mutex, RwLockReadGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Database id [`Service::new`] registers its single database under.
pub const DEFAULT_DATABASE: &str = "default";

/// Where a job's outcome goes: a ticket's one-shot channel, or a callback
/// (the wire server's per-connection writer).
pub(crate) enum ReplySink {
    Channel(mpsc::Sender<Outcome>),
    Callback(Box<dyn FnOnce(Outcome) + Send>),
}

impl ReplySink {
    fn send(self, outcome: Outcome) {
        match self {
            // A client that dropped its ticket just discards the answer.
            ReplySink::Channel(tx) => drop(tx.send(outcome)),
            ReplySink::Callback(callback) => callback(outcome),
        }
    }
}

/// What one admitted job asks for: a query evaluated against a wave's
/// snapshot, or a database update applied *between* waves.
enum Work {
    Query(Request),
    Update(Update),
}

/// One admitted job on its way to a wave.
struct Job {
    tenant: usize,
    work: Work,
    class: AdmissionClass,
    budget: Option<ErrorBudget>,
    submitted: Instant,
    cancel: CancelToken,
    /// The submission's trace id — observability only, never read back
    /// into routing, grouping, or evaluation.
    trace: u64,
    reply: ReplySink,
}

impl Job {
    fn request(&self) -> &Request {
        match &self.work {
            Work::Query(request) => request,
            Work::Update(_) => unreachable!("updates never reach a query group"),
        }
    }
}

/// Everything the dispatcher thread and the client-facing handle share.
struct Inner {
    config: ServiceConfig,
    router: Router,
    queue: AdmissionQueue<Job>,
    stats: Mutex<StatsCollector>,
    obs: ServiceObs,
}

/// The multi-tenant query front door: per-database engines behind a single
/// two-lane admission layer.
///
/// Clients on any thread [`submit`](Service::submit) queries — optionally
/// routed by database id, classed `Interactive` or `Batch`, and bounded by
/// a deadline via [`submit_with`](Service::submit_with) — and block on (or
/// poll) the returned [`Ticket`]s. A dispatcher thread coalesces the
/// admission queue into waves (interactive first), runs each tenant's
/// sub-batch on that tenant's engine, and streams each query's answer back
/// as its work units complete. See the [crate documentation](crate) for the
/// architecture and the determinism contract.
///
/// Databases are *live*: [`submit_update`](Service::submit_update) admits a
/// mutation through the same queue, and the dispatcher applies it at the
/// start of the next wave — before any of that wave's queries run — so
/// every query in a wave observes one fixed snapshot. Each [`Ticket`]
/// carries the version current at admission
/// ([`read_version`](Ticket::read_version)) and reports the version its
/// answer was computed against
/// ([`computed_version`](Ticket::computed_version)).
///
/// The service is `Sync`: share it by reference (e.g. across scoped
/// threads) or behind an `Arc`. Dropping it shuts it down gracefully —
/// every admitted query is answered first.
pub struct Service {
    inner: Arc<Inner>,
    dispatcher: Option<JoinHandle<()>>,
}

impl Service {
    /// Builds a single-database service (registered under
    /// [`DEFAULT_DATABASE`]) and starts the dispatcher thread.
    pub fn new(db: PpdDatabase, config: ServiceConfig) -> Self {
        Service::with_databases(vec![(DEFAULT_DATABASE.to_string(), db)], config)
    }

    /// Builds a multi-tenant service: one engine per database, all behind
    /// one admission layer. The first database is the default route for
    /// requests that name none. Panics on an empty registry.
    pub fn with_databases(databases: Vec<(String, PpdDatabase)>, config: ServiceConfig) -> Self {
        // Tenant ids in registration order, first occurrence wins — the
        // same dedup the router applies, so per-tenant instruments line up
        // with tenant indices.
        let mut ids: Vec<&str> = Vec::with_capacity(databases.len());
        for (id, _) in &databases {
            if !ids.contains(&id.as_str()) {
                ids.push(id);
            }
        }
        let obs = ServiceObs::new(&config.obs, &ids);
        let router = Router::new(databases, &config.eval, |id| obs.engine_obs(id));
        let inner = Arc::new(Inner {
            router,
            queue: AdmissionQueue::new(config.max_queue, config.max_queue_batch),
            stats: Mutex::new(StatsCollector::default()),
            obs,
            config,
        });
        let dispatcher = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("ppd-service-dispatcher".into())
                .spawn(move || dispatch_loop(&inner))
                .expect("spawn service dispatcher")
        };
        Service {
            inner,
            dispatcher: Some(dispatcher),
        }
    }

    /// Submits an interactive query against the default database with no
    /// deadline. On admission, returns a [`Ticket`] that resolves when the
    /// query's own work units finish; under overload or shutdown, fails
    /// fast instead of queueing unbounded work.
    pub fn submit(&self, request: Request) -> Result<Ticket, ServiceError> {
        self.submit_with(request, SubmitOptions::default())
    }

    /// [`Service::submit`] with explicit routing, admission class, and
    /// deadline. An unknown database id fails before anything is queued;
    /// a request whose deadline passes before its answer is assembled
    /// resolves [`ServiceError::DeadlineExceeded`] and releases its claim
    /// on any work units only it needed.
    pub fn submit_with(
        &self,
        request: Request,
        options: SubmitOptions,
    ) -> Result<Ticket, ServiceError> {
        let (reply, receiver) = mpsc::channel();
        let query_name = request.query().name().to_string();
        let (cancel, read_version, trace) =
            self.enqueue(Work::Query(request), options, ReplySink::Channel(reply))?;
        Ok(Ticket::new(
            query_name,
            receiver,
            cancel,
            read_version,
            trace,
        ))
    }

    /// Submits a database update against the default database. The update
    /// rides the same admission queue as queries (interactive class) but is
    /// applied *between* waves: at the start of the next wave, before any of
    /// that wave's queries run. The ticket resolves
    /// [`Answer::Updated`] with the new version id and the number of cached
    /// work units surgically invalidated; a rejected update (unknown
    /// relation, bad index, arity mismatch) resolves
    /// [`ServiceError::Eval`] and changes nothing.
    pub fn submit_update(&self, update: Update) -> Result<Ticket, ServiceError> {
        self.submit_update_with(update, SubmitOptions::default())
    }

    /// [`Service::submit_update`] with explicit routing, admission class,
    /// and deadline. The `error_budget` option is ignored — updates mutate
    /// the database, they do not evaluate anything.
    pub fn submit_update_with(
        &self,
        update: Update,
        options: SubmitOptions,
    ) -> Result<Ticket, ServiceError> {
        let (reply, receiver) = mpsc::channel();
        let (cancel, read_version, trace) =
            self.enqueue(Work::Update(update), options, ReplySink::Channel(reply))?;
        Ok(Ticket::new(
            "update".into(),
            receiver,
            cancel,
            read_version,
            trace,
        ))
    }

    /// Callback-style submission, used by the wire server: `callback` is
    /// invoked exactly once with the outcome, from a dispatcher or engine
    /// worker thread — it must hand off quickly and must not call back into
    /// this service. Returns the cancel token and the submission's trace id.
    pub(crate) fn submit_callback(
        &self,
        request: Request,
        options: SubmitOptions,
        callback: impl FnOnce(Outcome) + Send + 'static,
    ) -> Result<(CancelToken, u64), ServiceError> {
        self.enqueue(
            Work::Query(request),
            options,
            ReplySink::Callback(Box::new(callback)),
        )
        .map(|(cancel, _, trace)| (cancel, trace))
    }

    /// Callback-style update submission, used by the wire server.
    pub(crate) fn submit_update_callback(
        &self,
        update: Update,
        options: SubmitOptions,
        callback: impl FnOnce(Outcome) + Send + 'static,
    ) -> Result<(CancelToken, u64), ServiceError> {
        self.enqueue(
            Work::Update(update),
            options,
            ReplySink::Callback(Box::new(callback)),
        )
        .map(|(cancel, _, trace)| (cancel, trace))
    }

    /// Routes and enqueues one job, returning its cancel token, the routed
    /// database's version at admission time, and its trace id.
    fn enqueue(
        &self,
        work: Work,
        options: SubmitOptions,
        reply: ReplySink,
    ) -> Result<(CancelToken, u64, u64), ServiceError> {
        let tenant = self.inner.router.route(options.database.as_deref())?;
        let read_version = self.inner.router.tenant(tenant).version();
        let cancel = CancelToken::new(options.deadline.map(|d| Instant::now() + d));
        // Budgets steer solver choice; updates evaluate nothing.
        let budget = match work {
            Work::Query(_) => options.error_budget,
            Work::Update(_) => None,
        };
        let trace = self.inner.obs.trace().assign();
        // The admission span goes into the ring *before* the push makes the
        // job visible: the dispatcher can pop it (recording `wave-joined`)
        // before this thread resumes, and a traced timeline must still
        // start at `admitted`. The depth is the pre-push estimate.
        self.inner.obs.admission_span(
            trace,
            &self.inner.router.tenant(tenant).id,
            options.class,
            self.inner.queue.depth_of(options.class) + 1,
        );
        let job = Job {
            tenant,
            work,
            class: options.class,
            budget,
            submitted: Instant::now(),
            cancel: cancel.clone(),
            trace,
            reply,
        };
        match self.inner.queue.push(options.class, job) {
            Ok(depth) => {
                self.lock_stats().record_submit(options.class);
                self.inner.obs.admitted_depth(options.class, depth);
                Ok((cancel, read_version, trace))
            }
            Err(AdmitError::Overloaded { depth }) => {
                self.lock_stats().record_reject(options.class);
                self.inner.obs.shed(options.class);
                let error = ServiceError::Overloaded { depth };
                self.inner.obs.rejected(trace, &error);
                Err(error)
            }
            Err(AdmitError::ShuttingDown) => {
                self.inner.obs.rejected(trace, &ServiceError::ShuttingDown);
                Err(ServiceError::ShuttingDown)
            }
        }
    }

    /// Snapshot of the service's activity, including the engines' cache
    /// counters summed across tenants.
    pub fn stats(&self) -> ServiceStats {
        self.lock_stats().snapshot(
            self.inner.queue.depth_of(AdmissionClass::Interactive),
            self.inner.queue.depth_of(AdmissionClass::Batch),
            self.inner.obs.uptime(),
            self.inner.obs.in_flight_waves(),
            self.aggregate_cache_stats(),
        )
    }

    /// The Prometheus-style text exposition of every registered instrument
    /// — engine counters/histograms labelled by tenant plus the service's
    /// own lane, wave, and error instruments. Empty when metrics are off
    /// ([`ObsConfig::metrics`](ppd_obs::ObsConfig)). Served over the wire
    /// by the `metrics` control frame.
    pub fn metrics_text(&self) -> String {
        self.inner.obs.render()
    }

    /// The still-buffered span events of one submission's trace, in
    /// recording order — empty for untraced ids (tracing off, unsampled,
    /// or aged out of the bounded ring). The id comes from
    /// [`Ticket::trace_id`] or the wire response's `trace` field; served
    /// over the wire by the `trace` control frame.
    pub fn trace_events(&self, trace: u64) -> Vec<SpanRecord> {
        self.inner.obs.trace().events(trace)
    }

    fn aggregate_cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for tenant in self.inner.router.tenants() {
            // Base engine plus every per-budget engine this tenant spawned.
            for stats in tenant.engine_cache_stats() {
                total.marginal_hits += stats.marginal_hits;
                total.marginal_misses += stats.marginal_misses;
                total.marginal_evictions += stats.marginal_evictions;
                total.marginals_loaded += stats.marginals_loaded;
                total.marginals_saved += stats.marginals_saved;
                total.models_prepared += stats.models_prepared;
                total.calibration_hits += stats.calibration_hits;
                total.calibration_misses += stats.calibration_misses;
                total.calibration_recorded += stats.calibration_recorded;
                total.marginal_evicted_bytes += stats.marginal_evicted_bytes;
                total.units_invalidated += stats.units_invalidated;
                total.segment_live_bytes += stats.segment_live_bytes;
                total.segment_dead_bytes += stats.segment_dead_bytes;
                total.compactions += stats.compactions;
            }
        }
        total
    }

    /// The default tenant's engine — for cache persistence
    /// (`save_marginals` / `load_marginals`) and introspection. Evaluating
    /// through it directly is safe (answers are bit-identical either way)
    /// but bypasses admission control.
    pub fn engine(&self) -> &Engine {
        &self.inner.router.tenant(0).engine
    }

    /// The engine serving the database registered under `id`.
    pub fn engine_for(&self, id: &str) -> Option<&Engine> {
        let index = self.inner.router.route(Some(id)).ok()?;
        Some(&self.inner.router.tenant(index).engine)
    }

    /// A read snapshot of the default tenant's database. The guard blocks
    /// queued updates from applying while held — take it, read, drop it.
    pub fn database(&self) -> RwLockReadGuard<'_, PpdDatabase> {
        self.inner.router.tenant(0).read_db()
    }

    /// The version currently served by the database registered under `id`
    /// (`None` for an unknown id). Versions start at 1 and bump by one per
    /// applied update.
    pub fn database_version(&self, id: &str) -> Option<u64> {
        let index = self.inner.router.route(Some(id)).ok()?;
        Some(self.inner.router.tenant(index).version())
    }

    /// The registered database ids, in registration order (the first is
    /// the default route).
    pub fn database_ids(&self) -> Vec<&str> {
        self.inner
            .router
            .tenants()
            .iter()
            .map(|tenant| tenant.id.as_str())
            .collect()
    }

    /// The service's configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// Begins graceful shutdown without blocking: new submissions fail with
    /// [`ServiceError::ShuttingDown`], while every already-admitted query
    /// is still solved and delivered. Use [`Service::shutdown`] (or drop
    /// the service) to also wait for the drain to finish.
    pub fn initiate_shutdown(&self) {
        self.inner.queue.shutdown();
    }

    /// Gracefully shuts down: stops admission, waits until every admitted
    /// query has been answered and the dispatcher has exited, and returns
    /// the final stats.
    pub fn shutdown(mut self) -> ServiceStats {
        self.join_dispatcher();
        self.stats()
    }

    fn join_dispatcher(&mut self) {
        self.inner.queue.shutdown();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }

    fn lock_stats(&self) -> std::sync::MutexGuard<'_, StatsCollector> {
        self.inner.stats.lock().expect("service stats poisoned")
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.join_dispatcher();
    }
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("config", &self.inner.config)
            .field("databases", &self.database_ids())
            .field("queue_depth", &self.inner.queue.depth())
            .finish_non_exhaustive()
    }
}

/// The dispatcher: pops waves off the admission queue until shutdown has
/// drained it.
fn dispatch_loop(inner: &Inner) {
    while let Some((wave, window)) = inner
        .queue
        .next_wave(inner.config.max_batch, inner.config.max_wait)
    {
        inner
            .stats
            .lock()
            .expect("service stats poisoned")
            .record_wave(wave.len());
        inner.obs.wave_started(
            window,
            inner.queue.depth_of(AdmissionClass::Interactive),
            inner.queue.depth_of(AdmissionClass::Batch),
        );
        run_wave(inner, wave);
        inner.obs.wave_finished();
    }
}

/// Executes one wave. Updates apply first, in wave order (interactive lane
/// before batch — the wave is already ordered that way), so every query in
/// the wave observes one fixed post-update snapshot; queries admitted in
/// the same wave as an update are answered against the version it produced,
/// never a half-applied state. The remaining query jobs are grouped by
/// `(tenant, class, error budget)` — each group is one engine batch against
/// its tenant's database snapshot — and the groups run interactive-before-
/// batch within each tenant, tenants in registration order, budget-less
/// jobs before budgeted ones within a lane. Running the interactive
/// sub-batch as its own engine wave (rather than mixing classes into one
/// cost-ordered wave) is what makes the priority real: every interactive
/// answer is delivered before the first batch unit starts. Grouping by
/// budget bits keeps each engine batch homogeneous in solver choice, so
/// co-batched queries still share deduplicated work units.
fn run_wave(inner: &Inner, wave: Vec<Job>) {
    type GroupKey = (usize, usize, Option<(u64, u64)>);
    let mut groups: BTreeMap<GroupKey, Vec<Job>> = BTreeMap::new();
    for job in wave {
        inner.obs.queue_wait(job.submitted.elapsed());
        match &job.work {
            Work::Update(_) => run_update(inner, job),
            Work::Query(_) => {
                let budget_bits = job
                    .budget
                    .map(|b| (b.epsilon.to_bits(), b.confidence.to_bits()));
                groups
                    .entry((job.tenant, job.class.lane(), budget_bits))
                    .or_default()
                    .push(job);
            }
        }
    }
    for ((tenant_index, _, _), jobs) in groups {
        inner.obs.wave_group(tenant_index, jobs.len());
        let tenant = inner.router.tenant(tenant_index);
        // The read guard pins this group's snapshot: updates admitted after
        // this wave formed wait for the next wave boundary.
        let db = tenant.read_db();
        match jobs[0].budget {
            None => run_group(inner, &db, &tenant.engine, jobs),
            Some(budget) => {
                let engine = tenant.budget_engine(budget);
                run_group(inner, &db, &engine, jobs);
            }
        }
    }
}

/// Applies one admitted update to its tenant's database and delivers the
/// receipt. Runs on the dispatcher thread before the wave's query groups,
/// while no wave holds a read guard — the only place the database is ever
/// written.
fn run_update(inner: &Inner, job: Job) {
    if job.cancel.is_cancelled() {
        let delivery = Err(eval_error(&job, PpdError::Cancelled));
        finish(inner, job, delivery, 0);
        return;
    }
    let Work::Update(update) = &job.work else {
        unreachable!("only update jobs reach run_update");
    };
    let update = update.clone();
    let tenant: &Tenant = inner.router.tenant(job.tenant);
    match tenant.apply_update(update) {
        Ok((version, invalidated)) => {
            inner
                .stats
                .lock()
                .expect("service stats poisoned")
                .record_update();
            finish(
                inner,
                job,
                Ok(Answer::Updated {
                    version,
                    invalidated,
                }),
                version,
            );
        }
        Err(e) => {
            let delivery = Err(eval_error(&job, e));
            finish(inner, job, delivery, 0);
        }
    }
}

/// Executes one same-tenant, same-class group: the streamable kinds
/// (Boolean / count / per-session) go through the engine as a single
/// cancellable streamed batch — sharing deduplicated work units and
/// delivering each answer the moment its units finish — and top-k queries
/// follow one by one on the same warm engine.
fn run_group(inner: &Inner, db: &PpdDatabase, engine: &Engine, jobs: Vec<Job>) {
    let version = db.version();
    let mut batched: Vec<Mutex<Option<Job>>> = Vec::new();
    let mut batched_queries: Vec<ConjunctiveQuery> = Vec::new();
    let mut cancels: Vec<CancelToken> = Vec::new();
    let mut traces: Vec<u64> = Vec::new();
    let mut topk: Vec<Job> = Vec::new();
    for job in jobs {
        match job.request() {
            Request::TopK { .. } => topk.push(job),
            streamable => {
                batched_queries.push(streamable.query().clone());
                cancels.push(job.cancel.clone());
                traces.push(job.trace);
                batched.push(Mutex::new(Some(job)));
            }
        }
    }

    if !batched_queries.is_empty() {
        engine.evaluate_batch_streamed_cancellable_traced(
            db,
            &batched_queries,
            &traces,
            // `move` satisfies the engine's `'static` bound (the probe now
            // reaches exact DP kernels mid-solve); the tokens are Arc-backed.
            move |qi| cancels[qi].is_cancelled(),
            |qi, outcome| {
                // Exactly-once per query, possibly from an engine worker
                // thread — the hand-off below is all that happens here.
                let taken = batched[qi]
                    .lock()
                    .expect("wave delivery slot poisoned")
                    .take();
                if let Some(job) = taken {
                    let delivery = match outcome {
                        Ok(answer) => Ok(project(job.request(), answer)),
                        Err(e) => Err(eval_error(&job, e)),
                    };
                    finish(inner, job, delivery, version);
                }
            },
        );
        // The engine delivers every query exactly once; anything still here
        // would be a contract violation, surfaced instead of hung on.
        for slot in &batched {
            if let Some(job) = slot.lock().expect("wave delivery slot poisoned").take() {
                debug_assert!(false, "engine failed to deliver a batched query");
                finish(inner, job, Err(ServiceError::Disconnected), 0);
            }
        }
    }

    for job in topk {
        if job.cancel.is_cancelled() {
            let delivery = Err(eval_error(&job, PpdError::Cancelled));
            finish(inner, job, delivery, version);
            continue;
        }
        let Request::TopK { query, k, strategy } = job.request() else {
            unreachable!("only top-k jobs are deferred past the streamed batch");
        };
        let delivery = engine
            .most_probable_sessions(db, query, *k, *strategy)
            .map(|(scores, _stats)| Answer::TopK(scores))
            .map_err(ServiceError::Eval);
        finish(inner, job, delivery, version);
    }
}

/// Maps an engine error onto the service error a client should see: a
/// cancellation that stems from the job's deadline is `DeadlineExceeded`;
/// everything else (including a cancellation from a dropped ticket, whose
/// delivery nobody reads) surfaces as an evaluation error.
fn eval_error(job: &Job, e: PpdError) -> ServiceError {
    match e {
        PpdError::Cancelled if job.cancel.deadline_expired() => ServiceError::DeadlineExceeded,
        other => ServiceError::Eval(other),
    }
}

/// Projects the engine's batch answer onto the shape the request asked for.
fn project(request: &Request, answer: BatchAnswer) -> Answer {
    match request {
        Request::Boolean(_) => Answer::Boolean(answer.boolean),
        Request::Count(_) => Answer::Count(answer.expected_count),
        Request::SessionProbabilities(_) => {
            Answer::SessionProbabilities(answer.session_probabilities)
        }
        Request::TopK { .. } => unreachable!("top-k jobs are not batched"),
    }
}

/// Records the delivery and sends it stamped with the version it was
/// computed against (`0` = never reached a versioned snapshot); a client
/// that dropped its ticket just discards the answer.
fn finish(inner: &Inner, job: Job, delivery: Delivery, version: u64) {
    let latency = job.submitted.elapsed();
    let kind = match &delivery {
        Ok(_) => DeliveryKind::Answered,
        Err(ServiceError::DeadlineExceeded) | Err(ServiceError::Eval(PpdError::Cancelled)) => {
            DeliveryKind::Expired
        }
        Err(_) => DeliveryKind::Failed,
    };
    inner.obs.finished(job.trace, &delivery, latency);
    inner
        .stats
        .lock()
        .expect("service stats poisoned")
        .record_delivery(latency, kind);
    job.reply.send(Outcome::new(delivery, version, job.trace));
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppd_core::{EvalConfig, MallowsModel, Ranking, Session, Term, Value};
    use ppd_datagen::{polls_database, polls_q1_query, PollsConfig};

    fn tiny_db() -> PpdDatabase {
        polls_database(&PollsConfig {
            num_candidates: 5,
            num_voters: 8,
            seed: 11,
        })
    }

    #[test]
    fn answers_every_request_kind() {
        let db = tiny_db();
        let service = Service::new(db.clone(), ServiceConfig::new(EvalConfig::exact()));
        let q = polls_q1_query();
        let tickets = vec![
            service.submit(Request::Boolean(q.clone())).unwrap(),
            service.submit(Request::Count(q.clone())).unwrap(),
            service
                .submit(Request::SessionProbabilities(q.clone()))
                .unwrap(),
            service
                .submit(Request::TopK {
                    query: q.clone(),
                    k: 3,
                    strategy: ppd_core::TopKStrategy::Naive,
                })
                .unwrap(),
        ];
        let answers: Vec<Answer> = tickets
            .into_iter()
            .map(|t| t.wait().expect("query answers"))
            .collect();
        let engine = Engine::new(EvalConfig::exact());
        assert_eq!(
            answers[0],
            Answer::Boolean(engine.evaluate_boolean(&db, &q).unwrap())
        );
        assert_eq!(
            answers[1],
            Answer::Count(engine.count_sessions(&db, &q).unwrap())
        );
        assert_eq!(
            answers[2],
            Answer::SessionProbabilities(engine.session_probabilities(&db, &q).unwrap())
        );
        assert_eq!(
            answers[3],
            Answer::TopK(
                engine
                    .most_probable_sessions(&db, &q, 3, ppd_core::TopKStrategy::Naive)
                    .unwrap()
                    .0
            )
        );
        let stats = service.shutdown();
        assert_eq!(stats.submitted, 4);
        assert_eq!(stats.interactive_submitted, 4);
        assert_eq!(stats.answered, 4);
        assert_eq!(stats.failed + stats.rejected + stats.expired, 0);
        assert_eq!(stats.queue_depth, 0);
        assert!(stats.waves >= 1);
    }

    #[test]
    fn routes_by_database_id() {
        // Two tenants with *different* databases: answers must come from
        // the right one.
        let db_a = tiny_db();
        let db_b = polls_database(&PollsConfig {
            num_candidates: 5,
            num_voters: 4,
            seed: 77,
        });
        let q = polls_q1_query();
        let expect_a = Engine::new(EvalConfig::exact())
            .evaluate_boolean(&db_a, &q)
            .unwrap();
        let expect_b = Engine::new(EvalConfig::exact())
            .evaluate_boolean(&db_b, &q)
            .unwrap();
        assert_ne!(expect_a.to_bits(), expect_b.to_bits());
        let service = Service::with_databases(
            vec![("a".into(), db_a), ("b".into(), db_b)],
            ServiceConfig::new(EvalConfig::exact()),
        );
        assert_eq!(service.database_ids(), vec!["a", "b"]);
        let on = |id: &str| {
            service
                .submit_with(
                    Request::Boolean(q.clone()),
                    SubmitOptions::interactive().on_database(id),
                )
                .unwrap()
                .wait()
                .unwrap()
        };
        assert_eq!(on("a"), Answer::Boolean(expect_a));
        assert_eq!(on("b"), Answer::Boolean(expect_b));
        // Defaulting routes to the first tenant.
        let defaulted = service
            .submit(Request::Boolean(q.clone()))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(defaulted, Answer::Boolean(expect_a));
        assert!(matches!(
            service.submit_with(
                Request::Boolean(q),
                SubmitOptions::interactive().on_database("nope")
            ),
            Err(ServiceError::UnknownDatabase(_))
        ));
    }

    #[test]
    fn error_budget_requests_match_a_dedicated_engine_bitwise() {
        let db = tiny_db();
        let q = polls_q1_query();
        let service = Service::new(db.clone(), ServiceConfig::new(EvalConfig::exact()));
        let budgeted = service
            .submit_with(
                Request::Boolean(q.clone()),
                SubmitOptions::interactive().with_error_budget(0.05, 0.9),
            )
            .unwrap()
            .wait()
            .unwrap();
        let direct = Engine::new(EvalConfig::error_budget(0.05, 0.9))
            .evaluate_boolean(&db, &q)
            .unwrap();
        assert_eq!(
            budgeted,
            Answer::Boolean(direct),
            "a per-request budget must answer exactly like a dedicated \
             error-budget engine"
        );
        // The budget-less path through the same service is untouched.
        let exact = service
            .submit(Request::Boolean(q.clone()))
            .unwrap()
            .wait()
            .unwrap();
        let direct_exact = Engine::new(EvalConfig::exact())
            .evaluate_boolean(&db, &q)
            .unwrap();
        assert_eq!(exact, Answer::Boolean(direct_exact));
    }

    #[test]
    fn evaluation_errors_are_delivered_not_hung() {
        let service = Service::new(tiny_db(), ServiceConfig::new(EvalConfig::exact()));
        let bad = ConjunctiveQuery::new("bad").prefer(
            "NoSuchRelation",
            vec![Term::any(), Term::any()],
            Term::val("cand0"),
            Term::val("cand1"),
        );
        let ticket = service.submit(Request::Boolean(bad)).unwrap();
        assert!(matches!(ticket.wait(), Err(ServiceError::Eval(_))));
        let stats = service.shutdown();
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn drop_drains_admitted_queries() {
        let db = tiny_db();
        let service = Service::new(db, ServiceConfig::new(EvalConfig::exact()));
        let tickets: Vec<Ticket> = (0..6)
            .map(|_| service.submit(Request::Boolean(polls_q1_query())).unwrap())
            .collect();
        drop(service);
        for ticket in tickets {
            assert!(
                ticket.wait().is_ok(),
                "dropping the service must still answer admitted queries"
            );
        }
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let service = Service::new(tiny_db(), ServiceConfig::new(EvalConfig::exact()));
        service.initiate_shutdown();
        assert!(matches!(
            service.submit(Request::Boolean(polls_q1_query())),
            Err(ServiceError::ShuttingDown)
        ));
    }

    #[test]
    fn batch_class_answers_match_interactive_bitwise() {
        let db = tiny_db();
        let q = polls_q1_query();
        let service = Service::new(db, ServiceConfig::new(EvalConfig::exact()));
        let interactive = service
            .submit_with(Request::Boolean(q.clone()), SubmitOptions::interactive())
            .unwrap()
            .wait()
            .unwrap();
        let batch = service
            .submit_with(Request::Boolean(q), SubmitOptions::batch())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(interactive, batch, "class must never change answer bits");
        let stats = service.shutdown();
        assert_eq!(stats.interactive_submitted, 1);
        assert_eq!(stats.batch_submitted, 1);
    }

    fn insert_update(db: &PpdDatabase) -> Update {
        let relation = db.preference_relation_names()[0].to_string();
        let arity = db
            .preference_relation(&relation)
            .unwrap()
            .session_columns()
            .len();
        Update::InsertSession {
            prelation: relation,
            session: Session::new(
                (0..arity).map(|i| Value::from(format!("s{i}"))).collect(),
                MallowsModel::new(Ranking::new(vec![2, 0, 1, 3, 4]).unwrap(), 0.3).unwrap(),
            ),
        }
    }

    #[test]
    fn updates_apply_between_waves_and_version_the_answers() {
        let db = tiny_db();
        let q = polls_q1_query();
        let service = Service::new(db.clone(), ServiceConfig::new(EvalConfig::exact()));
        assert_eq!(service.database_version(DEFAULT_DATABASE), Some(1));
        assert_eq!(service.database_version("nope"), None);

        // A query before any update is computed against version 1.
        let ticket = service.submit(Request::Boolean(q.clone())).unwrap();
        assert_eq!(ticket.read_version(), 1);
        let (delivery, version) = ticket.wait_versioned();
        delivery.unwrap();
        assert_eq!(version, Some(1));

        // The update receipt reports the version it produced...
        let ticket = service.submit_update(insert_update(&db)).unwrap();
        let (delivery, version) = ticket.wait_versioned();
        assert_eq!(
            delivery,
            Ok(Answer::Updated {
                version: 2,
                invalidated: 0
            }),
            "nothing touching the base relation was cached yet"
        );
        assert_eq!(version, Some(2));
        assert_eq!(service.database_version(DEFAULT_DATABASE), Some(2));

        // ...and a later query answers against the new snapshot, matching a
        // fresh engine on the updated database bit for bit.
        let mut updated = db.clone();
        updated.apply(insert_update(&db)).unwrap();
        let expect = Engine::new(EvalConfig::exact())
            .evaluate_boolean(&updated, &q)
            .unwrap();
        let ticket = service.submit(Request::Boolean(q.clone())).unwrap();
        assert_eq!(ticket.read_version(), 2);
        let (delivery, version) = ticket.wait_versioned();
        assert_eq!(delivery, Ok(Answer::Boolean(expect)));
        assert_eq!(version, Some(2));

        let stats = service.shutdown();
        assert_eq!(stats.updates_applied, 1);
        assert_eq!(stats.answered, 3, "update receipts count as answered");
    }

    #[test]
    fn rejected_updates_fail_without_changing_the_database() {
        let service = Service::new(tiny_db(), ServiceConfig::new(EvalConfig::exact()));
        let ticket = service
            .submit_update(Update::DeleteSession {
                prelation: "NoSuchRelation".into(),
                index: 0,
            })
            .unwrap();
        assert!(matches!(ticket.wait(), Err(ServiceError::Eval(_))));
        assert_eq!(service.database_version(DEFAULT_DATABASE), Some(1));
        let stats = service.shutdown();
        assert_eq!(stats.updates_applied, 0);
        assert_eq!(stats.failed, 1);
    }
}
