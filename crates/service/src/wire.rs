//! The wire protocol: line-delimited JSON over TCP or Unix-domain sockets,
//! served by [`WireServer`] and spoken by [`WireClient`].
//!
//! Framing is one JSON object per `\n`-terminated line, both directions.
//! A request frame:
//!
//! ```json
//! {"id": 7, "kind": "boolean", "query": {"name": "q1", "prefer": [...]},
//!  "class": "batch", "database": "polls", "deadline_ms": 250}
//! ```
//!
//! and its response, `ok` or `err`:
//!
//! ```json
//! {"id": 7, "ok": {"kind": "boolean", "value": 0.21568627450980393}}
//! {"id": 7, "err": {"kind": "overloaded", "depth": 64}}
//! ```
//!
//! `id` is chosen by the client and echoed verbatim; responses may arrive
//! **out of submission order** because the service streams each answer as
//! soon as its work units finish. [`WireClient`] reorders by id.
//!
//! Databases are live over the wire too. An update frame:
//!
//! ```json
//! {"id": 9, "kind": "update", "op": "insert", "prelation": "Polls",
//!  "session": {"attrs": ["v9"], "ranking": [2, 0, 1], "phi": 0.3}}
//! ```
//!
//! is admitted like a query (same class lanes and deadlines) but applied
//! between waves; its response is an `{"kind": "updated", ...}` receipt.
//! Response frames carry a top-level `"version"` — the database version the
//! answer was computed against — whenever the request reached a versioned
//! snapshot, and a top-level `"trace"` — the submission's trace id, the
//! handle for the `trace` control verb.
//!
//! Three control verbs are answered synchronously, outside the admission
//! path: `{"kind": "stats"}` (the [`ServiceStats`] snapshot plus per-tenant
//! cache counters), `{"kind": "metrics"}` (the Prometheus-style text
//! exposition of every registered instrument), and
//! `{"kind": "trace", "trace": t}` (one submission's span timeline).
//!
//! **Bit-exactness over the wire.** Probabilities are serialized with
//! Rust's shortest-round-trip float formatting and parsed back with
//! `str::parse::<f64>()`, so every `f64` crosses the socket bit-identically
//! — the `service_determinism` test compares wire answers to direct engine
//! calls with `to_bits()`. Everything here is `std::net` + `std::thread`;
//! no async runtime.

use crate::request::{AdmissionClass, Answer, Delivery, Request, ServiceError, SubmitOptions};
use crate::service::Service;
use crate::stats::ServiceStats;
use ppd_core::{
    CacheStats, CompareOp, ConjunctiveQuery, MallowsModel, PpdError, Ranking, Session,
    SessionScore, Term, TopKStrategy, Update, Value as PpdValue,
};
use ppd_obs::{SpanEvent, SpanRecord};
use serde_json::Value;
use std::collections::{BTreeMap, HashMap};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a blocked connection read waits before re-checking the server's
/// stop flag (bounds shutdown latency; invisible to clients).
const POLL_INTERVAL: Duration = Duration::from_millis(25);

// ---------------------------------------------------------------------------
// Stream + listener abstraction (TCP and Unix sockets share one code path)
// ---------------------------------------------------------------------------

trait WireStream: Read + Write + Send + Sized + 'static {
    /// A second handle to the same socket (reader and writer sides live on
    /// different threads).
    fn duplicate(&self) -> io::Result<Self>;
    fn set_read_timeout_opt(&self, timeout: Option<Duration>) -> io::Result<()>;
    fn set_blocking(&self) -> io::Result<()>;
}

impl WireStream for TcpStream {
    fn duplicate(&self) -> io::Result<Self> {
        self.try_clone()
    }
    fn set_read_timeout_opt(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }
    fn set_blocking(&self) -> io::Result<()> {
        self.set_nonblocking(false)
    }
}

#[cfg(unix)]
impl WireStream for UnixStream {
    fn duplicate(&self) -> io::Result<Self> {
        self.try_clone()
    }
    fn set_read_timeout_opt(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }
    fn set_blocking(&self) -> io::Result<()> {
        self.set_nonblocking(false)
    }
}

trait WireListener: Send + 'static {
    type Stream: WireStream;
    fn accept_stream(&self) -> io::Result<Self::Stream>;
    /// Nonblocking mode is what keeps the accept loop joinable: accepts
    /// return `WouldBlock` instead of parking the thread forever.
    fn set_nonblocking_mode(&self) -> io::Result<()>;
}

impl WireListener for TcpListener {
    type Stream = TcpStream;
    fn accept_stream(&self) -> io::Result<TcpStream> {
        self.accept().map(|(stream, _)| stream)
    }
    fn set_nonblocking_mode(&self) -> io::Result<()> {
        self.set_nonblocking(true)
    }
}

#[cfg(unix)]
impl WireListener for UnixListener {
    type Stream = UnixStream;
    fn accept_stream(&self) -> io::Result<UnixStream> {
        self.accept().map(|(stream, _)| stream)
    }
    fn set_nonblocking_mode(&self) -> io::Result<()> {
        self.set_nonblocking(true)
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// A socket front end over a [`Service`]: accepts connections on a
/// dedicated thread, reads request frames line by line, submits them
/// through the service's normal admission path (routing, class lanes,
/// deadlines — everything in-process clients get), and writes each response
/// frame the moment the service delivers it.
///
/// Dropping the server (or calling [`WireServer::shutdown`]) stops
/// accepting, disconnects the connection threads, and cancels any requests
/// still in flight on their behalf — the same claim-release a dropped
/// in-process [`Ticket`](crate::Ticket) performs. The underlying service is
/// shared via `Arc` and survives the server.
pub struct WireServer {
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl WireServer {
    /// Binds a TCP listener (use port 0 to let the OS pick; see
    /// [`WireServer::local_addr`]) and starts serving `service` over it.
    pub fn bind_tcp(addr: impl ToSocketAddrs, service: Arc<Service>) -> io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let tcp_addr = Some(listener.local_addr()?);
        let mut server = WireServer::start(listener, service);
        server.tcp_addr = tcp_addr;
        Ok(server)
    }

    /// Binds a Unix-domain socket at `path` (unlinked again on shutdown)
    /// and starts serving `service` over it.
    #[cfg(unix)]
    pub fn bind_unix(path: impl Into<PathBuf>, service: Arc<Service>) -> io::Result<WireServer> {
        let path = path.into();
        let listener = UnixListener::bind(&path)?;
        let mut server = WireServer::start(listener, service);
        server.unix_path = Some(path);
        Ok(server)
    }

    /// The TCP address actually bound, for clients of a port-0 listener.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    fn start<L: WireListener>(listener: L, service: Arc<Service>) -> WireServer {
        listener
            .set_nonblocking_mode()
            .expect("set wire listener nonblocking");
        let stop = Arc::new(AtomicBool::new(false));
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let stop = Arc::clone(&stop);
            let connections = Arc::clone(&connections);
            std::thread::Builder::new()
                .name("ppd-wire-accept".into())
                .spawn(move || accept_loop(listener, service, stop, connections))
                .expect("spawn wire accept thread")
        };
        WireServer {
            stop,
            accept: Some(accept),
            connections,
            tcp_addr: None,
            unix_path: None,
        }
    }

    /// Stops accepting, joins every connection thread (each notices the
    /// stop flag within one poll interval), and unlinks a Unix socket path.
    /// Requests still in flight are cancelled, not waited for.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop: it polls with nonblocking accepts, so
        // joining it needs no connect-to-self nudge.
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let handles = std::mem::take(&mut *self.connections.lock().expect("wire server poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop<L: WireListener>(
    listener: L,
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    // Nonblocking accept + sleep keeps shutdown bounded without signals.
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept_stream() {
            Ok(stream) => {
                let service = Arc::clone(&service);
                let stop = Arc::clone(&stop);
                let handle = std::thread::Builder::new()
                    .name("ppd-wire-conn".into())
                    .spawn(move || serve_connection(stream, &service, &stop))
                    .expect("spawn wire connection thread");
                connections
                    .lock()
                    .expect("wire server poisoned")
                    .push(handle);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => return,
        }
    }
}

/// One connection: read frames until EOF or server shutdown, submit each
/// through the service, and let the per-request callbacks write responses
/// through the shared (mutexed) writer — no thread per request.
fn serve_connection<S: WireStream>(stream: S, service: &Arc<Service>, stop: &AtomicBool) {
    // The stream may inherit the listener's nonblocking flag on some
    // platforms; blocking + a read timeout is the mode the loop below wants.
    if stream.set_blocking().is_err() || stream.set_read_timeout_opt(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let Ok(write_half) = stream.duplicate() else {
        return;
    };
    let writer = Arc::new(Mutex::new(write_half));
    // Requests this connection has in flight, so a disconnect releases
    // their claim (like dropping a ticket). Callbacks prune their own entry
    // after writing; the (benign) race where a callback fires before its
    // token is inserted just leaves a spent token behind until disconnect.
    let in_flight: Arc<Mutex<HashMap<u64, crate::deadline::CancelToken>>> =
        Arc::new(Mutex::new(HashMap::new()));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF: client hung up.
            Ok(_) => {
                if !line.ends_with('\n') {
                    continue; // Timed out mid-line; keep the partial read.
                }
                let frame = std::mem::take(&mut line);
                if !frame.trim().is_empty() {
                    handle_frame(&frame, service, &writer, &in_flight);
                }
            }
            // A read timeout surfaces as WouldBlock (Unix) or TimedOut;
            // partial bytes, if any, are already appended to `line`.
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    for (_, token) in in_flight.lock().expect("wire connection poisoned").drain() {
        token.cancel();
    }
}

fn handle_frame<S: WireStream>(
    frame: &str,
    service: &Arc<Service>,
    writer: &Arc<Mutex<S>>,
    in_flight: &Arc<Mutex<HashMap<u64, crate::deadline::CancelToken>>>,
) {
    // The `stats` verb is a control frame, not a query: it carries no
    // `query` field and is answered synchronously from the service's
    // counters, so it is intercepted before request decoding.
    if let Some(id) = decode_stats_request(frame) {
        let tenants: Vec<(String, u64, CacheStats)> = service
            .database_ids()
            .iter()
            .map(|id| {
                let stats = service
                    .engine_for(id)
                    .expect("listed database resolves")
                    .cache_stats();
                let version = service
                    .database_version(id)
                    .expect("listed database resolves");
                (id.to_string(), version, stats)
            })
            .collect();
        write_line(
            writer,
            &encode_stats_response(id, &service.stats(), &tenants),
        );
        return;
    }
    // The `metrics` verb: Prometheus-style text exposition of every
    // registered instrument (empty when metrics are disabled). Also a
    // control frame, answered synchronously.
    if let Some(id) = decode_metrics_request(frame) {
        write_line(
            writer,
            &encode_metrics_response(id, &service.metrics_text()),
        );
        return;
    }
    // The `trace` verb: the span timeline of one submission's trace id
    // (as returned in response frames' `trace` field).
    if let Some((id, trace)) = decode_trace_request(frame) {
        write_line(
            writer,
            &encode_trace_response(id, trace, &service.trace_events(trace)),
        );
        return;
    }
    // Update frames carry a `session`/`op` instead of a `query`, so they
    // are also recognized before request decoding.
    if let Some(decoded) = decode_update_request(frame) {
        match decoded {
            Ok((id, update, options)) => {
                let reply_writer = Arc::clone(writer);
                let reply_in_flight = Arc::clone(in_flight);
                let submitted = service.submit_update_callback(update, options, move |outcome| {
                    write_line(
                        &reply_writer,
                        &encode_response(id, &outcome.delivery, outcome.version, outcome.trace),
                    );
                    reply_in_flight
                        .lock()
                        .expect("wire connection poisoned")
                        .remove(&id);
                });
                match submitted {
                    Ok((token, _trace)) => {
                        in_flight
                            .lock()
                            .expect("wire connection poisoned")
                            .insert(id, token);
                    }
                    Err(e) => write_line(writer, &encode_response(id, &Err(e), 0, 0)),
                }
            }
            Err((id, message)) => {
                let err = Err(ServiceError::Protocol(message));
                write_line(writer, &encode_response(id.unwrap_or(0), &err, 0, 0));
            }
        }
        return;
    }
    match decode_request(frame) {
        Ok((id, request, options)) => {
            let reply_writer = Arc::clone(writer);
            let reply_in_flight = Arc::clone(in_flight);
            let submitted = service.submit_callback(request, options, move |outcome| {
                write_line(
                    &reply_writer,
                    &encode_response(id, &outcome.delivery, outcome.version, outcome.trace),
                );
                reply_in_flight
                    .lock()
                    .expect("wire connection poisoned")
                    .remove(&id);
            });
            match submitted {
                Ok((token, _trace)) => {
                    in_flight
                        .lock()
                        .expect("wire connection poisoned")
                        .insert(id, token);
                }
                Err(e) => write_line(writer, &encode_response(id, &Err(e), 0, 0)),
            }
        }
        Err((id, message)) => {
            let err = Err(ServiceError::Protocol(message));
            write_line(writer, &encode_response(id.unwrap_or(0), &err, 0, 0));
        }
    }
}

/// Writes one response line; a broken pipe just means the client left.
fn write_line<S: WireStream>(writer: &Arc<Mutex<S>>, line: &str) {
    let mut guard = writer.lock().expect("wire writer poisoned");
    let _ = guard.write_all(line.as_bytes());
    let _ = guard.write_all(b"\n");
    let _ = guard.flush();
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A blocking client for the wire protocol.
///
/// [`WireClient::call`] is the simple path: send one request, block for its
/// answer. [`WireClient::send`] / [`WireClient::recv`] split the two halves
/// so many requests can be pipelined on one connection; `recv` reorders
/// out-of-order responses by id. The client is single-threaded by design —
/// open one connection per client thread.
pub struct WireClient {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
    next_id: u64,
    pending: HashMap<u64, (Delivery, Option<u64>, u64)>,
}

impl WireClient {
    /// Connects over TCP.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<WireClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let read_half = stream.try_clone()?;
        Ok(WireClient::from_halves(read_half, stream))
    }

    /// Connects over a Unix-domain socket.
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<std::path::Path>) -> io::Result<WireClient> {
        let stream = UnixStream::connect(path)?;
        let read_half = stream.try_clone()?;
        Ok(WireClient::from_halves(read_half, stream))
    }

    fn from_halves(
        read: impl Read + Send + 'static,
        write: impl Write + Send + 'static,
    ) -> WireClient {
        WireClient {
            reader: BufReader::new(Box::new(read)),
            writer: Box::new(write),
            next_id: 1,
            pending: HashMap::new(),
        }
    }

    fn write_frame(&mut self, frame: &str) -> Result<(), ServiceError> {
        self.writer
            .write_all(frame.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| ServiceError::Protocol(format!("send failed: {e}")))
    }

    /// Sends one request frame without waiting; returns the frame id to
    /// pass to [`WireClient::recv`].
    pub fn send(
        &mut self,
        request: &Request,
        options: &SubmitOptions,
    ) -> Result<u64, ServiceError> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = encode_request(id, request, options);
        self.write_frame(&frame)?;
        Ok(id)
    }

    /// Sends one update frame without waiting; returns the frame id to
    /// pass to [`WireClient::recv`]. The answer is an [`Answer::Updated`]
    /// receipt ([`WireClient::apply_update`] unwraps it).
    pub fn send_update(
        &mut self,
        update: &Update,
        options: &SubmitOptions,
    ) -> Result<u64, ServiceError> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = encode_update_request(id, update, options);
        self.write_frame(&frame)?;
        Ok(id)
    }

    /// Blocks until the response for `id` arrives (stashing any other
    /// pipelined responses that land first) and returns it.
    pub fn recv(&mut self, id: u64) -> Result<Answer, ServiceError> {
        self.recv_versioned(id).map(|(answer, _)| answer)
    }

    /// [`WireClient::recv`], also returning the database version the answer
    /// was computed against (`None` when the request never reached a
    /// versioned snapshot).
    pub fn recv_versioned(&mut self, id: u64) -> Result<(Answer, Option<u64>), ServiceError> {
        self.recv_traced(id)
            .map(|(answer, version, _)| (answer, version))
    }

    /// [`WireClient::recv_versioned`], also returning the server-assigned
    /// trace id (0 when the response carried none) — the handle to pass to
    /// [`WireClient::trace`] for the submission's span timeline.
    pub fn recv_traced(&mut self, id: u64) -> Result<(Answer, Option<u64>, u64), ServiceError> {
        loop {
            if let Some((delivery, version, trace)) = self.pending.remove(&id) {
                return delivery.map(|answer| (answer, version, trace));
            }
            let mut line = String::new();
            match self.reader.read_line(&mut line) {
                Ok(0) => return Err(ServiceError::Disconnected),
                Ok(_) => {
                    let (got, delivery, version, trace) =
                        decode_response(&line).map_err(ServiceError::Protocol)?;
                    self.pending.insert(got, (delivery, version, trace));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ServiceError::Protocol(format!("recv failed: {e}"))),
            }
        }
    }

    /// Sends one request and blocks for its answer.
    pub fn call(
        &mut self,
        request: &Request,
        options: &SubmitOptions,
    ) -> Result<Answer, ServiceError> {
        let id = self.send(request, options)?;
        self.recv(id)
    }

    /// Sends one database update and blocks for its receipt, returning the
    /// new version id and the number of cached work units the server
    /// invalidated.
    pub fn apply_update(
        &mut self,
        update: &Update,
        options: &SubmitOptions,
    ) -> Result<(u64, u64), ServiceError> {
        let id = self.send_update(update, options)?;
        match self.recv(id)? {
            Answer::Updated {
                version,
                invalidated,
            } => Ok((version, invalidated)),
            other => Err(ServiceError::Protocol(format!(
                "expected an update receipt, got {other:?}"
            ))),
        }
    }

    /// Fetches the server's activity counters: the [`ServiceStats`]
    /// snapshot plus each tenant's own [`CacheStats`] (including the
    /// calibration counters). Pipelined responses for other in-flight
    /// requests that land first are stashed for their own `recv` calls.
    pub fn stats(&mut self) -> Result<WireStatsReport, ServiceError> {
        let payload = self.control_call(vec![("kind", Value::from("stats"))])?;
        decode_stats_payload(&payload).map_err(ServiceError::Protocol)
    }

    /// Fetches the server's metrics exposition: one Prometheus-style text
    /// block covering every registered instrument — counters, gauges, and
    /// histogram buckets. Empty when the server runs with metrics disabled.
    pub fn metrics(&mut self) -> Result<String, ServiceError> {
        let payload = self.control_call(vec![("kind", Value::from("metrics"))])?;
        decode_metrics_payload(&payload).map_err(ServiceError::Protocol)
    }

    /// Fetches the still-buffered span timeline of one submission's trace
    /// (the `trace` id returned by [`WireClient::recv_traced`]). Empty for
    /// untraced ids — tracing off, unsampled, or already evicted from the
    /// server's bounded span ring.
    pub fn trace(&mut self, trace: u64) -> Result<Vec<SpanRecord>, ServiceError> {
        let payload = self.control_call(vec![
            ("kind", Value::from("trace")),
            ("trace", Value::from(trace)),
        ])?;
        decode_trace_payload(&payload).map_err(ServiceError::Protocol)
    }

    /// Sends one control frame (`entries` plus the assigned id) and blocks
    /// for its `ok` payload, stashing pipelined query responses that land
    /// first for their own `recv` calls.
    fn control_call(&mut self, mut entries: Vec<(&str, Value)>) -> Result<Value, ServiceError> {
        let id = self.next_id;
        self.next_id += 1;
        entries.insert(0, ("id", Value::from(id)));
        let frame =
            serde_json::to_string(&object(entries)).expect("control frames always serialize");
        self.write_frame(&frame)?;
        loop {
            let mut line = String::new();
            match self.reader.read_line(&mut line) {
                Ok(0) => return Err(ServiceError::Disconnected),
                Ok(_) => {
                    let value: Value = serde_json::from_str(&line)
                        .map_err(|e| ServiceError::Protocol(e.to_string()))?;
                    if value.get("id").and_then(Value::as_u64) == Some(id) {
                        return value.get("ok").cloned().ok_or_else(|| {
                            ServiceError::Protocol("control request failed".to_string())
                        });
                    }
                    let (got, delivery, version, trace) =
                        decode_response(&line).map_err(ServiceError::Protocol)?;
                    self.pending.insert(got, (delivery, version, trace));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ServiceError::Protocol(format!("recv failed: {e}"))),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Codec: frames ⇄ service types
// ---------------------------------------------------------------------------

fn object(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

/// Encodes one request frame (no trailing newline).
pub(crate) fn encode_request(id: u64, request: &Request, options: &SubmitOptions) -> String {
    let mut entries = vec![
        ("id", Value::from(id)),
        ("kind", Value::from(request_kind(request))),
        ("query", query_to_json(request.query())),
        ("class", Value::from(options.class.name())),
    ];
    if let Request::TopK { k, strategy, .. } = request {
        entries.push(("k", Value::from(*k as u64)));
        entries.push(("strategy", strategy_to_json(*strategy)));
    }
    if let Some(db) = &options.database {
        entries.push(("database", Value::from(db.as_str())));
    }
    if let Some(deadline) = options.deadline {
        entries.push(("deadline_ms", Value::from(deadline.as_millis() as u64)));
    }
    if let Some(budget) = options.error_budget {
        entries.push(("epsilon", Value::from(budget.epsilon)));
        entries.push(("confidence", Value::from(budget.confidence)));
    }
    serde_json::to_string(&object(entries)).expect("request frames always serialize")
}

/// A decoded inbound frame: id + payload + options on success; on failure
/// the frame id (when at least that much parsed, so the error response can
/// still be correlated) and a message.
type DecodedFrame<T> = Result<(u64, T, SubmitOptions), (Option<u64>, String)>;

/// Decodes one request frame. On failure, returns the frame id when at
/// least that much parsed, so the error response can still be correlated.
pub(crate) fn decode_request(frame: &str) -> DecodedFrame<Request> {
    let value = serde_json::from_str(frame).map_err(|e| (None, e.to_string()))?;
    let id = value.get("id").and_then(Value::as_u64);
    let fail = |message: String| (id, message);
    let id = id.ok_or_else(|| (None, "missing numeric `id`".to_string()))?;
    let kind = value
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| fail("missing `kind`".to_string()))?;
    let query = query_from_json(
        value
            .get("query")
            .ok_or_else(|| fail("missing `query`".to_string()))?,
    )
    .map_err(&fail)?;
    let request = match kind {
        "boolean" => Request::Boolean(query),
        "count" => Request::Count(query),
        "session_probabilities" => Request::SessionProbabilities(query),
        "topk" => Request::TopK {
            query,
            k: value
                .get("k")
                .and_then(Value::as_u64)
                .ok_or_else(|| fail("topk requests need a numeric `k`".to_string()))?
                as usize,
            strategy: match value.get("strategy") {
                None => TopKStrategy::Naive,
                Some(s) => strategy_from_json(s).map_err(&fail)?,
            },
        },
        other => return Err(fail(format!("unknown request kind `{other}`"))),
    };
    let mut options = SubmitOptions::default();
    match value.get("class").and_then(Value::as_str) {
        None | Some("interactive") => {}
        Some("batch") => options.class = AdmissionClass::Batch,
        Some(other) => return Err(fail(format!("unknown admission class `{other}`"))),
    }
    if let Some(db) = value.get("database") {
        options.database = Some(
            db.as_str()
                .ok_or_else(|| fail("`database` must be a string".to_string()))?
                .to_string(),
        );
    }
    if let Some(ms) = value.get("deadline_ms") {
        options.deadline = Some(Duration::from_millis(ms.as_u64().ok_or_else(|| {
            fail("`deadline_ms` must be a non-negative integer".to_string())
        })?));
    }
    match (value.get("epsilon"), value.get("confidence")) {
        (None, None) => {}
        (Some(eps), Some(conf)) => {
            let epsilon = eps
                .as_f64()
                .filter(|e| e.is_finite() && *e > 0.0)
                .ok_or_else(|| fail("`epsilon` must be a positive number".to_string()))?;
            let confidence = conf
                .as_f64()
                .filter(|c| *c > 0.0 && *c < 1.0)
                .ok_or_else(|| fail("`confidence` must be in (0, 1)".to_string()))?;
            options = options.with_error_budget(epsilon, confidence);
        }
        _ => {
            return Err(fail(
                "`epsilon` and `confidence` must be given together".to_string(),
            ))
        }
    }
    Ok((id, request, options))
}

fn request_kind(request: &Request) -> &'static str {
    match request {
        Request::Boolean(_) => "boolean",
        Request::Count(_) => "count",
        Request::SessionProbabilities(_) => "session_probabilities",
        Request::TopK { .. } => "topk",
    }
}

fn strategy_to_json(strategy: TopKStrategy) -> Value {
    match strategy {
        TopKStrategy::Naive => Value::from("naive"),
        TopKStrategy::UpperBound { edges_per_pattern } => {
            object(vec![("upper_bound", Value::from(edges_per_pattern as u64))])
        }
    }
}

fn strategy_from_json(value: &Value) -> Result<TopKStrategy, String> {
    if value.as_str() == Some("naive") {
        return Ok(TopKStrategy::Naive);
    }
    if let Some(edges) = value.get("upper_bound").and_then(Value::as_u64) {
        return Ok(TopKStrategy::UpperBound {
            edges_per_pattern: edges as usize,
        });
    }
    Err("strategy must be \"naive\" or {\"upper_bound\": n}".to_string())
}

fn query_to_json(query: &ConjunctiveQuery) -> Value {
    object(vec![
        ("name", Value::from(query.name())),
        (
            "prefer",
            Value::Array(
                query
                    .preference_atoms()
                    .iter()
                    .map(|atom| {
                        object(vec![
                            ("relation", Value::from(atom.relation.as_str())),
                            (
                                "sessions",
                                Value::Array(atom.session_terms.iter().map(term_to_json).collect()),
                            ),
                            ("left", term_to_json(&atom.left)),
                            ("right", term_to_json(&atom.right)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "atoms",
            Value::Array(
                query
                    .relation_atoms()
                    .iter()
                    .map(|atom| {
                        object(vec![
                            ("relation", Value::from(atom.relation.as_str())),
                            (
                                "terms",
                                Value::Array(atom.terms.iter().map(term_to_json).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "compare",
            Value::Array(
                query
                    .comparisons()
                    .iter()
                    .map(|cmp| {
                        object(vec![
                            ("var", Value::from(cmp.var.as_str())),
                            ("op", Value::from(cmp.op.symbol())),
                            ("value", value_to_json(&cmp.value)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn query_from_json(value: &Value) -> Result<ConjunctiveQuery, String> {
    let name = value
        .get("name")
        .and_then(Value::as_str)
        .ok_or("query needs a string `name`")?;
    let mut query = ConjunctiveQuery::new(name);
    for atom in list(value, "prefer")? {
        let sessions = atom
            .get("sessions")
            .and_then(Value::as_array)
            .ok_or("preference atom needs `sessions`")?
            .iter()
            .map(term_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        query = query.prefer(
            relation_of(atom)?,
            sessions,
            term_from_json(atom.get("left").ok_or("preference atom needs `left`")?)?,
            term_from_json(atom.get("right").ok_or("preference atom needs `right`")?)?,
        );
    }
    for atom in list(value, "atoms")? {
        let terms = atom
            .get("terms")
            .and_then(Value::as_array)
            .ok_or("relation atom needs `terms`")?
            .iter()
            .map(term_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        query = query.atom(relation_of(atom)?, terms);
    }
    for cmp in list(value, "compare")? {
        let var = cmp
            .get("var")
            .and_then(Value::as_str)
            .ok_or("comparison needs a string `var`")?;
        let op = match cmp.get("op").and_then(Value::as_str) {
            Some("=") => CompareOp::Eq,
            Some("!=") => CompareOp::Ne,
            Some("<") => CompareOp::Lt,
            Some("<=") => CompareOp::Le,
            Some(">") => CompareOp::Gt,
            Some(">=") => CompareOp::Ge,
            _ => return Err("comparison `op` must be one of = != < <= > >=".to_string()),
        };
        let constant = value_from_json(cmp.get("value").ok_or("comparison needs `value`")?)?;
        query = query.compare(var, op, constant);
    }
    Ok(query)
}

fn list<'v>(value: &'v Value, key: &str) -> Result<&'v [Value], String> {
    match value.get(key) {
        None => Ok(&[]),
        Some(entry) => entry
            .as_array()
            .ok_or_else(|| format!("query `{key}` must be an array")),
    }
}

fn relation_of(atom: &Value) -> Result<&str, String> {
    atom.get("relation")
        .and_then(Value::as_str)
        .ok_or_else(|| "atom needs a string `relation`".to_string())
}

fn term_to_json(term: &Term) -> Value {
    match term {
        Term::Var(name) => object(vec![("var", Value::from(name.as_str()))]),
        Term::Const(value) => object(vec![("val", value_to_json(value))]),
        Term::Wildcard => Value::from("_"),
    }
}

fn term_from_json(value: &Value) -> Result<Term, String> {
    if value.as_str() == Some("_") {
        return Ok(Term::Wildcard);
    }
    if let Some(name) = value.get("var").and_then(Value::as_str) {
        return Ok(Term::var(name));
    }
    if let Some(constant) = value.get("val") {
        return Ok(Term::Const(value_from_json(constant)?));
    }
    Err("term must be \"_\", {\"var\": name}, or {\"val\": constant}".to_string())
}

fn value_to_json(value: &PpdValue) -> Value {
    match value {
        PpdValue::Str(s) => Value::from(s.as_str()),
        PpdValue::Int(i) => Value::from(*i),
        PpdValue::Null => Value::Null,
    }
}

fn value_from_json(value: &Value) -> Result<PpdValue, String> {
    if value.is_null() {
        return Ok(PpdValue::Null);
    }
    if let Some(s) = value.as_str() {
        return Ok(PpdValue::Str(s.to_string()));
    }
    if let Some(i) = value.as_i64() {
        return Ok(PpdValue::Int(i));
    }
    Err("constants must be strings, integers, or null".to_string())
}

/// Encodes one update frame (no trailing newline). Updates never carry an
/// error budget — they mutate the database, they do not evaluate anything.
pub(crate) fn encode_update_request(id: u64, update: &Update, options: &SubmitOptions) -> String {
    let mut entries = vec![
        ("id", Value::from(id)),
        ("kind", Value::from("update")),
        ("class", Value::from(options.class.name())),
    ];
    match update {
        Update::InsertSession { prelation, session } => {
            entries.push(("op", Value::from("insert")));
            entries.push(("prelation", Value::from(prelation.as_str())));
            entries.push(("session", session_to_json(session)));
        }
        Update::ReplaceSession {
            prelation,
            index,
            session,
        } => {
            entries.push(("op", Value::from("replace")));
            entries.push(("prelation", Value::from(prelation.as_str())));
            entries.push(("index", Value::from(*index as u64)));
            entries.push(("session", session_to_json(session)));
        }
        Update::DeleteSession { prelation, index } => {
            entries.push(("op", Value::from("delete")));
            entries.push(("prelation", Value::from(prelation.as_str())));
            entries.push(("index", Value::from(*index as u64)));
        }
    }
    if let Some(db) = &options.database {
        entries.push(("database", Value::from(db.as_str())));
    }
    if let Some(deadline) = options.deadline {
        entries.push(("deadline_ms", Value::from(deadline.as_millis() as u64)));
    }
    serde_json::to_string(&object(entries)).expect("update frames always serialize")
}

/// Recognizes an update frame (`kind == "update"`); `None` means the frame
/// is something else. On failure, returns the frame id when at least that
/// much parsed, so the error response can still be correlated.
pub(crate) fn decode_update_request(frame: &str) -> Option<DecodedFrame<Update>> {
    let value: Value = serde_json::from_str(frame).ok()?;
    if value.get("kind").and_then(Value::as_str) != Some("update") {
        return None;
    }
    Some(decode_update_fields(&value))
}

fn decode_update_fields(value: &Value) -> DecodedFrame<Update> {
    let id = value.get("id").and_then(Value::as_u64);
    let fail = |message: String| (id, message);
    let id = id.ok_or((None, "missing numeric `id`".to_string()))?;
    let prelation = value
        .get("prelation")
        .and_then(Value::as_str)
        .ok_or_else(|| fail("updates need a string `prelation`".to_string()))?
        .to_string();
    let index = || {
        value
            .get("index")
            .and_then(Value::as_u64)
            .map(|i| i as usize)
            .ok_or_else(|| fail("this update op needs a numeric `index`".to_string()))
    };
    let session = || {
        value
            .get("session")
            .ok_or_else(|| fail("this update op needs a `session`".to_string()))
            .and_then(|s| session_from_json(s).map_err(&fail))
    };
    let update = match value.get("op").and_then(Value::as_str) {
        Some("insert") => Update::InsertSession {
            prelation,
            session: session()?,
        },
        Some("replace") => Update::ReplaceSession {
            prelation,
            index: index()?,
            session: session()?,
        },
        Some("delete") => Update::DeleteSession {
            prelation,
            index: index()?,
        },
        _ => {
            return Err(fail(
                "update `op` must be insert, replace, or delete".to_string(),
            ))
        }
    };
    let mut options = SubmitOptions::default();
    match value.get("class").and_then(Value::as_str) {
        None | Some("interactive") => {}
        Some("batch") => options.class = AdmissionClass::Batch,
        Some(other) => return Err(fail(format!("unknown admission class `{other}`"))),
    }
    if let Some(db) = value.get("database") {
        options.database = Some(
            db.as_str()
                .ok_or_else(|| fail("`database` must be a string".to_string()))?
                .to_string(),
        );
    }
    if let Some(ms) = value.get("deadline_ms") {
        options.deadline = Some(Duration::from_millis(ms.as_u64().ok_or_else(|| {
            fail("`deadline_ms` must be a non-negative integer".to_string())
        })?));
    }
    Ok((id, update, options))
}

/// A session crosses the wire as its attributes plus its Mallows model:
/// the reference ranking's items in rank order and the dispersion `phi`
/// (shortest-round-trip formatted, so the model hash survives the trip).
fn session_to_json(session: &Session) -> Value {
    object(vec![
        (
            "attrs",
            Value::Array(session.attrs().iter().map(value_to_json).collect()),
        ),
        (
            "ranking",
            Value::Array(
                session
                    .model()
                    .sigma()
                    .items()
                    .iter()
                    .map(|&item| Value::from(u64::from(item)))
                    .collect(),
            ),
        ),
        ("phi", Value::from(session.model().phi())),
    ])
}

fn session_from_json(value: &Value) -> Result<Session, String> {
    let attrs = value
        .get("attrs")
        .and_then(Value::as_array)
        .ok_or("session needs an `attrs` array")?
        .iter()
        .map(value_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let items = value
        .get("ranking")
        .and_then(Value::as_array)
        .ok_or("session needs a `ranking` array")?
        .iter()
        .map(|item| {
            item.as_u64()
                .and_then(|i| u32::try_from(i).ok())
                .ok_or_else(|| "ranking entries are item ids".to_string())
        })
        .collect::<Result<Vec<_>, String>>()?;
    let phi = value
        .get("phi")
        .and_then(Value::as_f64)
        .ok_or("session needs a numeric `phi`")?;
    let ranking = Ranking::new(items).map_err(|e| e.to_string())?;
    let model = MallowsModel::new(ranking, phi).map_err(|e| e.to_string())?;
    Ok(Session::new(attrs, model))
}

/// Encodes one response frame (no trailing newline). `version` is the
/// database version the delivery was computed against; `0` (never reached
/// a versioned snapshot) omits the field. `trace` is the submission's trace
/// id for the `trace` control verb; `0` (failed before assignment) omits
/// the field.
pub(crate) fn encode_response(id: u64, delivery: &Delivery, version: u64, trace: u64) -> String {
    let mut entries = vec![("id", Value::from(id))];
    if version > 0 {
        entries.push(("version", Value::from(version)));
    }
    if trace > 0 {
        entries.push(("trace", Value::from(trace)));
    }
    entries.push(match delivery {
        Ok(answer) => ("ok", answer_to_json(answer)),
        Err(error) => ("err", error_to_json(error)),
    });
    serde_json::to_string(&object(entries)).expect("response frames always serialize")
}

/// Decodes one response frame into `(id, delivery, computed version,
/// trace id)` — trace 0 when the frame carried none.
pub(crate) fn decode_response(frame: &str) -> Result<(u64, Delivery, Option<u64>, u64), String> {
    let value = serde_json::from_str(frame).map_err(|e| e.to_string())?;
    let id = value
        .get("id")
        .and_then(Value::as_u64)
        .ok_or("response missing numeric `id`")?;
    let version = value.get("version").and_then(Value::as_u64);
    let trace = value.get("trace").and_then(Value::as_u64).unwrap_or(0);
    if let Some(ok) = value.get("ok") {
        return Ok((id, Ok(answer_from_json(ok)?), version, trace));
    }
    if let Some(err) = value.get("err") {
        return Ok((id, Err(error_from_json(err)?), version, trace));
    }
    Err("response carries neither `ok` nor `err`".to_string())
}

// ---------------------------------------------------------------------------
// Stats verb: `{"id": n, "kind": "stats"}` ⇄ counters snapshot
// ---------------------------------------------------------------------------

/// What [`WireClient::stats`] returns: the server-wide [`ServiceStats`]
/// snapshot plus each registered database's own cache counters, in
/// registration order.
#[derive(Debug, Clone, PartialEq)]
pub struct WireStatsReport {
    /// The service-wide activity snapshot (its `cache` field sums every
    /// tenant, base and budget engines alike).
    pub service: ServiceStats,
    /// Per-tenant `(database id, database version, base-engine cache
    /// counters)`, in registration order.
    pub tenants: Vec<(String, u64, CacheStats)>,
}

/// Recognizes a stats control frame, returning its id.
fn decode_stats_request(frame: &str) -> Option<u64> {
    let value: Value = serde_json::from_str(frame).ok()?;
    if value.get("kind").and_then(Value::as_str) != Some("stats") {
        return None;
    }
    value.get("id").and_then(Value::as_u64)
}

fn cache_to_json(cache: &CacheStats) -> Value {
    object(vec![
        ("marginal_hits", Value::from(cache.marginal_hits)),
        ("marginal_misses", Value::from(cache.marginal_misses)),
        ("marginal_evictions", Value::from(cache.marginal_evictions)),
        (
            "marginal_evicted_bytes",
            Value::from(cache.marginal_evicted_bytes),
        ),
        ("marginals_loaded", Value::from(cache.marginals_loaded)),
        ("marginals_saved", Value::from(cache.marginals_saved)),
        ("models_prepared", Value::from(cache.models_prepared)),
        ("calibration_hits", Value::from(cache.calibration_hits)),
        ("calibration_misses", Value::from(cache.calibration_misses)),
        (
            "calibration_recorded",
            Value::from(cache.calibration_recorded),
        ),
        ("units_invalidated", Value::from(cache.units_invalidated)),
        ("segment_live_bytes", Value::from(cache.segment_live_bytes)),
        ("segment_dead_bytes", Value::from(cache.segment_dead_bytes)),
        ("compactions", Value::from(cache.compactions)),
        ("pools_built", Value::from(cache.pools_built)),
        ("pool_hits", Value::from(cache.pool_hits)),
    ])
}

fn cache_from_json(value: &Value) -> Result<CacheStats, String> {
    let field = |name: &str| -> Result<u64, String> {
        value
            .get(name)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("cache stats need a numeric `{name}`"))
    };
    Ok(CacheStats {
        marginal_hits: field("marginal_hits")?,
        marginal_misses: field("marginal_misses")?,
        marginal_evictions: field("marginal_evictions")?,
        marginal_evicted_bytes: field("marginal_evicted_bytes")?,
        marginals_loaded: field("marginals_loaded")?,
        marginals_saved: field("marginals_saved")?,
        models_prepared: field("models_prepared")?,
        calibration_hits: field("calibration_hits")?,
        calibration_misses: field("calibration_misses")?,
        calibration_recorded: field("calibration_recorded")?,
        units_invalidated: field("units_invalidated")?,
        segment_live_bytes: field("segment_live_bytes")?,
        segment_dead_bytes: field("segment_dead_bytes")?,
        compactions: field("compactions")?,
        pools_built: field("pools_built")?,
        pool_hits: field("pool_hits")?,
    })
}

/// Encodes the response to a stats control frame.
pub(crate) fn encode_stats_response(
    id: u64,
    stats: &ServiceStats,
    tenants: &[(String, u64, CacheStats)],
) -> String {
    let service = object(vec![
        ("submitted", Value::from(stats.submitted)),
        ("rejected", Value::from(stats.rejected)),
        (
            "interactive_submitted",
            Value::from(stats.interactive_submitted),
        ),
        (
            "interactive_rejected",
            Value::from(stats.interactive_rejected),
        ),
        ("batch_submitted", Value::from(stats.batch_submitted)),
        ("batch_rejected", Value::from(stats.batch_rejected)),
        ("answered", Value::from(stats.answered)),
        ("failed", Value::from(stats.failed)),
        ("expired", Value::from(stats.expired)),
        ("updates_applied", Value::from(stats.updates_applied)),
        ("queue_depth", Value::from(stats.queue_depth as u64)),
        (
            "interactive_queue_depth",
            Value::from(stats.interactive_queue_depth as u64),
        ),
        (
            "batch_queue_depth",
            Value::from(stats.batch_queue_depth as u64),
        ),
        ("uptime_ns", Value::from(stats.uptime.as_nanos() as u64)),
        ("in_flight_waves", Value::from(stats.in_flight_waves)),
        ("waves", Value::from(stats.waves)),
        ("max_wave", Value::from(stats.max_wave as u64)),
        (
            "wave_sizes",
            Value::Array(
                stats
                    .wave_sizes
                    .iter()
                    .map(|&(size, count)| {
                        Value::Array(vec![Value::from(size as u64), Value::from(count)])
                    })
                    .collect(),
            ),
        ),
        (
            "mean_latency_ns",
            Value::from(stats.mean_latency.as_nanos() as u64),
        ),
        (
            "max_latency_ns",
            Value::from(stats.max_latency.as_nanos() as u64),
        ),
        ("cache", cache_to_json(&stats.cache)),
    ]);
    let tenants = Value::Array(
        tenants
            .iter()
            .map(|(id, version, cache)| {
                object(vec![
                    ("database", Value::from(id.as_str())),
                    ("version", Value::from(*version)),
                    ("cache", cache_to_json(cache)),
                ])
            })
            .collect(),
    );
    let payload = object(vec![
        ("kind", Value::from("stats")),
        ("service", service),
        ("tenants", tenants),
    ]);
    serde_json::to_string(&object(vec![("id", Value::from(id)), ("ok", payload)]))
        .expect("stats responses always serialize")
}

/// Decodes the `ok` payload of a stats response.
fn decode_stats_payload(value: &Value) -> Result<WireStatsReport, String> {
    if value.get("kind").and_then(Value::as_str) != Some("stats") {
        return Err("expected a stats payload".to_string());
    }
    let service = value
        .get("service")
        .ok_or("stats payload needs `service`")?;
    let field = |name: &str| -> Result<u64, String> {
        service
            .get(name)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("stats need a numeric `{name}`"))
    };
    let wave_sizes = service
        .get("wave_sizes")
        .and_then(Value::as_array)
        .ok_or("stats need a `wave_sizes` array")?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_array()
                .ok_or("wave sizes are [size, count] pairs")?;
            match (
                pair.first().and_then(Value::as_u64),
                pair.get(1).and_then(Value::as_u64),
            ) {
                (Some(size), Some(count)) if pair.len() == 2 => Ok((size as usize, count)),
                _ => Err("wave sizes are [size, count] pairs".to_string()),
            }
        })
        .collect::<Result<Vec<_>, String>>()?;
    let stats = ServiceStats {
        submitted: field("submitted")?,
        rejected: field("rejected")?,
        interactive_submitted: field("interactive_submitted")?,
        interactive_rejected: field("interactive_rejected")?,
        batch_submitted: field("batch_submitted")?,
        batch_rejected: field("batch_rejected")?,
        answered: field("answered")?,
        failed: field("failed")?,
        expired: field("expired")?,
        updates_applied: field("updates_applied")?,
        queue_depth: field("queue_depth")? as usize,
        interactive_queue_depth: field("interactive_queue_depth")? as usize,
        batch_queue_depth: field("batch_queue_depth")? as usize,
        uptime: Duration::from_nanos(field("uptime_ns")?),
        in_flight_waves: field("in_flight_waves")?,
        waves: field("waves")?,
        max_wave: field("max_wave")? as usize,
        wave_sizes,
        mean_latency: Duration::from_nanos(field("mean_latency_ns")?),
        max_latency: Duration::from_nanos(field("max_latency_ns")?),
        cache: cache_from_json(service.get("cache").ok_or("stats need `cache`")?)?,
    };
    let tenants = value
        .get("tenants")
        .and_then(Value::as_array)
        .ok_or("stats payload needs `tenants`")?
        .iter()
        .map(|tenant| {
            let id = tenant
                .get("database")
                .and_then(Value::as_str)
                .ok_or("tenant entries need a string `database`")?
                .to_string();
            let version = tenant
                .get("version")
                .and_then(Value::as_u64)
                .ok_or("tenant entries need a numeric `version`")?;
            let cache = cache_from_json(tenant.get("cache").ok_or("tenant entries need `cache`")?)?;
            Ok((id, version, cache))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(WireStatsReport {
        service: stats,
        tenants,
    })
}

// ---------------------------------------------------------------------------
// Metrics verb: `{"id": n, "kind": "metrics"}` ⇄ text exposition
// ---------------------------------------------------------------------------

/// Recognizes a metrics control frame, returning its id.
fn decode_metrics_request(frame: &str) -> Option<u64> {
    let value: Value = serde_json::from_str(frame).ok()?;
    if value.get("kind").and_then(Value::as_str) != Some("metrics") {
        return None;
    }
    value.get("id").and_then(Value::as_u64)
}

/// Encodes the response to a metrics control frame. The exposition text
/// rides inside the JSON string (newlines escaped), so the frame stays one
/// line like every other response.
pub(crate) fn encode_metrics_response(id: u64, text: &str) -> String {
    let payload = object(vec![
        ("kind", Value::from("metrics")),
        ("text", Value::from(text)),
    ]);
    serde_json::to_string(&object(vec![("id", Value::from(id)), ("ok", payload)]))
        .expect("metrics responses always serialize")
}

/// Decodes the `ok` payload of a metrics response.
fn decode_metrics_payload(value: &Value) -> Result<String, String> {
    if value.get("kind").and_then(Value::as_str) != Some("metrics") {
        return Err("expected a metrics payload".to_string());
    }
    value
        .get("text")
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| "metrics payload needs a string `text`".to_string())
}

// ---------------------------------------------------------------------------
// Trace verb: `{"id": n, "kind": "trace", "trace": t}` ⇄ span timeline
// ---------------------------------------------------------------------------

/// Recognizes a trace control frame, returning `(id, trace id)`.
fn decode_trace_request(frame: &str) -> Option<(u64, u64)> {
    let value: Value = serde_json::from_str(frame).ok()?;
    if value.get("kind").and_then(Value::as_str) != Some("trace") {
        return None;
    }
    let id = value.get("id").and_then(Value::as_u64)?;
    let trace = value.get("trace").and_then(Value::as_u64)?;
    Some((id, trace))
}

fn span_to_json(record: &SpanRecord) -> Value {
    let mut entries = vec![
        ("seq", Value::from(record.seq)),
        ("at_micros", Value::from(record.at_micros)),
        ("event", Value::from(record.event.name())),
    ];
    match &record.event {
        SpanEvent::Admitted {
            tenant,
            class,
            depth,
        } => {
            entries.push(("tenant", Value::from(tenant.as_str())));
            entries.push(("class", Value::from(*class)));
            entries.push(("depth", Value::from(*depth as u64)));
        }
        SpanEvent::WaveJoined {
            wave_units,
            units,
            cached,
        } => {
            entries.push(("wave_units", Value::from(*wave_units as u64)));
            entries.push(("units", Value::from(*units as u64)));
            entries.push(("cached", Value::from(*cached as u64)));
        }
        SpanEvent::UnitSolved {
            unit_hash,
            solver,
            micros,
        } => {
            entries.push(("unit_hash", Value::from(*unit_hash)));
            entries.push(("solver", Value::from(*solver)));
            entries.push(("micros", Value::from(*micros)));
        }
        SpanEvent::Delivered { micros }
        | SpanEvent::Expired { micros }
        | SpanEvent::Cancelled { micros } => {
            entries.push(("micros", Value::from(*micros)));
        }
        SpanEvent::Failed { error_kind, micros } => {
            entries.push(("error_kind", Value::from(*error_kind)));
            entries.push(("micros", Value::from(*micros)));
        }
    }
    object(entries)
}

/// Interns a wire string back into the static label space the span events
/// carry. The label sets are closed (admission classes, solver tags, error
/// kinds), so an unknown string is a protocol mismatch — reported as the
/// `"unknown"` sentinel rather than an error, since the timeline is
/// diagnostic output, not an input to anything.
fn intern_label(s: &str, known: &[&'static str]) -> &'static str {
    known
        .iter()
        .find(|k| **k == s)
        .copied()
        .unwrap_or("unknown")
}

const CLASS_LABELS: &[&str] = &["interactive", "batch"];
const SOLVER_LABELS: &[&str] = &["exact", "general-exact", "mis-amp", "mis-amp-budgeted"];
const ERROR_KIND_LABELS: &[&str] = &[
    // PpdError kinds…
    "unknown-name",
    "malformed",
    "unsupported-query",
    "pattern",
    "rim",
    "solver",
    "persist",
    "cancelled",
    // …and the service-level ones.
    "overloaded",
    "shutting-down",
    "unknown-database",
    "deadline-exceeded",
    "protocol",
    "disconnected",
];

fn span_from_json(trace: u64, value: &Value) -> Result<SpanRecord, String> {
    let number = |name: &str| -> Result<u64, String> {
        value
            .get(name)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("span events need a numeric `{name}`"))
    };
    let string = |name: &str| -> Result<&str, String> {
        value
            .get(name)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("span events need a string `{name}`"))
    };
    let event = match string("event")? {
        "admitted" => SpanEvent::Admitted {
            tenant: string("tenant")?.to_string(),
            class: intern_label(string("class")?, CLASS_LABELS),
            depth: number("depth")? as usize,
        },
        "wave-joined" => SpanEvent::WaveJoined {
            wave_units: number("wave_units")? as usize,
            units: number("units")? as usize,
            cached: number("cached")? as usize,
        },
        "unit-solved" => SpanEvent::UnitSolved {
            unit_hash: number("unit_hash")?,
            solver: intern_label(string("solver")?, SOLVER_LABELS),
            micros: number("micros")?,
        },
        "delivered" => SpanEvent::Delivered {
            micros: number("micros")?,
        },
        "expired" => SpanEvent::Expired {
            micros: number("micros")?,
        },
        "cancelled" => SpanEvent::Cancelled {
            micros: number("micros")?,
        },
        "failed" => SpanEvent::Failed {
            error_kind: intern_label(string("error_kind")?, ERROR_KIND_LABELS),
            micros: number("micros")?,
        },
        other => return Err(format!("unknown span event `{other}`")),
    };
    Ok(SpanRecord {
        trace,
        seq: number("seq")?,
        at_micros: number("at_micros")?,
        event,
    })
}

/// Encodes the response to a trace control frame: the submission's span
/// timeline in recording order.
pub(crate) fn encode_trace_response(id: u64, trace: u64, events: &[SpanRecord]) -> String {
    let payload = object(vec![
        ("kind", Value::from("trace")),
        ("trace", Value::from(trace)),
        (
            "events",
            Value::Array(events.iter().map(span_to_json).collect()),
        ),
    ]);
    serde_json::to_string(&object(vec![("id", Value::from(id)), ("ok", payload)]))
        .expect("trace responses always serialize")
}

/// Decodes the `ok` payload of a trace response.
fn decode_trace_payload(value: &Value) -> Result<Vec<SpanRecord>, String> {
    if value.get("kind").and_then(Value::as_str) != Some("trace") {
        return Err("expected a trace payload".to_string());
    }
    let trace = value
        .get("trace")
        .and_then(Value::as_u64)
        .ok_or("trace payload needs a numeric `trace`")?;
    value
        .get("events")
        .and_then(Value::as_array)
        .ok_or("trace payload needs an `events` array")?
        .iter()
        .map(|event| span_from_json(trace, event))
        .collect()
}

fn answer_to_json(answer: &Answer) -> Value {
    let scored = |pairs: Vec<(u64, f64)>| {
        Value::Array(
            pairs
                .into_iter()
                .map(|(i, p)| Value::Array(vec![Value::from(i), Value::from(p)]))
                .collect(),
        )
    };
    match answer {
        Answer::Boolean(p) => object(vec![
            ("kind", Value::from("boolean")),
            ("value", Value::from(*p)),
        ]),
        Answer::Count(c) => object(vec![
            ("kind", Value::from("count")),
            ("value", Value::from(*c)),
        ]),
        Answer::SessionProbabilities(sessions) => object(vec![
            ("kind", Value::from("session_probabilities")),
            (
                "sessions",
                scored(sessions.iter().map(|&(i, p)| (i as u64, p)).collect()),
            ),
        ]),
        Answer::TopK(scores) => object(vec![
            ("kind", Value::from("topk")),
            (
                "sessions",
                scored(
                    scores
                        .iter()
                        .map(|s| (s.session_index as u64, s.probability))
                        .collect(),
                ),
            ),
        ]),
        Answer::Updated {
            version,
            invalidated,
        } => object(vec![
            ("kind", Value::from("updated")),
            ("version", Value::from(*version)),
            ("invalidated", Value::from(*invalidated)),
        ]),
    }
}

fn answer_from_json(value: &Value) -> Result<Answer, String> {
    let sessions = |value: &Value| -> Result<Vec<(usize, f64)>, String> {
        value
            .get("sessions")
            .and_then(Value::as_array)
            .ok_or("answer needs a `sessions` array")?
            .iter()
            .map(|pair| {
                let pair = pair
                    .as_array()
                    .ok_or("session entries are [index, p] pairs")?;
                match (
                    pair.first().and_then(Value::as_u64),
                    pair.get(1).and_then(Value::as_f64),
                ) {
                    (Some(i), Some(p)) if pair.len() == 2 => Ok((i as usize, p)),
                    _ => Err("session entries are [index, p] pairs".to_string()),
                }
            })
            .collect()
    };
    let scalar = || {
        value
            .get("value")
            .and_then(Value::as_f64)
            .ok_or_else(|| "answer needs a numeric `value`".to_string())
    };
    match value.get("kind").and_then(Value::as_str) {
        Some("boolean") => Ok(Answer::Boolean(scalar()?)),
        Some("count") => Ok(Answer::Count(scalar()?)),
        Some("session_probabilities") => Ok(Answer::SessionProbabilities(sessions(value)?)),
        Some("topk") => Ok(Answer::TopK(
            sessions(value)?
                .into_iter()
                .map(|(session_index, probability)| SessionScore {
                    session_index,
                    probability,
                })
                .collect(),
        )),
        Some("updated") => {
            let number = |name: &str| {
                value
                    .get(name)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("updated answers need a numeric `{name}`"))
            };
            Ok(Answer::Updated {
                version: number("version")?,
                invalidated: number("invalidated")?,
            })
        }
        _ => Err("unknown answer kind".to_string()),
    }
}

fn error_to_json(error: &ServiceError) -> Value {
    let kinded = |kind: &str| vec![("kind", Value::from(kind))];
    let with_detail = |kind: &str, detail: String| {
        vec![("kind", Value::from(kind)), ("detail", Value::from(detail))]
    };
    object(match error {
        ServiceError::Overloaded { depth } => vec![
            ("kind", Value::from("overloaded")),
            ("depth", Value::from(*depth as u64)),
        ],
        ServiceError::ShuttingDown => kinded("shutting_down"),
        ServiceError::UnknownDatabase(id) => with_detail("unknown_database", id.clone()),
        ServiceError::DeadlineExceeded => kinded("deadline_exceeded"),
        // Evaluation errors cross the wire as rendered text plus the stable
        // per-variant `error_kind`; the structured payload of a `PpdError`
        // does not survive the trip (see `error_from_json`), but its kind —
        // the label the error counters use — does.
        ServiceError::Eval(e) => vec![
            ("kind", Value::from("eval")),
            ("error_kind", Value::from(e.kind())),
            ("detail", Value::from(e.to_string())),
        ],
        ServiceError::Protocol(m) => with_detail("protocol", m.clone()),
        ServiceError::Disconnected => kinded("disconnected"),
    })
}

fn error_from_json(value: &Value) -> Result<ServiceError, String> {
    let detail = || {
        value
            .get("detail")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string()
    };
    match value.get("kind").and_then(Value::as_str) {
        Some("overloaded") => Ok(ServiceError::Overloaded {
            depth: value.get("depth").and_then(Value::as_u64).unwrap_or(0) as usize,
        }),
        Some("shutting_down") => Ok(ServiceError::ShuttingDown),
        Some("unknown_database") => Ok(ServiceError::UnknownDatabase(detail())),
        Some("deadline_exceeded") => Ok(ServiceError::DeadlineExceeded),
        // Lossy by design: the remote evaluation error arrives as text, but
        // `error_kind` picks the right variant back out, so `kind()` (and
        // the cancellation check in the service) survive the trip. Kinds
        // whose variants wrap a non-string payload flatten to `Malformed`.
        Some("eval") => Ok(ServiceError::Eval(
            match value.get("error_kind").and_then(Value::as_str) {
                Some("unknown-name") => PpdError::UnknownName(detail()),
                Some("unsupported-query") => PpdError::UnsupportedQuery(detail()),
                Some("persist") => PpdError::Persist(detail()),
                Some("cancelled") => PpdError::Cancelled,
                _ => PpdError::Malformed(detail()),
            },
        )),
        Some("protocol") => Ok(ServiceError::Protocol(detail())),
        Some("disconnected") => Ok(ServiceError::Disconnected),
        _ => Err("unknown error kind".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppd_core::Value as PpdValue;

    fn demo_query() -> ConjunctiveQuery {
        ConjunctiveQuery::new("demo")
            .prefer(
                "Polls",
                vec![Term::var("v"), Term::any()],
                Term::var("x"),
                Term::val("cand1"),
            )
            .atom("Candidates", vec![Term::var("x"), Term::var("party")])
            .compare("party", CompareOp::Eq, "blue")
            .compare("year", CompareOp::Ge, PpdValue::Int(1990))
    }

    #[test]
    fn request_frames_round_trip() {
        let requests = [
            Request::Boolean(demo_query()),
            Request::Count(demo_query()),
            Request::SessionProbabilities(demo_query()),
            Request::TopK {
                query: demo_query(),
                k: 5,
                strategy: TopKStrategy::UpperBound {
                    edges_per_pattern: 2,
                },
            },
        ];
        let options = SubmitOptions::batch()
            .on_database("polls")
            .with_deadline(Duration::from_millis(250))
            .with_error_budget(0.01, 0.95);
        for (i, request) in requests.iter().enumerate() {
            let frame = encode_request(i as u64 + 1, request, &options);
            assert!(!frame.contains('\n'), "frames are single lines: {frame}");
            let (id, decoded, decoded_options) = decode_request(&frame).expect("round trip");
            assert_eq!(id, i as u64 + 1);
            assert_eq!(decoded.query(), request.query());
            assert_eq!(request_kind(&decoded), request_kind(request));
            if let (
                Request::TopK { k, strategy, .. },
                Request::TopK {
                    k: k2,
                    strategy: s2,
                    ..
                },
            ) = (request, &decoded)
            {
                assert_eq!(k, k2);
                assert_eq!(strategy, s2);
            }
            assert_eq!(decoded_options.class, AdmissionClass::Batch);
            assert_eq!(decoded_options.database.as_deref(), Some("polls"));
            assert_eq!(decoded_options.deadline, Some(Duration::from_millis(250)));
            let budget = decoded_options.error_budget.expect("budget survives");
            assert_eq!(budget.epsilon.to_bits(), 0.01f64.to_bits());
            assert_eq!(budget.confidence.to_bits(), 0.95f64.to_bits());
        }
    }

    #[test]
    fn default_options_round_trip_as_defaults() {
        let frame = encode_request(
            9,
            &Request::Boolean(demo_query()),
            &SubmitOptions::default(),
        );
        let (_, _, options) = decode_request(&frame).unwrap();
        assert_eq!(options.class, AdmissionClass::Interactive);
        assert_eq!(options.database, None);
        assert_eq!(options.deadline, None);
    }

    #[test]
    fn answers_round_trip_bit_exactly() {
        let deliveries: Vec<Delivery> = vec![
            Ok(Answer::Boolean(0.1 + 0.2)), // 0.30000000000000004: shortest-round-trip matters
            Ok(Answer::Count(f64::MIN_POSITIVE)),
            Ok(Answer::SessionProbabilities(vec![(0, 0.25), (7, 1e-300)])),
            Ok(Answer::TopK(vec![
                SessionScore {
                    session_index: 3,
                    probability: 2.0 / 3.0,
                },
                SessionScore {
                    session_index: 1,
                    probability: 1.0 / 3.0,
                },
            ])),
            Ok(Answer::Updated {
                version: 7,
                invalidated: 12,
            }),
        ];
        for delivery in &deliveries {
            let frame = encode_response(42, delivery, 0, 0);
            let (id, decoded, version, trace) = decode_response(&frame).expect("round trip");
            assert_eq!(id, 42);
            assert_eq!(version, None, "version 0 omits the field");
            assert_eq!(trace, 0, "trace 0 omits the field");
            assert!(!frame.contains("trace"), "{frame}");
            // PartialEq on f64 is bitwise here: every probability above is a
            // normal number (no NaN / ±0 aliasing in play).
            assert_eq!(&decoded, delivery);
        }
        // A versioned response carries the snapshot id back to the client,
        // and a traced one its trace id (the `trace` verb's handle).
        let frame = encode_response(42, &Ok(Answer::Boolean(0.5)), 3, 9);
        let (_, _, version, trace) = decode_response(&frame).expect("round trip");
        assert_eq!(version, Some(3));
        assert_eq!(trace, 9);
    }

    #[test]
    fn update_frames_round_trip() {
        let session = Session::new(
            vec![PpdValue::Str("v9".into()), PpdValue::Int(4)],
            MallowsModel::new(Ranking::new(vec![2, 0, 1]).unwrap(), 0.3).unwrap(),
        );
        let updates = [
            Update::InsertSession {
                prelation: "Polls".into(),
                session: session.clone(),
            },
            Update::ReplaceSession {
                prelation: "Polls".into(),
                index: 5,
                session: session.clone(),
            },
            Update::DeleteSession {
                prelation: "Polls".into(),
                index: 2,
            },
        ];
        let options = SubmitOptions::batch()
            .on_database("polls")
            .with_deadline(Duration::from_millis(250));
        for (i, update) in updates.iter().enumerate() {
            let frame = encode_update_request(i as u64 + 1, update, &options);
            assert!(!frame.contains('\n'), "frames are single lines: {frame}");
            let (id, decoded, decoded_options) = decode_update_request(&frame)
                .expect("update frames are recognized")
                .expect("round trip");
            assert_eq!(id, i as u64 + 1);
            assert_eq!(decoded_options.class, AdmissionClass::Batch);
            assert_eq!(decoded_options.database.as_deref(), Some("polls"));
            assert_eq!(decoded_options.deadline, Some(Duration::from_millis(250)));
            match (update, &decoded) {
                (
                    Update::InsertSession { session: a, .. },
                    Update::InsertSession {
                        prelation,
                        session: b,
                    },
                )
                | (
                    Update::ReplaceSession { session: a, .. },
                    Update::ReplaceSession {
                        prelation,
                        session: b,
                        ..
                    },
                ) => {
                    assert_eq!(prelation, "Polls");
                    assert_eq!(a.attrs(), b.attrs());
                    assert_eq!(a.model().sigma().items(), b.model().sigma().items());
                    assert_eq!(a.model().phi().to_bits(), b.model().phi().to_bits());
                    assert_eq!(
                        a.model_key_hash(),
                        b.model_key_hash(),
                        "the content hash — the cache key — survives the trip"
                    );
                }
                (
                    Update::DeleteSession { index: a, .. },
                    Update::DeleteSession {
                        prelation,
                        index: b,
                    },
                ) => {
                    assert_eq!(prelation, "Polls");
                    assert_eq!(a, b);
                }
                other => panic!("update op changed across the wire: {other:?}"),
            }
        }
        // Replace keeps its index too.
        let frame = encode_update_request(9, &updates[1], &SubmitOptions::default());
        let (_, decoded, options) = decode_update_request(&frame).unwrap().unwrap();
        assert!(matches!(decoded, Update::ReplaceSession { index: 5, .. }));
        assert_eq!(options.class, AdmissionClass::Interactive);
        assert_eq!(options.database, None);
        // Query frames are not update frames, and malformed updates keep
        // their id for error correlation.
        assert!(decode_update_request(r#"{"id": 1, "kind": "boolean"}"#).is_none());
        let (id, _) = decode_update_request(
            r#"{"id": 3, "kind": "update", "op": "warp", "prelation": "Polls"}"#,
        )
        .unwrap()
        .expect_err("unknown op");
        assert_eq!(id, Some(3));
        assert!(
            decode_update_request(
                r#"{"id": 4, "kind": "update", "op": "insert", "prelation": "Polls",
                    "session": {"attrs": [], "ranking": [0, 0], "phi": 0.5}}"#
            )
            .unwrap()
            .is_err(),
            "a duplicate-item ranking is rejected at decode time"
        );
    }

    #[test]
    fn errors_round_trip_by_kind() {
        let errors = vec![
            ServiceError::Overloaded { depth: 17 },
            ServiceError::ShuttingDown,
            ServiceError::UnknownDatabase("polls".into()),
            ServiceError::DeadlineExceeded,
            ServiceError::Protocol("bad frame".into()),
            ServiceError::Disconnected,
        ];
        for error in errors {
            let frame = encode_response(1, &Err(error.clone()), 0, 0);
            let (_, decoded, _, _) = decode_response(&frame).unwrap();
            assert_eq!(decoded, Err(error));
        }
        // Evaluation errors flatten to text plus the stable `error_kind`,
        // which picks the variant back out on the far side.
        let cases: Vec<(PpdError, &str)> = vec![
            (PpdError::UnknownName("R".into()), "unknown-name"),
            (
                PpdError::UnsupportedQuery("mixed".into()),
                "unsupported-query",
            ),
            (PpdError::Persist("bad magic".into()), "persist"),
            (PpdError::Cancelled, "cancelled"),
            (PpdError::Malformed("arity".into()), "malformed"),
        ];
        for (error, kind) in cases {
            let frame = encode_response(1, &Err(ServiceError::Eval(error)), 0, 0);
            assert!(frame.contains(kind), "{frame}");
            let (_, decoded, _, _) = decode_response(&frame).unwrap();
            match decoded {
                Err(ServiceError::Eval(e)) => assert_eq!(e.kind(), kind, "{e:?}"),
                other => panic!("eval error changed class across the wire: {other:?}"),
            }
        }
        // Kinds wrapping structured payloads flatten to Malformed text but
        // still report an eval error, not a protocol failure.
        let frame = r#"{"id": 1, "err": {"kind": "eval", "error_kind": "solver", "detail": "s"}}"#;
        let (_, decoded, _, _) = decode_response(frame).unwrap();
        assert!(
            matches!(decoded, Err(ServiceError::Eval(PpdError::Malformed(_)))),
            "{decoded:?}"
        );
    }

    #[test]
    fn malformed_frames_fail_with_context() {
        assert!(decode_request("not json").is_err());
        let (id, _) = decode_request(r#"{"id": 3, "kind": "nope", "query": {"name": "q"}}"#)
            .expect_err("unknown kind");
        assert_eq!(id, Some(3), "id survives for error correlation");
        assert!(decode_response(r#"{"id": 1}"#).is_err());
        // A lone half of an error budget is a protocol error, not a silent
        // fall-back to the tenant's configured solver.
        let lone = r#"{"id": 4, "kind": "boolean", "query": {"name": "q"}, "epsilon": 0.01}"#;
        assert!(decode_request(lone).is_err());
        let bad_eps = r#"{"id": 5, "kind": "boolean", "query": {"name": "q"}, "epsilon": -1.0, "confidence": 0.9}"#;
        assert!(decode_request(bad_eps).is_err());
    }

    #[test]
    fn stats_frames_round_trip() {
        assert_eq!(
            decode_stats_request(r#"{"id": 6, "kind": "stats"}"#),
            Some(6)
        );
        assert_eq!(
            decode_stats_request(r#"{"id": 6, "kind": "boolean"}"#),
            None,
            "query frames are not stats frames"
        );
        let stats = ServiceStats {
            submitted: 12,
            rejected: 1,
            interactive_submitted: 9,
            interactive_rejected: 0,
            batch_submitted: 3,
            batch_rejected: 1,
            answered: 10,
            failed: 1,
            expired: 1,
            updates_applied: 2,
            queue_depth: 2,
            interactive_queue_depth: 2,
            batch_queue_depth: 0,
            uptime: Duration::from_secs(90),
            in_flight_waves: 1,
            waves: 4,
            max_wave: 5,
            wave_sizes: vec![(1, 2), (5, 2)],
            mean_latency: Duration::from_micros(1500),
            max_latency: Duration::from_millis(7),
            cache: CacheStats {
                marginal_hits: 100,
                marginal_misses: 40,
                marginal_evictions: 3,
                marginal_evicted_bytes: 4096,
                marginals_loaded: 0,
                marginals_saved: 0,
                models_prepared: 6,
                calibration_hits: 20,
                calibration_misses: 20,
                calibration_recorded: 40,
                units_invalidated: 5,
                segment_live_bytes: 1000,
                segment_dead_bytes: 250,
                compactions: 2,
                pools_built: 4,
                pool_hits: 9,
            },
        };
        let tenants = vec![
            ("polls".to_string(), 3, stats.cache),
            ("movies".to_string(), 1, CacheStats::default()),
        ];
        let frame = encode_stats_response(6, &stats, &tenants);
        assert!(!frame.contains('\n'), "frames are single lines: {frame}");
        let value: Value = serde_json::from_str(&frame).unwrap();
        assert_eq!(value.get("id").and_then(Value::as_u64), Some(6));
        let report = decode_stats_payload(value.get("ok").unwrap()).expect("round trip");
        assert_eq!(report.service, stats);
        assert_eq!(report.tenants, tenants);
    }

    #[test]
    fn metrics_frames_round_trip() {
        assert_eq!(
            decode_metrics_request(r#"{"id": 8, "kind": "metrics"}"#),
            Some(8)
        );
        assert_eq!(
            decode_metrics_request(r#"{"id": 8, "kind": "stats"}"#),
            None,
            "stats frames are not metrics frames"
        );
        // The exposition text is multi-line; the frame must still be one.
        let text = "# TYPE ppd_waves counter\nppd_waves 4\n";
        let frame = encode_metrics_response(8, text);
        assert!(!frame.contains('\n'), "frames are single lines: {frame}");
        let value: Value = serde_json::from_str(&frame).unwrap();
        assert_eq!(value.get("id").and_then(Value::as_u64), Some(8));
        let decoded = decode_metrics_payload(value.get("ok").unwrap()).expect("round trip");
        assert_eq!(decoded, text);
    }

    #[test]
    fn trace_frames_round_trip() {
        assert_eq!(
            decode_trace_request(r#"{"id": 2, "kind": "trace", "trace": 17}"#),
            Some((2, 17))
        );
        assert_eq!(
            decode_trace_request(r#"{"id": 2, "kind": "trace"}"#),
            None,
            "a trace frame without a trace id is not recognized"
        );
        let events = vec![
            SpanRecord {
                trace: 17,
                seq: 1,
                at_micros: 10,
                event: SpanEvent::Admitted {
                    tenant: "polls".into(),
                    class: "interactive",
                    depth: 2,
                },
            },
            SpanRecord {
                trace: 17,
                seq: 2,
                at_micros: 20,
                event: SpanEvent::WaveJoined {
                    wave_units: 6,
                    units: 3,
                    cached: 1,
                },
            },
            SpanRecord {
                trace: 17,
                seq: 3,
                at_micros: 40,
                event: SpanEvent::UnitSolved {
                    unit_hash: 0xDEAD_BEEF,
                    solver: "mis-amp",
                    micros: 15,
                },
            },
            SpanRecord {
                trace: 17,
                seq: 4,
                at_micros: 55,
                event: SpanEvent::Failed {
                    error_kind: "solver",
                    micros: 45,
                },
            },
            SpanRecord {
                trace: 17,
                seq: 5,
                at_micros: 60,
                event: SpanEvent::Delivered { micros: 50 },
            },
        ];
        let frame = encode_trace_response(2, 17, &events);
        assert!(!frame.contains('\n'), "frames are single lines: {frame}");
        let value: Value = serde_json::from_str(&frame).unwrap();
        assert_eq!(value.get("id").and_then(Value::as_u64), Some(2));
        let decoded = decode_trace_payload(value.get("ok").unwrap()).expect("round trip");
        assert_eq!(decoded, events, "static labels intern back bit-for-bit");
        // An empty timeline (untraced or evicted id) round-trips too.
        let frame = encode_trace_response(3, 99, &[]);
        let value: Value = serde_json::from_str(&frame).unwrap();
        assert!(decode_trace_payload(value.get("ok").unwrap())
            .unwrap()
            .is_empty());
    }
}
