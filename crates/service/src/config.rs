//! Service configuration: admission bound, batching window, and the engine
//! configuration the service pins for its lifetime.

use ppd_core::EvalConfig;
use ppd_obs::ObsConfig;
use std::time::Duration;

/// Configuration of a [`Service`](crate::Service).
///
/// The engine configuration is fixed at construction — that is what makes
/// the engine's caches coherent and every answer independent of how queries
/// happen to be batched.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Admission bound of the **interactive** lane: interactive queries
    /// waiting for a wave. When the lane is this deep,
    /// [`Service::submit`](crate::Service::submit) fails with
    /// [`ServiceError::Overloaded`](crate::ServiceError::Overloaded)
    /// (clamped to at least 1).
    pub max_queue: usize,
    /// Admission bound of the **batch** lane. Separate from the interactive
    /// bound so a batch flood sheds from its own lane while interactive
    /// admission stays open (clamped to at least 1).
    pub max_queue_batch: usize,
    /// Most queries coalesced into one wave (clamped to at least 1). `1`
    /// disables batching: every query is its own wave.
    pub max_batch: usize,
    /// How long the dispatcher holds a wave open after its first query
    /// arrives, waiting for more to coalesce. `Duration::ZERO` means "take
    /// whatever is queued right now" — batching still happens under
    /// backlog, but an idle service answers a lone query immediately.
    pub max_wait: Duration,
    /// The evaluation-engine configuration (solver, seed, threads, cache
    /// sharding/capacity) behind this service.
    pub eval: EvalConfig,
    /// The observability configuration: whether metrics record, which
    /// submissions trace, and how many span events the trace ring holds.
    /// Purely observational — answers are bit-identical under every
    /// setting (the `service_determinism` test pins this).
    pub obs: ObsConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_queue: 1024,
            max_queue_batch: 1024,
            max_batch: 32,
            max_wait: Duration::from_millis(2),
            eval: EvalConfig::default(),
            obs: ObsConfig::default(),
        }
    }
}

impl ServiceConfig {
    /// A configuration around an engine configuration, with default
    /// admission and batching parameters.
    pub fn new(eval: EvalConfig) -> Self {
        ServiceConfig {
            eval,
            ..ServiceConfig::default()
        }
    }

    /// Sets the interactive lane's admission bound.
    pub fn with_max_queue(mut self, max_queue: usize) -> Self {
        self.max_queue = max_queue;
        self
    }

    /// Sets the batch lane's admission bound.
    pub fn with_max_queue_batch(mut self, max_queue_batch: usize) -> Self {
        self.max_queue_batch = max_queue_batch;
        self
    }

    /// Sets the wave-size cap.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Sets the batching window.
    pub fn with_max_wait(mut self, max_wait: Duration) -> Self {
        self.max_wait = max_wait;
        self
    }

    /// Sets the observability configuration (metrics on/off, trace mode and
    /// ring capacity).
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let config = ServiceConfig::new(EvalConfig::exact())
            .with_max_queue(7)
            .with_max_queue_batch(5)
            .with_max_batch(3)
            .with_max_wait(Duration::from_millis(9))
            .with_obs(ObsConfig::off());
        assert_eq!(config.max_queue, 7);
        assert_eq!(config.max_queue_batch, 5);
        assert_eq!(config.max_batch, 3);
        assert_eq!(config.max_wait, Duration::from_millis(9));
        assert!(!config.obs.metrics);
        assert!(ServiceConfig::default().obs.metrics, "obs defaults on");
    }
}
