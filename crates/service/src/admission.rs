//! The admission queue: a bounded, condvar-signalled, **two-lane** queue
//! between client threads and the dispatcher, with the wave-forming pop on
//! the consumer side.
//!
//! Bounded depth is the service's backpressure mechanism: when a lane is
//! full, [`AdmissionQueue::push`] fails immediately instead of queueing
//! unbounded work — under overload the caller learns *now*, while the
//! answer "try elsewhere / later" is still cheap (the same reasoning as any
//! load-shedding front-end). The two lanes are the QoS mechanism: each
//! [`AdmissionClass`] has its own bound, and a wave drains the interactive
//! lane completely before taking the first batch item, so a batch flood can
//! fill (and shed from) its own lane without adding a single queued item in
//! front of interactive traffic. Shutdown flips a flag: producers are
//! rejected, but everything already admitted is still drained, which is
//! what makes service shutdown graceful.

use crate::request::AdmissionClass;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdmitError {
    /// The class's lane is at capacity; `depth` is its current length.
    Overloaded { depth: usize },
    /// Shutdown has begun; no new work is admitted.
    ShuttingDown,
}

struct State<T> {
    /// One FIFO per admission class, indexed by [`AdmissionClass::lane`].
    lanes: [VecDeque<T>; 2],
    shutting_down: bool,
}

impl<T> State<T> {
    fn total(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }
}

/// A bounded multi-producer two-lane queue whose consumer pops *waves*: up
/// to `max_batch` items, interactive lane first, waiting at most `max_wait`
/// after the first item for stragglers to coalesce.
pub(crate) struct AdmissionQueue<T> {
    /// Per-lane capacity, indexed like [`State::lanes`].
    capacities: [usize; 2],
    state: Mutex<State<T>>,
    nonempty: Condvar,
}

impl<T> AdmissionQueue<T> {
    pub(crate) fn new(interactive_capacity: usize, batch_capacity: usize) -> Self {
        AdmissionQueue {
            capacities: [interactive_capacity.max(1), batch_capacity.max(1)],
            state: Mutex::new(State {
                lanes: [VecDeque::new(), VecDeque::new()],
                shutting_down: false,
            }),
            nonempty: Condvar::new(),
        }
    }

    /// Admits one item into its class's lane, returning the lane depth
    /// after the push; fails fast when that lane is full or the queue is
    /// shutting down.
    pub(crate) fn push(&self, class: AdmissionClass, job: T) -> Result<usize, AdmitError> {
        let lane = class.lane();
        let mut state = self.lock();
        if state.shutting_down {
            return Err(AdmitError::ShuttingDown);
        }
        if state.lanes[lane].len() >= self.capacities[lane] {
            return Err(AdmitError::Overloaded {
                depth: state.lanes[lane].len(),
            });
        }
        state.lanes[lane].push_back(job);
        self.nonempty.notify_one();
        Ok(state.lanes[lane].len())
    }

    /// Number of items currently queued across both lanes.
    pub(crate) fn depth(&self) -> usize {
        self.lock().total()
    }

    /// Number of items currently queued in one class's lane.
    pub(crate) fn depth_of(&self, class: AdmissionClass) -> usize {
        self.lock().lanes[class.lane()].len()
    }

    /// Begins shutdown: future pushes fail, and once both lanes drain,
    /// [`AdmissionQueue::next_wave`] returns `None`.
    pub(crate) fn shutdown(&self) {
        self.lock().shutting_down = true;
        self.nonempty.notify_all();
    }

    /// Blocks until at least one item is queued, then holds the batching
    /// window open — up to `max_wait` from the first sighting, cut short
    /// the moment `max_batch` items are available or shutdown begins — and
    /// pops up to `max_batch` items, **interactive lane first**: a batch
    /// item only rides in a wave with spare room after every queued
    /// interactive item. Alongside the wave it reports how long the window
    /// was actually held open (first sighting to pop — the coalescing
    /// latency a wave-mate pays), which the dispatcher records. Returns
    /// `None` only when both lanes are empty *and* the queue is shutting
    /// down: the dispatcher's signal to exit after every admitted query
    /// has been served.
    pub(crate) fn next_wave(
        &self,
        max_batch: usize,
        max_wait: Duration,
    ) -> Option<(Vec<T>, Duration)> {
        let max_batch = max_batch.max(1);
        let mut state = self.lock();
        loop {
            if state.total() > 0 {
                break;
            }
            if state.shutting_down {
                return None;
            }
            state = self.nonempty.wait(state).expect("admission queue poisoned");
        }
        let sighted = Instant::now();
        let deadline = sighted + max_wait;
        while state.total() < max_batch && !state.shutting_down {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) = self
                .nonempty
                .wait_timeout(state, deadline - now)
                .expect("admission queue poisoned");
            state = guard;
            if timeout.timed_out() {
                break;
            }
        }
        let mut wave = Vec::with_capacity(state.total().min(max_batch));
        for lane in 0..state.lanes.len() {
            let take = state.lanes[lane].len().min(max_batch - wave.len());
            wave.extend(state.lanes[lane].drain(..take));
            if wave.len() == max_batch {
                break;
            }
        }
        Some((wave, sighted.elapsed()))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().expect("admission queue poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const I: AdmissionClass = AdmissionClass::Interactive;
    const B: AdmissionClass = AdmissionClass::Batch;

    #[test]
    fn push_pop_and_depth() {
        let q = AdmissionQueue::new(4, 4);
        assert_eq!(q.push(I, 1), Ok(1));
        assert_eq!(q.push(I, 2), Ok(2));
        assert_eq!(q.depth(), 2);
        let (wave, _window) = q.next_wave(8, Duration::ZERO).unwrap();
        assert_eq!(wave, vec![1, 2]);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn overload_rejects_with_current_lane_depth() {
        let q = AdmissionQueue::new(2, 2);
        q.push(I, 1).unwrap();
        q.push(I, 2).unwrap();
        assert_eq!(q.push(I, 3), Err(AdmitError::Overloaded { depth: 2 }));
        // Popping frees capacity again.
        q.next_wave(1, Duration::ZERO).unwrap();
        assert_eq!(q.push(I, 3), Ok(2));
    }

    #[test]
    fn lanes_have_independent_bounds() {
        let q = AdmissionQueue::new(8, 2);
        // Flood the batch lane to its bound...
        q.push(B, 100).unwrap();
        q.push(B, 101).unwrap();
        assert_eq!(q.push(B, 102), Err(AdmitError::Overloaded { depth: 2 }));
        // ...interactive admission is untouched.
        assert_eq!(q.push(I, 1), Ok(1));
        assert_eq!(q.depth_of(I), 1);
        assert_eq!(q.depth_of(B), 2);
    }

    #[test]
    fn interactive_preempts_batch_in_wave_formation() {
        let q = AdmissionQueue::new(8, 8);
        q.push(B, 100).unwrap();
        q.push(B, 101).unwrap();
        q.push(I, 1).unwrap();
        q.push(I, 2).unwrap();
        // Interactive items lead the wave despite arriving later...
        assert_eq!(q.next_wave(3, Duration::ZERO).unwrap().0, vec![1, 2, 100]);
        // ...and batch items are never starved once the lane is reached.
        assert_eq!(q.next_wave(3, Duration::ZERO).unwrap().0, vec![101]);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let q = AdmissionQueue::new(0, 0);
        assert_eq!(q.push(I, 1), Ok(1));
        assert!(matches!(q.push(I, 2), Err(AdmitError::Overloaded { .. })));
    }

    #[test]
    fn waves_are_capped_at_max_batch() {
        let q = AdmissionQueue::new(16, 16);
        for i in 0..5 {
            q.push(I, i).unwrap();
        }
        assert_eq!(q.next_wave(3, Duration::ZERO).unwrap().0, vec![0, 1, 2]);
        assert_eq!(q.next_wave(3, Duration::ZERO).unwrap().0, vec![3, 4]);
    }

    #[test]
    fn window_waits_for_stragglers_and_closes_early_when_full() {
        let q = AdmissionQueue::new(16, 16);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // The consumer sees the first item, holds the window open,
                // and should collect the straggler pushed shortly after.
                let (wave, _window) = q.next_wave(2, Duration::from_secs(5)).unwrap();
                assert_eq!(wave.len(), 2, "window must admit the straggler");
            });
            q.push(I, 1).unwrap();
            std::thread::sleep(Duration::from_millis(20));
            q.push(B, 2).unwrap();
            // max_batch reached → the window closes long before its 5 s
            // deadline (the join below would otherwise hang the test).
        });
    }

    #[test]
    fn shutdown_rejects_producers_but_drains_consumers() {
        let q = AdmissionQueue::new(8, 8);
        q.push(I, 1).unwrap();
        q.push(B, 2).unwrap();
        q.shutdown();
        assert_eq!(q.push(I, 3), Err(AdmitError::ShuttingDown));
        // Already-admitted items still come out...
        assert_eq!(q.next_wave(1, Duration::from_secs(5)).unwrap().0, vec![1]);
        assert_eq!(q.next_wave(1, Duration::from_secs(5)).unwrap().0, vec![2]);
        // ...and only then does the consumer learn it is done. (Also checks
        // the window does not wait out its deadline during shutdown.)
        assert_eq!(q.next_wave(4, Duration::from_secs(5)), None);
    }

    #[test]
    fn blocked_consumer_wakes_on_shutdown() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(4, 4);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| q.next_wave(4, Duration::from_secs(30)));
            std::thread::sleep(Duration::from_millis(20));
            q.shutdown();
            assert_eq!(waiter.join().unwrap(), None);
        });
    }
}
