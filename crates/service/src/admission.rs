//! The admission queue: a bounded, condvar-signalled queue between client
//! threads and the dispatcher, with the wave-forming pop on the consumer
//! side.
//!
//! Bounded depth is the service's backpressure mechanism: when the queue is
//! full, [`AdmissionQueue::push`] fails immediately instead of queueing
//! unbounded work — under overload the caller learns *now*, while the
//! answer "try elsewhere / later" is still cheap (the same reasoning as any
//! load-shedding front-end). Shutdown flips a flag: producers are rejected,
//! but everything already admitted is still drained, which is what makes
//! service shutdown graceful.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdmitError {
    /// The queue is at capacity; `depth` is its current length.
    Overloaded { depth: usize },
    /// Shutdown has begun; no new work is admitted.
    ShuttingDown,
}

struct State<T> {
    jobs: VecDeque<T>,
    shutting_down: bool,
}

/// A bounded multi-producer queue whose consumer pops *waves*: up to
/// `max_batch` items, waiting at most `max_wait` after the first item for
/// stragglers to coalesce.
pub(crate) struct AdmissionQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    nonempty: Condvar,
}

impl<T> AdmissionQueue<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        AdmissionQueue {
            capacity: capacity.max(1),
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                shutting_down: false,
            }),
            nonempty: Condvar::new(),
        }
    }

    /// Admits one item, returning the queue depth after the push; fails
    /// fast when the queue is full or shutting down.
    pub(crate) fn push(&self, job: T) -> Result<usize, AdmitError> {
        let mut state = self.lock();
        if state.shutting_down {
            return Err(AdmitError::ShuttingDown);
        }
        if state.jobs.len() >= self.capacity {
            return Err(AdmitError::Overloaded {
                depth: state.jobs.len(),
            });
        }
        state.jobs.push_back(job);
        self.nonempty.notify_one();
        Ok(state.jobs.len())
    }

    /// Number of items currently queued (admitted, not yet in a wave).
    pub(crate) fn depth(&self) -> usize {
        self.lock().jobs.len()
    }

    /// Begins shutdown: future pushes fail, and once the queue drains,
    /// [`AdmissionQueue::next_wave`] returns `None`.
    pub(crate) fn shutdown(&self) {
        self.lock().shutting_down = true;
        self.nonempty.notify_all();
    }

    /// Blocks until at least one item is queued, then holds the batching
    /// window open — up to `max_wait` from the first sighting, cut short
    /// the moment `max_batch` items are available or shutdown begins — and
    /// pops up to `max_batch` items. Returns `None` only when the queue is
    /// empty *and* shutting down: the dispatcher's signal to exit after
    /// every admitted query has been served.
    pub(crate) fn next_wave(&self, max_batch: usize, max_wait: Duration) -> Option<Vec<T>> {
        let max_batch = max_batch.max(1);
        let mut state = self.lock();
        loop {
            if !state.jobs.is_empty() {
                break;
            }
            if state.shutting_down {
                return None;
            }
            state = self.nonempty.wait(state).expect("admission queue poisoned");
        }
        let deadline = Instant::now() + max_wait;
        while state.jobs.len() < max_batch && !state.shutting_down {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) = self
                .nonempty
                .wait_timeout(state, deadline - now)
                .expect("admission queue poisoned");
            state = guard;
            if timeout.timed_out() {
                break;
            }
        }
        let take = state.jobs.len().min(max_batch);
        Some(state.jobs.drain(..take).collect())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().expect("admission queue poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_and_depth() {
        let q = AdmissionQueue::new(4);
        assert_eq!(q.push(1), Ok(1));
        assert_eq!(q.push(2), Ok(2));
        assert_eq!(q.depth(), 2);
        let wave = q.next_wave(8, Duration::ZERO).unwrap();
        assert_eq!(wave, vec![1, 2]);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn overload_rejects_with_current_depth() {
        let q = AdmissionQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(AdmitError::Overloaded { depth: 2 }));
        // Popping frees capacity again.
        q.next_wave(1, Duration::ZERO).unwrap();
        assert_eq!(q.push(3), Ok(2));
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let q = AdmissionQueue::new(0);
        assert_eq!(q.push(1), Ok(1));
        assert!(matches!(q.push(2), Err(AdmitError::Overloaded { .. })));
    }

    #[test]
    fn waves_are_capped_at_max_batch() {
        let q = AdmissionQueue::new(16);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.next_wave(3, Duration::ZERO).unwrap(), vec![0, 1, 2]);
        assert_eq!(q.next_wave(3, Duration::ZERO).unwrap(), vec![3, 4]);
    }

    #[test]
    fn window_waits_for_stragglers_and_closes_early_when_full() {
        let q = AdmissionQueue::new(16);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // The consumer sees the first item, holds the window open,
                // and should collect the straggler pushed shortly after.
                let wave = q.next_wave(2, Duration::from_secs(5)).unwrap();
                assert_eq!(wave.len(), 2, "window must admit the straggler");
            });
            q.push(1).unwrap();
            std::thread::sleep(Duration::from_millis(20));
            q.push(2).unwrap();
            // max_batch reached → the window closes long before its 5 s
            // deadline (the join below would otherwise hang the test).
        });
    }

    #[test]
    fn shutdown_rejects_producers_but_drains_consumers() {
        let q = AdmissionQueue::new(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.shutdown();
        assert_eq!(q.push(3), Err(AdmitError::ShuttingDown));
        // Already-admitted items still come out...
        assert_eq!(q.next_wave(1, Duration::from_secs(5)).unwrap(), vec![1]);
        assert_eq!(q.next_wave(1, Duration::from_secs(5)).unwrap(), vec![2]);
        // ...and only then does the consumer learn it is done. (Also checks
        // the window does not wait out its deadline during shutdown.)
        assert_eq!(q.next_wave(4, Duration::from_secs(5)), None);
    }

    #[test]
    fn blocked_consumer_wakes_on_shutdown() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(4);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| q.next_wave(4, Duration::from_secs(30)));
            std::thread::sleep(Duration::from_millis(20));
            q.shutdown();
            assert_eq!(waiter.join().unwrap(), None);
        });
    }
}
