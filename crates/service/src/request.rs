//! The service's wire types: what clients submit ([`Request`]), what they
//! get back ([`Answer`] behind a [`Ticket`]), and how things fail
//! ([`ServiceError`]).

use ppd_core::{ConjunctiveQuery, PpdError, SessionScore, TopKStrategy};
use std::sync::mpsc;
use std::time::Duration;

/// One query a client submits to the service.
#[derive(Debug, Clone)]
pub enum Request {
    /// `Pr(Q)`: the probability that some session satisfies the query.
    Boolean(ConjunctiveQuery),
    /// `count(Q)`: the expected number of satisfying sessions.
    Count(ConjunctiveQuery),
    /// Per qualifying session, the probability that the query holds in it.
    SessionProbabilities(ConjunctiveQuery),
    /// `top(Q, k)`: the `k` sessions most likely to satisfy the query.
    TopK {
        /// The query to rank sessions by.
        query: ConjunctiveQuery,
        /// How many sessions to return.
        k: usize,
        /// Naive or upper-bound-driven evaluation.
        strategy: TopKStrategy,
    },
}

impl Request {
    /// The underlying conjunctive query.
    pub fn query(&self) -> &ConjunctiveQuery {
        match self {
            Request::Boolean(q)
            | Request::Count(q)
            | Request::SessionProbabilities(q)
            | Request::TopK { query: q, .. } => q,
        }
    }
}

/// The answer to one [`Request`], shaped by its variant.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// Answer to [`Request::Boolean`].
    Boolean(f64),
    /// Answer to [`Request::Count`].
    Count(f64),
    /// Answer to [`Request::SessionProbabilities`].
    SessionProbabilities(Vec<(usize, f64)>),
    /// Answer to [`Request::TopK`], sorted by decreasing probability.
    TopK(Vec<SessionScore>),
}

/// How a submission or an admitted query can fail.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// Admission control refused the query: the queue already holds `depth`
    /// queries. Backpressure — retry later or shed the query.
    Overloaded {
        /// Queue depth observed at rejection time.
        depth: usize,
    },
    /// The service is shutting down and admits no new queries.
    ShuttingDown,
    /// The query was admitted but evaluation failed (bad query, unknown
    /// relation, solver error).
    Eval(PpdError),
    /// The service dropped the query without answering — only possible if
    /// the dispatcher died; a bug, surfaced rather than hung on.
    Disconnected,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded { depth } => {
                write!(f, "service overloaded: {depth} queries already queued")
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Eval(e) => write!(f, "evaluation failed: {e}"),
            ServiceError::Disconnected => write!(f, "service dropped the query (dispatcher died)"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<PpdError> for ServiceError {
    fn from(e: PpdError) -> Self {
        ServiceError::Eval(e)
    }
}

/// What flows through a ticket's one-shot channel.
pub(crate) type Delivery = Result<Answer, ServiceError>;

/// A claim on one submitted query's future answer.
///
/// The ticket is the receiving half of a one-shot channel the service
/// delivers into the moment the query's own work units finish — possibly
/// mid-wave, while co-batched queries are still being solved. Dropping a
/// ticket abandons the answer; the query itself still runs.
#[derive(Debug)]
pub struct Ticket {
    query_name: String,
    receiver: mpsc::Receiver<Delivery>,
}

impl Ticket {
    pub(crate) fn new(query_name: String, receiver: mpsc::Receiver<Delivery>) -> Self {
        Ticket {
            query_name,
            receiver,
        }
    }

    /// Name of the submitted query, for logs.
    pub fn query_name(&self) -> &str {
        &self.query_name
    }

    /// Blocks until the answer is delivered.
    pub fn wait(self) -> Delivery {
        match self.receiver.recv() {
            Ok(delivery) => delivery,
            Err(mpsc::RecvError) => Err(ServiceError::Disconnected),
        }
    }

    /// Non-blocking poll: `None` while the query is still in flight.
    pub fn try_wait(&self) -> Option<Delivery> {
        match self.receiver.try_recv() {
            Ok(delivery) => Some(delivery),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServiceError::Disconnected)),
        }
    }

    /// Blocks up to `timeout`: `None` if the query is still in flight then.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Delivery> {
        match self.receiver.recv_timeout(timeout) {
            Ok(delivery) => Some(delivery),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServiceError::Disconnected)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticket_resolves_once_delivered() {
        let (tx, rx) = mpsc::channel();
        let ticket = Ticket::new("q".into(), rx);
        assert_eq!(ticket.query_name(), "q");
        assert!(ticket.try_wait().is_none(), "nothing delivered yet");
        tx.send(Ok(Answer::Boolean(0.5))).unwrap();
        assert_eq!(ticket.wait(), Ok(Answer::Boolean(0.5)));
    }

    #[test]
    fn dropped_sender_surfaces_as_disconnected() {
        let (tx, rx) = mpsc::channel::<Delivery>();
        drop(tx);
        let ticket = Ticket::new("q".into(), rx);
        assert_eq!(ticket.try_wait(), Some(Err(ServiceError::Disconnected)));
        assert_eq!(ticket.wait(), Err(ServiceError::Disconnected));
    }

    #[test]
    fn errors_render_for_logs() {
        let overloaded = ServiceError::Overloaded { depth: 9 };
        assert!(overloaded.to_string().contains("9 queries"));
        let eval: ServiceError = PpdError::UnknownName("Nope".into()).into();
        assert!(eval.to_string().contains("Nope"));
    }
}
