//! The service's client-facing types: what clients submit ([`Request`]
//! plus [`SubmitOptions`]), what they get back ([`Answer`] behind a
//! [`Ticket`]), and how things fail ([`ServiceError`]).

use crate::deadline::CancelToken;
use ppd_core::{ConjunctiveQuery, ErrorBudget, PpdError, SessionScore, TopKStrategy};
use std::cell::Cell;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// One query a client submits to the service.
#[derive(Debug, Clone)]
pub enum Request {
    /// `Pr(Q)`: the probability that some session satisfies the query.
    Boolean(ConjunctiveQuery),
    /// `count(Q)`: the expected number of satisfying sessions.
    Count(ConjunctiveQuery),
    /// Per qualifying session, the probability that the query holds in it.
    SessionProbabilities(ConjunctiveQuery),
    /// `top(Q, k)`: the `k` sessions most likely to satisfy the query.
    TopK {
        /// The query to rank sessions by.
        query: ConjunctiveQuery,
        /// How many sessions to return.
        k: usize,
        /// Naive or upper-bound-driven evaluation.
        strategy: TopKStrategy,
    },
}

impl Request {
    /// The underlying conjunctive query.
    pub fn query(&self) -> &ConjunctiveQuery {
        match self {
            Request::Boolean(q)
            | Request::Count(q)
            | Request::SessionProbabilities(q)
            | Request::TopK { query: q, .. } => q,
        }
    }
}

/// The admission class of a request: which lane of the admission queue it
/// occupies and how the dispatcher prioritizes it within a wave.
///
/// Interactive requests pre-empt batch requests at wave formation — a wave
/// takes every queued interactive request before the first batch one, and
/// executes the interactive sub-batch first — and the two lanes have
/// separate bounds ([`ServiceConfig`](crate::ServiceConfig)), so a flood of
/// batch traffic fills the batch lane and sheds with
/// [`ServiceError::Overloaded`] while interactive admission stays open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AdmissionClass {
    /// Latency-sensitive traffic: prioritized lane, served first.
    #[default]
    Interactive,
    /// Throughput traffic: yielded lane, first to be shed under load.
    Batch,
}

impl AdmissionClass {
    /// Lane index (`Interactive` = 0, `Batch` = 1).
    pub(crate) fn lane(self) -> usize {
        match self {
            AdmissionClass::Interactive => 0,
            AdmissionClass::Batch => 1,
        }
    }

    /// Lowercase name, for logs and the wire protocol.
    pub fn name(self) -> &'static str {
        match self {
            AdmissionClass::Interactive => "interactive",
            AdmissionClass::Batch => "batch",
        }
    }
}

/// Per-submission options: target database, admission class, and deadline.
///
/// The default is an interactive request against the service's default
/// database with no deadline — exactly what
/// [`Service::submit`](crate::Service::submit) uses.
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// Which database to route to; `None` means the service's default (its
    /// first registered database). Unknown ids fail submission with
    /// [`ServiceError::UnknownDatabase`].
    pub database: Option<String>,
    /// The admission class (lane + wave priority).
    pub class: AdmissionClass,
    /// Time budget measured from submission. When it runs out the ticket
    /// resolves [`ServiceError::DeadlineExceeded`] and the service abandons
    /// any work only this request needed.
    pub deadline: Option<Duration>,
    /// Accuracy target overriding the tenant's configured solver: each
    /// per-unit marginal is answered within `±epsilon` at the given
    /// confidence, by exact DP or the budgeted sampler — whichever the
    /// static cost model predicts is cheaper. Requests carrying the same
    /// bit-identical budget share one engine (and its caches) per tenant;
    /// `None` uses the tenant's configured solver.
    pub error_budget: Option<ErrorBudget>,
}

impl SubmitOptions {
    /// Interactive, default database, no deadline.
    pub fn interactive() -> Self {
        SubmitOptions::default()
    }

    /// Batch class, default database, no deadline.
    pub fn batch() -> Self {
        SubmitOptions {
            class: AdmissionClass::Batch,
            ..SubmitOptions::default()
        }
    }

    /// Routes the request to the database registered under `id`.
    pub fn on_database(mut self, id: impl Into<String>) -> Self {
        self.database = Some(id.into());
        self
    }

    /// Sets the deadline, measured from submission.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Answers this request within `±epsilon` at the given confidence (see
    /// [`SubmitOptions::error_budget`]).
    pub fn with_error_budget(mut self, epsilon: f64, confidence: f64) -> Self {
        self.error_budget = Some(ErrorBudget {
            epsilon,
            confidence,
        });
        self
    }
}

/// The answer to one [`Request`], shaped by its variant.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// Answer to [`Request::Boolean`].
    Boolean(f64),
    /// Answer to [`Request::Count`].
    Count(f64),
    /// Answer to [`Request::SessionProbabilities`].
    SessionProbabilities(Vec<(usize, f64)>),
    /// Answer to [`Request::TopK`], sorted by decreasing probability.
    TopK(Vec<SessionScore>),
    /// Receipt for a submitted [`Update`](ppd_core::Update): the database
    /// version the update produced and the number of cached work units the
    /// service invalidated (exactly those covering changed sessions).
    Updated {
        /// The database version id after the update applied.
        version: u64,
        /// Cached marginal entries dropped by surgical invalidation.
        invalidated: u64,
    },
}

/// How a submission or an admitted query can fail.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// Admission control refused the query: its class's lane already holds
    /// `depth` queries. Backpressure — retry later or shed the query.
    Overloaded {
        /// Lane depth observed at rejection time.
        depth: usize,
    },
    /// The service is shutting down and admits no new queries.
    ShuttingDown,
    /// The request named a database id the service does not serve.
    UnknownDatabase(String),
    /// The request's deadline passed before its answer was assembled. Work
    /// the request alone depended on is abandoned, not finished.
    DeadlineExceeded,
    /// The query was admitted but evaluation failed (bad query, unknown
    /// relation, solver error).
    Eval(PpdError),
    /// A wire-protocol frame could not be encoded or decoded.
    Protocol(String),
    /// The service dropped the query without answering — only possible if
    /// the dispatcher died; a bug, surfaced rather than hung on.
    Disconnected,
}

impl ServiceError {
    /// The stable, wire-safe name of this error's variant: the wire
    /// protocol's `error_kind` field and the label space of the service's
    /// `ppd_errors_total` counter. Evaluation errors defer to
    /// [`PpdError::kind`]; renaming a variant must not change its string.
    pub fn kind(&self) -> &'static str {
        match self {
            ServiceError::Overloaded { .. } => "overloaded",
            ServiceError::ShuttingDown => "shutting-down",
            ServiceError::UnknownDatabase(_) => "unknown-database",
            ServiceError::DeadlineExceeded => "deadline-exceeded",
            ServiceError::Eval(e) => e.kind(),
            ServiceError::Protocol(_) => "protocol",
            ServiceError::Disconnected => "disconnected",
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded { depth } => {
                write!(f, "service overloaded: {depth} queries already queued")
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::UnknownDatabase(id) => write!(f, "unknown database: {id}"),
            ServiceError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServiceError::Eval(e) => write!(f, "evaluation failed: {e}"),
            ServiceError::Protocol(m) => write!(f, "wire protocol error: {m}"),
            ServiceError::Disconnected => write!(f, "service dropped the query (dispatcher died)"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<PpdError> for ServiceError {
    fn from(e: PpdError) -> Self {
        ServiceError::Eval(e)
    }
}

/// What flows through a ticket's one-shot channel.
pub(crate) type Delivery = Result<Answer, ServiceError>;

/// A delivery plus the database version it was computed against (`0` when
/// the request failed before reaching a versioned snapshot — admission
/// errors, protocol errors, expiry in the queue).
pub(crate) struct Outcome {
    pub(crate) delivery: Delivery,
    pub(crate) version: u64,
    /// The submission's trace id (0 when the request failed before one was
    /// assigned) — observability only, carried so wire responses can echo
    /// it for the `trace` verb.
    pub(crate) trace: u64,
}

impl Outcome {
    pub(crate) fn new(delivery: Delivery, version: u64, trace: u64) -> Self {
        Outcome {
            delivery,
            version,
            trace,
        }
    }
}

/// A claim on one submitted query's future answer.
///
/// The ticket is the receiving half of a one-shot channel the service
/// delivers into the moment the query's own work units finish — possibly
/// mid-wave, while co-batched queries are still being solved.
///
/// A ticket carries its request's deadline: once it passes, every wait
/// method resolves [`ServiceError::DeadlineExceeded`] instead of blocking
/// (an answer that arrived *before* the call still wins the race and is
/// returned). Dropping a ticket — or timing out — cancels the request: the
/// service abandons any work units only this request needed.
#[derive(Debug)]
pub struct Ticket {
    query_name: String,
    receiver: mpsc::Receiver<Outcome>,
    cancel: CancelToken,
    read_version: u64,
    trace: u64,
    computed_version: Cell<u64>,
}

impl Ticket {
    pub(crate) fn new(
        query_name: String,
        receiver: mpsc::Receiver<Outcome>,
        cancel: CancelToken,
        read_version: u64,
        trace: u64,
    ) -> Self {
        Ticket {
            query_name,
            receiver,
            cancel,
            read_version,
            trace,
            computed_version: Cell::new(0),
        }
    }

    /// Name of the submitted query, for logs.
    pub fn query_name(&self) -> &str {
        &self.query_name
    }

    /// The submission's trace id: the key into the service's span ring
    /// ([`Service::trace_events`](crate::Service::trace_events)) and the
    /// wire protocol's `trace` field. Assigned even when tracing is off
    /// (events are simply not recorded then); never 0.
    pub fn trace_id(&self) -> u64 {
        self.trace
    }

    /// The routed database's version id current when this request was
    /// admitted. Updates queued ahead of the request may still apply before
    /// it runs — compare with [`Ticket::computed_version`] to tell.
    pub fn read_version(&self) -> u64 {
        self.read_version
    }

    /// The database version the delivered answer was computed against:
    /// `None` until an answer (or versioned error) has been received
    /// through [`Ticket::try_wait`] / [`Ticket::wait_timeout`], or when the
    /// request failed before reaching a versioned snapshot.
    pub fn computed_version(&self) -> Option<u64> {
        match self.computed_version.get() {
            0 => None,
            version => Some(version),
        }
    }

    /// Unwraps an outcome, remembering its computed-against version.
    fn accept(&self, outcome: Outcome) -> Delivery {
        self.computed_version.set(outcome.version);
        outcome.delivery
    }

    /// The request's absolute deadline, if one was set at submission.
    pub fn deadline(&self) -> Option<Instant> {
        self.cancel.deadline()
    }

    /// Blocks until the answer is delivered or the deadline passes.
    pub fn wait(self) -> Delivery {
        self.wait_versioned().0
    }

    /// [`Ticket::wait`], also returning the database version the answer was
    /// computed against (`None` for unversioned failures).
    pub fn wait_versioned(self) -> (Delivery, Option<u64>) {
        let delivery = self.wait_inner();
        let version = self.computed_version();
        (delivery, version)
    }

    fn wait_inner(&self) -> Delivery {
        let Some(deadline) = self.cancel.deadline() else {
            return match self.receiver.recv() {
                Ok(outcome) => self.accept(outcome),
                Err(mpsc::RecvError) => Err(ServiceError::Disconnected),
            };
        };
        let now = Instant::now();
        if now >= deadline {
            return self.resolve_expired();
        }
        match self.receiver.recv_timeout(deadline - now) {
            Ok(outcome) => self.accept(outcome),
            Err(mpsc::RecvTimeoutError::Timeout) => self.resolve_expired(),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServiceError::Disconnected),
        }
    }

    /// Non-blocking poll: `None` while the query is still in flight and
    /// within its deadline.
    pub fn try_wait(&self) -> Option<Delivery> {
        match self.receiver.try_recv() {
            Ok(outcome) => Some(self.accept(outcome)),
            Err(mpsc::TryRecvError::Empty) => {
                if self.cancel.deadline_expired() {
                    self.cancel.cancel();
                    Some(Err(ServiceError::DeadlineExceeded))
                } else {
                    None
                }
            }
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServiceError::Disconnected)),
        }
    }

    /// Blocks up to `timeout` (clipped to the deadline): `None` if the
    /// query is still in flight then, `Some(Err(DeadlineExceeded))` once
    /// the deadline has passed.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Delivery> {
        let effective = match self.cancel.deadline() {
            Some(deadline) => deadline
                .saturating_duration_since(Instant::now())
                .min(timeout),
            None => timeout,
        };
        match self.receiver.recv_timeout(effective) {
            Ok(outcome) => Some(self.accept(outcome)),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if self.cancel.deadline_expired() {
                    // Answer-vs-deadline race: a delivery that landed while
                    // we timed out still wins.
                    match self.receiver.try_recv() {
                        Ok(outcome) => Some(self.accept(outcome)),
                        Err(_) => {
                            self.cancel.cancel();
                            Some(Err(ServiceError::DeadlineExceeded))
                        }
                    }
                } else {
                    None
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServiceError::Disconnected)),
        }
    }

    /// Deadline passed: a delivery that already landed still wins the race;
    /// otherwise cancel the in-flight work and report expiry.
    fn resolve_expired(&self) -> Delivery {
        match self.receiver.try_recv() {
            Ok(outcome) => self.accept(outcome),
            Err(_) => {
                self.cancel.cancel();
                Err(ServiceError::DeadlineExceeded)
            }
        }
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        // An abandoned ticket releases its claim on the service: work units
        // only this request needed are skipped. (Consuming `wait` drops the
        // ticket too — by then the answer is delivered and the flag moot.)
        self.cancel.cancel();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ticket(deadline: Option<Duration>) -> (mpsc::Sender<Outcome>, Ticket, CancelToken) {
        let (tx, rx) = mpsc::channel();
        let cancel = CancelToken::new(deadline.map(|d| Instant::now() + d));
        let ticket = Ticket::new("q".into(), rx, cancel.clone(), 1, 7);
        (tx, ticket, cancel)
    }

    #[test]
    fn ticket_resolves_once_delivered() {
        let (tx, ticket, _cancel) = ticket(None);
        assert_eq!(ticket.query_name(), "q");
        assert_eq!(ticket.read_version(), 1);
        assert_eq!(ticket.trace_id(), 7);
        assert_eq!(ticket.computed_version(), None, "nothing delivered yet");
        assert!(ticket.try_wait().is_none(), "nothing delivered yet");
        tx.send(Outcome::new(Ok(Answer::Boolean(0.5)), 3, 7))
            .unwrap();
        let (delivery, version) = ticket.wait_versioned();
        assert_eq!(delivery, Ok(Answer::Boolean(0.5)));
        assert_eq!(version, Some(3), "the answer reports its snapshot");
    }

    #[test]
    fn dropped_sender_surfaces_as_disconnected() {
        let (tx, rx) = mpsc::channel::<Outcome>();
        drop(tx);
        let ticket = Ticket::new("q".into(), rx, CancelToken::new(None), 1, 1);
        assert_eq!(ticket.try_wait(), Some(Err(ServiceError::Disconnected)));
        assert_eq!(ticket.wait(), Err(ServiceError::Disconnected));
    }

    #[test]
    fn expired_ticket_resolves_deadline_exceeded_and_cancels() {
        let (_tx, ticket, cancel) = ticket(Some(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(2));
        assert!(!cancel.is_cancelled() || cancel.deadline_expired());
        assert_eq!(
            ticket.wait_timeout(Duration::from_secs(5)),
            Some(Err(ServiceError::DeadlineExceeded)),
            "an expired ticket must not block"
        );
        assert!(cancel.is_cancelled());
        assert_eq!(ticket.wait(), Err(ServiceError::DeadlineExceeded));
    }

    #[test]
    fn answer_delivered_before_the_deadline_wins_the_race() {
        let (tx, ticket, _cancel) = ticket(Some(Duration::from_millis(1)));
        tx.send(Outcome::new(Ok(Answer::Count(2.0)), 1, 1)).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        // The deadline has passed, but the answer landed first: deliver it.
        assert_eq!(ticket.wait(), Ok(Answer::Count(2.0)));
    }

    #[test]
    fn dropping_a_ticket_cancels_its_request() {
        let (_tx, ticket, cancel) = ticket(None);
        assert!(!cancel.is_cancelled());
        drop(ticket);
        assert!(cancel.is_cancelled());
    }

    #[test]
    fn errors_render_for_logs() {
        let overloaded = ServiceError::Overloaded { depth: 9 };
        assert!(overloaded.to_string().contains("9 queries"));
        let eval: ServiceError = PpdError::UnknownName("Nope".into()).into();
        assert!(eval.to_string().contains("Nope"));
        assert!(ServiceError::UnknownDatabase("x".into())
            .to_string()
            .contains("x"));
        assert!(ServiceError::DeadlineExceeded
            .to_string()
            .contains("deadline"));
    }

    #[test]
    fn error_kinds_are_stable_strings() {
        assert_eq!(ServiceError::Overloaded { depth: 1 }.kind(), "overloaded");
        assert_eq!(ServiceError::ShuttingDown.kind(), "shutting-down");
        assert_eq!(
            ServiceError::UnknownDatabase("x".into()).kind(),
            "unknown-database"
        );
        assert_eq!(ServiceError::DeadlineExceeded.kind(), "deadline-exceeded");
        assert_eq!(
            ServiceError::Eval(PpdError::UnknownName("x".into())).kind(),
            "unknown-name"
        );
        assert_eq!(ServiceError::Eval(PpdError::Cancelled).kind(), "cancelled");
        assert_eq!(ServiceError::Protocol("bad".into()).kind(), "protocol");
        assert_eq!(ServiceError::Disconnected.kind(), "disconnected");
    }

    #[test]
    fn submit_options_compose() {
        let options = SubmitOptions::batch()
            .on_database("polls")
            .with_deadline(Duration::from_millis(100))
            .with_error_budget(0.01, 0.95);
        assert_eq!(options.class, AdmissionClass::Batch);
        assert_eq!(options.database.as_deref(), Some("polls"));
        assert_eq!(options.deadline, Some(Duration::from_millis(100)));
        assert_eq!(
            options.error_budget,
            Some(ErrorBudget {
                epsilon: 0.01,
                confidence: 0.95
            })
        );
        assert_eq!(SubmitOptions::default().error_budget, None);
        assert_eq!(
            SubmitOptions::interactive().class,
            AdmissionClass::Interactive
        );
        assert_eq!(AdmissionClass::Batch.name(), "batch");
    }
}
