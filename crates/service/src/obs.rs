//! The service's instrument bundle: the metrics [`Registry`] and span
//! [`TraceLog`] every layer of the front door records into, plus
//! pre-resolved handles for the service-level instruments (lane depths,
//! shedding, deadline expiries, queue wait, wave formation, per-tenant
//! wave sizes).
//!
//! Everything here is purely observational: no instrument is ever read
//! back into admission, scheduling, solver selection, seeds, or cache
//! keys, so a service with observability off, fully on, or sampled
//! delivers bit-identical answers (`tests/service_determinism.rs` pins
//! this).

use crate::request::{AdmissionClass, Delivery, ServiceError};
use ppd_core::{EngineObs, PpdError};
use ppd_obs::{
    Counter, Gauge, Histogram, ObsConfig, Registry, SpanEvent, TraceLog, SECONDS_PER_NANO,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Stable lane labels, indexed by [`AdmissionClass::lane`].
const LANE_TAGS: [&str; 2] = ["interactive", "batch"];

/// Pre-resolved service instruments plus the shared registry and span
/// ring. One per service, shared by reference through `Inner`.
pub(crate) struct ServiceObs {
    registry: Registry,
    trace: Arc<TraceLog>,
    started: Instant,
    /// Live wave count, kept in a plain atomic so `ServiceStats` reports
    /// it even with metrics off; mirrored into the gauge.
    in_flight: AtomicU64,
    in_flight_waves: Gauge,
    uptime_seconds: Gauge,
    /// Current admission-lane depth, by lane.
    lane_depth: [Gauge; 2],
    /// Submissions refused by admission control (`Overloaded`), by lane.
    shed_total: [Counter; 2],
    /// Deliveries that resolved `DeadlineExceeded`.
    deadline_expired: Counter,
    /// Submission-to-wave-pop wait.
    queue_wait: Histogram,
    /// How long the dispatcher held each wave open for stragglers.
    wave_window: Histogram,
    /// Per-tenant group size within a wave, indexed like the router's
    /// tenants.
    wave_size: Vec<Histogram>,
}

impl ServiceObs {
    /// Builds the bundle for a service over `tenants` (registration order,
    /// duplicates already dropped — indices must match the router's).
    pub(crate) fn new(config: &ObsConfig, tenants: &[&str]) -> Self {
        let registry = Registry::new(config.metrics);
        let trace = Arc::new(TraceLog::new(config.trace, config.trace_capacity));
        let lane_depth = std::array::from_fn(|lane| {
            registry.gauge(
                "ppd_queue_depth",
                "Submissions currently waiting in an admission lane",
                &[("lane", LANE_TAGS[lane])],
            )
        });
        let shed_total = std::array::from_fn(|lane| {
            registry.counter(
                "ppd_shed_total",
                "Submissions refused by admission control, by lane",
                &[("lane", LANE_TAGS[lane])],
            )
        });
        let wave_size = tenants
            .iter()
            .map(|tenant| {
                registry.histogram(
                    "ppd_wave_group_size",
                    "Queries per tenant group within a dispatched wave",
                    &[("tenant", tenant)],
                    1.0,
                )
            })
            .collect();
        ServiceObs {
            in_flight: AtomicU64::new(0),
            in_flight_waves: registry.gauge(
                "ppd_in_flight_waves",
                "Waves currently being executed by the dispatcher",
                &[],
            ),
            uptime_seconds: registry.gauge(
                "ppd_uptime_seconds",
                "Whole seconds since the service started",
                &[],
            ),
            deadline_expired: registry.counter(
                "ppd_deadline_expired_total",
                "Deliveries that resolved DeadlineExceeded",
                &[],
            ),
            queue_wait: registry.histogram(
                "ppd_queue_wait_seconds",
                "Submission-to-wave-pop wait",
                &[],
                SECONDS_PER_NANO,
            ),
            wave_window: registry.histogram(
                "ppd_wave_window_seconds",
                "Time the dispatcher held each wave open to coalesce",
                &[],
                SECONDS_PER_NANO,
            ),
            lane_depth,
            shed_total,
            wave_size,
            registry,
            trace,
            started: Instant::now(),
        }
    }

    /// The shared span ring (trace ids are assigned from it even when
    /// tracing is off, so wire responses keep a stable shape).
    pub(crate) fn trace(&self) -> &Arc<TraceLog> {
        &self.trace
    }

    /// The engine instrument bundle for one tenant: all of the tenant's
    /// engines (base + per-budget) share these cells, labelled by tenant.
    pub(crate) fn engine_obs(&self, tenant: &str) -> EngineObs {
        EngineObs::new(&self.registry, &[("tenant", tenant)]).with_trace(Arc::clone(&self.trace))
    }

    /// Records one submission's `admitted` span. Called *before* the job is
    /// pushed into its lane: the dispatcher may pop the job (and record
    /// `wave-joined`) the instant it is visible, so recording afterwards
    /// would let a traced timeline start mid-wave. `depth` is therefore the
    /// submitter's pre-push estimate of where the job will land.
    pub(crate) fn admission_span(
        &self,
        trace: u64,
        tenant: &str,
        class: AdmissionClass,
        depth: usize,
    ) {
        if self.trace.traced(trace) {
            self.trace.record(
                trace,
                SpanEvent::Admitted {
                    tenant: tenant.to_string(),
                    class: class.name(),
                    depth,
                },
            );
        }
    }

    /// The push succeeded at the lane's true depth: update the gauge.
    pub(crate) fn admitted_depth(&self, class: AdmissionClass, depth: usize) {
        self.lane_depth[class.lane()].set(depth as i64);
    }

    /// One submission was refused (`Overloaded`).
    pub(crate) fn shed(&self, class: AdmissionClass) {
        self.shed_total[class.lane()].inc();
    }

    /// Admission refused a submission whose `admitted` span was already
    /// recorded: close the timeline with a terminal `failed` event so it
    /// does not dangle.
    pub(crate) fn rejected(&self, trace: u64, error: &ServiceError) {
        if self.trace.traced(trace) {
            self.trace.record(
                trace,
                SpanEvent::Failed {
                    error_kind: error.kind(),
                    micros: 0,
                },
            );
        }
    }

    /// The dispatcher popped a wave: record the coalescing window and the
    /// post-pop lane depths, and count the wave in flight.
    pub(crate) fn wave_started(
        &self,
        window: Duration,
        interactive_depth: usize,
        batch_depth: usize,
    ) {
        self.wave_window.record_duration(window);
        self.lane_depth[0].set(interactive_depth as i64);
        self.lane_depth[1].set(batch_depth as i64);
        let live = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.in_flight_waves.set(live as i64);
    }

    /// The wave's last group finished.
    pub(crate) fn wave_finished(&self) {
        let live = self.in_flight.fetch_sub(1, Ordering::Relaxed) - 1;
        self.in_flight_waves.set(live as i64);
    }

    /// How long one popped job waited in its lane.
    pub(crate) fn queue_wait(&self, wait: Duration) {
        self.queue_wait.record_duration(wait);
    }

    /// Size of one tenant's query group within a wave.
    pub(crate) fn wave_group(&self, tenant: usize, size: usize) {
        if let Some(h) = self.wave_size.get(tenant) {
            h.record(size as u64);
        }
    }

    /// One delivery left the service: emit the terminal span event and the
    /// expiry / error-kind counters. `latency` is submit-to-delivery.
    pub(crate) fn finished(&self, trace: u64, delivery: &Delivery, latency: Duration) {
        if let Err(e) = delivery {
            let kind = e.kind();
            self.registry
                .counter(
                    "ppd_errors_total",
                    "Deliveries that failed, by stable error kind",
                    &[("kind", kind)],
                )
                .inc();
            if matches!(e, ServiceError::DeadlineExceeded) {
                self.deadline_expired.inc();
            }
        }
        if !self.trace.traced(trace) {
            return;
        }
        let micros = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let event = match delivery {
            Ok(_) => SpanEvent::Delivered { micros },
            Err(ServiceError::DeadlineExceeded) => SpanEvent::Expired { micros },
            Err(ServiceError::Eval(PpdError::Cancelled)) => SpanEvent::Cancelled { micros },
            Err(e) => SpanEvent::Failed {
                error_kind: e.kind(),
                micros,
            },
        };
        self.trace.record(trace, event);
    }

    /// Time since the service started.
    pub(crate) fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Waves currently in flight (0 or 1 with one dispatcher).
    pub(crate) fn in_flight_waves(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Renders the Prometheus-style exposition, refreshing the computed
    /// gauges (uptime) first.
    pub(crate) fn render(&self) -> String {
        self.uptime_seconds.set(self.uptime().as_secs() as i64);
        self.registry.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppd_obs::TraceMode;

    #[test]
    fn admitted_and_finished_record_spans_and_counters() {
        let obs = ServiceObs::new(&ObsConfig::full(), &["a", "b"]);
        let trace = obs.trace().assign();
        obs.admission_span(trace, "a", AdmissionClass::Interactive, 3);
        obs.admitted_depth(AdmissionClass::Interactive, 3);
        obs.queue_wait(Duration::from_micros(40));
        // The pop drains the lane: the wave resets the post-pop depths.
        obs.wave_started(Duration::from_micros(10), 2, 0);
        obs.wave_group(0, 2);
        obs.wave_group(99, 2); // out of range: ignored, not panicked
        obs.finished(
            trace,
            &Ok(crate::request::Answer::Boolean(0.5)),
            Duration::from_micros(90),
        );
        obs.wave_finished();
        let events = obs.trace().events(trace);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].event.name(), "admitted");
        assert_eq!(events[1].event.name(), "delivered");
        let text = obs.render();
        assert!(
            text.contains("ppd_queue_depth{lane=\"interactive\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("ppd_wave_group_size_count{tenant=\"a\"} 1"),
            "{text}"
        );
        assert!(text.contains("ppd_in_flight_waves 0"), "{text}");
        assert!(text.contains("ppd_uptime_seconds"), "{text}");
        assert_eq!(obs.in_flight_waves(), 0);
    }

    #[test]
    fn failures_count_by_kind_and_expiries_split_out() {
        let obs = ServiceObs::new(&ObsConfig::full(), &["a"]);
        let t1 = obs.trace().assign();
        let t2 = obs.trace().assign();
        let t3 = obs.trace().assign();
        obs.finished(
            t1,
            &Err(ServiceError::Eval(PpdError::UnknownName("x".into()))),
            Duration::from_micros(5),
        );
        obs.finished(
            t2,
            &Err(ServiceError::DeadlineExceeded),
            Duration::from_micros(5),
        );
        obs.finished(
            t3,
            &Err(ServiceError::Eval(PpdError::Cancelled)),
            Duration::from_micros(5),
        );
        let text = obs.render();
        assert!(
            text.contains("ppd_errors_total{kind=\"unknown-name\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("ppd_errors_total{kind=\"deadline-exceeded\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("ppd_errors_total{kind=\"cancelled\"} 1"),
            "{text}"
        );
        assert!(text.contains("ppd_deadline_expired_total 1"), "{text}");
        assert_eq!(obs.trace().events(t2)[0].event.name(), "expired");
        assert_eq!(obs.trace().events(t3)[0].event.name(), "cancelled");
        assert_eq!(obs.trace().events(t1)[0].event.name(), "failed");
    }

    #[test]
    fn rejected_submission_timeline_is_terminal() {
        let obs = ServiceObs::new(&ObsConfig::full(), &["a"]);
        let trace = obs.trace().assign();
        obs.admission_span(trace, "a", AdmissionClass::Interactive, 9);
        obs.shed(AdmissionClass::Interactive);
        obs.rejected(trace, &ServiceError::Overloaded { depth: 9 });
        let events = obs.trace().events(trace);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].event.name(), "admitted");
        assert_eq!(events[1].event.name(), "failed");
        assert!(events[1].event.is_terminal());
        assert!(obs
            .render()
            .contains("ppd_shed_total{lane=\"interactive\"} 1"));
    }

    #[test]
    fn off_bundle_records_nothing_but_still_assigns_ids() {
        let obs = ServiceObs::new(&ObsConfig::off(), &["a"]);
        let trace = obs.trace().assign();
        assert_ne!(trace, 0, "ids flow even with tracing off");
        obs.admission_span(trace, "a", AdmissionClass::Batch, 1);
        obs.admitted_depth(AdmissionClass::Batch, 1);
        obs.finished(trace, &Err(ServiceError::Disconnected), Duration::ZERO);
        assert!(obs.trace().events(trace).is_empty());
        assert_eq!(obs.render(), "", "disabled registry renders nothing");
        assert_eq!(obs.in_flight_waves(), 0);
    }

    #[test]
    fn sampled_mode_traces_deterministically_by_id() {
        let obs = ServiceObs::new(
            &ObsConfig {
                metrics: true,
                trace: TraceMode::SampleEvery(2),
                trace_capacity: 64,
            },
            &["a"],
        );
        let odd = obs.trace().assign(); // 1
        let even = obs.trace().assign(); // 2
        obs.finished(
            odd,
            &Ok(crate::request::Answer::Boolean(1.0)),
            Duration::ZERO,
        );
        obs.finished(
            even,
            &Ok(crate::request::Answer::Boolean(1.0)),
            Duration::ZERO,
        );
        assert!(obs.trace().events(odd).is_empty());
        assert_eq!(obs.trace().events(even).len(), 1);
    }
}
