//! # ppd-service
//!
//! An in-process serving layer in front of the [`ppd_core`] evaluation
//! engine: the piece that turns a blocking, caller-drives-everything
//! [`Engine`](ppd_core::Engine) into something that can sit under heavy
//! concurrent query traffic.
//!
//! ```text
//!  clients (any thread)          dispatcher thread              engine
//!  ───────────────────          ─────────────────              ──────
//!  submit(request) ──admit──▶ [ admission queue ]
//!        │  bounded depth;        │ batching window:
//!        │  `Overloaded` when     │ wait ≤ max_wait for
//!        ▼  full                  ▼ ≤ max_batch queries
//!     Ticket ◀──────────────── [ wave ] ──────────────▶ one streamed batch:
//!        │                                              units deduplicated,
//!        │    per-query one-shot channel                cost-ordered, solved
//!        ▼                                              across the pool
//!     wait() ◀───── answer streams back as soon as ──────────┘
//!                   *its* units finish, not the wave's
//! ```
//!
//! The layer is hand-rolled on `std::thread` + `std::sync::mpsc` — no async
//! runtime — and has four parts:
//!
//! * **Admission control** ([`Service::submit`]): a bounded queue. When it
//!   is full the submit fails fast with [`ServiceError::Overloaded`] instead
//!   of letting latency grow without bound — backpressure the caller can
//!   act on (shed, retry, or route elsewhere).
//! * **Wave batching**: the dispatcher coalesces queued queries into waves
//!   of at most [`ServiceConfig::max_batch`], waiting at most
//!   [`ServiceConfig::max_wait`] after the first query arrives. Queries
//!   that land in one wave share deduplicated work units through one
//!   [`Engine`](ppd_core::Engine) — concurrent clients asking overlapping
//!   questions pay for the overlap once (the cross-query grouping of the
//!   paper's Section 6.4, applied *between* clients).
//! * **Streamed answers**: each query's [`Ticket`] resolves as soon as the
//!   last work unit that query depends on completes
//!   ([`Engine::evaluate_batch_streamed`](ppd_core::Engine::evaluate_batch_streamed)),
//!   so a cheap query co-batched with an expensive one is answered early
//!   instead of waiting for the wave.
//! * **Graceful shutdown + stats** ([`Service::shutdown`],
//!   [`ServiceStats`]): shutdown drains every admitted query before the
//!   dispatcher exits, and the stats snapshot reports queue depth, wave
//!   sizes, per-query latency, and the engine's cache hit rate.
//!
//! **Determinism contract:** for a fixed [`EvalConfig`](ppd_core::EvalConfig)
//! every answer is bit-identical to calling the engine directly — regardless
//! of batch window, arrival order, wave composition, or thread count. The
//! engine guarantees this per unit (content-derived seeds and cache keys);
//! the service adds no state of its own to the numbers. The repo's
//! `service_determinism` test pins the contract.

mod admission;
mod config;
mod request;
mod service;
mod stats;

pub use config::ServiceConfig;
pub use request::{Answer, Request, ServiceError, Ticket};
pub use service::Service;
pub use stats::ServiceStats;
