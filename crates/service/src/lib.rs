//! # ppd-service
//!
//! The query front door for [`ppd_core`]: a multi-tenant serving layer that
//! turns a blocking, caller-drives-everything [`Engine`](ppd_core::Engine)
//! into something that can sit under heavy concurrent query traffic — and,
//! via the wire protocol ([`WireServer`]/[`WireClient`]), under remote
//! clients on a socket.
//!
//! ```text
//!  clients (threads or sockets)      dispatcher thread         per-database engines
//!  ───────────────────────────      ─────────────────         ────────────────────
//!  submit_with(request, opts)          admission queue
//!    │ routed by database id     ┌──────────────────────┐
//!    │ (unknown id fails fast)   │ interactive lane ████│──┐  wave: interactive
//!    ├──────────admit───────────▶│ batch lane       ██  │  │  sub-batches first,
//!    │  per-class bounds;        └──────────────────────┘  │  then batch, grouped
//!    ▼  `Overloaded` when full      │ batching window:     │  by tenant
//!  Ticket ◀─────────────────────────┤ wait ≤ max_wait for  ├─▶ engine("polls")
//!    │ deadline? then waits         ▼ ≤ max_batch queries  ├─▶ engine("movies")
//!    ▼ resolve `DeadlineExceeded`  [ wave ]                │   units deduplicated,
//!  wait() ◀── answer streams back as soon as ──────────────┘   cost-ordered, solved
//!             *its* units finish; cancelled/expired             across the pool
//!             queries release their units
//! ```
//!
//! The layer is hand-rolled on `std::thread` + `std::sync::mpsc` +
//! `std::net` — no async runtime — and has these parts:
//!
//! * **Routing** ([`Service::with_databases`], [`SubmitOptions::on_database`]):
//!   one engine per registered database behind a single admission layer.
//!   Requests route by database id at submission; unknown ids fail with
//!   [`ServiceError::UnknownDatabase`] before anything is queued. The first
//!   database is the default route, which keeps the single-database API
//!   ([`Service::new`] + [`Service::submit`]) unchanged.
//! * **Two admission classes** ([`AdmissionClass`]): `Interactive` and
//!   `Batch` occupy separate bounded lanes
//!   ([`ServiceConfig::max_queue`] / [`ServiceConfig::max_queue_batch`]).
//!   A wave takes every queued interactive request before the first batch
//!   one and runs the interactive sub-batch first, so a batch flood sheds
//!   from its own lane with [`ServiceError::Overloaded`] while interactive
//!   latency stays flat.
//! * **Deadlines and cancellation** ([`SubmitOptions::with_deadline`]): a
//!   request's [`Ticket`] resolves [`ServiceError::DeadlineExceeded`] once
//!   its deadline passes instead of blocking (an answer that already landed
//!   still wins the race). Expired or dropped tickets cancel their request:
//!   the engine skips any work units every remaining dependent of which is
//!   cancelled, without touching co-batched queries.
//! * **Wave batching + streamed answers**: the dispatcher coalesces queued
//!   queries into waves of at most [`ServiceConfig::max_batch`], waiting at
//!   most [`ServiceConfig::max_wait`]; co-waved queries on one tenant share
//!   deduplicated work units (the paper's Section 6.4 grouping applied
//!   *between* clients), and each ticket resolves as soon as the last unit
//!   *its* query needs completes.
//! * **Per-request error budgets** ([`SubmitOptions::with_error_budget`],
//!   wire fields `epsilon`/`confidence`): a request may override its
//!   tenant's solver with an accuracy target — each per-unit marginal lands
//!   within `±ε` at the given confidence, by exact DP or the budgeted
//!   sampler, whichever the static cost model predicts is cheaper.
//!   Bit-identical budgets share one lazily created engine per tenant, so
//!   their caches warm across requests.
//! * **Wire protocol** ([`WireServer`] / [`WireClient`]): line-delimited
//!   JSON over TCP or Unix sockets, one object per line, answers streamed
//!   out of order and matched by id. Floats cross the socket bit-exactly
//!   (shortest-round-trip formatting), so remote answers are bit-identical
//!   to in-process ones. A `{"kind": "stats"}` control frame
//!   ([`WireClient::stats`]) returns the [`ServiceStats`] snapshot plus
//!   per-tenant cache/calibration counters as a [`WireStatsReport`].
//! * **Graceful shutdown + stats** ([`Service::shutdown`],
//!   [`ServiceStats`]): shutdown drains every admitted query; the stats
//!   snapshot reports per-class admission counters, queue depths, wave
//!   sizes, latency, expiry counts, and cache counters summed over tenants.
//!
//! **Determinism contract:** for a fixed [`EvalConfig`](ppd_core::EvalConfig)
//! every answer is bit-identical to calling the engine directly — regardless
//! of batch window, arrival order, wave composition, admission class,
//! transport (in-process or wire), or thread count. The engine guarantees
//! this per unit (content-derived seeds and cache keys); the service adds no
//! state of its own to the numbers. The repo's `service_determinism` test
//! pins the contract across both classes and both transports.

mod admission;
mod config;
mod deadline;
mod obs;
mod request;
mod router;
mod service;
mod stats;
mod wire;

pub use config::ServiceConfig;
pub use request::{AdmissionClass, Answer, Request, ServiceError, SubmitOptions, Ticket};
pub use service::{Service, DEFAULT_DATABASE};
pub use stats::ServiceStats;
pub use wire::{WireClient, WireServer, WireStatsReport};
// The observability configuration and trace types are part of the service's
// public surface (`ServiceConfig::obs`, `Service::trace_events`);
// re-exported so embedders need no direct `ppd_obs` dependency.
pub use ppd_obs::{ObsConfig, SpanEvent, SpanRecord, TraceMode};
