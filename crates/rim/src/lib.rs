//! # ppd-rim
//!
//! Ranking models for probabilistic preference databases.
//!
//! This crate implements the preference-model substrate of the paper
//! *"Supporting Hard Queries over Probabilistic Preferences"* (VLDB 2020):
//!
//! * [`Ranking`], [`PartialOrder`] and [`SubRanking`] — the combinatorial
//!   objects that preferences are expressed over (Section 2.1 of the paper);
//! * [`RimModel`] — the Repeated Insertion Model, a generative distribution
//!   over permutations parameterised by a reference ranking `σ` and an
//!   insertion-probability function `Π` (Section 2.2, Algorithm 1);
//! * [`MallowsModel`] — the Mallows distribution `MAL(σ, φ)`, realised as a
//!   special case of RIM;
//! * [`AmpSampler`] — the Approximate Mallows Posterior sampler `AMP(σ, φ, υ)`
//!   that draws rankings from a Mallows model conditioned on a partial order,
//!   and evaluates the proposal probability of a ranking (needed for the
//!   importance-sampling solvers);
//! * [`greedy_modals`] / [`approximate_distance`] — Algorithms 5 and 6 of the
//!   paper, used to locate the modes of a conditioned Mallows posterior;
//! * [`MallowsMixture`] — mixtures of Mallows models, standing in for the
//!   externally-learned mixtures the paper uses for the MovieLens and
//!   CrowdRank datasets.
//!
//! Positions are 0-based throughout the crate; the paper uses 1-based
//! positions, and doc comments point out the correspondence where useful.

pub mod amp;
pub mod kendall;
pub mod mallows;
pub mod mixture;
pub mod modal;
pub mod partial_order;
pub mod ranking;
pub mod rim;
pub mod subranking;

pub use amp::{AmpSampler, AmpScratch};
pub use kendall::{kendall_tau, kendall_tau_between_sets, normalized_kendall_tau};
pub use mallows::MallowsModel;
pub use mixture::{MallowsMixture, MixtureComponent};
pub use modal::{approximate_distance, greedy_modals, subranking_distance_to_center};
pub use partial_order::PartialOrder;
pub use ranking::Ranking;
pub use rim::RimModel;
pub use subranking::SubRanking;

/// Identifier of an item. Items are small integers managed by the caller
/// (typically indices into an item catalogue owned by `ppd-core`).
pub type Item = u32;

/// Errors produced by the ranking-model layer.
#[derive(Debug, Clone, PartialEq)]
pub enum RimError {
    /// A sequence of items that was supposed to be a ranking contains
    /// duplicate items.
    DuplicateItem(Item),
    /// An operation referred to an item that is not part of the model or
    /// ranking it was applied to.
    UnknownItem(Item),
    /// The insertion-probability matrix `Π` has the wrong shape or one of its
    /// rows does not form a probability distribution.
    InvalidInsertionMatrix(String),
    /// The Mallows dispersion parameter `φ` must lie in `[0, 1]`.
    InvalidPhi(f64),
    /// A partial order contains a cycle and therefore cannot be used as a
    /// preference constraint.
    CyclicPartialOrder,
    /// A constraint (partial order or sub-ranking) is incompatible with the
    /// item universe of the model it was combined with.
    IncompatibleConstraint(String),
    /// A mixture model was constructed with no components or with weights
    /// that do not form a distribution.
    InvalidMixture(String),
}

impl std::fmt::Display for RimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RimError::DuplicateItem(it) => write!(f, "duplicate item {it} in ranking"),
            RimError::UnknownItem(it) => write!(f, "unknown item {it}"),
            RimError::InvalidInsertionMatrix(msg) => {
                write!(f, "invalid RIM insertion matrix: {msg}")
            }
            RimError::InvalidPhi(phi) => {
                write!(f, "Mallows dispersion must be in [0, 1], got {phi}")
            }
            RimError::CyclicPartialOrder => write!(f, "partial order contains a cycle"),
            RimError::IncompatibleConstraint(msg) => write!(f, "incompatible constraint: {msg}"),
            RimError::InvalidMixture(msg) => write!(f, "invalid mixture: {msg}"),
        }
    }
}

impl std::error::Error for RimError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = RimError::DuplicateItem(3);
        assert!(e.to_string().contains('3'));
        let e = RimError::InvalidPhi(1.5);
        assert!(e.to_string().contains("1.5"));
        let e = RimError::CyclicPartialOrder;
        assert!(e.to_string().contains("cycle"));
    }
}
