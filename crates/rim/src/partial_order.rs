//! Partial orders over items: pairwise preference constraints.

use crate::{Item, Ranking, Result, RimError, SubRanking};
use std::collections::{BTreeMap, BTreeSet};

/// A strict partial order over a finite set of items, represented as a set of
/// directed edges `a ≻ b` ("a is preferred to b").
///
/// The order is kept transitively closed on demand (see
/// [`PartialOrder::transitive_closure`]); the raw edge set is whatever the
/// caller supplied. Cycle detection is performed on construction of the
/// closure and by [`PartialOrder::validate`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartialOrder {
    /// All items mentioned by the order (including isolated items added via
    /// [`PartialOrder::add_item`]).
    items: BTreeSet<Item>,
    /// Direct successors: `edges[a]` contains every `b` with `a ≻ b`.
    edges: BTreeMap<Item, BTreeSet<Item>>,
}

impl PartialOrder {
    /// Creates an empty partial order (no items, no constraints).
    pub fn new() -> Self {
        PartialOrder::default()
    }

    /// Creates a partial order from a list of `a ≻ b` pairs.
    pub fn from_pairs(pairs: &[(Item, Item)]) -> Result<Self> {
        let mut po = PartialOrder::new();
        for &(a, b) in pairs {
            po.add_edge(a, b)?;
        }
        po.validate()?;
        Ok(po)
    }

    /// Builds the chain partial order corresponding to a sub-ranking
    /// `ψ = ⟨x_1, …, x_k⟩`, i.e. the constraints `x_1 ≻ x_2 ≻ … ≻ x_k`.
    pub fn from_subranking(psi: &SubRanking) -> Self {
        let mut po = PartialOrder::new();
        let items = psi.items();
        for w in items.windows(2) {
            po.add_edge(w[0], w[1])
                .expect("sub-ranking has distinct consecutive items");
        }
        if let Some(&only) = items.first() {
            po.add_item(only);
        }
        po
    }

    /// Adds an isolated item to the order.
    pub fn add_item(&mut self, item: Item) {
        self.items.insert(item);
    }

    /// Adds the constraint `a ≻ b`. Self-loops are rejected.
    pub fn add_edge(&mut self, a: Item, b: Item) -> Result<()> {
        if a == b {
            return Err(RimError::CyclicPartialOrder);
        }
        self.items.insert(a);
        self.items.insert(b);
        self.edges.entry(a).or_default().insert(b);
        Ok(())
    }

    /// All items mentioned by the partial order (the paper's `A(υ)`).
    pub fn items(&self) -> Vec<Item> {
        self.items.iter().copied().collect()
    }

    /// Number of items mentioned by the order.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// The raw (non-closed) edge list.
    pub fn edges(&self) -> Vec<(Item, Item)> {
        let mut out = Vec::new();
        for (&a, succs) in &self.edges {
            for &b in succs {
                out.push((a, b));
            }
        }
        out
    }

    /// `true` when the order contains no constraints.
    pub fn is_empty(&self) -> bool {
        self.edges.values().all(|s| s.is_empty())
    }

    /// Direct successors of `item` (items it is directly preferred to).
    pub fn successors(&self, item: Item) -> Vec<Item> {
        self.edges
            .get(&item)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Direct predecessors of `item` (items directly preferred to it).
    pub fn predecessors(&self, item: Item) -> Vec<Item> {
        let mut out = Vec::new();
        for (&a, succs) in &self.edges {
            if succs.contains(&item) {
                out.push(a);
            }
        }
        out
    }

    /// Checks that the constraint graph is acyclic.
    pub fn validate(&self) -> Result<()> {
        self.topological_order().map(|_| ())
    }

    /// Returns the items in some topological order of the constraint graph,
    /// or an error if the graph contains a cycle.
    pub fn topological_order(&self) -> Result<Vec<Item>> {
        let mut indeg: BTreeMap<Item, usize> = self.items.iter().map(|&i| (i, 0)).collect();
        for succs in self.edges.values() {
            for &b in succs {
                *indeg.entry(b).or_insert(0) += 1;
            }
        }
        let mut queue: Vec<Item> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&i, _)| i)
            .collect();
        let mut order = Vec::with_capacity(self.items.len());
        while let Some(next) = queue.pop() {
            order.push(next);
            for &b in self.edges.get(&next).into_iter().flatten() {
                let d = indeg.get_mut(&b).expect("edge endpoint is an item");
                *d -= 1;
                if *d == 0 {
                    queue.push(b);
                }
            }
        }
        if order.len() == self.items.len() {
            Ok(order)
        } else {
            Err(RimError::CyclicPartialOrder)
        }
    }

    /// Returns the transitive closure `tc(υ)` of the partial order as a new
    /// partial order with the same items.
    pub fn transitive_closure(&self) -> Result<PartialOrder> {
        let order = self.topological_order()?;
        // Process items in reverse topological order, accumulating reachable sets.
        let mut reach: BTreeMap<Item, BTreeSet<Item>> = BTreeMap::new();
        for &item in order.iter().rev() {
            let mut set = BTreeSet::new();
            for &succ in self.edges.get(&item).into_iter().flatten() {
                set.insert(succ);
                if let Some(r) = reach.get(&succ) {
                    set.extend(r.iter().copied());
                }
            }
            reach.insert(item, set);
        }
        let mut closed = PartialOrder::new();
        for &item in &self.items {
            closed.add_item(item);
        }
        for (&a, succs) in &reach {
            for &b in succs {
                closed.add_edge(a, b)?;
            }
        }
        Ok(closed)
    }

    /// `true` when the pair `a ≻ b` is implied by the order (i.e. present in
    /// its transitive closure). Quadratic in the worst case; intended for
    /// small constraint sets and tests.
    pub fn implies(&self, a: Item, b: Item) -> bool {
        // BFS from a.
        let mut seen = BTreeSet::new();
        let mut stack = vec![a];
        while let Some(x) = stack.pop() {
            if !seen.insert(x) {
                continue;
            }
            for &succ in self.edges.get(&x).into_iter().flatten() {
                if succ == b {
                    return true;
                }
                stack.push(succ);
            }
        }
        false
    }

    /// `true` when the complete ranking `τ` is a linear extension of the
    /// partial order restricted to items present in `τ` (every constrained
    /// item must be present).
    pub fn is_consistent(&self, ranking: &Ranking) -> bool {
        for (a, succs) in &self.edges {
            let pa = match ranking.position_of(*a) {
                Some(p) => p,
                None => return false,
            };
            for b in succs {
                match ranking.position_of(*b) {
                    Some(pb) if pa < pb => {}
                    _ => return false,
                }
            }
        }
        true
    }

    /// Enumerates all linear extensions of the order over exactly the items
    /// it mentions, as [`SubRanking`]s (the paper's `∆(υ)`). Enumeration is
    /// capped at `cap` results; `None` is returned if the cap was exceeded.
    pub fn linear_extensions(&self, cap: usize) -> Option<Vec<SubRanking>> {
        let items: Vec<Item> = self.items.iter().copied().collect();
        let closed = match self.transitive_closure() {
            Ok(c) => c,
            Err(_) => return Some(Vec::new()),
        };
        let mut out = Vec::new();
        let mut remaining: BTreeSet<Item> = items.iter().copied().collect();
        let mut current: Vec<Item> = Vec::with_capacity(items.len());
        fn recurse(
            closed: &PartialOrder,
            remaining: &mut BTreeSet<Item>,
            current: &mut Vec<Item>,
            out: &mut Vec<SubRanking>,
            cap: usize,
        ) -> bool {
            if remaining.is_empty() {
                out.push(SubRanking::new(current.clone()).expect("extension has distinct items"));
                return out.len() <= cap;
            }
            let candidates: Vec<Item> = remaining
                .iter()
                .copied()
                .filter(|&x| {
                    closed
                        .predecessors(x)
                        .iter()
                        .all(|p| !remaining.contains(p))
                })
                .collect();
            for x in candidates {
                remaining.remove(&x);
                current.push(x);
                let ok = recurse(closed, remaining, current, out, cap);
                current.pop();
                remaining.insert(x);
                if !ok {
                    return false;
                }
            }
            true
        }
        let ok = recurse(&closed, &mut remaining, &mut current, &mut out, cap);
        if ok {
            Some(out)
        } else {
            None
        }
    }

    /// Merges another partial order into this one (union of items and edges).
    pub fn merge(&mut self, other: &PartialOrder) {
        for item in &other.items {
            self.items.insert(*item);
        }
        for (a, succs) in &other.edges {
            for b in succs {
                self.edges.entry(*a).or_default().insert(*b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query_edges() {
        let po = PartialOrder::from_pairs(&[(1, 2), (1, 3), (3, 4)]).unwrap();
        assert_eq!(po.num_items(), 4);
        assert_eq!(po.successors(1), vec![2, 3]);
        assert_eq!(po.predecessors(4), vec![3]);
        assert!(po.implies(1, 4));
        assert!(!po.implies(2, 4));
        assert!(!po.implies(4, 1));
    }

    #[test]
    fn self_loop_rejected() {
        let mut po = PartialOrder::new();
        assert!(po.add_edge(1, 1).is_err());
    }

    #[test]
    fn cycle_detected() {
        let mut po = PartialOrder::new();
        po.add_edge(1, 2).unwrap();
        po.add_edge(2, 3).unwrap();
        po.add_edge(3, 1).unwrap();
        assert_eq!(po.validate().unwrap_err(), RimError::CyclicPartialOrder);
        assert!(po.transitive_closure().is_err());
    }

    #[test]
    fn transitive_closure_adds_implied_edges() {
        let po = PartialOrder::from_pairs(&[(1, 2), (2, 3)]).unwrap();
        let tc = po.transitive_closure().unwrap();
        let edges: BTreeSet<(Item, Item)> = tc.edges().into_iter().collect();
        assert!(edges.contains(&(1, 3)));
        assert_eq!(edges.len(), 3);
    }

    #[test]
    fn consistency_with_ranking() {
        let po = PartialOrder::from_pairs(&[(1, 2), (3, 2)]).unwrap();
        let good = Ranking::new(vec![3, 1, 2, 4]).unwrap();
        let bad = Ranking::new(vec![2, 1, 3, 4]).unwrap();
        let missing = Ranking::new(vec![1, 2]).unwrap();
        assert!(po.is_consistent(&good));
        assert!(!po.is_consistent(&bad));
        assert!(!po.is_consistent(&missing));
    }

    #[test]
    fn linear_extensions_of_vee() {
        // υ = {a ≻ c, b ≻ c} has two extensions ⟨a,b,c⟩ and ⟨b,a,c⟩ (paper §5.2).
        let po = PartialOrder::from_pairs(&[(0, 2), (1, 2)]).unwrap();
        let exts = po.linear_extensions(100).unwrap();
        assert_eq!(exts.len(), 2);
        let sets: BTreeSet<Vec<Item>> = exts.iter().map(|s| s.items().to_vec()).collect();
        assert!(sets.contains(&vec![0, 1, 2]));
        assert!(sets.contains(&vec![1, 0, 2]));
    }

    #[test]
    fn linear_extensions_cap() {
        // An antichain of 5 items has 120 extensions; cap at 10.
        let mut po = PartialOrder::new();
        for i in 0..5 {
            po.add_item(i);
        }
        assert!(po.linear_extensions(10).is_none());
        assert_eq!(po.linear_extensions(120).unwrap().len(), 120);
    }

    #[test]
    fn from_subranking_builds_chain() {
        let psi = SubRanking::new(vec![4, 2, 7]).unwrap();
        let po = PartialOrder::from_subranking(&psi);
        assert!(po.implies(4, 7));
        assert!(po.implies(4, 2));
        assert!(po.implies(2, 7));
        assert!(!po.implies(7, 4));
    }

    #[test]
    fn merge_unions_edges() {
        let mut a = PartialOrder::from_pairs(&[(1, 2)]).unwrap();
        let b = PartialOrder::from_pairs(&[(2, 3)]).unwrap();
        a.merge(&b);
        assert!(a.implies(1, 3));
    }
}
