//! Kendall-tau distances between rankings.

use crate::{Item, Ranking};

/// Kendall-tau distance between two complete rankings over the same item set:
/// the number of item pairs ordered one way by `a` and the other way by `b`.
///
/// Items present in only one of the rankings are ignored (the distance is
/// computed over the common items), which matches the paper's use of the
/// distance between rankings over a shared universe.
pub fn kendall_tau(a: &Ranking, b: &Ranking) -> usize {
    // Fast path for the common case — both rankings over the same item set
    // (every distance in the sampling hot loops): no filtering, and hence no
    // allocation, is needed.
    if a.items().iter().all(|&it| b.contains(it)) {
        return kendall_tau_between_sets(a.items(), a, b);
    }
    let common: Vec<Item> = a
        .items()
        .iter()
        .copied()
        .filter(|&it| b.contains(it))
        .collect();
    kendall_tau_between_sets(&common, a, b)
}

/// Kendall-tau distance restricted to the given items (each must appear in
/// both rankings to be counted). Allocation-free: positions are read through
/// the rankings' O(1) inverse indices.
pub fn kendall_tau_between_sets(items: &[Item], a: &Ranking, b: &Ranking) -> usize {
    let mut count = 0;
    for i in 0..items.len() {
        let x = items[i];
        let (ax, bx) = match (a.position_of(x), b.position_of(x)) {
            (Some(ax), Some(bx)) => (ax, bx),
            _ => continue,
        };
        for &y in &items[i + 1..] {
            if let (Some(ay), Some(by)) = (a.position_of(y), b.position_of(y)) {
                if (ax < ay) != (bx < by) {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Kendall-tau distance normalised by the maximum possible number of
/// discordant pairs, yielding a value in `[0, 1]`. Returns 0 for rankings
/// with fewer than two common items.
pub fn normalized_kendall_tau(a: &Ranking, b: &Ranking) -> f64 {
    let common: Vec<Item> = a
        .items()
        .iter()
        .copied()
        .filter(|&it| b.contains(it))
        .collect();
    let n = common.len();
    if n < 2 {
        return 0.0;
    }
    let max_pairs = n * (n - 1) / 2;
    kendall_tau_between_sets(&common, a, b) as f64 / max_pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_rankings_have_zero_distance() {
        let a = Ranking::new(vec![1, 2, 3, 4]).unwrap();
        assert_eq!(kendall_tau(&a, &a), 0);
        assert_eq!(normalized_kendall_tau(&a, &a), 0.0);
    }

    #[test]
    fn reversed_ranking_has_max_distance() {
        let a = Ranking::new(vec![1, 2, 3, 4]).unwrap();
        let b = Ranking::new(vec![4, 3, 2, 1]).unwrap();
        assert_eq!(kendall_tau(&a, &b), 6);
        assert!((normalized_kendall_tau(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_swap_distance_one() {
        let a = Ranking::new(vec![1, 2, 3]).unwrap();
        let b = Ranking::new(vec![2, 1, 3]).unwrap();
        assert_eq!(kendall_tau(&a, &b), 1);
    }

    #[test]
    fn distance_over_common_items_only() {
        let a = Ranking::new(vec![1, 2, 3]).unwrap();
        let b = Ranking::new(vec![3, 1, 99]).unwrap();
        // Common items {1, 3}: a says 1 ≻ 3, b says 3 ≻ 1 → distance 1.
        assert_eq!(kendall_tau(&a, &b), 1);
    }

    #[test]
    fn symmetry() {
        let a = Ranking::new(vec![5, 1, 4, 2, 3]).unwrap();
        let b = Ranking::new(vec![1, 2, 3, 4, 5]).unwrap();
        assert_eq!(kendall_tau(&a, &b), kendall_tau(&b, &a));
    }

    #[test]
    fn reversal_distance_is_m_choose_2_for_every_m() {
        for m in 2..=9usize {
            let forward = Ranking::identity(m);
            let reversed = Ranking::new((0..m as Item).rev().collect()).unwrap();
            assert_eq!(kendall_tau(&forward, &reversed), m * (m - 1) / 2, "m = {m}");
            assert!((normalized_kendall_tau(&forward, &reversed) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normalized_distance_lies_in_unit_interval() {
        // Deterministic pseudo-random permutations via a small LCG.
        let mut state: u64 = 0xBEEF;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for m in 2..=8usize {
            for _ in 0..20 {
                let mut items: Vec<Item> = (0..m as Item).collect();
                for i in (1..items.len()).rev() {
                    items.swap(i, next() % (i + 1));
                }
                let tau = Ranking::new(items).unwrap();
                let sigma = Ranking::identity(m);
                let norm = normalized_kendall_tau(&tau, &sigma);
                assert!((0.0..=1.0).contains(&norm), "m = {m}: {norm}");
                // Symmetry holds for the normalised distance too.
                assert_eq!(norm, normalized_kendall_tau(&sigma, &tau));
                // Consistency with the raw count.
                let raw = kendall_tau(&tau, &sigma) as f64;
                assert!((norm - raw / (m * (m - 1) / 2) as f64).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn fewer_than_two_common_items_normalizes_to_zero() {
        let a = Ranking::new(vec![1, 2]).unwrap();
        let b = Ranking::new(vec![2, 3]).unwrap();
        assert_eq!(normalized_kendall_tau(&a, &b), 0.0);
        let c = Ranking::new(vec![8, 9]).unwrap();
        assert_eq!(normalized_kendall_tau(&a, &c), 0.0);
    }
}
