//! The Repeated Insertion Model (RIM).

use crate::{Item, Ranking, Result, RimError};
use rand::Rng;

/// A Repeated Insertion Model `RIM(σ, Π)` (Doignon et al. 2004; Section 2.2
/// and Algorithm 1 of the paper).
///
/// The model is parameterised by a reference ranking `σ = ⟨σ_1, …, σ_m⟩` and
/// insertion probabilities `Π(i, j)` — the probability of inserting the item
/// `σ_i` at position `j` of the partially-built ranking. Sampling proceeds by
/// inserting the items of `σ` one by one; after step `i` the partial ranking
/// contains exactly the first `i` items of `σ`.
///
/// Internally both indices are 0-based: `pi[i][j]` is the probability of
/// inserting `σ_{i+1}` (paper indexing) at position `j+1` (paper indexing),
/// so row `i` has `i + 1` entries.
#[derive(Debug, Clone, PartialEq)]
pub struct RimModel {
    sigma: Ranking,
    pi: Vec<Vec<f64>>,
}

impl RimModel {
    /// Builds a RIM model, validating that `pi` has one row per item, that row
    /// `i` has exactly `i + 1` entries, and that every row sums to 1 (within a
    /// small tolerance).
    pub fn new(sigma: Ranking, pi: Vec<Vec<f64>>) -> Result<Self> {
        if pi.len() != sigma.len() {
            return Err(RimError::InvalidInsertionMatrix(format!(
                "expected {} rows, got {}",
                sigma.len(),
                pi.len()
            )));
        }
        for (i, row) in pi.iter().enumerate() {
            if row.len() != i + 1 {
                return Err(RimError::InvalidInsertionMatrix(format!(
                    "row {} must have {} entries, got {}",
                    i,
                    i + 1,
                    row.len()
                )));
            }
            let sum: f64 = row.iter().sum();
            if row.iter().any(|&p| !(0.0..=1.0 + 1e-9).contains(&p)) || (sum - 1.0).abs() > 1e-6 {
                return Err(RimError::InvalidInsertionMatrix(format!(
                    "row {i} is not a probability distribution (sum = {sum})"
                )));
            }
        }
        Ok(RimModel { sigma, pi })
    }

    /// Builds the RIM model corresponding to the uniform distribution over
    /// all rankings of `σ`'s items (`Π(i, j) = 1/i`).
    pub fn uniform(sigma: Ranking) -> Self {
        let m = sigma.len();
        let pi = (0..m)
            .map(|i| vec![1.0 / (i as f64 + 1.0); i + 1])
            .collect();
        RimModel { sigma, pi }
    }

    /// The reference ranking `σ`.
    pub fn sigma(&self) -> &Ranking {
        &self.sigma
    }

    /// The insertion-probability matrix (row `i` has `i + 1` entries).
    pub fn pi(&self) -> &[Vec<f64>] {
        &self.pi
    }

    /// Number of items `m` ranked by the model.
    pub fn num_items(&self) -> usize {
        self.sigma.len()
    }

    /// The probability `Π(i, j)` of inserting the `i`-th reference item
    /// (0-based) at position `j` (0-based).
    pub fn insertion_prob(&self, i: usize, j: usize) -> f64 {
        self.pi[i][j]
    }

    /// Draws a random ranking using the repeated insertion procedure
    /// (Algorithm 1 of the paper).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Ranking {
        let m = self.num_items();
        let mut items: Vec<Item> = Vec::with_capacity(m);
        for i in 0..m {
            let j = sample_index(&self.pi[i], rng);
            items.insert(j, self.sigma.item_at(i));
        }
        Ranking::new(items).expect("insertion of distinct reference items yields a permutation")
    }

    /// The exact probability of generating the complete ranking `τ`
    /// (`Pr(τ | σ, Π)`); 0 if `τ` does not range over exactly the model's
    /// items.
    pub fn prob_of(&self, tau: &Ranking) -> f64 {
        self.log_prob_of(tau).map(f64::exp).unwrap_or(0.0)
    }

    /// Natural logarithm of [`RimModel::prob_of`], or `None` when the ranking
    /// is not over the model's item set or has probability zero.
    pub fn log_prob_of(&self, tau: &Ranking) -> Option<f64> {
        let m = self.num_items();
        if tau.len() != m {
            return None;
        }
        let mut logp = 0.0;
        for i in 0..m {
            let j = insertion_position(&self.sigma, tau, i)?;
            let p = self.pi[i][j];
            if p <= 0.0 {
                return None;
            }
            logp += p.ln();
        }
        Some(logp)
    }

    /// The sequence of insertion positions that the RIM process must take to
    /// produce `τ` (0-based positions), or `None` if `τ` does not contain all
    /// reference items.
    pub fn insertion_positions_of(&self, tau: &Ranking) -> Option<Vec<usize>> {
        (0..self.num_items())
            .map(|i| insertion_position(&self.sigma, tau, i))
            .collect()
    }

    /// The total-variation-free sanity check used in tests: the probabilities
    /// of all `m!` rankings sum to 1. Only available for small `m`.
    #[doc(hidden)]
    pub fn total_probability_mass(&self) -> f64 {
        Ranking::enumerate_all(self.sigma.items())
            .iter()
            .map(|tau| self.prob_of(tau))
            .sum()
    }
}

/// Position at which `σ_i` must have been inserted for the final ranking to be
/// `τ`: the number of reference items `σ_0 … σ_{i-1}` that precede `σ_i` in
/// `τ`. (The relative order of already-inserted items never changes, so the
/// insertion position is determined by the final ranking.)
fn insertion_position(sigma: &Ranking, tau: &Ranking, i: usize) -> Option<usize> {
    let item = sigma.item_at(i);
    let pos_item = tau.position_of(item)?;
    let mut j = 0;
    for k in 0..i {
        let earlier = sigma.item_at(k);
        let pos_earlier = tau.position_of(earlier)?;
        if pos_earlier < pos_item {
            j += 1;
        }
    }
    Some(j)
}

/// Samples an index from an (unnormalised is fine) discrete distribution.
pub(crate) fn sample_index<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0, "weights must have positive mass");
    let mut u = rng.gen::<f64>() * total;
    for (idx, &w) in weights.iter().enumerate() {
        if u < w {
            return idx;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn simple_rim() -> RimModel {
        // m = 3, a hand-crafted Π.
        let sigma = Ranking::new(vec![10, 20, 30]).unwrap();
        let pi = vec![vec![1.0], vec![0.3, 0.7], vec![0.2, 0.3, 0.5]];
        RimModel::new(sigma, pi).unwrap()
    }

    #[test]
    fn validation_rejects_bad_matrices() {
        let sigma = Ranking::new(vec![1, 2]).unwrap();
        assert!(RimModel::new(sigma.clone(), vec![vec![1.0]]).is_err());
        assert!(RimModel::new(sigma.clone(), vec![vec![1.0], vec![0.5, 0.6]]).is_err());
        assert!(RimModel::new(sigma.clone(), vec![vec![1.0], vec![0.5, 0.4, 0.1]]).is_err());
        assert!(RimModel::new(sigma, vec![vec![1.0], vec![0.5, 0.5]]).is_ok());
    }

    #[test]
    fn probabilities_sum_to_one() {
        let rim = simple_rim();
        assert!((rim.total_probability_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn example_2_1_probability() {
        // Example 2.1 of the paper: Pr(⟨b, c, a⟩ | ⟨a, b, c⟩, Π) = Π(1,1)·Π(2,1)·Π(3,2).
        let sigma = Ranking::new(vec![0, 1, 2]).unwrap(); // a=0, b=1, c=2
        let pi = vec![vec![1.0], vec![0.4, 0.6], vec![0.1, 0.2, 0.7]];
        let rim = RimModel::new(sigma, pi).unwrap();
        let tau = Ranking::new(vec![1, 2, 0]).unwrap();
        let expected = 1.0 * 0.4 * 0.2;
        assert!((rim.prob_of(&tau) - expected).abs() < 1e-12);
    }

    #[test]
    fn prob_of_wrong_universe_is_zero() {
        let rim = simple_rim();
        let tau = Ranking::new(vec![10, 20]).unwrap();
        assert_eq!(rim.prob_of(&tau), 0.0);
        let tau = Ranking::new(vec![10, 20, 99]).unwrap();
        assert_eq!(rim.prob_of(&tau), 0.0);
    }

    #[test]
    fn uniform_rim_is_uniform() {
        let rim = RimModel::uniform(Ranking::identity(4));
        for tau in Ranking::enumerate_all(&[0, 1, 2, 3]) {
            assert!((rim.prob_of(&tau) - 1.0 / 24.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_matches_probabilities() {
        let rim = simple_rim();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 40_000;
        let mut counts: std::collections::HashMap<Vec<Item>, usize> = Default::default();
        for _ in 0..n {
            let tau = rim.sample(&mut rng);
            *counts.entry(tau.items().to_vec()).or_default() += 1;
        }
        for tau in Ranking::enumerate_all(&[10, 20, 30]) {
            let expected = rim.prob_of(&tau);
            let observed = *counts.get(tau.items()).unwrap_or(&0) as f64 / n as f64;
            assert!(
                (expected - observed).abs() < 0.02,
                "ranking {tau}: expected {expected}, observed {observed}"
            );
        }
    }

    #[test]
    fn insertion_positions_roundtrip() {
        let rim = simple_rim();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let tau = rim.sample(&mut rng);
            let positions = rim.insertion_positions_of(&tau).unwrap();
            // Rebuild the ranking from the positions and compare.
            let mut items: Vec<Item> = Vec::new();
            for (i, &j) in positions.iter().enumerate() {
                items.insert(j, rim.sigma().item_at(i));
            }
            assert_eq!(items, tau.items());
        }
    }
}
