//! AMP: the Approximate Mallows Posterior sampler (Lu & Boutilier 2014),
//! used here both as a conditioned sampler and as an importance-sampling
//! proposal distribution.

use crate::mallows::pow_phi;
use crate::{Item, MallowsModel, PartialOrder, Ranking, Result, RimError, SubRanking};
use rand::Rng;

/// Reusable scratch buffers for [`AmpSampler`]'s hot loops: the partial
/// ranking built up during a sample or probability evaluation and the
/// per-step insertion weights. Hoisting these out of a sampling loop removes
/// every per-sample allocation without changing a single arithmetic
/// operation or random draw — results are bit-identical to the unscratched
/// entry points.
#[derive(Debug, Clone, Default)]
pub struct AmpScratch {
    items: Vec<Item>,
    weights: Vec<f64>,
}

/// `AMP(σ, φ, υ)`: a sampler over rankings consistent with a partial order
/// `υ`, obtained by running the Mallows repeated-insertion procedure while
/// restricting each insertion to positions that do not violate `υ`
/// (Section 2.2, Example 2.2 of the paper).
///
/// Besides sampling, the type evaluates the probability `q(τ)` with which it
/// would generate a given ranking — the quantity needed to re-weight samples
/// in the importance-sampling estimators of Section 5.
#[derive(Debug, Clone)]
pub struct AmpSampler {
    center: Ranking,
    phi: f64,
    /// Transitively-closed constraint.
    constraint: PartialOrder,
}

impl AmpSampler {
    /// Builds an AMP sampler for `MAL(center, phi)` conditioned on the partial
    /// order `constraint`. Every item mentioned by the constraint must be
    /// ranked by the model.
    pub fn new(center: Ranking, phi: f64, constraint: &PartialOrder) -> Result<Self> {
        if !(0.0..=1.0).contains(&phi) || phi.is_nan() {
            return Err(RimError::InvalidPhi(phi));
        }
        for item in constraint.items() {
            if !center.contains(item) {
                return Err(RimError::IncompatibleConstraint(format!(
                    "constraint item {item} is not ranked by the model"
                )));
            }
        }
        let closed = constraint.transitive_closure()?;
        Ok(AmpSampler {
            center,
            phi,
            constraint: closed,
        })
    }

    /// Convenience constructor conditioning on a sub-ranking (a chain).
    pub fn for_subranking(center: Ranking, phi: f64, psi: &SubRanking) -> Result<Self> {
        let chain = PartialOrder::from_subranking(psi);
        AmpSampler::new(center, phi, &chain)
    }

    /// Convenience constructor from a [`MallowsModel`].
    pub fn from_model(model: &MallowsModel, constraint: &PartialOrder) -> Result<Self> {
        AmpSampler::new(model.sigma().clone(), model.phi(), constraint)
    }

    /// The centre ranking of the underlying Mallows model.
    pub fn center(&self) -> &Ranking {
        &self.center
    }

    /// The dispersion parameter of the underlying Mallows model.
    pub fn phi(&self) -> f64 {
        self.phi
    }

    /// Draws a ranking consistent with the constraint and returns it together
    /// with the probability with which this sampler generated it.
    pub fn sample_with_prob<R: Rng + ?Sized>(&self, rng: &mut R) -> (Ranking, f64) {
        let mut scratch = AmpScratch::default();
        let mut out = Ranking::new(Vec::new()).expect("the empty ranking is valid");
        let prob = self.sample_with_prob_into(rng, &mut scratch, &mut out);
        (out, prob)
    }

    /// [`AmpSampler::sample_with_prob`] into reused buffers: the sampled
    /// ranking replaces `out`'s contents and the probability is returned.
    /// Draws the same random variates and performs the same arithmetic as
    /// the allocating entry point, so results are bit-identical.
    pub fn sample_with_prob_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        scratch: &mut AmpScratch,
        out: &mut Ranking,
    ) -> f64 {
        let m = self.center.len();
        scratch.items.clear();
        let mut prob = 1.0;
        for i in 0..m {
            let item = self.center.item_at(i);
            let (lo, hi) = self.feasible_range(&scratch.items, item, i);
            scratch.weights.clear();
            scratch
                .weights
                .extend((lo..=hi).map(|j| pow_phi(self.phi, i - j)));
            let total: f64 = scratch.weights.iter().sum();
            let idx = crate::rim::sample_index(&scratch.weights, rng);
            let j = lo + idx;
            prob *= scratch.weights[idx] / total;
            scratch.items.insert(j, item);
        }
        out.assign(&scratch.items)
            .expect("AMP inserts distinct items");
        prob
    }

    /// Draws a ranking consistent with the constraint.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Ranking {
        self.sample_with_prob(rng).0
    }

    /// The probability `q(τ)` that this sampler generates the complete ranking
    /// `τ`; 0 when `τ` is not over the model's items or is inconsistent with
    /// the constraint.
    pub fn prob_of(&self, tau: &Ranking) -> f64 {
        let mut scratch = AmpScratch::default();
        self.prob_of_with_scratch(tau, &mut scratch)
    }

    /// [`AmpSampler::prob_of`] with a reused partial-ranking buffer;
    /// bit-identical results.
    pub fn prob_of_with_scratch(&self, tau: &Ranking, scratch: &mut AmpScratch) -> f64 {
        let m = self.center.len();
        if tau.len() != m {
            return 0.0;
        }
        scratch.items.clear();
        let items = &mut scratch.items;
        let mut prob = 1.0;
        for i in 0..m {
            let item = self.center.item_at(i);
            let pos_final = match tau.position_of(item) {
                Some(p) => p,
                None => return 0.0,
            };
            // Position of `item` among the already-inserted items, in τ.
            let j = items
                .iter()
                .filter(|&&other| {
                    tau.position_of(other)
                        .map(|p| p < pos_final)
                        .unwrap_or(false)
                })
                .count();
            let (lo, hi) = self.feasible_range(items, item, i);
            if j < lo || j > hi {
                return 0.0;
            }
            let total: f64 = (lo..=hi).map(|jj| pow_phi(self.phi, i - jj)).sum();
            prob *= pow_phi(self.phi, i - j) / total;
            items.insert(j, item);
        }
        prob
    }

    /// Evaluates the density of a **mixture** of AMP proposals at `tau`:
    /// `Σ_i coefficients[i] · q_i(tau)`, accumulated in slice order with one
    /// shared scratch buffer across all components.
    ///
    /// This is the balance-heuristic denominator of the MIS estimators
    /// (Eq. 6 of the paper) in its general, unequally-weighted form: the
    /// coefficient of a component is the share of the total sample budget
    /// drawn from it. Components with a zero coefficient contribute no
    /// density and are skipped without evaluating their `O(m²)` insertion
    /// walk. Each evaluated component performs bit-for-bit the arithmetic of
    /// [`AmpSampler::prob_of_with_scratch`]; the combination order is the
    /// fixed slice order, so the result is deterministic for a fixed pool.
    pub fn mix_prob_of(
        samplers: &[AmpSampler],
        coefficients: &[f64],
        tau: &Ranking,
        scratch: &mut AmpScratch,
    ) -> f64 {
        debug_assert_eq!(
            samplers.len(),
            coefficients.len(),
            "one mixture coefficient per proposal"
        );
        let mut mix = 0.0;
        for (sampler, &coefficient) in samplers.iter().zip(coefficients) {
            if coefficient > 0.0 {
                mix += coefficient * sampler.prob_of_with_scratch(tau, scratch);
            }
        }
        mix
    }

    /// Feasible insertion range `[lo, hi]` (inclusive, 0-based) for inserting
    /// `item` into the current partial ranking `items` at step `i`
    /// (so the partial ranking currently holds `i` items).
    fn feasible_range(&self, items: &[Item], item: Item, i: usize) -> (usize, usize) {
        let mut lo = 0usize;
        let mut hi = i;
        for (pos, &other) in items.iter().enumerate() {
            if self.constraint.implies(other, item) {
                // `other` must stay before `item`.
                lo = lo.max(pos + 1);
            }
            if self.constraint.implies(item, other) {
                // `item` must be placed before `other`.
                hi = hi.min(pos);
            }
        }
        debug_assert!(lo <= hi, "transitively closed constraint keeps range valid");
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unconstrained_amp_equals_mallows() {
        let sigma = Ranking::identity(4);
        let phi = 0.3;
        let amp = AmpSampler::new(sigma.clone(), phi, &PartialOrder::new()).unwrap();
        let mal = MallowsModel::new(sigma, phi).unwrap();
        for tau in Ranking::enumerate_all(&[0, 1, 2, 3]) {
            assert!((amp.prob_of(&tau) - mal.prob_of(&tau)).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_respect_constraint() {
        let sigma = Ranking::identity(5);
        let constraint = PartialOrder::from_pairs(&[(4, 0), (3, 1)]).unwrap();
        let amp = AmpSampler::new(sigma, 0.5, &constraint).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let tau = amp.sample(&mut rng);
            assert!(constraint.is_consistent(&tau));
        }
    }

    #[test]
    fn proposal_probabilities_sum_to_one_over_consistent_rankings() {
        let sigma = Ranking::identity(4);
        let constraint = PartialOrder::from_pairs(&[(3, 0), (2, 1)]).unwrap();
        let amp = AmpSampler::new(sigma, 0.4, &constraint).unwrap();
        let mut total = 0.0;
        for tau in Ranking::enumerate_all(&[0, 1, 2, 3]) {
            let q = amp.prob_of(&tau);
            if !constraint.is_consistent(&tau) {
                assert_eq!(q, 0.0, "inconsistent ranking must have zero proposal mass");
            }
            total += q;
        }
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn example_2_2_probability() {
        // Example 2.2: AMP(⟨a,b,c⟩, φ, {c ≻ a}) generates ⟨b, c, a⟩ with
        // probability φ/(1+φ)².
        let phi = 0.3;
        let sigma = Ranking::new(vec![0, 1, 2]).unwrap(); // a=0, b=1, c=2
        let constraint = PartialOrder::from_pairs(&[(2, 0)]).unwrap();
        let amp = AmpSampler::new(sigma, phi, &constraint).unwrap();
        let tau = Ranking::new(vec![1, 2, 0]).unwrap();
        let expected = phi / ((1.0 + phi) * (1.0 + phi));
        assert!((amp.prob_of(&tau) - expected).abs() < 1e-12);
    }

    #[test]
    fn sample_with_prob_matches_prob_of() {
        let sigma = Ranking::identity(5);
        let constraint = PartialOrder::from_pairs(&[(4, 1), (3, 2)]).unwrap();
        let amp = AmpSampler::new(sigma, 0.6, &constraint).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let (tau, p) = amp.sample_with_prob(&mut rng);
            assert!((amp.prob_of(&tau) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn sampled_rankings_have_valid_proposal_probability() {
        // Proposal-probability consistency: for every sampled ranking the
        // reported probability is strictly positive, at most 1, and agrees
        // with an independent `prob_of` evaluation — across dispersions and
        // constraint shapes (unconstrained, partial order, chain).
        let sigma = Ranking::identity(6);
        let constraints = [
            PartialOrder::new(),
            PartialOrder::from_pairs(&[(5, 0), (4, 1)]).unwrap(),
            PartialOrder::from_subranking(&SubRanking::new(vec![3, 1, 0]).unwrap()),
        ];
        for (ci, constraint) in constraints.iter().enumerate() {
            for (pi, phi) in [0.1, 0.5, 1.0].into_iter().enumerate() {
                let amp = AmpSampler::new(sigma.clone(), phi, constraint).unwrap();
                let mut rng = StdRng::seed_from_u64(100 + (ci * 10 + pi) as u64);
                for _ in 0..50 {
                    let (tau, q) = amp.sample_with_prob(&mut rng);
                    assert!(q > 0.0, "constraint {ci}, phi {phi}: q = {q}");
                    assert!(q <= 1.0 + 1e-12, "constraint {ci}, phi {phi}: q = {q}");
                    assert!((amp.prob_of(&tau) - q).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn mix_prob_of_matches_weighted_component_densities() {
        let sigma = Ranking::identity(5);
        let samplers = vec![
            AmpSampler::new(sigma.clone(), 0.4, &PartialOrder::new()).unwrap(),
            AmpSampler::new(
                Ranking::new(vec![4, 3, 2, 1, 0]).unwrap(),
                0.4,
                &PartialOrder::from_pairs(&[(4, 0)]).unwrap(),
            )
            .unwrap(),
            AmpSampler::new(
                sigma.clone(),
                0.4,
                &PartialOrder::from_pairs(&[(3, 1)]).unwrap(),
            )
            .unwrap(),
        ];
        let coefficients = [0.5, 0.25, 0.25];
        let mut scratch = AmpScratch::default();
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..50 {
            let tau = samplers[0].sample(&mut rng);
            let expected: f64 = samplers
                .iter()
                .zip(&coefficients)
                .map(|(q, &c)| c * q.prob_of(&tau))
                .sum();
            let got = AmpSampler::mix_prob_of(&samplers, &coefficients, &tau, &mut scratch);
            assert_eq!(expected.to_bits(), got.to_bits());
        }
    }

    #[test]
    fn mix_prob_of_skips_zero_coefficient_components() {
        // A zero-budget component contributes no density, so the mixture over
        // {q₀: 1.0, q₁: 0.0} equals q₀ alone — bit for bit.
        let sigma = Ranking::identity(4);
        let samplers = vec![
            AmpSampler::new(sigma.clone(), 0.3, &PartialOrder::new()).unwrap(),
            AmpSampler::new(sigma, 0.3, &PartialOrder::from_pairs(&[(3, 0)]).unwrap()).unwrap(),
        ];
        let mut scratch = AmpScratch::default();
        for tau in Ranking::enumerate_all(&[0, 1, 2, 3]) {
            let got = AmpSampler::mix_prob_of(&samplers, &[1.0, 0.0], &tau, &mut scratch);
            assert_eq!(samplers[0].prob_of(&tau).to_bits(), got.to_bits());
        }
    }

    #[test]
    fn constraint_item_outside_model_rejected() {
        let sigma = Ranking::identity(3);
        let constraint = PartialOrder::from_pairs(&[(0, 7)]).unwrap();
        assert!(AmpSampler::new(sigma, 0.5, &constraint).is_err());
    }

    #[test]
    fn subranking_constructor_constrains_chain() {
        let sigma = Ranking::identity(4);
        let psi = SubRanking::new(vec![3, 0]).unwrap();
        let amp = AmpSampler::for_subranking(sigma, 0.2, &psi).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let tau = amp.sample(&mut rng);
            assert!(psi.is_consistent(&tau));
        }
    }
}
