//! Sub-rankings: total orders over a subset of the item universe.

use crate::{Item, Ranking, Result, RimError};
use std::collections::HashMap;

/// A sub-ranking `ψ`: a total order over a subset `A(ψ)` of the items.
///
/// Sub-rankings arise when a label pattern is decomposed into partial orders
/// and each partial order into its linear extensions (Section 5.2 of the
/// paper). They are also the conditioning events of the AMP-based importance
/// samplers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SubRanking {
    items: Vec<Item>,
}

impl SubRanking {
    /// Builds a sub-ranking from an ordered list of distinct items.
    pub fn new(items: Vec<Item>) -> Result<Self> {
        let mut seen = std::collections::HashSet::with_capacity(items.len());
        for &it in &items {
            if !seen.insert(it) {
                return Err(RimError::DuplicateItem(it));
            }
        }
        Ok(SubRanking { items })
    }

    /// An empty sub-ranking.
    pub fn empty() -> Self {
        SubRanking { items: Vec::new() }
    }

    /// The items of the sub-ranking in preference order (the paper's `A(ψ)`,
    /// ordered).
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Number of items in the sub-ranking.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the sub-ranking mentions no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` when the sub-ranking contains `item`.
    pub fn contains(&self, item: Item) -> bool {
        self.items.contains(&item)
    }

    /// Position of `item` within the sub-ranking, if present.
    pub fn position_of(&self, item: Item) -> Option<usize> {
        self.items.iter().position(|&i| i == item)
    }

    /// The sub-ranking `ψ^{i→j}` obtained by inserting `item` at 0-based
    /// position `pos` (Algorithm 5 / 6 notation).
    pub fn insert_at(&self, item: Item, pos: usize) -> Result<SubRanking> {
        if self.contains(item) {
            return Err(RimError::DuplicateItem(item));
        }
        let pos = pos.min(self.items.len());
        let mut items = Vec::with_capacity(self.items.len() + 1);
        items.extend_from_slice(&self.items[..pos]);
        items.push(item);
        items.extend_from_slice(&self.items[pos..]);
        Ok(SubRanking { items })
    }

    /// `true` when the complete ranking `τ` is consistent with this
    /// sub-ranking, i.e. contains all of its items in the same relative order
    /// (the paper's `τ |= ψ`).
    pub fn is_consistent(&self, ranking: &Ranking) -> bool {
        let mut prev: Option<usize> = None;
        for &item in &self.items {
            match ranking.position_of(item) {
                Some(pos) => {
                    if let Some(p) = prev {
                        if pos <= p {
                            return false;
                        }
                    }
                    prev = Some(pos);
                }
                None => return false,
            }
        }
        true
    }

    /// Converts the sub-ranking into a full [`Ranking`] (only meaningful when
    /// it actually covers all items the caller cares about).
    pub fn to_ranking(&self) -> Ranking {
        Ranking::new(self.items.clone()).expect("sub-ranking items are distinct")
    }

    /// Number of discordant pairs between this sub-ranking and a reference
    /// ranking `σ`, counted over the items present in the sub-ranking
    /// (pairs ordered one way here and the other way in `σ`). This is the
    /// notion of `dist(ψ, σ)` used by Algorithms 5 and 6 of the paper.
    pub fn discordant_pairs_with(&self, sigma: &Ranking) -> usize {
        let pos_in_sigma: HashMap<Item, usize> = self
            .items
            .iter()
            .filter_map(|&it| sigma.position_of(it).map(|p| (it, p)))
            .collect();
        let mut count = 0;
        for i in 0..self.items.len() {
            for j in (i + 1)..self.items.len() {
                let (a, b) = (self.items[i], self.items[j]);
                if let (Some(&pa), Some(&pb)) = (pos_in_sigma.get(&a), pos_in_sigma.get(&b)) {
                    if pa > pb {
                        count += 1;
                    }
                }
            }
        }
        count
    }
}

impl std::fmt::Display for SubRanking {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨")?;
        for (i, it) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{it}")?;
        }
        write!(f, "⟩*")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_duplicates() {
        assert!(SubRanking::new(vec![1, 2, 2]).is_err());
        assert!(SubRanking::new(vec![1, 2, 3]).is_ok());
    }

    #[test]
    fn consistency() {
        let tau = Ranking::new(vec![5, 3, 8, 1, 9]).unwrap();
        assert!(SubRanking::new(vec![5, 8, 9]).unwrap().is_consistent(&tau));
        assert!(SubRanking::new(vec![3, 1]).unwrap().is_consistent(&tau));
        assert!(!SubRanking::new(vec![8, 3]).unwrap().is_consistent(&tau));
        assert!(!SubRanking::new(vec![5, 42]).unwrap().is_consistent(&tau));
        assert!(SubRanking::empty().is_consistent(&tau));
    }

    #[test]
    fn insert_positions() {
        let psi = SubRanking::new(vec![1, 2]).unwrap();
        assert_eq!(psi.insert_at(7, 0).unwrap().items(), &[7, 1, 2]);
        assert_eq!(psi.insert_at(7, 1).unwrap().items(), &[1, 7, 2]);
        assert_eq!(psi.insert_at(7, 2).unwrap().items(), &[1, 2, 7]);
        assert_eq!(psi.insert_at(7, 99).unwrap().items(), &[1, 2, 7]);
        assert!(psi.insert_at(1, 0).is_err());
    }

    #[test]
    fn discordant_pairs() {
        let sigma = Ranking::new(vec![0, 1, 2, 3]).unwrap();
        // ψ = ⟨3, 0⟩ reverses one pair relative to σ.
        let psi = SubRanking::new(vec![3, 0]).unwrap();
        assert_eq!(psi.discordant_pairs_with(&sigma), 1);
        // ψ = ⟨2, 1, 0⟩ reverses all three pairs among {0,1,2}.
        let psi = SubRanking::new(vec![2, 1, 0]).unwrap();
        assert_eq!(psi.discordant_pairs_with(&sigma), 3);
        // Fully concordant.
        let psi = SubRanking::new(vec![0, 2, 3]).unwrap();
        assert_eq!(psi.discordant_pairs_with(&sigma), 0);
    }
}
