//! Greedy search for the modes ("modals") of a Mallows posterior conditioned
//! on a sub-ranking — Algorithms 5 and 6 of the paper.

use crate::{Ranking, SubRanking};

/// Distance `dist(ψ, σ)` between a sub-ranking and a reference ranking, used
/// while greedily growing sub-rankings in Algorithms 5 and 6: the number of
/// item pairs within `ψ` whose order disagrees with `σ`.
pub fn subranking_distance_to_center(psi: &SubRanking, sigma: &Ranking) -> usize {
    psi.discordant_pairs_with(sigma)
}

/// Algorithm 5 (`GreedyModals`): given a sub-ranking `ψ` and a Mallows centre
/// `σ`, greedily completes `ψ` into full rankings by inserting every missing
/// item of `σ` (in `σ` order) at all positions that minimise the distance to
/// `σ`, keeping every minimiser.
///
/// The completions approximate the modes of the Mallows posterior conditioned
/// on `ψ` — the rankings consistent with `ψ` that are closest to `σ`. The set
/// of minimisers can grow combinatorially, so the search is capped at `cap`
/// candidates (the paper keeps all of them; a cap of a few dozen preserves the
/// behaviour on the benchmark workloads and is configurable by callers).
pub fn greedy_modals(psi: &SubRanking, sigma: &Ranking, cap: usize) -> Vec<Ranking> {
    let cap = cap.max(1);
    let mut frontier: Vec<SubRanking> = vec![psi.clone()];
    for i in 0..sigma.len() {
        let item = sigma.item_at(i);
        if psi.contains(item) {
            continue;
        }
        let mut next: Vec<SubRanking> = Vec::new();
        for candidate in &frontier {
            let mut best = usize::MAX;
            let mut best_insertions: Vec<SubRanking> = Vec::new();
            for j in 0..=candidate.len() {
                let inserted = candidate
                    .insert_at(item, j)
                    .expect("item not yet in sub-ranking");
                let d = subranking_distance_to_center(&inserted, sigma);
                if d < best {
                    best = d;
                    best_insertions.clear();
                    best_insertions.push(inserted);
                } else if d == best {
                    best_insertions.push(inserted);
                }
            }
            next.extend(best_insertions);
        }
        next.sort_by(|a, b| a.items().cmp(b.items()));
        next.dedup();
        if next.len() > cap {
            // Keep the candidates closest to σ so the surviving completions
            // remain the best modes found so far.
            next.sort_by_key(|s| subranking_distance_to_center(s, sigma));
            next.truncate(cap);
        }
        frontier = next;
    }
    frontier.into_iter().map(|s| s.to_ranking()).collect()
}

/// Algorithm 6 (`ApproximateDistance`): estimates the Kendall-tau distance
/// between the Mallows centre `σ` and the *closest* completion of the
/// sub-ranking `ψ`, by greedily inserting each missing item at one
/// distance-minimising position. (Finding the true closest completion is
/// NP-hard, per the paper's reference to Brandenburg et al.)
pub fn approximate_distance(psi: &SubRanking, sigma: &Ranking) -> usize {
    let mut tau = psi.clone();
    for i in 0..sigma.len() {
        let item = sigma.item_at(i);
        if tau.contains(item) {
            continue;
        }
        let mut best = usize::MAX;
        let mut best_tau = None;
        for j in 0..=tau.len() {
            let inserted = tau.insert_at(item, j).expect("item not yet present");
            let d = subranking_distance_to_center(&inserted, sigma);
            if d < best {
                best = d;
                best_tau = Some(inserted);
            }
        }
        tau = best_tau.expect("at least one insertion position exists");
    }
    crate::kendall_tau(&tau.to_ranking(), sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MallowsModel;

    #[test]
    fn empty_subranking_completes_to_center() {
        let sigma = Ranking::identity(5);
        let modals = greedy_modals(&SubRanking::empty(), &sigma, 16);
        assert_eq!(modals, vec![sigma.clone()]);
        assert_eq!(approximate_distance(&SubRanking::empty(), &sigma), 0);
    }

    #[test]
    fn example_5_2_finds_both_modals() {
        // Example 5.1/5.2 of the paper: ψ = ⟨σ3, σ1⟩ over σ = ⟨σ1, σ2, σ3⟩
        // has two modals ⟨σ3, σ1, σ2⟩ and ⟨σ2, σ3, σ1⟩.
        let sigma = Ranking::new(vec![1, 2, 3]).unwrap();
        let psi = SubRanking::new(vec![3, 1]).unwrap();
        let mut modals = greedy_modals(&psi, &sigma, 16);
        modals.sort_by(|a, b| a.items().cmp(b.items()));
        assert_eq!(modals.len(), 2);
        assert_eq!(modals[0].items(), &[2, 3, 1]);
        assert_eq!(modals[1].items(), &[3, 1, 2]);
    }

    #[test]
    fn modals_are_consistent_and_minimal_distance() {
        let sigma = Ranking::identity(6);
        let psi = SubRanking::new(vec![5, 2, 0]).unwrap();
        let modals = greedy_modals(&psi, &sigma, 64);
        assert!(!modals.is_empty());
        // Every modal must be consistent with ψ.
        for modal in &modals {
            assert!(psi.is_consistent(modal));
        }
        // The greedy distance estimate should match the modal distances.
        let est = approximate_distance(&psi, &sigma);
        let mal = MallowsModel::new(sigma.clone(), 0.5).unwrap();
        for modal in &modals {
            assert_eq!(mal.distance_from_center(modal), est);
        }
        // Exhaustively verify no consistent completion is strictly closer.
        let best_exhaustive = Ranking::enumerate_all(sigma.items())
            .into_iter()
            .filter(|t| psi.is_consistent(t))
            .map(|t| mal.distance_from_center(&t))
            .min()
            .unwrap();
        assert!(est >= best_exhaustive);
        assert_eq!(est, best_exhaustive, "greedy is exact on this instance");
    }

    #[test]
    fn cap_limits_frontier() {
        let sigma = Ranking::identity(7);
        // A reversed pair far from σ generates several ties while completing.
        let psi = SubRanking::new(vec![6, 0]).unwrap();
        let capped = greedy_modals(&psi, &sigma, 2);
        assert!(capped.len() <= 2);
    }

    #[test]
    fn approximate_distance_of_reversed_pair() {
        let sigma = Ranking::identity(4);
        // ψ = ⟨3, 0⟩: the closest completion needs at least 3 inversions
        // (3 must pass 1 and 2 or 0 must drop below them).
        let psi = SubRanking::new(vec![3, 0]).unwrap();
        let est = approximate_distance(&psi, &sigma);
        let best = Ranking::enumerate_all(sigma.items())
            .into_iter()
            .filter(|t| psi.is_consistent(t))
            .map(|t| crate::kendall_tau(&t, &sigma))
            .min()
            .unwrap();
        assert_eq!(est, best);
    }
}
