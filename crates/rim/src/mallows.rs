//! The Mallows ranking model `MAL(σ, φ)`.

use crate::{kendall_tau, Ranking, Result, RimError, RimModel};
use rand::Rng;

/// The Mallows model `MAL(σ, φ)` with centre ranking `σ` and dispersion
/// `φ ∈ [0, 1]` (Mallows 1957; Section 2.2 of the paper).
///
/// The probability of a ranking `τ` is proportional to `φ^dist(σ, τ)` where
/// `dist` is the Kendall-tau distance. `φ = 0` concentrates all mass on `σ`
/// (we treat `0^0 = 1`), and `φ = 1` is the uniform distribution.
///
/// The model is realised as a special case of [`RimModel`] with
/// `Π(i, j) = φ^{i−j} / (1 + φ + … + φ^{i−1})` (1-based indices), which is the
/// classical equivalence of Doignon et al. used throughout the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct MallowsModel {
    sigma: Ranking,
    phi: f64,
}

impl MallowsModel {
    /// Creates a Mallows model; `phi` must lie in `[0, 1]`.
    pub fn new(sigma: Ranking, phi: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&phi) || phi.is_nan() {
            return Err(RimError::InvalidPhi(phi));
        }
        Ok(MallowsModel { sigma, phi })
    }

    /// The centre ranking `σ`.
    pub fn sigma(&self) -> &Ranking {
        &self.sigma
    }

    /// The dispersion parameter `φ`.
    pub fn phi(&self) -> f64 {
        self.phi
    }

    /// Number of items ranked by the model.
    pub fn num_items(&self) -> usize {
        self.sigma.len()
    }

    /// Converts the model into its equivalent repeated-insertion form.
    pub fn to_rim(&self) -> RimModel {
        let m = self.num_items();
        let mut pi = Vec::with_capacity(m);
        for i in 0..m {
            // Row i (0-based) has i+1 entries; weight of position j is φ^{i-j}.
            let mut row = Vec::with_capacity(i + 1);
            let mut total = 0.0;
            for j in 0..=i {
                let w = pow_phi(self.phi, i - j);
                row.push(w);
                total += w;
            }
            for w in &mut row {
                *w /= total;
            }
            pi.push(row);
        }
        RimModel::new(self.sigma.clone(), pi).expect("Mallows insertion rows are distributions")
    }

    /// The Mallows partition function
    /// `Z = Π_{k=1}^{m} (1 + φ + … + φ^{k−1})`.
    pub fn partition_function(&self) -> f64 {
        let mut z = 1.0;
        for k in 1..=self.num_items() {
            z *= geometric_sum(self.phi, k);
        }
        z
    }

    /// The exact probability of a complete ranking `τ` over the model's items:
    /// `φ^{dist(σ, τ)} / Z`. Returns 0 for rankings over a different item set.
    pub fn prob_of(&self, tau: &Ranking) -> f64 {
        if tau.len() != self.num_items() || !tau.items().iter().all(|&it| self.sigma.contains(it)) {
            return 0.0;
        }
        let d = kendall_tau(&self.sigma, tau);
        pow_phi(self.phi, d) / self.partition_function()
    }

    /// Natural log of [`MallowsModel::prob_of`]; `None` when the probability
    /// is zero.
    pub fn log_prob_of(&self, tau: &Ranking) -> Option<f64> {
        let p = self.prob_of(tau);
        if p > 0.0 {
            Some(p.ln())
        } else {
            None
        }
    }

    /// Kendall-tau distance of a ranking from the centre.
    pub fn distance_from_center(&self, tau: &Ranking) -> usize {
        kendall_tau(&self.sigma, tau)
    }

    /// Draws a random ranking via the repeated insertion procedure.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Ranking {
        self.to_rim().sample(rng)
    }

    /// Draws `n` random rankings (convenience wrapper around
    /// [`MallowsModel::sample`] that converts the model to RIM form once).
    pub fn sample_many<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Ranking> {
        let rim = self.to_rim();
        (0..n).map(|_| rim.sample(rng)).collect()
    }

    /// Re-centres the model on a different ranking, keeping `φ`. Used by the
    /// multiple-importance-sampling solvers, which build Mallows models
    /// centred at posterior modes.
    pub fn with_center(&self, sigma: Ranking) -> MallowsModel {
        MallowsModel {
            sigma,
            phi: self.phi,
        }
    }
}

/// `φ^k` with the convention `0^0 = 1` (needed for `φ = 0`).
pub(crate) fn pow_phi(phi: f64, k: usize) -> f64 {
    if k == 0 {
        1.0
    } else {
        phi.powi(k as i32)
    }
}

/// `1 + φ + … + φ^{k-1}`.
pub(crate) fn geometric_sum(phi: f64, k: usize) -> f64 {
    (0..k).map(|e| pow_phi(phi, e)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn phi_validation() {
        let sigma = Ranking::identity(3);
        assert!(MallowsModel::new(sigma.clone(), -0.1).is_err());
        assert!(MallowsModel::new(sigma.clone(), 1.1).is_err());
        assert!(MallowsModel::new(sigma.clone(), f64::NAN).is_err());
        assert!(MallowsModel::new(sigma, 0.5).is_ok());
    }

    #[test]
    fn probabilities_sum_to_one() {
        for &phi in &[0.0, 0.1, 0.5, 1.0] {
            let mal = MallowsModel::new(Ranking::identity(4), phi).unwrap();
            let total: f64 = Ranking::enumerate_all(&[0, 1, 2, 3])
                .iter()
                .map(|tau| mal.prob_of(tau))
                .sum();
            assert!((total - 1.0).abs() < 1e-9, "phi={phi}: total={total}");
        }
    }

    #[test]
    fn rim_form_agrees_with_direct_formula() {
        let mal = MallowsModel::new(Ranking::new(vec![3, 1, 4, 2]).unwrap(), 0.3).unwrap();
        let rim = mal.to_rim();
        for tau in Ranking::enumerate_all(&[1, 2, 3, 4]) {
            assert!(
                (mal.prob_of(&tau) - rim.prob_of(&tau)).abs() < 1e-12,
                "disagreement on {tau}"
            );
        }
    }

    #[test]
    fn phi_zero_concentrates_on_center() {
        let sigma = Ranking::new(vec![2, 0, 1]).unwrap();
        let mal = MallowsModel::new(sigma.clone(), 0.0).unwrap();
        assert!((mal.prob_of(&sigma) - 1.0).abs() < 1e-12);
        let other = Ranking::new(vec![0, 2, 1]).unwrap();
        assert_eq!(mal.prob_of(&other), 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            assert_eq!(mal.sample(&mut rng), sigma);
        }
    }

    #[test]
    fn phi_one_is_uniform() {
        let mal = MallowsModel::new(Ranking::identity(4), 1.0).unwrap();
        for tau in Ranking::enumerate_all(&[0, 1, 2, 3]) {
            assert!((mal.prob_of(&tau) - 1.0 / 24.0).abs() < 1e-12);
        }
    }

    #[test]
    fn closer_rankings_are_more_probable() {
        let mal = MallowsModel::new(Ranking::identity(5), 0.4).unwrap();
        let near = Ranking::new(vec![0, 1, 2, 4, 3]).unwrap();
        let far = Ranking::new(vec![4, 3, 2, 1, 0]).unwrap();
        assert!(mal.prob_of(&near) > mal.prob_of(&far));
        // Ratio equals φ^{Δdist}.
        let ratio = mal.prob_of(&far) / mal.prob_of(&near);
        let delta = mal.distance_from_center(&far) - mal.distance_from_center(&near);
        assert!((ratio - 0.4f64.powi(delta as i32)).abs() < 1e-12);
    }

    #[test]
    fn sampling_empirical_distance_decreases_with_phi() {
        let sigma = Ranking::identity(6);
        let mut rng = StdRng::seed_from_u64(11);
        let mean_dist = |phi: f64, rng: &mut StdRng| {
            let mal = MallowsModel::new(sigma.clone(), phi).unwrap();
            let n = 2000;
            mal.sample_many(n, rng)
                .iter()
                .map(|t| mal.distance_from_center(t) as f64)
                .sum::<f64>()
                / n as f64
        };
        let d_small = mean_dist(0.1, &mut rng);
        let d_large = mean_dist(0.9, &mut rng);
        assert!(d_small < d_large);
    }

    #[test]
    fn with_center_keeps_phi() {
        let mal = MallowsModel::new(Ranking::identity(3), 0.25).unwrap();
        let re = mal.with_center(Ranking::new(vec![2, 1, 0]).unwrap());
        assert_eq!(re.phi(), 0.25);
        assert_eq!(re.sigma().items(), &[2, 1, 0]);
    }
}
