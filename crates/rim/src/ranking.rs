//! Complete rankings (linear orders / permutations) over a set of items.

use crate::{Item, Result, RimError};
use std::collections::HashMap;

/// A complete ranking (linear order) over a finite set of items.
///
/// `τ = ⟨τ_1, …, τ_m⟩` places item `τ_i` at rank `i`. Internally positions are
/// 0-based: `items()[0]` is the most-preferred item. The type maintains an
/// inverse index so that [`Ranking::position_of`] is O(1).
#[derive(Debug, Clone)]
pub struct Ranking {
    items: Vec<Item>,
    positions: HashMap<Item, usize>,
}

impl PartialEq for Ranking {
    fn eq(&self, other: &Self) -> bool {
        self.items == other.items
    }
}

impl Eq for Ranking {}

impl std::hash::Hash for Ranking {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.items.hash(state);
    }
}

impl serde::Serialize for Ranking {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        self.items.serialize(serializer)
    }
}

impl<'de> serde::Deserialize<'de> for Ranking {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        let items = Vec::<Item>::deserialize(deserializer)?;
        Ranking::new(items).map_err(serde::de::Error::custom)
    }
}

impl Ranking {
    /// Builds a ranking from a sequence of items, validating that no item is
    /// repeated.
    pub fn new(items: Vec<Item>) -> Result<Self> {
        let mut positions = HashMap::with_capacity(items.len());
        for (pos, &item) in items.iter().enumerate() {
            if positions.insert(item, pos).is_some() {
                return Err(RimError::DuplicateItem(item));
            }
        }
        Ok(Ranking { items, positions })
    }

    /// Replaces the ranking's contents in place, reusing both the item
    /// vector and the position-index allocation — the buffer-reuse primitive
    /// of the sampling hot loops. On a duplicate item the ranking is left
    /// empty (never inconsistent) and the error is returned.
    pub fn assign(&mut self, items: &[Item]) -> Result<()> {
        self.items.clear();
        self.positions.clear();
        for (pos, &item) in items.iter().enumerate() {
            if self.positions.insert(item, pos).is_some() {
                self.items.clear();
                self.positions.clear();
                return Err(RimError::DuplicateItem(item));
            }
        }
        self.items.extend_from_slice(items);
        Ok(())
    }

    /// Builds the identity ranking `⟨0, 1, …, m-1⟩` over `m` items.
    pub fn identity(m: usize) -> Self {
        let items: Vec<Item> = (0..m as Item).collect();
        Ranking::new(items).expect("identity ranking has no duplicates")
    }

    /// Number of items in the ranking.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the ranking contains no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The items in rank order (most preferred first).
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// The item at 0-based position `pos` (the paper's `τ(i)` with `i = pos+1`).
    pub fn item_at(&self, pos: usize) -> Item {
        self.items[pos]
    }

    /// The 0-based position of `item` (the paper's `τ⁻¹(item) − 1`), or `None`
    /// if the item does not appear in the ranking.
    pub fn position_of(&self, item: Item) -> Option<usize> {
        self.positions.get(&item).copied()
    }

    /// `true` when the ranking contains `item`.
    pub fn contains(&self, item: Item) -> bool {
        self.positions.contains_key(&item)
    }

    /// `true` when `a` is (strictly) preferred to `b` in this ranking.
    /// Returns `false` when either item is missing.
    pub fn prefers(&self, a: Item, b: Item) -> bool {
        match (self.position_of(a), self.position_of(b)) {
            (Some(pa), Some(pb)) => pa < pb,
            _ => false,
        }
    }

    /// The truncated ranking `τ^k` containing only the first `k` items.
    pub fn truncate(&self, k: usize) -> Ranking {
        Ranking::new(self.items[..k.min(self.items.len())].to_vec())
            .expect("prefix of a valid ranking is valid")
    }

    /// Restricts the ranking to the given items, preserving their relative
    /// order. Items not present in the ranking are ignored.
    pub fn project(&self, subset: &[Item]) -> Vec<Item> {
        let wanted: std::collections::HashSet<Item> = subset.iter().copied().collect();
        self.items
            .iter()
            .copied()
            .filter(|it| wanted.contains(it))
            .collect()
    }

    /// Inserts `item` at 0-based position `pos`, shifting later items down by
    /// one rank. This is the elementary step of the repeated insertion model.
    pub fn insert_at(&self, item: Item, pos: usize) -> Result<Ranking> {
        if self.contains(item) {
            return Err(RimError::DuplicateItem(item));
        }
        let mut items = Vec::with_capacity(self.items.len() + 1);
        items.extend_from_slice(&self.items[..pos]);
        items.push(item);
        items.extend_from_slice(&self.items[pos..]);
        Ranking::new(items)
    }

    /// Removes `item` from the ranking (if present), preserving the order of
    /// the remaining items.
    pub fn remove(&self, item: Item) -> Ranking {
        let items: Vec<Item> = self.items.iter().copied().filter(|&i| i != item).collect();
        Ranking::new(items).expect("removing an item cannot create duplicates")
    }

    /// Enumerates all `m!` rankings over the given items. Intended for tests
    /// and the brute-force reference solver; panics if `items.len() > 10`
    /// to guard against accidental combinatorial explosions.
    pub fn enumerate_all(items: &[Item]) -> Vec<Ranking> {
        assert!(
            items.len() <= 10,
            "refusing to enumerate {}! rankings",
            items.len()
        );
        let mut result = Vec::new();
        let mut current: Vec<Item> = Vec::with_capacity(items.len());
        let mut remaining: Vec<Item> = items.to_vec();
        fn recurse(current: &mut Vec<Item>, remaining: &mut Vec<Item>, out: &mut Vec<Ranking>) {
            if remaining.is_empty() {
                out.push(Ranking::new(current.clone()).expect("permutation is valid"));
                return;
            }
            for idx in 0..remaining.len() {
                let item = remaining.remove(idx);
                current.push(item);
                recurse(current, remaining, out);
                current.pop();
                remaining.insert(idx, item);
            }
        }
        recurse(&mut current, &mut remaining, &mut result);
        result
    }
}

impl std::fmt::Display for Ranking {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨")?;
        for (i, it) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{it}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_duplicates() {
        assert_eq!(
            Ranking::new(vec![1, 2, 1]).unwrap_err(),
            RimError::DuplicateItem(1)
        );
    }

    #[test]
    fn assign_reuses_and_validates() {
        let mut r = Ranking::new(vec![9, 4]).unwrap();
        r.assign(&[2, 0, 1]).unwrap();
        assert_eq!(r.items(), &[2, 0, 1]);
        assert_eq!(r.position_of(0), Some(1));
        assert_eq!(r.position_of(9), None);
        assert_eq!(r, Ranking::new(vec![2, 0, 1]).unwrap());
        // A duplicate leaves the ranking empty, not inconsistent.
        assert_eq!(r.assign(&[3, 3]).unwrap_err(), RimError::DuplicateItem(3));
        assert!(r.is_empty());
        assert_eq!(r.position_of(3), None);
    }

    #[test]
    fn identity_positions() {
        let r = Ranking::identity(4);
        assert_eq!(r.len(), 4);
        for i in 0..4u32 {
            assert_eq!(r.position_of(i), Some(i as usize));
            assert_eq!(r.item_at(i as usize), i);
        }
        assert_eq!(r.position_of(99), None);
    }

    #[test]
    fn prefers_and_contains() {
        let r = Ranking::new(vec![3, 1, 2]).unwrap();
        assert!(r.prefers(3, 2));
        assert!(r.prefers(1, 2));
        assert!(!r.prefers(2, 3));
        assert!(!r.prefers(3, 99));
        assert!(r.contains(1));
        assert!(!r.contains(0));
    }

    #[test]
    fn truncate_and_project() {
        let r = Ranking::new(vec![5, 3, 8, 1]).unwrap();
        assert_eq!(r.truncate(2).items(), &[5, 3]);
        assert_eq!(r.truncate(10).items(), &[5, 3, 8, 1]);
        assert_eq!(r.project(&[1, 8, 42]), vec![8, 1]);
        assert_eq!(r.project(&[]), Vec::<Item>::new());
    }

    #[test]
    fn insert_and_remove() {
        let r = Ranking::new(vec![1, 2]).unwrap();
        let r2 = r.insert_at(7, 1).unwrap();
        assert_eq!(r2.items(), &[1, 7, 2]);
        assert!(r.insert_at(1, 0).is_err());
        let r3 = r2.remove(7);
        assert_eq!(r3.items(), r.items());
        let r4 = r2.remove(99);
        assert_eq!(r4.items(), r2.items());
    }

    #[test]
    fn enumerate_all_counts() {
        let all = Ranking::enumerate_all(&[1, 2, 3, 4]);
        assert_eq!(all.len(), 24);
        let unique: std::collections::HashSet<Vec<Item>> =
            all.iter().map(|r| r.items().to_vec()).collect();
        assert_eq!(unique.len(), 24);
    }

    #[test]
    fn display_is_readable() {
        let r = Ranking::new(vec![2, 0, 1]).unwrap();
        assert_eq!(format!("{r}"), "⟨2, 0, 1⟩");
    }
}
