//! Mixtures of Mallows models.
//!
//! The paper's MovieLens and CrowdRank experiments consume Mallows mixtures
//! learned by an external tool (Stoyanovich et al., WebDB 2016). This module
//! provides the mixture representation those experiments need, plus a simple
//! Lloyd-style fitting procedure that stands in for the external learner when
//! generating the synthetic MovieLens/CrowdRank-like datasets.

use crate::{kendall_tau, Item, MallowsModel, Ranking, Result, RimError};
use rand::Rng;
use std::collections::HashMap;

/// One component of a Mallows mixture: a mixing weight and a Mallows model.
#[derive(Debug, Clone)]
pub struct MixtureComponent {
    /// Mixing weight in `[0, 1]`; weights of a mixture sum to 1.
    pub weight: f64,
    /// The component's Mallows model.
    pub model: MallowsModel,
}

/// A finite mixture of Mallows models over a common item universe.
#[derive(Debug, Clone)]
pub struct MallowsMixture {
    components: Vec<MixtureComponent>,
}

impl MallowsMixture {
    /// Builds a mixture, validating that there is at least one component,
    /// that weights are non-negative and sum to 1, and that all components
    /// rank the same number of items.
    pub fn new(components: Vec<MixtureComponent>) -> Result<Self> {
        if components.is_empty() {
            return Err(RimError::InvalidMixture("no components".into()));
        }
        let total: f64 = components.iter().map(|c| c.weight).sum();
        if components.iter().any(|c| c.weight < 0.0) || (total - 1.0).abs() > 1e-6 {
            return Err(RimError::InvalidMixture(format!(
                "weights must be non-negative and sum to 1 (sum = {total})"
            )));
        }
        let m = components[0].model.num_items();
        if components.iter().any(|c| c.model.num_items() != m) {
            return Err(RimError::InvalidMixture(
                "components rank different numbers of items".into(),
            ));
        }
        Ok(MallowsMixture { components })
    }

    /// Builds a mixture with uniform weights.
    pub fn uniform(models: Vec<MallowsModel>) -> Result<Self> {
        let k = models.len();
        if k == 0 {
            return Err(RimError::InvalidMixture("no components".into()));
        }
        MallowsMixture::new(
            models
                .into_iter()
                .map(|model| MixtureComponent {
                    weight: 1.0 / k as f64,
                    model,
                })
                .collect(),
        )
    }

    /// The mixture components.
    pub fn components(&self) -> &[MixtureComponent] {
        &self.components
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Number of items ranked by the mixture.
    pub fn num_items(&self) -> usize {
        self.components[0].model.num_items()
    }

    /// Probability of a complete ranking under the mixture.
    pub fn prob_of(&self, tau: &Ranking) -> f64 {
        self.components
            .iter()
            .map(|c| c.weight * c.model.prob_of(tau))
            .sum()
    }

    /// Draws a component index according to the mixing weights.
    pub fn sample_component<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let weights: Vec<f64> = self.components.iter().map(|c| c.weight).collect();
        crate::rim::sample_index(&weights, rng)
    }

    /// Draws a random ranking from the mixture.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Ranking {
        let idx = self.sample_component(rng);
        self.components[idx].model.sample(rng)
    }

    /// Fits a `k`-component mixture to observed complete rankings with a
    /// simple hard-assignment (Lloyd-style) procedure:
    ///
    /// 1. initialise centres from `k` distinct observed rankings;
    /// 2. assign each ranking to the nearest centre (Kendall-tau);
    /// 3. re-estimate each centre by Borda aggregation of its cluster and its
    ///    dispersion by moment-matching the mean Kendall distance;
    /// 4. repeat for `iterations` rounds.
    ///
    /// This is a pragmatic substitute for the external mixture learner used in
    /// the paper; it produces mixtures with the statistical structure the
    /// downstream experiments require (several well-separated centres with
    /// per-cluster dispersions).
    pub fn fit<R: Rng + ?Sized>(
        rankings: &[Ranking],
        k: usize,
        iterations: usize,
        rng: &mut R,
    ) -> Result<Self> {
        if rankings.is_empty() || k == 0 {
            return Err(RimError::InvalidMixture(
                "need at least one ranking and one component".into(),
            ));
        }
        let m = rankings[0].len();
        if rankings.iter().any(|r| r.len() != m) {
            return Err(RimError::InvalidMixture(
                "rankings have inconsistent lengths".into(),
            ));
        }
        let k = k.min(rankings.len());
        // Initialise centres from random distinct observations.
        let mut centers: Vec<Ranking> = Vec::with_capacity(k);
        let mut tries = 0;
        while centers.len() < k && tries < 50 * k {
            let cand = rankings[rng.gen_range(0..rankings.len())].clone();
            if !centers.contains(&cand) {
                centers.push(cand);
            }
            tries += 1;
        }
        while centers.len() < k {
            centers.push(rankings[centers.len() % rankings.len()].clone());
        }

        let mut assignment: Vec<usize> = vec![0; rankings.len()];
        for _ in 0..iterations.max(1) {
            // Assignment step.
            for (ri, r) in rankings.iter().enumerate() {
                let mut best = 0;
                let mut best_d = usize::MAX;
                for (ci, c) in centers.iter().enumerate() {
                    let d = kendall_tau(r, c);
                    if d < best_d {
                        best_d = d;
                        best = ci;
                    }
                }
                assignment[ri] = best;
            }
            // Update step.
            for (ci, center) in centers.iter_mut().enumerate() {
                let cluster: Vec<&Ranking> = rankings
                    .iter()
                    .zip(&assignment)
                    .filter(|(_, &a)| a == ci)
                    .map(|(r, _)| r)
                    .collect();
                if cluster.is_empty() {
                    continue;
                }
                *center = borda_center(&cluster);
            }
        }

        // Build the final components.
        let mut components = Vec::with_capacity(centers.len());
        for (ci, center) in centers.iter().enumerate() {
            let cluster: Vec<&Ranking> = rankings
                .iter()
                .zip(&assignment)
                .filter(|(_, &a)| a == ci)
                .map(|(r, _)| r)
                .collect();
            if cluster.is_empty() {
                continue;
            }
            let mean_dist = cluster
                .iter()
                .map(|r| kendall_tau(r, center) as f64)
                .sum::<f64>()
                / cluster.len() as f64;
            let phi = fit_phi_by_mean_distance(m, mean_dist);
            components.push(MixtureComponent {
                weight: cluster.len() as f64 / rankings.len() as f64,
                model: MallowsModel::new(center.clone(), phi)?,
            });
        }
        MallowsMixture::new(components)
    }
}

/// Borda aggregation: orders items by their average position in the cluster.
fn borda_center(cluster: &[&Ranking]) -> Ranking {
    let mut totals: HashMap<Item, (usize, usize)> = HashMap::new();
    for r in cluster {
        for (pos, &item) in r.items().iter().enumerate() {
            let e = totals.entry(item).or_insert((0, 0));
            e.0 += pos;
            e.1 += 1;
        }
    }
    let mut scored: Vec<(Item, f64)> = totals
        .into_iter()
        .map(|(item, (sum, n))| (item, sum as f64 / n as f64))
        .collect();
    scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    Ranking::new(scored.into_iter().map(|(item, _)| item).collect())
        .expect("each item appears once per ranking")
}

/// Expected Kendall-tau distance from the centre under `MAL(·, φ)` with `m`
/// items, derived from the insertion view: step `i` contributes the mean of
/// `0..i` weighted by `φ^k`.
pub fn expected_kendall_distance(m: usize, phi: f64) -> f64 {
    let mut total = 0.0;
    for i in 1..m {
        // Inserting the (i+1)-th item creates j displacements with weight φ^j.
        let mut num = 0.0;
        let mut den = 0.0;
        for j in 0..=i {
            let w = if j == 0 { 1.0 } else { phi.powi(j as i32) };
            num += j as f64 * w;
            den += w;
        }
        total += num / den;
    }
    total
}

/// Finds `φ` whose expected Kendall distance matches the observed mean, by
/// bisection over `[0, 1]`.
fn fit_phi_by_mean_distance(m: usize, mean_dist: f64) -> f64 {
    if mean_dist <= 1e-9 {
        return 0.0;
    }
    let max_expected = expected_kendall_distance(m, 1.0);
    if mean_dist >= max_expected {
        return 1.0;
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if expected_kendall_distance(m, mid) < mean_dist {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mixture_validation() {
        let m1 = MallowsModel::new(Ranking::identity(3), 0.2).unwrap();
        let m2 = MallowsModel::new(Ranking::identity(4), 0.2).unwrap();
        assert!(MallowsMixture::new(vec![]).is_err());
        assert!(MallowsMixture::new(vec![
            MixtureComponent {
                weight: 0.7,
                model: m1.clone()
            },
            MixtureComponent {
                weight: 0.7,
                model: m1.clone()
            },
        ])
        .is_err());
        assert!(MallowsMixture::new(vec![
            MixtureComponent {
                weight: 0.5,
                model: m1.clone()
            },
            MixtureComponent {
                weight: 0.5,
                model: m2
            },
        ])
        .is_err());
        assert!(MallowsMixture::uniform(vec![m1.clone(), m1]).is_ok());
    }

    #[test]
    fn mixture_probabilities_sum_to_one() {
        let m1 = MallowsModel::new(Ranking::identity(4), 0.2).unwrap();
        let m2 = MallowsModel::new(Ranking::new(vec![3, 2, 1, 0]).unwrap(), 0.6).unwrap();
        let mix = MallowsMixture::new(vec![
            MixtureComponent {
                weight: 0.3,
                model: m1,
            },
            MixtureComponent {
                weight: 0.7,
                model: m2,
            },
        ])
        .unwrap();
        let total: f64 = Ranking::enumerate_all(&[0, 1, 2, 3])
            .iter()
            .map(|t| mix.prob_of(t))
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn expected_distance_monotone_in_phi() {
        let d1 = expected_kendall_distance(10, 0.1);
        let d2 = expected_kendall_distance(10, 0.5);
        let d3 = expected_kendall_distance(10, 1.0);
        assert!(d1 < d2 && d2 < d3);
        // Uniform case: expected distance is m(m-1)/4.
        assert!((d3 - 10.0 * 9.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn fit_recovers_two_well_separated_clusters() {
        let mut rng = StdRng::seed_from_u64(17);
        let c1 = MallowsModel::new(Ranking::identity(6), 0.2).unwrap();
        let c2 = MallowsModel::new(Ranking::new(vec![5, 4, 3, 2, 1, 0]).unwrap(), 0.2).unwrap();
        let mut data = c1.sample_many(150, &mut rng);
        data.extend(c2.sample_many(150, &mut rng));
        let mix = MallowsMixture::fit(&data, 2, 5, &mut rng).unwrap();
        assert_eq!(mix.num_components(), 2);
        // Each fitted centre should be close to one of the true centres.
        for comp in mix.components() {
            let d1 = kendall_tau(comp.model.sigma(), c1.sigma());
            let d2 = kendall_tau(comp.model.sigma(), c2.sigma());
            assert!(d1.min(d2) <= 3, "fitted centre too far from both truths");
            assert!(comp.weight > 0.3 && comp.weight < 0.7);
        }
    }

    #[test]
    fn sampling_uses_all_components() {
        let mut rng = StdRng::seed_from_u64(2);
        let m1 = MallowsModel::new(Ranking::identity(5), 0.0).unwrap();
        let m2 = MallowsModel::new(Ranking::new(vec![4, 3, 2, 1, 0]).unwrap(), 0.0).unwrap();
        let mix = MallowsMixture::uniform(vec![m1, m2]).unwrap();
        let mut seen_first = false;
        let mut seen_second = false;
        for _ in 0..100 {
            let t = mix.sample(&mut rng);
            if t.items() == [0, 1, 2, 3, 4] {
                seen_first = true;
            }
            if t.items() == [4, 3, 2, 1, 0] {
                seen_second = true;
            }
        }
        assert!(seen_first && seen_second);
    }
}
