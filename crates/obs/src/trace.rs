//! Per-submission tracing: a trace id assigned at the wire/service
//! boundary, span events recorded as the submission moves through
//! admission, wave formation, unit solving, and delivery, all held in one
//! bounded ring buffer queryable per trace id.
//!
//! Recording takes a short mutex on the ring — tracing sits on the
//! per-query path (a handful of events per submission), not the per-sample
//! metrics path, so a lock is fine and keeps eviction exact. Ids are
//! always assigned, even with tracing off, so wire responses keep a stable
//! shape; sampling only decides whether events are *recorded*.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Which submissions record span events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// No submission records events.
    Off,
    /// Every submission records events.
    All,
    /// Every `n`-th trace id records events (deterministic in the id, so a
    /// given submission's fate doesn't depend on thread timing).
    SampleEvery(u64),
}

/// One step of a submission's journey. Times are microseconds relative to
/// the span that started the trace, except where the event carries its own
/// duration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanEvent {
    /// The service accepted the submission into an admission lane.
    Admitted {
        tenant: String,
        class: &'static str,
        depth: usize,
    },
    /// The submission's ticket joined a formed wave: how many work units
    /// the wave holds in total, how many this submission depends on, and
    /// how many of those were already cached.
    WaveJoined {
        wave_units: usize,
        units: usize,
        cached: usize,
    },
    /// One of the submission's work units was solved (not cache-served).
    UnitSolved {
        unit_hash: u64,
        solver: &'static str,
        micros: u64,
    },
    /// The answer reached the ticket, `micros` after the trace started.
    Delivered { micros: u64 },
    /// The deadline passed before delivery.
    Expired { micros: u64 },
    /// The submission was cancelled (ticket dropped / explicit cancel).
    Cancelled { micros: u64 },
    /// Evaluation failed; `error_kind` is the stable per-variant name.
    Failed {
        error_kind: &'static str,
        micros: u64,
    },
}

impl SpanEvent {
    /// The stable lowercase event name used in wire exposition.
    pub fn name(&self) -> &'static str {
        match self {
            SpanEvent::Admitted { .. } => "admitted",
            SpanEvent::WaveJoined { .. } => "wave-joined",
            SpanEvent::UnitSolved { .. } => "unit-solved",
            SpanEvent::Delivered { .. } => "delivered",
            SpanEvent::Expired { .. } => "expired",
            SpanEvent::Cancelled { .. } => "cancelled",
            SpanEvent::Failed { .. } => "failed",
        }
    }

    /// Whether this event ends a trace (no further events expected).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            SpanEvent::Delivered { .. }
                | SpanEvent::Expired { .. }
                | SpanEvent::Cancelled { .. }
                | SpanEvent::Failed { .. }
        )
    }
}

/// One recorded event: which trace, a global sequence number (total order
/// across all traces), when relative to the log's epoch, and what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    pub trace: u64,
    pub seq: u64,
    pub at_micros: u64,
    pub event: SpanEvent,
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<SpanRecord>,
    seq: u64,
}

/// The bounded span ring. Shared (`Arc`) between the service front door,
/// the engine, and the wire layer.
#[derive(Debug)]
pub struct TraceLog {
    mode: TraceMode,
    capacity: usize,
    next_id: AtomicU64,
    epoch: Instant,
    ring: Mutex<Ring>,
}

impl TraceLog {
    pub fn new(mode: TraceMode, capacity: usize) -> Self {
        TraceLog {
            mode,
            capacity,
            next_id: AtomicU64::new(1),
            epoch: Instant::now(),
            ring: Mutex::new(Ring {
                events: VecDeque::new(),
                seq: 0,
            }),
        }
    }

    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// Assigns the next trace id. Ids are never 0 (0 means "untraced" in
    /// carriers that default it) and are assigned regardless of mode.
    pub fn assign(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Whether events for `trace` are recorded under the current mode.
    pub fn traced(&self, trace: u64) -> bool {
        if trace == 0 {
            return false;
        }
        match self.mode {
            TraceMode::Off => false,
            TraceMode::All => true,
            TraceMode::SampleEvery(n) => trace.is_multiple_of(n.max(1)),
        }
    }

    /// Microseconds since the log was created (the timeline's time base).
    pub fn now_micros(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Records `event` for `trace` if it is sampled. Oldest events fall
    /// off when the ring is full.
    pub fn record(&self, trace: u64, event: SpanEvent) {
        if !self.traced(trace) || self.capacity == 0 {
            return;
        }
        let at_micros = self.now_micros();
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        ring.seq += 1;
        let seq = ring.seq;
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
        }
        ring.events.push_back(SpanRecord {
            trace,
            seq,
            at_micros,
            event,
        });
    }

    /// All still-buffered events for `trace`, in recording order.
    pub fn events(&self, trace: u64) -> Vec<SpanRecord> {
        let ring = self.ring.lock().expect("trace ring poisoned");
        ring.events
            .iter()
            .filter(|r| r.trace == trace)
            .cloned()
            .collect()
    }

    /// Every buffered event, in recording order (for stats dumps).
    pub fn all_events(&self) -> Vec<SpanRecord> {
        let ring = self.ring.lock().expect("trace ring poisoned");
        ring.events.iter().cloned().collect()
    }

    /// Total events recorded since creation (monotone; not bounded by
    /// capacity).
    pub fn recorded(&self) -> u64 {
        self.ring.lock().expect("trace ring poisoned").seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assigns_distinct_nonzero_ids() {
        let log = TraceLog::new(TraceMode::All, 16);
        let a = log.assign();
        let b = log.assign();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn records_and_queries_per_trace() {
        let log = TraceLog::new(TraceMode::All, 16);
        let t1 = log.assign();
        let t2 = log.assign();
        log.record(
            t1,
            SpanEvent::Admitted {
                tenant: "a".into(),
                class: "interactive",
                depth: 1,
            },
        );
        log.record(t2, SpanEvent::Delivered { micros: 5 });
        log.record(t1, SpanEvent::Delivered { micros: 9 });
        let events = log.events(t1);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].event.name(), "admitted");
        assert_eq!(events[1].event.name(), "delivered");
        assert!(events[0].seq < events[1].seq);
        assert!(events[1].event.is_terminal());
        assert_eq!(log.events(t2).len(), 1);
        assert_eq!(log.recorded(), 3);
    }

    #[test]
    fn ring_is_bounded_and_drops_oldest() {
        let log = TraceLog::new(TraceMode::All, 4);
        let t = log.assign();
        for i in 0..10 {
            log.record(t, SpanEvent::Delivered { micros: i });
        }
        let events = log.events(t);
        assert_eq!(events.len(), 4, "capacity bounds the ring");
        assert!(
            matches!(events[0].event, SpanEvent::Delivered { micros: 6 }),
            "oldest fell off"
        );
        assert_eq!(log.recorded(), 10, "monotone count unaffected");
    }

    #[test]
    fn off_and_sampled_modes() {
        let off = TraceLog::new(TraceMode::Off, 16);
        let t = off.assign();
        off.record(t, SpanEvent::Delivered { micros: 1 });
        assert!(off.events(t).is_empty());
        assert!(!off.traced(t));

        let sampled = TraceLog::new(TraceMode::SampleEvery(3), 16);
        assert!(!sampled.traced(1));
        assert!(sampled.traced(3));
        assert!(!sampled.traced(4));
        assert!(sampled.traced(6));
        assert!(!sampled.traced(0), "0 is the untraced sentinel");
    }
}
