//! The metrics registry: named, labelled instruments whose recordings are
//! relaxed atomic operations, rendered on demand as Prometheus-style text.
//!
//! Registration (naming an instrument, attaching labels) takes a short
//! mutex hold and returns a cloneable handle; the hot path only ever
//! touches the handle, which is an `Arc` of atomics plus an `enabled` flag
//! — no lock, no allocation. Registering the same `(name, labels)` twice
//! returns a handle to the *same* underlying cells, so e.g. a tenant's
//! retiring budget engines keep aggregating into the tenant's counters.
//!
//! Histograms are log-bucketed with linear sub-buckets (32 per octave, so
//! bucket boundaries are within ~3.2% of any recorded value) — the same
//! resolution HdrHistogram-style recorders use. One implementation serves
//! both the served `metrics` exposition and the bench harnesses' latency
//! percentiles.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Scale factor rendering nanosecond-recorded histograms as seconds in the
/// exposition (`le` boundaries and `_sum` follow Prometheus convention).
pub const SECONDS_PER_NANO: f64 = 1e-9;

/// Sub-bucket resolution: `1 << SUB_BITS` linear sub-buckets per octave.
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range at that resolution.
const N_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB as usize;

/// Index of the log-linear bucket containing `v`. Values below [`SUB`] get
/// exact unit buckets; above, the top [`SUB_BITS`]+1 significant bits pick
/// the bucket, so relative quantization error is at most `1/SUB`.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let e = 63 - v.leading_zeros();
    let mantissa = (v >> (e - SUB_BITS)) & (SUB - 1);
    ((e - SUB_BITS + 1) as usize) * SUB as usize + mantissa as usize
}

/// The largest value falling into bucket `index` (the Prometheus `le`
/// boundary, and what quantile lookups report).
fn bucket_upper(index: usize) -> u64 {
    if index < SUB as usize {
        return index as u64;
    }
    let block = (index / SUB as usize) as u32;
    let mantissa = (index % SUB as usize) as u128;
    let e = block + SUB_BITS - 1;
    // The top bucket's bound exceeds u64::MAX; saturate via u128.
    let upper = ((SUB as u128 + mantissa + 1) << (e - SUB_BITS)) - 1;
    u64::try_from(upper).unwrap_or(u64::MAX)
}

/// A monotone event counter. Cloning shares the cell.
#[derive(Debug, Clone)]
pub struct Counter {
    on: bool,
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// An unregistered, always-on counter (for tests and ad-hoc use).
    pub fn standalone() -> Self {
        Counter {
            on: true,
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A permanently disabled handle: every recording is a branch-and-skip.
    pub fn noop() -> Self {
        Counter {
            on: false,
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if self.on {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A current-level gauge (queue depths, in-flight waves).
#[derive(Debug, Clone)]
pub struct Gauge {
    on: bool,
    cell: Arc<AtomicI64>,
}

impl Gauge {
    pub fn standalone() -> Self {
        Gauge {
            on: true,
            cell: Arc::new(AtomicI64::new(0)),
        }
    }

    pub fn noop() -> Self {
        Gauge {
            on: false,
            cell: Arc::new(AtomicI64::new(0)),
        }
    }

    #[inline]
    pub fn set(&self, v: i64) {
        if self.on {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn add(&self, d: i64) {
        if self.on {
            self.cell.fetch_add(d, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCells {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A log-bucketed histogram of `u64` samples (typically nanoseconds).
/// Recording is three relaxed atomic ops; quantiles are nearest-rank over
/// the bucket counts, reported as the containing bucket's upper bound
/// (within ~3.2% of the true order statistic).
#[derive(Debug, Clone)]
pub struct Histogram {
    on: bool,
    cells: Arc<HistogramCells>,
}

impl Histogram {
    pub fn standalone() -> Self {
        Histogram {
            on: true,
            cells: Arc::new(HistogramCells {
                buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }

    pub fn noop() -> Self {
        let mut h = Histogram::standalone();
        h.on = false;
        h
    }

    #[inline]
    pub fn record(&self, v: u64) {
        if !self.on {
            return;
        }
        self.cells.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.cells.count.fetch_add(1, Ordering::Relaxed);
        self.cells.sum.fetch_add(v, Ordering::Relaxed);
        self.cells.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a `Duration` in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        if self.on {
            self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    pub fn count(&self) -> u64 {
        self.cells.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.cells.sum.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        self.cells.max.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            f64::NAN
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The `q`-quantile (`0 < q ≤ 1`) by nearest rank: the upper bound of
    /// the bucket holding the `⌈q·n⌉`-th smallest sample. `NaN`-free: an
    /// empty histogram reports `0`.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (index, bucket) in self.cells.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // Report no more than the observed maximum: the top bucket's
                // upper bound can overshoot a sparse tail by the bucket
                // width.
                return bucket_upper(index).min(self.max());
            }
        }
        self.max()
    }

    /// Convenience for latency reporting: the `p`-th percentile (0–100) of
    /// nanosecond samples, in milliseconds.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        self.quantile(p / 100.0) as f64 * 1e-6
    }

    /// Non-empty `(upper_bound, cumulative_count)` pairs in ascending
    /// order, ending at the bucket containing the maximum sample.
    fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (index, bucket) in self.cells.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                cum += n;
                out.push((bucket_upper(index), cum));
            }
        }
        out
    }
}

/// What one registered name is: its type line and its per-label-set cells.
#[derive(Debug)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    /// The scale maps recorded `u64`s to exposition units (e.g.
    /// [`SECONDS_PER_NANO`] for nanosecond recordings exposed as seconds,
    /// `1.0` for plain counts like wave sizes).
    Histogram(Histogram, f64),
}

#[derive(Debug, Default)]
struct Family {
    help: String,
    kind: &'static str,
    /// Label set (sorted `key=value` pairs) → instrument.
    series: BTreeMap<Vec<(String, String)>, Instrument>,
}

/// The instrument registry. Cheap to share (`Arc`); registration is locked,
/// recording is not (handles are resolved once and then lock-free).
#[derive(Debug)]
pub struct Registry {
    enabled: bool,
    families: Mutex<BTreeMap<String, Family>>,
}

impl Registry {
    pub fn new(enabled: bool) -> Self {
        Registry {
            enabled,
            families: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether instruments from this registry record anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    fn series_key(labels: &[(&str, &str)]) -> Vec<(String, String)> {
        let mut key: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        key.sort();
        key
    }

    fn register<T: Clone>(
        &self,
        name: &str,
        help: &str,
        kind: &'static str,
        labels: &[(&str, &str)],
        fresh: impl FnOnce() -> (T, Instrument),
        existing: impl Fn(&Instrument) -> Option<T>,
    ) -> T {
        let mut families = self.families.lock().expect("metrics registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind, kind,
            "instrument {name} re-registered as a different type"
        );
        let key = Self::series_key(labels);
        if let Some(instrument) = family.series.get(&key) {
            return existing(instrument)
                .unwrap_or_else(|| panic!("instrument {name} type mismatch"));
        }
        let (handle, instrument) = fresh();
        family.series.insert(key, instrument);
        handle
    }

    /// Registers (or re-resolves) a counter under `name` with `labels`.
    /// A disabled registry hands out noop handles without storing anything,
    /// so registration costs nothing on repeat and `render` stays empty.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        if !self.enabled {
            return Counter::noop();
        }
        self.register(
            name,
            help,
            "counter",
            labels,
            || {
                let c = Counter::standalone();
                (c.clone(), Instrument::Counter(c))
            },
            |i| match i {
                Instrument::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Registers (or re-resolves) a gauge.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        if !self.enabled {
            return Gauge::noop();
        }
        self.register(
            name,
            help,
            "gauge",
            labels,
            || {
                let g = Gauge::standalone();
                (g.clone(), Instrument::Gauge(g))
            },
            |i| match i {
                Instrument::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Registers (or re-resolves) a histogram whose recorded `u64`s are
    /// exposed multiplied by `scale` (use [`SECONDS_PER_NANO`] for
    /// nanosecond recordings).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        scale: f64,
    ) -> Histogram {
        if !self.enabled {
            return Histogram::noop();
        }
        self.register(
            name,
            help,
            "histogram",
            labels,
            || {
                let h = Histogram::standalone();
                (h.clone(), Instrument::Histogram(h, scale))
            },
            |i| match i {
                Instrument::Histogram(h, _) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Renders every registered instrument as Prometheus-style text,
    /// families sorted by name, series sorted by label set.
    pub fn render(&self) -> String {
        let mut out = ExpositionBuilder::new();
        let families = self.families.lock().expect("metrics registry poisoned");
        for (name, family) in families.iter() {
            out.type_line(name, &family.help, family.kind);
            for (labels, instrument) in &family.series {
                let labels: Vec<(&str, &str)> = labels
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                match instrument {
                    Instrument::Counter(c) => out.sample(name, &labels, c.get() as f64),
                    Instrument::Gauge(g) => out.sample(name, &labels, g.get() as f64),
                    Instrument::Histogram(h, scale) => {
                        out.histogram_samples(name, &labels, h, *scale)
                    }
                }
            }
        }
        out.finish()
    }
}

/// Builds exposition text line by line. Public so serving layers can append
/// scrape-time series (uptime, per-tenant cache counters) that have no
/// live-updated instrument behind them.
#[derive(Debug, Default)]
pub struct ExpositionBuilder {
    out: String,
}

/// Formats a float the way the exposition wants: integers bare, the rest
/// via shortest-round-trip `Display`.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl ExpositionBuilder {
    pub fn new() -> Self {
        ExpositionBuilder::default()
    }

    /// Emits the `# HELP` / `# TYPE` preamble for a family.
    pub fn type_line(&mut self, name: &str, help: &str, kind: &str) {
        if !help.is_empty() {
            self.out.push_str(&format!("# HELP {name} {help}\n"));
        }
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
    }

    /// Emits one `name{labels} value` sample.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(&format!(
                    "{k}=\"{}\"",
                    v.replace('\\', "\\\\").replace('"', "\\\"")
                ));
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(&fmt_value(value));
        self.out.push('\n');
    }

    /// Emits a histogram's cumulative `_bucket` series (non-empty buckets
    /// plus `+Inf`), `_sum`, and `_count`.
    pub fn histogram_samples(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        h: &Histogram,
        scale: f64,
    ) {
        let bucket_name = format!("{name}_bucket");
        for (upper, cum) in h.cumulative() {
            let le = fmt_value(upper as f64 * scale);
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", &le));
            self.sample(&bucket_name, &with_le, cum as f64);
        }
        let mut with_inf: Vec<(&str, &str)> = labels.to_vec();
        with_inf.push(("le", "+Inf"));
        self.sample(&bucket_name, &with_inf, h.count() as f64);
        self.sample(&format!("{name}_sum"), labels, h.sum() as f64 * scale);
        self.sample(&format!("{name}_count"), labels, h.count() as f64);
    }

    pub fn finish(self) -> String {
        self.out
    }
}

/// Strictly parses exposition text into `(series_with_labels, value)`
/// pairs, rejecting malformed lines. Smoke tests use this to assert the
/// served `metrics` verb emits well-formed text.
pub fn parse_exposition(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let at = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut words = comment.split_whitespace();
            match words.next() {
                Some("HELP") | Some("TYPE") => {
                    if words.next().is_none() {
                        return Err(at("comment names no metric"));
                    }
                    continue;
                }
                _ => return Err(at("unknown comment form")),
            }
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| at("no value separator"))?;
        let value: f64 = value.parse().map_err(|_| at("unparseable value"))?;
        let name_end = series.find('{').unwrap_or(series.len());
        let name = &series[..name_end];
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(at("bad metric name"));
        }
        if name_end < series.len() && !series.ends_with('}') {
            return Err(at("unterminated label set"));
        }
        samples.push((series.to_string(), value));
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_monotone_and_tight() {
        let mut last = None;
        for v in (0..4096u64).chain([1 << 20, 1 << 40, u64::MAX - 1, u64::MAX]) {
            let index = bucket_index(v);
            let upper = bucket_upper(index);
            assert!(upper >= v, "upper({index}) = {upper} < {v}");
            if v >= SUB {
                // Relative quantization error bounded by the sub-bucket width.
                assert!(
                    (upper - v) as f64 <= v as f64 / SUB as f64,
                    "bucket too wide at {v}: upper {upper}"
                );
            } else {
                assert_eq!(upper, v, "unit buckets below SUB");
            }
            if let Some((lv, li)) = last {
                assert!(index >= li, "index not monotone: {lv}→{v}");
            }
            last = Some((v, index));
            assert!(index < N_BUCKETS);
        }
    }

    #[test]
    fn histogram_quantiles_nearest_rank() {
        let h = Histogram::standalone();
        for v in 1..=100u64 {
            h.record(v * 1000);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((p50 as f64 - 50_000.0).abs() / 50_000.0 < 0.04, "p50 {p50}");
        assert!((p99 as f64 - 99_000.0).abs() / 99_000.0 < 0.04, "p99 {p99}");
        assert_eq!(h.quantile(1.0), h.max());
        assert_eq!(Histogram::standalone().quantile(0.5), 0, "empty → 0");
        assert!((h.mean() - 50_500.0).abs() < 1.0);
    }

    #[test]
    fn quantile_never_exceeds_observed_max() {
        let h = Histogram::standalone();
        h.record(1_000_003);
        assert_eq!(h.quantile(0.5), 1_000_003);
        assert_eq!(h.quantile(0.99), 1_000_003);
    }

    #[test]
    fn disabled_instruments_record_nothing() {
        let registry = Registry::new(false);
        let c = registry.counter("c_total", "help", &[]);
        let g = registry.gauge("g", "help", &[]);
        let h = registry.histogram("h_seconds", "help", &[], SECONDS_PER_NANO);
        c.inc();
        g.set(7);
        h.record(123);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.count(), 0);
        assert!(!registry.enabled());
    }

    #[test]
    fn re_registering_shares_cells() {
        let registry = Registry::new(true);
        let a = registry.counter("hits_total", "h", &[("tenant", "x")]);
        let b = registry.counter("hits_total", "h", &[("tenant", "x")]);
        let other = registry.counter("hits_total", "h", &[("tenant", "y")]);
        a.inc();
        b.inc();
        other.inc();
        assert_eq!(a.get(), 2, "same (name, labels) share one cell");
        assert_eq!(other.get(), 1);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn re_registering_as_other_type_panics() {
        let registry = Registry::new(true);
        registry.counter("x_total", "h", &[]);
        registry.gauge("x_total", "h", &[]);
    }

    #[test]
    fn render_parses_and_contains_series() {
        let registry = Registry::new(true);
        registry
            .counter("ppd_hits_total", "cache hits", &[("tenant", "a\"b")])
            .add(3);
        registry
            .gauge("ppd_depth", "queue depth", &[("lane", "interactive")])
            .set(-2);
        let h = registry.histogram("ppd_wait_seconds", "queue wait", &[], SECONDS_PER_NANO);
        h.record(1_500);
        h.record(3_000_000);
        let text = registry.render();
        let samples = parse_exposition(&text).expect("rendered text parses");
        assert!(samples
            .iter()
            .any(|(s, v)| s == "ppd_hits_total{tenant=\"a\\\"b\"}" && *v == 3.0));
        assert!(samples
            .iter()
            .any(|(s, v)| s == "ppd_depth{lane=\"interactive\"}" && *v == -2.0));
        assert!(samples
            .iter()
            .any(|(s, v)| s.starts_with("ppd_wait_seconds_count") && *v == 2.0));
        let inf = samples
            .iter()
            .find(|(s, _)| s == "ppd_wait_seconds_bucket{le=\"+Inf\"}")
            .expect("+Inf bucket present");
        assert_eq!(inf.1, 2.0);
        // Cumulative bucket counts are monotone.
        let mut last = 0.0;
        for (series, v) in &samples {
            if series.starts_with("ppd_wait_seconds_bucket") {
                assert!(*v >= last, "bucket counts must be cumulative: {series}");
                last = *v;
            }
        }
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_exposition("just words\n").is_err());
        assert!(parse_exposition("name{unclosed 1\n").is_err());
        assert!(parse_exposition("ok 1\n# TYPE x counter\nx 2\n").is_ok());
        assert!(parse_exposition("bad-name 1\n").is_err());
        assert!(parse_exposition("x nan_value\n").is_err());
        assert!(parse_exposition("# nonsense\n").is_err());
    }
}
