//! Observability for the ppd stack: a metrics registry of lock-free
//! counters, gauges, and log-bucketed latency histograms, plus a trace
//! layer that records per-submission span events into a bounded ring
//! buffer. Hand-rolled on `std` — no tokio, no `tracing` — consistent with
//! the workspace's offline vendor policy.
//!
//! The house rule, inherited from the engine's bit-determinism contract:
//! **observability is purely observational**. Nothing in this crate is ever
//! read back into seeds, cache keys, scheduling, or solver selection — the
//! instruments are write-only from the hot path's point of view, and the
//! engine/service determinism suites pin bit-equality across obs on, off,
//! and sampled.
//!
//! Three pieces:
//!
//! * [`Registry`] + [`Counter`] / [`Gauge`] / [`Histogram`]: instrument
//!   registration is a short mutex hold at startup; every *recording* is a
//!   relaxed atomic op on a pre-resolved handle (or a branch-and-skip when
//!   the registry is disabled). [`Registry::render`] produces
//!   Prometheus-style text exposition.
//! * [`TraceLog`]: every submission is assigned a trace id; sampled
//!   submissions record [`SpanEvent`]s (admitted, wave-joined,
//!   unit-solved, delivered/expired/cancelled) into a bounded ring,
//!   queryable per trace id.
//! * [`parse_exposition`]: a strict parser for the exposition format, used
//!   by smoke tests to assert the served text is well-formed.

mod metrics;
mod trace;

pub use metrics::{
    parse_exposition, Counter, ExpositionBuilder, Gauge, Histogram, Registry, SECONDS_PER_NANO,
};
pub use trace::{SpanEvent, SpanRecord, TraceLog, TraceMode};

/// How much observability a component runs with. The default is full
/// instrumentation: metrics on, every submission traced. Any mode yields
/// bit-identical answers — the knob trades visibility against a few atomic
/// ops and ring-buffer pushes per query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Whether metric instruments record at all. Off makes every handle a
    /// branch-and-skip no-op.
    pub metrics: bool,
    /// Which submissions record span events.
    pub trace: TraceMode,
    /// Bound of the span ring buffer, in events. Oldest events fall off.
    pub trace_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            metrics: true,
            trace: TraceMode::All,
            trace_capacity: 8192,
        }
    }
}

impl ObsConfig {
    /// Everything off: instruments no-op, no spans recorded. Trace ids are
    /// still assigned (they are just a counter), so wire responses keep
    /// their shape.
    pub fn off() -> Self {
        ObsConfig {
            metrics: false,
            trace: TraceMode::Off,
            trace_capacity: 0,
        }
    }

    /// Full instrumentation (the default).
    pub fn full() -> Self {
        ObsConfig::default()
    }

    /// Metrics on, but only every `n`-th submission records spans.
    pub fn sampled(n: u64) -> Self {
        ObsConfig {
            trace: TraceMode::SampleEvery(n.max(1)),
            ..ObsConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_config_modes() {
        assert!(ObsConfig::default().metrics);
        assert_eq!(ObsConfig::default().trace, TraceMode::All);
        assert!(!ObsConfig::off().metrics);
        assert_eq!(ObsConfig::off().trace, TraceMode::Off);
        assert_eq!(ObsConfig::sampled(3).trace, TraceMode::SampleEvery(3));
        assert_eq!(
            ObsConfig::sampled(0).trace,
            TraceMode::SampleEvery(1),
            "zero clamps to every submission"
        );
    }
}
