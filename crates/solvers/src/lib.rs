//! # ppd-solvers
//!
//! Exact and approximate solvers for the central inference problem of the
//! paper *"Supporting Hard Queries over Probabilistic Preferences"*:
//! given a labeled RIM model `RIM_L(σ, Π, λ)` and a union of label patterns
//! `G = g₁ ∪ … ∪ g_z`, compute the marginal probability
//!
//! ```text
//! Pr(G | σ, Π, λ) = Σ_{τ : (τ,λ) |= G} Pr(τ | σ, Π)          (Eq. 2)
//! ```
//!
//! ## Exact solvers (Section 4)
//!
//! * [`BruteForceSolver`] — enumerates all `m!` rankings; the reference
//!   implementation every other solver is validated against.
//! * [`TwoLabelSolver`] — Algorithm 3: dynamic programming over RIM
//!   insertions tracking min/max label positions of the *violating* states.
//! * [`BipartiteSolver`] — Algorithm 4: DP over RIM insertions for unions of
//!   bipartite patterns, with pruning of satisfied/violated edges and
//!   patterns (a non-pruning "basic" variant is provided for ablations).
//! * [`PatternSolver`] — exact marginal of a *single* arbitrary pattern; this
//!   is the subroutine the paper delegates to LTM (Cohen et al., SIGMOD'18).
//!   Bipartite patterns are dispatched to the bipartite DP; general DAG
//!   patterns use an exact relevant-item-position DP (see DESIGN.md for the
//!   substitution note).
//! * [`GeneralSolver`] — Section 4.1: inclusion–exclusion over the union,
//!   calling [`PatternSolver`] on every conjunction of members.
//!
//! ## Approximate solvers (Section 5)
//!
//! * [`RejectionSampler`] — the naive Monte-Carlo baseline.
//! * [`is_amp_estimate`] — IS-AMP for a single sub-ranking (Section 5.3).
//! * [`mis_amp_estimate`] — MIS-AMP for a single sub-ranking with greedy
//!   modal search (Section 5.4).
//! * [`MisAmpLite`] — MIS-AMP-lite for pattern unions: prunes sub-rankings
//!   and modals, then compensates for the pruned probability mass
//!   (Section 5.5).
//! * [`MisAmpAdaptive`] — repeatedly calls MIS-AMP-lite with more proposal
//!   distributions until the estimate converges, reusing one [`ProposalPool`]
//!   (the decomposition and greedy-modal walk) across rounds.
//!
//! ## Unified dispatch
//!
//! * [`SolverKind`] — one object-safe, `Send + Sync` handle over both solver
//!   families, with a seeded entry point whose result depends only on the
//!   instance and the seed — the determinism contract the parallel
//!   evaluation engine in `ppd-core` relies on.

pub mod approx;
pub mod budget;
pub mod exact;
pub mod kind;
pub mod select;
pub mod traits;

pub use approx::budgeted::{BudgetedOutcome, MisAmpBudgeted};
pub use approx::is_amp::is_amp_estimate;
pub use approx::mis_adaptive::{AdaptiveOutcome, MisAmpAdaptive};
pub use approx::mis_amp::mis_amp_estimate;
pub use approx::mis_lite::{MisAmpLite, PreparedProposals, ProposalPool, SampleMoments};
pub use approx::mixture::{mixture_coefficients, stratified_allocation};
pub use approx::rejection::RejectionSampler;
pub use budget::{Budget, CancelProbe};
pub use exact::bipartite::BipartiteSolver;
pub use exact::brute::BruteForceSolver;
pub use exact::general::GeneralSolver;
pub use exact::pattern::PatternSolver;
pub use exact::two_label::TwoLabelSolver;
pub use kind::{SolveDetail, SolverKind};
pub use select::{choose_exact_solver, choose_exact_solver_with_budget};
pub use traits::{ApproxSolver, EstimateStats, ExactSolver};

use ppd_patterns::PatternError;
use ppd_rim::RimError;

/// Errors produced by the solver layer.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// Propagated error from the pattern layer.
    Pattern(PatternError),
    /// Propagated error from the ranking-model layer.
    Rim(RimError),
    /// The requested solver does not support the given union (e.g. a general
    /// union handed to the two-label solver).
    Unsupported(String),
    /// A state or time budget was exhausted before the solver finished
    /// (used by the scalability experiments that measure completion rates).
    BudgetExceeded(String),
    /// An externally supplied [`budget::CancelProbe`] fired mid-solve: the
    /// caller no longer wants the answer. Not a failure of the instance.
    Cancelled,
    /// The instance is degenerate (e.g. an empty item universe).
    InvalidInstance(String),
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::Pattern(e) => write!(f, "pattern error: {e}"),
            SolverError::Rim(e) => write!(f, "ranking-model error: {e}"),
            SolverError::Unsupported(msg) => write!(f, "unsupported input: {msg}"),
            SolverError::BudgetExceeded(msg) => write!(f, "budget exceeded: {msg}"),
            SolverError::Cancelled => write!(f, "cancelled by the caller"),
            SolverError::InvalidInstance(msg) => write!(f, "invalid instance: {msg}"),
        }
    }
}

impl std::error::Error for SolverError {}

impl From<PatternError> for SolverError {
    fn from(e: PatternError) -> Self {
        SolverError::Pattern(e)
    }
}

impl From<RimError> for SolverError {
    fn from(e: RimError) -> Self {
        SolverError::Rim(e)
    }
}

/// Convenience result alias for the solver layer.
pub type Result<T> = std::result::Result<T, SolverError>;

pub mod testutil {
    //! Shared fixtures for solver tests: small labeled Mallows instances whose
    //! exact answers can be brute-forced. Public (not `cfg(test)`) so that
    //! integration tests and downstream crates can cross-validate solvers on
    //! the same menagerie.

    use ppd_patterns::{Labeling, NodeSelector, Pattern, PatternUnion};
    use ppd_rim::{MallowsModel, Ranking, RimModel};

    pub fn sel(l: u32) -> NodeSelector {
        NodeSelector::single(l)
    }

    /// m items; item i carries label (i % num_labels).
    pub fn cyclic_labeling(m: usize, num_labels: u32) -> Labeling {
        let mut lab = Labeling::new();
        for i in 0..m as u32 {
            lab.add(i, i % num_labels);
        }
        lab
    }

    pub fn mallows(m: usize, phi: f64) -> MallowsModel {
        MallowsModel::new(Ranking::identity(m), phi).unwrap()
    }

    pub fn rim(m: usize, phi: f64) -> RimModel {
        mallows(m, phi).to_rim()
    }

    /// A small menagerie of unions used by cross-validation tests.
    pub fn sample_unions() -> Vec<PatternUnion> {
        let two = Pattern::two_label(sel(0), sel(1));
        let two_rev = Pattern::two_label(sel(2), sel(0));
        let bip = Pattern::new(
            vec![sel(0), sel(1), sel(2), sel(3)],
            vec![(0, 2), (0, 3), (1, 3)],
        )
        .unwrap();
        let chain = Pattern::new(vec![sel(1), sel(2), sel(0)], vec![(0, 1), (1, 2)]).unwrap();
        vec![
            PatternUnion::singleton(two.clone()).unwrap(),
            PatternUnion::new(vec![two.clone(), two_rev.clone()]).unwrap(),
            PatternUnion::singleton(bip.clone()).unwrap(),
            PatternUnion::new(vec![bip, two_rev]).unwrap(),
            PatternUnion::singleton(chain.clone()).unwrap(),
            PatternUnion::new(vec![chain, two]).unwrap(),
        ]
    }

    #[cfg(test)]
    #[test]
    fn fixtures_are_well_formed() {
        assert_eq!(sample_unions().len(), 6);
        assert_eq!(cyclic_labeling(6, 4).items().len(), 6);
    }
}
