//! A unifying, object-safe handle over exact and approximate solvers.
//!
//! Query-evaluation engines need to treat "solve this (model, union) work
//! unit" uniformly regardless of whether the underlying inference is an
//! exact dynamic program or a seeded Monte-Carlo estimator. [`SolverKind`]
//! wraps either family behind one value that is `Send + Sync` (so a single
//! handle can be shared by worker threads) and exposes a single
//! [`SolverKind::solve_seeded`] entry point whose determinism contract is
//! explicit: the result depends only on the instance and the seed, never on
//! ambient state such as evaluation order or the calling thread.

use crate::approx::budgeted::MisAmpBudgeted;
use crate::approx::mis_lite::ProposalPool;
use crate::select::choose_exact_solver;
use crate::traits::{ApproxSolver, ExactSolver};
use crate::Result;
use ppd_patterns::{Labeling, PatternUnion};
use ppd_rim::{MallowsModel, RimModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One object-safe handle over the two solver families.
///
/// The exact arm ignores the seed; the approximate arm derives its RNG from
/// the seed alone, which is what makes engine-level evaluation bit-identical
/// across thread counts and scheduling orders.
pub enum SolverKind {
    /// An exact solver (two-label / bipartite / general / brute-force).
    Exact(Box<dyn ExactSolver>),
    /// An approximate, seeded Monte-Carlo solver.
    Approx(Box<dyn ApproxSolver>),
    /// The error-budgeted estimator, with an automatic exact fallback when
    /// its confidence interval fails to close to the requested `ε`. The
    /// fallback decision depends only on the recorded sample moments, so the
    /// arm is deterministic in `(instance, seed)` like the other two.
    Budgeted(MisAmpBudgeted),
}

impl SolverKind {
    /// Wraps an exact solver.
    pub fn exact(solver: Box<dyn ExactSolver>) -> Self {
        SolverKind::Exact(solver)
    }

    /// Picks the cheapest exact solver matching the union's class, as
    /// [`choose_exact_solver`] does, and wraps it.
    pub fn exact_auto(union: &PatternUnion) -> Self {
        SolverKind::Exact(choose_exact_solver(union))
    }

    /// Wraps an approximate solver.
    pub fn approx(solver: Box<dyn ApproxSolver>) -> Self {
        SolverKind::Approx(solver)
    }

    /// Wraps the error-budgeted estimator (with exact fallback).
    pub fn budgeted(solver: MisAmpBudgeted) -> Self {
        SolverKind::Budgeted(solver)
    }

    /// The wrapped solver's stable identifier.
    pub fn name(&self) -> &'static str {
        match self {
            SolverKind::Exact(s) => s.name(),
            SolverKind::Approx(s) => s.name(),
            SolverKind::Budgeted(_) => "mis-amp-budgeted",
        }
    }

    /// Whether the handle wraps an exact solver.
    pub fn is_exact(&self) -> bool {
        matches!(self, SolverKind::Exact(_))
    }

    /// Computes (or estimates) `Pr(G | σ, Π, λ)`, clamped to `[0, 1]`.
    ///
    /// The exact arm consumes the RIM insertion-probability form, which the
    /// caller supplies *lazily* — an engine that prepares one `RimModel` per
    /// distinct model passes an accessor to the shared instance, and an
    /// approximate engine never pays for the expansion at all. `seed` fully
    /// determines the approximate arm's randomness.
    pub fn solve_seeded<'m>(
        &self,
        mallows: &MallowsModel,
        rim: impl FnOnce() -> &'m RimModel,
        labeling: &Labeling,
        union: &PatternUnion,
        seed: u64,
    ) -> Result<f64> {
        self.solve_seeded_detailed(mallows, rim, labeling, union, seed, None)
            .map(|detail| detail.probability)
    }

    /// [`SolverKind::solve_seeded`], additionally reporting sampling-health
    /// statistics and, for the budgeted arm, optionally reusing a prepared
    /// [`ProposalPool`].
    ///
    /// The probability is bit-identical to [`SolverKind::solve_seeded`]:
    /// supplying a pool skips the union decomposition and greedy-modal walk,
    /// neither of which consumes randomness or alters the prepared proposals
    /// (pool preparation is deterministic in the instance). Non-budgeted arms
    /// ignore the pool.
    pub fn solve_seeded_detailed<'m>(
        &self,
        mallows: &MallowsModel,
        rim: impl FnOnce() -> &'m RimModel,
        labeling: &Labeling,
        union: &PatternUnion,
        seed: u64,
        pool: Option<&mut ProposalPool>,
    ) -> Result<SolveDetail> {
        let mut detail = SolveDetail::default();
        let p = match self {
            SolverKind::Exact(solver) => solver.solve(rim(), labeling, union)?,
            SolverKind::Approx(solver) => {
                let mut rng = StdRng::seed_from_u64(seed);
                let (p, stats) = solver.estimate_with_stats(mallows, labeling, union, &mut rng)?;
                detail.samples = stats.samples;
                detail.zero_density_samples = stats.zero_density_samples;
                p
            }
            SolverKind::Budgeted(solver) => {
                let mut rng = StdRng::seed_from_u64(seed);
                let outcome = match pool {
                    Some(pool) => solver.run_with_pool(mallows, pool, &mut rng)?,
                    None => solver.run(mallows, labeling, union, &mut rng)?,
                };
                detail.samples = outcome.total_samples;
                detail.zero_density_samples = outcome.zero_density_samples;
                if outcome.converged {
                    outcome.estimate
                } else {
                    // The interval would not close to ε within the sampling
                    // budget: honour the accuracy contract by solving
                    // exactly. Which branch runs is a pure function of the
                    // recorded moments, hence of (instance, seed).
                    choose_exact_solver(union).solve(rim(), labeling, union)?
                }
            }
        };
        detail.probability = p.clamp(0.0, 1.0);
        Ok(detail)
    }
}

/// Result of [`SolverKind::solve_seeded_detailed`]: the (clamped) probability
/// plus the sampling-health statistics of the solve. Exact solves report zero
/// samples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveDetail {
    /// The computed (or estimated) probability, clamped to `[0, 1]`.
    pub probability: f64,
    /// Total Monte-Carlo samples drawn (0 for exact solves).
    pub samples: usize,
    /// Samples on which the proposal mixture had zero density.
    pub zero_density_samples: usize,
}

impl std::fmt::Debug for SolverKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverKind::Exact(s) => write!(f, "SolverKind::Exact({})", s.name()),
            SolverKind::Approx(s) => write!(f, "SolverKind::Approx({})", s.name()),
            SolverKind::Budgeted(s) => write!(
                f,
                "SolverKind::Budgeted(ε = {}, confidence = {})",
                s.epsilon, s.confidence
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{cyclic_labeling, mallows, sel};
    use crate::{BruteForceSolver, MisAmpAdaptive, RejectionSampler};
    use ppd_patterns::Pattern;

    fn instance() -> (MallowsModel, Labeling, PatternUnion) {
        let model = mallows(5, 0.4);
        let lab = cyclic_labeling(5, 3);
        let union = PatternUnion::singleton(Pattern::two_label(sel(1), sel(0))).unwrap();
        (model, lab, union)
    }

    #[test]
    fn handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let exact = SolverKind::exact(Box::new(BruteForceSolver::default()));
        let approx = SolverKind::approx(Box::new(RejectionSampler::new(10)));
        assert_send_sync(&exact);
        assert_send_sync(&approx);
        assert!(exact.is_exact());
        assert!(!approx.is_exact());
    }

    #[test]
    fn exact_arm_matches_direct_solver_and_ignores_seed() {
        let (model, lab, union) = instance();
        let rim = model.to_rim();
        let direct = BruteForceSolver::new().solve(&rim, &lab, &union).unwrap();
        let kind = SolverKind::exact_auto(&union);
        let a = kind.solve_seeded(&model, || &rim, &lab, &union, 1).unwrap();
        let b = kind
            .solve_seeded(&model, || &rim, &lab, &union, 999)
            .unwrap();
        assert_eq!(a, b);
        assert!((a - direct).abs() < 1e-12);
    }

    #[test]
    fn budgeted_arm_is_deterministic_and_meets_the_budget() {
        let (model, lab, union) = instance();
        let rim = model.to_rim();
        let exact = BruteForceSolver::new().solve(&rim, &lab, &union).unwrap();
        let kind = SolverKind::budgeted(MisAmpBudgeted::new(0.02, 0.95));
        assert!(!kind.is_exact());
        let a = kind.solve_seeded(&model, || &rim, &lab, &union, 5).unwrap();
        let b = kind.solve_seeded(&model, || &rim, &lab, &union, 5).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        assert!((a - exact).abs() < 0.05, "exact {exact}, estimate {a}");
    }

    #[test]
    fn budgeted_arm_falls_back_to_exact_when_the_interval_cannot_close() {
        // One round of one sample per proposal cannot certify ε = 1e-9, so
        // the arm must return the exact answer.
        let (model, lab, union) = instance();
        let rim = model.to_rim();
        let exact = BruteForceSolver::new().solve(&rim, &lab, &union).unwrap();
        let solver = MisAmpBudgeted {
            initial_samples: 1,
            max_rounds: 1,
            ..MisAmpBudgeted::new(1e-9, 0.999)
        };
        let kind = SolverKind::budgeted(solver);
        let p = kind.solve_seeded(&model, || &rim, &lab, &union, 3).unwrap();
        assert!((p - exact).abs() < 1e-12, "exact {exact}, got {p}");
    }

    #[test]
    fn approx_arm_is_deterministic_in_the_seed() {
        let (model, lab, union) = instance();
        let rim = model.to_rim();
        let kind = SolverKind::approx(Box::new(MisAmpAdaptive::new(200)));
        let a = kind.solve_seeded(&model, || &rim, &lab, &union, 7).unwrap();
        let b = kind.solve_seeded(&model, || &rim, &lab, &union, 7).unwrap();
        let c = kind.solve_seeded(&model, || &rim, &lab, &union, 8).unwrap();
        assert_eq!(a, b);
        // A different seed draws different samples (with overwhelming
        // probability on this instance).
        assert_ne!(a, c);
        assert!((0.0..=1.0).contains(&a));
    }
}
