//! Automatic selection of the cheapest applicable exact solver.

use crate::budget::Budget;
use crate::exact::bipartite::BipartiteSolver;
use crate::exact::general::GeneralSolver;
use crate::exact::two_label::TwoLabelSolver;
use crate::traits::ExactSolver;
use ppd_patterns::{PatternUnion, UnionClass};

/// Picks the specialised exact solver matching the union's class: the
/// two-label DP for unions of single-edge patterns, the bipartite DP for
/// unions of bipartite patterns, and the inclusion–exclusion general solver
/// otherwise. This is the policy `ppd-core` uses when evaluating queries with
/// exact inference.
pub fn choose_exact_solver(union: &PatternUnion) -> Box<dyn ExactSolver> {
    match union.classify() {
        UnionClass::TwoLabel => Box::new(TwoLabelSolver::new()),
        UnionClass::Bipartite => Box::new(BipartiteSolver::new()),
        UnionClass::General => Box::new(GeneralSolver::new()),
    }
}

/// [`choose_exact_solver`] with a [`Budget`] attached to the chosen solver —
/// the entry point the evaluation engine uses to thread a cancellation probe
/// (or resource limits) into the DP kernels, which poll the budget once per
/// insertion step. The solver *choice* is identical to
/// [`choose_exact_solver`]: budgets never affect which answer is computed,
/// only whether the computation is allowed to finish.
pub fn choose_exact_solver_with_budget(
    union: &PatternUnion,
    budget: Budget,
) -> Box<dyn ExactSolver> {
    match union.classify() {
        UnionClass::TwoLabel => Box::new(TwoLabelSolver::with_budget(budget)),
        UnionClass::Bipartite => Box::new(BipartiteSolver::new().with_budget(budget)),
        UnionClass::General => Box::new(GeneralSolver::new().with_budget(budget)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::sel;
    use ppd_patterns::Pattern;

    #[test]
    fn selection_follows_classification() {
        let two = PatternUnion::singleton(Pattern::two_label(sel(0), sel(1))).unwrap();
        assert_eq!(choose_exact_solver(&two).name(), "two-label");

        let bip = PatternUnion::singleton(
            Pattern::new(vec![sel(0), sel(1), sel(2)], vec![(0, 1), (0, 2)]).unwrap(),
        )
        .unwrap();
        assert_eq!(choose_exact_solver(&bip).name(), "bipartite");

        let chain = PatternUnion::singleton(
            Pattern::new(vec![sel(0), sel(1), sel(2)], vec![(0, 1), (1, 2)]).unwrap(),
        )
        .unwrap();
        assert_eq!(choose_exact_solver(&chain).name(), "general");
    }
}
