//! Resource budgets for exact solvers.
//!
//! The paper's scalability experiments (e.g. Figure 6) report the fraction of
//! instances an exact solver finishes within a wall-clock budget. Rust cannot
//! interrupt a running DP from the outside, so the solvers periodically check
//! a [`Budget`] and abort with [`crate::SolverError::BudgetExceeded`].
//!
//! A budget can additionally carry a [`CancelProbe`]: an externally supplied
//! predicate polled at the same per-insertion-step cadence, aborting with
//! [`crate::SolverError::Cancelled`] when it fires. The serving layer uses
//! this for mid-solve cancellation — a long-running unit stops as soon as
//! every ticket depending on it has expired or been dropped.

use std::sync::Arc;
use std::time::{Duration, Instant};

/// An externally supplied cancellation predicate a [`Budget`] polls between
/// DP insertion steps. The closure must be cheap (it runs once per outer
/// step) and `Send + Sync` (solves run on worker threads).
#[derive(Clone)]
pub struct CancelProbe(Arc<dyn Fn() -> bool + Send + Sync>);

impl CancelProbe {
    /// Wraps a predicate that returns `true` once the work should stop.
    pub fn new(probe: impl Fn() -> bool + Send + Sync + 'static) -> Self {
        CancelProbe(Arc::new(probe))
    }

    /// Polls the predicate.
    pub fn is_cancelled(&self) -> bool {
        (self.0)()
    }
}

impl std::fmt::Debug for CancelProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CancelProbe(..)")
    }
}

/// A state-count and wall-clock budget checked by the exact DP solvers once
/// per insertion step.
#[derive(Debug, Clone)]
pub struct Budget {
    max_states: Option<usize>,
    time_limit: Option<Duration>,
    cancel: Option<CancelProbe>,
    started: Instant,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget that never triggers.
    pub fn unlimited() -> Self {
        Budget {
            max_states: None,
            time_limit: None,
            cancel: None,
            started: Instant::now(),
        }
    }

    /// Limits the number of simultaneously tracked DP states.
    pub fn with_max_states(max_states: usize) -> Self {
        Budget {
            max_states: Some(max_states),
            ..Budget::unlimited()
        }
    }

    /// Limits wall-clock time; the clock starts when the budget is created.
    pub fn with_time_limit(limit: Duration) -> Self {
        Budget {
            time_limit: Some(limit),
            ..Budget::unlimited()
        }
    }

    /// A budget whose only trigger is the given cancellation probe.
    pub fn cancellable(probe: CancelProbe) -> Self {
        Budget {
            cancel: Some(probe),
            ..Budget::unlimited()
        }
    }

    /// Combines a state cap and a time limit.
    pub fn new(max_states: Option<usize>, time_limit: Option<Duration>) -> Self {
        Budget {
            max_states,
            time_limit,
            cancel: None,
            started: Instant::now(),
        }
    }

    /// Attaches a cancellation probe, polled at every [`Budget::check`].
    pub fn with_cancel(mut self, probe: CancelProbe) -> Self {
        self.cancel = Some(probe);
        self
    }

    /// Restarts the wall clock (call right before a solve if the budget was
    /// constructed earlier).
    pub fn restart(&mut self) {
        self.started = Instant::now();
    }

    /// Polls only the cancellation probe (if any). Solvers whose progress
    /// metric is not a state count (e.g. the inclusion–exclusion loop over
    /// conjunctions) call this between units of work.
    pub fn check_cancelled(&self) -> crate::Result<()> {
        if let Some(probe) = &self.cancel {
            if probe.is_cancelled() {
                return Err(crate::SolverError::Cancelled);
            }
        }
        Ok(())
    }

    /// Checks the budget against the current number of tracked states.
    pub fn check(&self, current_states: usize) -> crate::Result<()> {
        self.check_cancelled()?;
        if let Some(max) = self.max_states {
            if current_states > max {
                return Err(crate::SolverError::BudgetExceeded(format!(
                    "{current_states} states exceed the cap of {max}"
                )));
            }
        }
        if let Some(limit) = self.time_limit {
            let elapsed = self.started.elapsed();
            if elapsed > limit {
                return Err(crate::SolverError::BudgetExceeded(format!(
                    "elapsed {elapsed:?} exceeds the limit of {limit:?}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_triggers() {
        let b = Budget::unlimited();
        assert!(b.check(usize::MAX / 2).is_ok());
    }

    #[test]
    fn state_cap_triggers() {
        let b = Budget::with_max_states(10);
        assert!(b.check(10).is_ok());
        assert!(b.check(11).is_err());
    }

    #[test]
    fn cancel_probe_triggers() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let flag = Arc::new(AtomicBool::new(false));
        let probe = {
            let flag = Arc::clone(&flag);
            CancelProbe::new(move || flag.load(Ordering::Relaxed))
        };
        let b = Budget::cancellable(probe);
        assert!(b.check(usize::MAX / 2).is_ok());
        assert!(b.check_cancelled().is_ok());
        flag.store(true, Ordering::Relaxed);
        assert!(matches!(b.check(0), Err(crate::SolverError::Cancelled)));
        assert!(matches!(
            b.check_cancelled(),
            Err(crate::SolverError::Cancelled)
        ));
        // The probe composes with other limits without weakening them.
        let b2 = Budget::with_max_states(1).with_cancel(CancelProbe::new(|| false));
        assert!(matches!(
            b2.check(2),
            Err(crate::SolverError::BudgetExceeded(_))
        ));
    }

    #[test]
    fn time_limit_triggers() {
        let b = Budget::with_time_limit(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(b.check(0).is_err());
        let mut b2 = Budget::with_time_limit(Duration::from_secs(60));
        b2.restart();
        assert!(b2.check(0).is_ok());
    }
}
