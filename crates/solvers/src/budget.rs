//! Resource budgets for exact solvers.
//!
//! The paper's scalability experiments (e.g. Figure 6) report the fraction of
//! instances an exact solver finishes within a wall-clock budget. Rust cannot
//! interrupt a running DP from the outside, so the solvers periodically check
//! a [`Budget`] and abort with [`crate::SolverError::BudgetExceeded`].

use std::time::{Duration, Instant};

/// A state-count and wall-clock budget checked by the exact DP solvers once
/// per insertion step.
#[derive(Debug, Clone)]
pub struct Budget {
    max_states: Option<usize>,
    time_limit: Option<Duration>,
    started: Instant,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget that never triggers.
    pub fn unlimited() -> Self {
        Budget {
            max_states: None,
            time_limit: None,
            started: Instant::now(),
        }
    }

    /// Limits the number of simultaneously tracked DP states.
    pub fn with_max_states(max_states: usize) -> Self {
        Budget {
            max_states: Some(max_states),
            time_limit: None,
            started: Instant::now(),
        }
    }

    /// Limits wall-clock time; the clock starts when the budget is created.
    pub fn with_time_limit(limit: Duration) -> Self {
        Budget {
            max_states: None,
            time_limit: Some(limit),
            started: Instant::now(),
        }
    }

    /// Combines a state cap and a time limit.
    pub fn new(max_states: Option<usize>, time_limit: Option<Duration>) -> Self {
        Budget {
            max_states,
            time_limit,
            started: Instant::now(),
        }
    }

    /// Restarts the wall clock (call right before a solve if the budget was
    /// constructed earlier).
    pub fn restart(&mut self) {
        self.started = Instant::now();
    }

    /// Checks the budget against the current number of tracked states.
    pub fn check(&self, current_states: usize) -> crate::Result<()> {
        if let Some(max) = self.max_states {
            if current_states > max {
                return Err(crate::SolverError::BudgetExceeded(format!(
                    "{current_states} states exceed the cap of {max}"
                )));
            }
        }
        if let Some(limit) = self.time_limit {
            let elapsed = self.started.elapsed();
            if elapsed > limit {
                return Err(crate::SolverError::BudgetExceeded(format!(
                    "elapsed {elapsed:?} exceeds the limit of {limit:?}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_triggers() {
        let b = Budget::unlimited();
        assert!(b.check(usize::MAX / 2).is_ok());
    }

    #[test]
    fn state_cap_triggers() {
        let b = Budget::with_max_states(10);
        assert!(b.check(10).is_ok());
        assert!(b.check(11).is_err());
    }

    #[test]
    fn time_limit_triggers() {
        let b = Budget::with_time_limit(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(b.check(0).is_err());
        let mut b2 = Budget::with_time_limit(Duration::from_secs(60));
        b2.restart();
        assert!(b2.check(0).is_ok());
    }
}
