//! Solver traits shared by the exact and approximate implementations.

use crate::Result;
use ppd_patterns::{Labeling, PatternUnion};
use ppd_rim::{MallowsModel, RimModel};
use rand::RngCore;

/// An exact solver for the marginal probability of a pattern union over a
/// labeled RIM model (Eq. 2 of the paper).
///
/// Solvers are required to be `Send + Sync` so that a single boxed handle can
/// be shared by the worker threads of a parallel evaluation engine; every
/// solver in this crate is a plain configuration struct, so the bound is
/// free.
pub trait ExactSolver: Send + Sync {
    /// A short, stable identifier used in logs and experiment outputs.
    fn name(&self) -> &'static str;

    /// Computes `Pr(G | σ, Π, λ)` exactly.
    fn solve(&self, rim: &RimModel, labeling: &Labeling, union: &PatternUnion) -> Result<f64>;
}

/// Sampling-health statistics of one approximate solve, reported alongside
/// the estimate by [`ApproxSolver::estimate_with_stats`]. Purely
/// observational: nothing here feeds back into the estimate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EstimateStats {
    /// Total Monte-Carlo samples drawn.
    pub samples: usize,
    /// Samples on which the proposal mixture had zero density — drawn but
    /// contributing nothing to the estimate. Solvers that cannot track this
    /// report zero.
    pub zero_density_samples: usize,
}

/// An approximate solver for the marginal probability of a pattern union over
/// a labeled *Mallows* model. (The importance-sampling machinery of Section 5
/// exploits Mallows structure — distance-based probabilities and the AMP
/// posterior sampler — so the approximate interface takes a Mallows model
/// rather than a general RIM.)
///
/// Like [`ExactSolver`], approximate solvers must be `Send + Sync` so they
/// can be dispatched across evaluation worker threads.
pub trait ApproxSolver: Send + Sync {
    /// A short, stable identifier used in logs and experiment outputs.
    fn name(&self) -> &'static str;

    /// Estimates `Pr(G | σ, φ, λ)`.
    fn estimate(
        &self,
        mallows: &MallowsModel,
        labeling: &Labeling,
        union: &PatternUnion,
        rng: &mut dyn RngCore,
    ) -> Result<f64>;

    /// [`ApproxSolver::estimate`], additionally reporting sampling-health
    /// statistics. The estimate is bit-identical to
    /// [`ApproxSolver::estimate`] with the same RNG state. The default
    /// implementation reports empty stats for solvers that do not track
    /// them.
    fn estimate_with_stats(
        &self,
        mallows: &MallowsModel,
        labeling: &Labeling,
        union: &PatternUnion,
        rng: &mut dyn RngCore,
    ) -> Result<(f64, EstimateStats)> {
        self.estimate(mallows, labeling, union, rng)
            .map(|p| (p, EstimateStats::default()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BruteForceSolver, RejectionSampler};

    #[test]
    fn traits_are_object_safe() {
        let exact: Box<dyn ExactSolver> = Box::new(BruteForceSolver::default());
        let approx: Box<dyn ApproxSolver> = Box::new(RejectionSampler::new(10));
        assert_eq!(exact.name(), "brute-force");
        assert_eq!(approx.name(), "rejection-sampling");
    }
}
