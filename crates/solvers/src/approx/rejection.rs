//! Rejection sampling: the naive Monte-Carlo baseline.

use crate::traits::ApproxSolver;
use crate::{Result, SolverError};
use ppd_patterns::{satisfies_union, Labeling, PatternUnion};
use ppd_rim::MallowsModel;
use rand::RngCore;

/// Estimates `Pr(G | σ, φ, λ)` as the fraction of Mallows samples that
/// satisfy the union. Accurate for high-probability events but needs
/// exponentially many samples for rare ones (Section 5.1, Figure 9), which is
/// what motivates the importance-sampling solvers.
#[derive(Debug, Clone)]
pub struct RejectionSampler {
    num_samples: usize,
}

impl RejectionSampler {
    /// Creates a sampler that draws `num_samples` rankings per estimate.
    pub fn new(num_samples: usize) -> Self {
        RejectionSampler { num_samples }
    }

    /// Number of rankings drawn per estimate.
    pub fn num_samples(&self) -> usize {
        self.num_samples
    }

    /// Draws samples until the running estimate is within `rel_tol` of the
    /// externally supplied ground truth, returning the number of samples
    /// used, or `None` if `max_samples` was reached first. This mirrors the
    /// (optimistic) stopping rule the paper uses to cost rejection sampling
    /// in the Figure 9 experiment.
    #[allow(clippy::too_many_arguments)]
    pub fn samples_until_relative_error(
        &self,
        mallows: &MallowsModel,
        labeling: &Labeling,
        union: &PatternUnion,
        ground_truth: f64,
        rel_tol: f64,
        max_samples: usize,
        rng: &mut dyn RngCore,
    ) -> Option<usize> {
        let rim = mallows.to_rim();
        let mut hits = 0usize;
        for n in 1..=max_samples {
            let tau = rim.sample(rng);
            if satisfies_union(&tau, labeling, union) {
                hits += 1;
            }
            let estimate = hits as f64 / n as f64;
            if ground_truth > 0.0 && ((estimate - ground_truth) / ground_truth).abs() <= rel_tol {
                // Require a minimum number of draws so a lucky first sample
                // does not count as convergence.
                if n >= 30 {
                    return Some(n);
                }
            }
        }
        None
    }
}

impl ApproxSolver for RejectionSampler {
    fn name(&self) -> &'static str {
        "rejection-sampling"
    }

    fn estimate(
        &self,
        mallows: &MallowsModel,
        labeling: &Labeling,
        union: &PatternUnion,
        rng: &mut dyn RngCore,
    ) -> Result<f64> {
        if self.num_samples == 0 {
            return Err(SolverError::InvalidInstance(
                "rejection sampling needs at least one sample".into(),
            ));
        }
        let rim = mallows.to_rim();
        let mut hits = 0usize;
        for _ in 0..self.num_samples {
            let tau = rim.sample(rng);
            if satisfies_union(&tau, labeling, union) {
                hits += 1;
            }
        }
        Ok(hits as f64 / self.num_samples as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::brute::BruteForceSolver;
    use crate::testutil::{cyclic_labeling, mallows, sel};
    use crate::traits::ExactSolver;
    use ppd_patterns::{Pattern, PatternUnion};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn estimates_match_brute_force_within_monte_carlo_error() {
        let mut rng = StdRng::seed_from_u64(123);
        let model = mallows(6, 0.6);
        let lab = cyclic_labeling(6, 3);
        let union = PatternUnion::new(vec![
            Pattern::two_label(sel(2), sel(0)),
            Pattern::two_label(sel(1), sel(0)),
        ])
        .unwrap();
        let exact = BruteForceSolver::new()
            .solve(&model.to_rim(), &lab, &union)
            .unwrap();
        let est = RejectionSampler::new(20_000)
            .estimate(&model, &lab, &union, &mut rng)
            .unwrap();
        assert!((exact - est).abs() < 0.02, "exact {exact}, estimate {est}");
    }

    #[test]
    fn zero_samples_is_an_error() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = mallows(4, 0.5);
        let lab = cyclic_labeling(4, 2);
        let union = PatternUnion::singleton(Pattern::two_label(sel(0), sel(1))).unwrap();
        assert!(RejectionSampler::new(0)
            .estimate(&model, &lab, &union, &mut rng)
            .is_err());
    }

    #[test]
    fn rare_events_exhaust_the_sample_budget() {
        // σ_m ≻ σ_1 under a concentrated Mallows model is very unlikely;
        // rejection sampling should fail to converge within a small budget.
        let mut rng = StdRng::seed_from_u64(7);
        let model = mallows(8, 0.1);
        let lab = cyclic_labeling(8, 8);
        let union = PatternUnion::singleton(Pattern::two_label(sel(7), sel(0))).unwrap();
        let truth = BruteForceSolver::new()
            .solve(&model.to_rim(), &lab, &union)
            .unwrap();
        assert!(truth < 1e-4);
        let sampler = RejectionSampler::new(1);
        let needed = sampler
            .samples_until_relative_error(&model, &lab, &union, truth, 0.01, 2_000, &mut rng);
        assert!(needed.is_none());
        // An easy event converges quickly.
        let easy = PatternUnion::singleton(Pattern::two_label(sel(0), sel(7))).unwrap();
        let easy_truth = BruteForceSolver::new()
            .solve(&model.to_rim(), &lab, &easy)
            .unwrap();
        let needed = sampler
            .samples_until_relative_error(&model, &lab, &easy, easy_truth, 0.01, 50_000, &mut rng);
        assert!(needed.is_some());
    }
}
