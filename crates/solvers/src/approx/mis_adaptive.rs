//! MIS-AMP-adaptive: repeatedly runs MIS-AMP-lite with more proposal
//! distributions until the estimate converges (Section 5.5).

use crate::approx::mis_lite::{MisAmpLite, ProposalPool};
use crate::traits::{ApproxSolver, EstimateStats};
use crate::{Result, SolverError};
use ppd_patterns::{DecompositionLimits, Labeling, PatternUnion};
use ppd_rim::MallowsModel;
use rand::RngCore;
use std::time::{Duration, Instant};

/// Configuration of the adaptive estimator.
#[derive(Debug, Clone)]
pub struct MisAmpAdaptive {
    /// Number of proposal distributions used in the first round.
    pub initial_proposals: usize,
    /// How many proposals are added per round (the paper's `∆d`).
    pub proposal_increment: usize,
    /// Samples per proposal in every round.
    pub samples_per_proposal: usize,
    /// Convergence threshold on the relative change between consecutive
    /// rounds.
    pub tolerance: f64,
    /// Maximum number of rounds before giving up and returning the latest
    /// estimate.
    pub max_rounds: usize,
    /// Cap on modals per sub-ranking (forwarded to MIS-AMP-lite).
    pub modal_cap: usize,
    /// Decomposition caps (forwarded to MIS-AMP-lite).
    pub limits: DecompositionLimits,
}

impl Default for MisAmpAdaptive {
    fn default() -> Self {
        MisAmpAdaptive {
            initial_proposals: 2,
            proposal_increment: 3,
            samples_per_proposal: 300,
            tolerance: 0.05,
            max_rounds: 8,
            modal_cap: 64,
            limits: DecompositionLimits::default(),
        }
    }
}

/// Detailed outcome of an adaptive run, separating the proposal-construction
/// overhead from the sampling time (the two quantities Figure 13 reports).
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// The final estimate.
    pub estimate: f64,
    /// Number of MIS-AMP-lite rounds executed.
    pub rounds: usize,
    /// Number of proposal distributions used in the final round.
    pub proposals_used: usize,
    /// Total time spent constructing proposal distributions
    /// (decomposition + modal search + AMP construction).
    pub preparation_time: Duration,
    /// Total time spent drawing and re-weighting samples.
    pub sampling_time: Duration,
    /// Total samples drawn across all rounds.
    pub total_samples: usize,
    /// Samples (across all rounds) on which the proposal mixture had zero
    /// density — drawn but contributing nothing to any round's estimate.
    pub zero_density_samples: usize,
    /// Whether the run stopped because consecutive estimates agreed (as
    /// opposed to exhausting `max_rounds`).
    pub converged: bool,
}

impl MisAmpAdaptive {
    /// A configuration suited to quick interactive use.
    pub fn new(samples_per_proposal: usize) -> Self {
        MisAmpAdaptive {
            samples_per_proposal,
            ..MisAmpAdaptive::default()
        }
    }

    fn lite_for(&self, num_proposals: usize) -> MisAmpLite {
        MisAmpLite {
            num_proposals,
            samples_per_proposal: self.samples_per_proposal,
            compensation: true,
            modal_cap: self.modal_cap,
            limits: self.limits,
        }
    }

    /// Runs the adaptive loop, returning the estimate together with timing
    /// and convergence metadata.
    pub fn run(
        &self,
        mallows: &MallowsModel,
        labeling: &Labeling,
        union: &PatternUnion,
        rng: &mut dyn RngCore,
    ) -> Result<AdaptiveOutcome> {
        if self.initial_proposals == 0 || self.samples_per_proposal == 0 {
            return Err(SolverError::InvalidInstance(
                "MIS-AMP-adaptive needs at least one proposal and one sample".into(),
            ));
        }
        let mut num_proposals = self.initial_proposals;
        let mut previous: Option<f64> = None;
        let mut preparation_time = Duration::ZERO;
        let mut sampling_time = Duration::ZERO;
        let mut estimate = 0.0;
        let mut rounds = 0;
        let mut total_samples = 0;
        let mut zero_density_samples = 0;
        let mut converged = false;
        // The union decomposition and the greedy-modal walk are shared by
        // every round: build the proposal pool once and draw successively
        // larger proposal sets from it instead of re-preparing from scratch.
        let mut pool: Option<ProposalPool> = None;
        while rounds < self.max_rounds.max(1) {
            rounds += 1;
            let lite = self.lite_for(num_proposals);
            let t0 = Instant::now();
            if pool.is_none() {
                pool = Some(lite.build_pool(mallows, labeling, union)?);
            }
            let prepared = lite.prepare_from_pool(pool.as_mut().expect("pool just built"))?;
            preparation_time += t0.elapsed();
            let t1 = Instant::now();
            let (round_estimate, moments) =
                lite.estimate_prepared_with_moments(mallows, &prepared, rng);
            estimate = round_estimate;
            total_samples += moments.samples;
            zero_density_samples += moments.zero_density;
            sampling_time += t1.elapsed();
            if prepared.num_proposals() == 0 {
                // The union is unsatisfiable; nothing more to refine.
                converged = true;
                break;
            }
            if let Some(prev) = previous {
                let denom = estimate.abs().max(1e-12);
                if ((estimate - prev) / denom).abs() <= self.tolerance {
                    converged = true;
                    break;
                }
            }
            // If the previous round already used every available proposal,
            // adding more cannot change the answer.
            if prepared.num_proposals() < num_proposals {
                converged = true;
                break;
            }
            previous = Some(estimate);
            num_proposals += self.proposal_increment.max(1);
        }
        Ok(AdaptiveOutcome {
            estimate,
            rounds,
            proposals_used: num_proposals,
            preparation_time,
            sampling_time,
            total_samples,
            zero_density_samples,
            converged,
        })
    }
}

impl ApproxSolver for MisAmpAdaptive {
    fn name(&self) -> &'static str {
        "mis-amp-adaptive"
    }

    fn estimate(
        &self,
        mallows: &MallowsModel,
        labeling: &Labeling,
        union: &PatternUnion,
        rng: &mut dyn RngCore,
    ) -> Result<f64> {
        self.run(mallows, labeling, union, rng).map(|o| o.estimate)
    }

    fn estimate_with_stats(
        &self,
        mallows: &MallowsModel,
        labeling: &Labeling,
        union: &PatternUnion,
        rng: &mut dyn RngCore,
    ) -> Result<(f64, EstimateStats)> {
        self.run(mallows, labeling, union, rng).map(|o| {
            (
                o.estimate,
                EstimateStats {
                    samples: o.total_samples,
                    zero_density_samples: o.zero_density_samples,
                },
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::brute::BruteForceSolver;
    use crate::testutil::{cyclic_labeling, mallows, sel};
    use crate::traits::ExactSolver;
    use ppd_patterns::{Pattern, PatternUnion};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn converges_and_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(77);
        let model = mallows(6, 0.3);
        let lab = cyclic_labeling(6, 3);
        let union = PatternUnion::new(vec![
            Pattern::two_label(sel(2), sel(0)),
            Pattern::two_label(sel(1), sel(0)),
        ])
        .unwrap();
        let exact = BruteForceSolver::new()
            .solve(&model.to_rim(), &lab, &union)
            .unwrap();
        let adaptive = MisAmpAdaptive {
            samples_per_proposal: 1_500,
            ..MisAmpAdaptive::default()
        };
        let outcome = adaptive.run(&model, &lab, &union, &mut rng).unwrap();
        assert!(outcome.rounds >= 2);
        assert!(
            ((outcome.estimate - exact) / exact).abs() < 0.15,
            "exact {exact}, estimate {}",
            outcome.estimate
        );
    }

    #[test]
    fn unsatisfiable_union_terminates_immediately_with_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = mallows(5, 0.5);
        let lab = cyclic_labeling(5, 3);
        let union = PatternUnion::singleton(Pattern::two_label(sel(8), sel(9))).unwrap();
        let outcome = MisAmpAdaptive::default()
            .run(&model, &lab, &union, &mut rng)
            .unwrap();
        assert_eq!(outcome.estimate, 0.0);
        assert!(outcome.converged);
        assert_eq!(outcome.rounds, 1);
    }

    #[test]
    fn timings_are_populated() {
        let mut rng = StdRng::seed_from_u64(9);
        let model = mallows(7, 0.4);
        let lab = cyclic_labeling(7, 3);
        let union = PatternUnion::singleton(Pattern::two_label(sel(2), sel(0))).unwrap();
        let outcome = MisAmpAdaptive::new(200)
            .run(&model, &lab, &union, &mut rng)
            .unwrap();
        assert!(outcome.preparation_time > Duration::ZERO);
        assert!(outcome.sampling_time > Duration::ZERO);
        assert!(outcome.proposals_used >= 2);
    }

    #[test]
    fn zero_configuration_is_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = mallows(4, 0.5);
        let lab = cyclic_labeling(4, 2);
        let union = PatternUnion::singleton(Pattern::two_label(sel(0), sel(1))).unwrap();
        let bad = MisAmpAdaptive {
            initial_proposals: 0,
            ..MisAmpAdaptive::default()
        };
        assert!(bad.run(&model, &lab, &union, &mut rng).is_err());
    }
}
