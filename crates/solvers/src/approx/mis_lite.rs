//! MIS-AMP-lite: multiple importance sampling for pattern unions with
//! sub-ranking and modal pruning plus compensation (Section 5.5 of the paper).
//!
//! A pattern union corresponds to (possibly exponentially) many sub-rankings,
//! each with several posterior modes. MIS-AMP-lite keeps only `d` proposal
//! distributions: it sorts the sub-rankings by their estimated Kendall
//! distance from the Mallows centre (Algorithm 6), walks them in that order
//! generating greedy modals (Algorithm 5), and keeps the `d` modals closest
//! to the centre. Two compensation factors — `c_ψ` for the pruned
//! sub-rankings and `c_r` for the pruned modals — rescale the estimate by the
//! share of `φ^distance` mass the kept objects represent.

use crate::traits::ApproxSolver;
use crate::{Result, SolverError};
use ppd_patterns::{decompose_union, DecompositionLimits, Labeling, PatternError, PatternUnion};
use ppd_rim::{
    approximate_distance, greedy_modals, kendall_tau, AmpSampler, MallowsModel, Ranking, SubRanking,
};
use rand::RngCore;

/// Configuration of the MIS-AMP-lite estimator.
#[derive(Debug, Clone)]
pub struct MisAmpLite {
    /// Number of proposal distributions `d`.
    pub num_proposals: usize,
    /// Samples drawn from each proposal.
    pub samples_per_proposal: usize,
    /// Whether the compensation factors `c_ψ · c_r` are applied (Figure 11c
    /// and Figure 12 evaluate the estimator with this turned off).
    pub compensation: bool,
    /// Cap on the number of modals kept per sub-ranking by the greedy modal
    /// search.
    pub modal_cap: usize,
    /// Caps applied to the union decomposition.
    pub limits: DecompositionLimits,
}

impl Default for MisAmpLite {
    fn default() -> Self {
        MisAmpLite {
            num_proposals: 10,
            samples_per_proposal: 300,
            compensation: true,
            modal_cap: 64,
            limits: DecompositionLimits::default(),
        }
    }
}

/// Proposal distributions prepared for a particular (model, union) instance.
/// Preparing the proposals (decomposition + modal search) is the expensive,
/// sample-independent part of MIS-AMP-lite; Figure 13a reports it separately
/// from the sampling time, so the two stages are exposed separately here too.
#[derive(Debug)]
pub struct PreparedProposals {
    /// One `(proposal sampler, conditioning sub-ranking)` pair per kept modal.
    proposals: Vec<(AmpSampler, SubRanking)>,
    /// Compensation factor for pruned sub-rankings (`c_ψ ≥ 1`).
    pub compensation_subrankings: f64,
    /// Compensation factor for pruned modals (`c_r ≥ 1`).
    pub compensation_modals: f64,
    /// Number of sub-rankings in the full decomposition.
    pub total_subrankings: usize,
    /// Number of sub-rankings that contributed proposals.
    pub selected_subrankings: usize,
}

impl PreparedProposals {
    /// An empty preparation representing a union with probability zero.
    fn empty() -> Self {
        PreparedProposals {
            proposals: Vec::new(),
            compensation_subrankings: 1.0,
            compensation_modals: 1.0,
            total_subrankings: 0,
            selected_subrankings: 0,
        }
    }

    /// Number of proposal distributions actually constructed.
    pub fn num_proposals(&self) -> usize {
        self.proposals.len()
    }
}

impl MisAmpLite {
    /// Convenience constructor fixing the two main knobs.
    pub fn new(num_proposals: usize, samples_per_proposal: usize) -> Self {
        MisAmpLite {
            num_proposals,
            samples_per_proposal,
            ..MisAmpLite::default()
        }
    }

    /// Disables the compensation factors (used by the ablation experiments).
    pub fn without_compensation(mut self) -> Self {
        self.compensation = false;
        self
    }

    /// Builds the proposal distributions for the given instance.
    pub fn prepare(
        &self,
        mallows: &MallowsModel,
        labeling: &Labeling,
        union: &PatternUnion,
    ) -> Result<PreparedProposals> {
        let universe = mallows.sigma().items();
        let decomposition = match decompose_union(union, universe, labeling, &self.limits) {
            Ok(d) => d,
            // No member is satisfiable: the probability is exactly zero.
            Err(PatternError::EmptySelector(_)) => return Ok(PreparedProposals::empty()),
            Err(e) => return Err(e.into()),
        };
        let sigma = mallows.sigma();
        let phi = mallows.phi();

        // Sort sub-rankings by estimated distance from the centre.
        let mut scored: Vec<(usize, &SubRanking)> = decomposition
            .subrankings
            .iter()
            .map(|psi| (approximate_distance(psi, sigma), psi))
            .collect();
        scored.sort_by_key(|&(dist, psi)| (dist, psi.items().to_vec()));

        let phi_pow = |d: usize| -> f64 {
            if d == 0 {
                1.0
            } else {
                phi.powi(d as i32)
            }
        };
        let mass_all: f64 = scored.iter().map(|&(d, _)| phi_pow(d)).sum();

        // Walk the sub-rankings in order of increasing distance, generating
        // greedy modals, until enough modals are available.
        let d_target = self.num_proposals.max(1);
        let mut available: Vec<(Ranking, SubRanking, usize)> = Vec::new();
        let mut mass_selected_sub = 0.0;
        let mut selected_subrankings = 0usize;
        for &(dist, psi) in &scored {
            if available.len() >= d_target {
                break;
            }
            let modals = greedy_modals(psi, sigma, self.modal_cap);
            mass_selected_sub += phi_pow(dist);
            selected_subrankings += 1;
            for modal in modals {
                let modal_dist = kendall_tau(&modal, sigma);
                available.push((modal, psi.clone(), modal_dist));
            }
        }
        if available.is_empty() {
            return Ok(PreparedProposals::empty());
        }

        // Keep the d modals closest to the centre.
        available.sort_by_key(|(modal, _, dist)| (*dist, modal.items().to_vec()));
        let mass_all_modals: f64 = available.iter().map(|&(_, _, d)| phi_pow(d)).sum();
        let kept: Vec<(Ranking, SubRanking, usize)> =
            available.into_iter().take(d_target).collect();
        let mass_kept_modals: f64 = kept.iter().map(|&(_, _, d)| phi_pow(d)).sum();

        let compensation_subrankings = if mass_selected_sub > 0.0 {
            mass_all / mass_selected_sub
        } else {
            1.0
        };
        let compensation_modals = if mass_kept_modals > 0.0 {
            mass_all_modals / mass_kept_modals
        } else {
            1.0
        };

        let mut proposals = Vec::with_capacity(kept.len());
        for (modal, psi, _) in kept {
            let sampler = AmpSampler::for_subranking(modal, phi, &psi)?;
            proposals.push((sampler, psi));
        }
        Ok(PreparedProposals {
            proposals,
            compensation_subrankings,
            compensation_modals,
            total_subrankings: scored.len(),
            selected_subrankings,
        })
    }

    /// Runs the sampling stage on prepared proposals and returns the
    /// (optionally compensated) estimate.
    pub fn estimate_prepared(
        &self,
        mallows: &MallowsModel,
        prepared: &PreparedProposals,
        rng: &mut dyn RngCore,
    ) -> f64 {
        let d = prepared.proposals.len();
        if d == 0 {
            return 0.0;
        }
        let n = self.samples_per_proposal.max(1);
        let mut total = 0.0;
        for (proposal, _) in &prepared.proposals {
            for _ in 0..n {
                let (tau, _) = proposal.sample_with_prob(rng);
                let p = mallows.prob_of(&tau);
                let mix: f64 = prepared
                    .proposals
                    .iter()
                    .map(|(q, _)| q.prob_of(&tau))
                    .sum::<f64>()
                    / d as f64;
                if mix > 0.0 {
                    total += p / mix;
                }
            }
        }
        let mut estimate = total / (d * n) as f64;
        if self.compensation {
            estimate *= prepared.compensation_subrankings * prepared.compensation_modals;
        }
        estimate
    }
}

impl ApproxSolver for MisAmpLite {
    fn name(&self) -> &'static str {
        "mis-amp-lite"
    }

    fn estimate(
        &self,
        mallows: &MallowsModel,
        labeling: &Labeling,
        union: &PatternUnion,
        rng: &mut dyn RngCore,
    ) -> Result<f64> {
        if self.num_proposals == 0 || self.samples_per_proposal == 0 {
            return Err(SolverError::InvalidInstance(
                "MIS-AMP-lite needs at least one proposal and one sample".into(),
            ));
        }
        let prepared = self.prepare(mallows, labeling, union)?;
        Ok(self.estimate_prepared(mallows, &prepared, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::brute::BruteForceSolver;
    use crate::testutil::{cyclic_labeling, mallows, sel};
    use crate::traits::ExactSolver;
    use ppd_patterns::{Pattern, PatternUnion};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn relative_error(exact: f64, est: f64) -> f64 {
        if exact == 0.0 {
            est.abs()
        } else {
            ((est - exact) / exact).abs()
        }
    }

    #[test]
    fn accurate_on_two_label_unions() {
        let mut rng = StdRng::seed_from_u64(31);
        let model = mallows(6, 0.3);
        let lab = cyclic_labeling(6, 3);
        let union = PatternUnion::new(vec![
            Pattern::two_label(sel(2), sel(0)),
            Pattern::two_label(sel(1), sel(0)),
        ])
        .unwrap();
        let exact = BruteForceSolver::new()
            .solve(&model.to_rim(), &lab, &union)
            .unwrap();
        let solver = MisAmpLite::new(10, 2_000);
        let est = solver.estimate(&model, &lab, &union, &mut rng).unwrap();
        assert!(
            relative_error(exact, est) < 0.1,
            "exact {exact}, estimate {est}"
        );
    }

    #[test]
    fn accurate_on_rare_bipartite_unions() {
        // A low-probability union (the kind rejection sampling cannot handle).
        let mut rng = StdRng::seed_from_u64(47);
        let model = mallows(7, 0.1);
        let lab = cyclic_labeling(7, 7);
        let union = PatternUnion::singleton(
            Pattern::new(
                vec![sel(6), sel(5), sel(0), sel(1)],
                vec![(0, 2), (0, 3), (1, 3)],
            )
            .unwrap(),
        )
        .unwrap();
        let exact = BruteForceSolver::new()
            .solve(&model.to_rim(), &lab, &union)
            .unwrap();
        assert!(exact < 0.01, "the test needs a rare event, got {exact}");
        let solver = MisAmpLite::new(20, 2_000);
        let est = solver.estimate(&model, &lab, &union, &mut rng).unwrap();
        assert!(
            relative_error(exact, est) < 0.25,
            "exact {exact}, estimate {est}"
        );
    }

    #[test]
    fn accurate_on_general_chain_union() {
        let mut rng = StdRng::seed_from_u64(53);
        let model = mallows(6, 0.4);
        let lab = cyclic_labeling(6, 3);
        let chain = Pattern::new(vec![sel(1), sel(2), sel(0)], vec![(0, 1), (1, 2)]).unwrap();
        let union = PatternUnion::new(vec![chain, Pattern::two_label(sel(2), sel(1))]).unwrap();
        let exact = BruteForceSolver::new()
            .solve(&model.to_rim(), &lab, &union)
            .unwrap();
        let solver = MisAmpLite::new(15, 2_000);
        let est = solver.estimate(&model, &lab, &union, &mut rng).unwrap();
        assert!(
            relative_error(exact, est) < 0.15,
            "exact {exact}, estimate {est}"
        );
    }

    #[test]
    fn compensation_never_decreases_the_estimate() {
        let mut rng = StdRng::seed_from_u64(61);
        let model = mallows(6, 0.2);
        let lab = cyclic_labeling(6, 3);
        let union = PatternUnion::singleton(Pattern::two_label(sel(2), sel(0))).unwrap();
        let with = MisAmpLite::new(1, 500);
        let without = MisAmpLite::new(1, 500).without_compensation();
        let prepared = with.prepare(&model, &lab, &union).unwrap();
        assert!(prepared.compensation_subrankings >= 1.0);
        assert!(prepared.compensation_modals >= 1.0);
        let mut rng2 = StdRng::seed_from_u64(61);
        let est_with = with.estimate_prepared(&model, &prepared, &mut rng);
        let est_without = without.estimate_prepared(&model, &prepared, &mut rng2);
        assert!(est_with >= est_without);
    }

    #[test]
    fn unsatisfiable_union_estimates_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        let model = mallows(5, 0.5);
        let lab = cyclic_labeling(5, 3);
        let union = PatternUnion::singleton(Pattern::two_label(sel(8), sel(9))).unwrap();
        let est = MisAmpLite::new(5, 100)
            .estimate(&model, &lab, &union, &mut rng)
            .unwrap();
        assert_eq!(est, 0.0);
    }

    #[test]
    fn more_proposals_do_not_hurt_much() {
        // Accuracy with 10 proposals should be at least comparable to 1
        // proposal on a multi-pattern union (Figure 10's trend).
        let mut rng = StdRng::seed_from_u64(71);
        let model = mallows(7, 0.1);
        let lab = cyclic_labeling(7, 4);
        let union = PatternUnion::new(vec![
            Pattern::two_label(sel(3), sel(0)),
            Pattern::two_label(sel(2), sel(1)),
            Pattern::two_label(sel(3), sel(1)),
        ])
        .unwrap();
        let exact = BruteForceSolver::new()
            .solve(&model.to_rim(), &lab, &union)
            .unwrap();
        let few = MisAmpLite::new(1, 3_000)
            .estimate(&model, &lab, &union, &mut rng)
            .unwrap();
        let many = MisAmpLite::new(10, 3_000)
            .estimate(&model, &lab, &union, &mut rng)
            .unwrap();
        assert!(relative_error(exact, many) <= relative_error(exact, few) + 0.05);
    }
}
