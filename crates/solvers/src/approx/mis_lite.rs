//! MIS-AMP-lite: multiple importance sampling for pattern unions with
//! sub-ranking and modal pruning plus compensation (Section 5.5 of the paper).
//!
//! A pattern union corresponds to (possibly exponentially) many sub-rankings,
//! each with several posterior modes. MIS-AMP-lite keeps only `d` proposal
//! distributions: it sorts the sub-rankings by their estimated Kendall
//! distance from the Mallows centre (Algorithm 6), walks them in that order
//! generating greedy modals (Algorithm 5), and keeps the `d` modals closest
//! to the centre. Two compensation factors — `c_ψ` for the pruned
//! sub-rankings and `c_r` for the pruned modals — rescale the estimate by the
//! share of `φ^distance` mass the kept objects represent.

use crate::approx::mixture::{mixture_coefficients, mixture_weight_moments, stratified_allocation};
use crate::traits::{ApproxSolver, EstimateStats};
use crate::{Result, SolverError};
use ppd_patterns::{decompose_union, DecompositionLimits, Labeling, PatternError, PatternUnion};
use ppd_rim::{
    approximate_distance, greedy_modals, kendall_tau, AmpSampler, MallowsModel, Ranking, SubRanking,
};
use rand::RngCore;

/// Configuration of the MIS-AMP-lite estimator.
#[derive(Debug, Clone)]
pub struct MisAmpLite {
    /// Number of proposal distributions `d`.
    pub num_proposals: usize,
    /// Samples drawn from each proposal.
    pub samples_per_proposal: usize,
    /// Whether the compensation factors `c_ψ · c_r` are applied (Figure 11c
    /// and Figure 12 evaluate the estimator with this turned off).
    pub compensation: bool,
    /// Cap on the number of modals kept per sub-ranking by the greedy modal
    /// search.
    pub modal_cap: usize,
    /// Caps applied to the union decomposition.
    pub limits: DecompositionLimits,
}

impl Default for MisAmpLite {
    fn default() -> Self {
        MisAmpLite {
            num_proposals: 10,
            samples_per_proposal: 300,
            compensation: true,
            modal_cap: 64,
            limits: DecompositionLimits::default(),
        }
    }
}

/// Proposal distributions prepared for a particular (model, union) instance.
/// Preparing the proposals (decomposition + modal search) is the expensive,
/// sample-independent part of MIS-AMP-lite; Figure 13a reports it separately
/// from the sampling time, so the two stages are exposed separately here too.
#[derive(Debug)]
pub struct PreparedProposals {
    /// One AMP proposal sampler per kept modal, in pool order (modals
    /// closest to the Mallows centre first).
    samplers: Vec<AmpSampler>,
    /// Compensation factor for pruned sub-rankings (`c_ψ ≥ 1`).
    pub compensation_subrankings: f64,
    /// Compensation factor for pruned modals (`c_r ≥ 1`).
    pub compensation_modals: f64,
    /// Number of sub-rankings in the full decomposition.
    pub total_subrankings: usize,
    /// Number of sub-rankings that contributed proposals.
    pub selected_subrankings: usize,
}

impl PreparedProposals {
    /// An empty preparation representing a union with probability zero.
    fn empty() -> Self {
        PreparedProposals {
            samplers: Vec::new(),
            compensation_subrankings: 1.0,
            compensation_modals: 1.0,
            total_subrankings: 0,
            selected_subrankings: 0,
        }
    }

    /// Number of proposal distributions actually constructed.
    pub fn num_proposals(&self) -> usize {
        self.samplers.len()
    }

    /// The kept proposal samplers, in pool order. The sampling stage splits
    /// its budget across exactly this slice (see
    /// [`crate::approx::mixture::stratified_allocation`]); exposing it lets
    /// callers — benches, property tests — evaluate the same mixture the
    /// estimator weights against.
    pub fn samplers(&self) -> &[AmpSampler] {
        &self.samplers
    }
}

/// The sample-independent state of MIS-AMP-lite for one `(model, union)`
/// instance: the union decomposition, the distance-sorted sub-rankings, and
/// the greedy modals generated so far.
///
/// Building the pool (the decomposition) and extending its walk (the greedy
/// modal search) are the expensive parts of proposal preparation; drawing a
/// [`PreparedProposals`] for a given proposal count from an existing pool
/// only replays cheap bookkeeping. [`MisAmpAdaptive`] builds one pool per
/// instance and reuses it across its rounds of growing proposal counts,
/// instead of re-decomposing the union every round.
///
/// A pool is tied to the `(model, union, modal_cap, limits)` it was built
/// with; as long as the proposal counts drawn from it never decrease,
/// [`MisAmpLite::prepare_from_pool`] yields bit-identical proposals to a
/// fresh [`MisAmpLite::prepare`] with the same configuration (see its
/// documentation for the precise contract).
///
/// [`MisAmpAdaptive`]: crate::MisAmpAdaptive
#[derive(Debug, Clone)]
pub struct ProposalPool {
    sigma: Ranking,
    phi: f64,
    modal_cap: usize,
    /// Sub-rankings sorted by estimated distance from the centre.
    scored: Vec<(usize, SubRanking)>,
    /// Total `φ^distance` mass over every sub-ranking.
    mass_all: f64,
    /// Number of sub-rankings already consumed by the walk.
    walked: usize,
    /// `φ^distance` mass of the walked sub-rankings.
    mass_selected: f64,
    /// Modals generated so far: `(modal, sub-ranking, Kendall distance)`.
    available: Vec<(Ranking, SubRanking, usize)>,
    /// The union had no satisfiable member.
    unsatisfiable: bool,
}

impl ProposalPool {
    fn phi_pow(&self, d: usize) -> f64 {
        if d == 0 {
            1.0
        } else {
            self.phi.powi(d as i32)
        }
    }

    /// Walks further sub-rankings (in distance order) until at least
    /// `d_target` modals are available or the decomposition is exhausted,
    /// keeping `available` sorted by (distance, modal items) so that draws
    /// can slice the closest `d` without cloning or re-sorting the list.
    fn extend_to(&mut self, d_target: usize) {
        let before = self.available.len();
        while self.available.len() < d_target && self.walked < self.scored.len() {
            let (dist, psi) = self.scored[self.walked].clone();
            let modals = greedy_modals(&psi, &self.sigma, self.modal_cap);
            self.mass_selected += self.phi_pow(dist);
            self.walked += 1;
            for modal in modals {
                let modal_dist = kendall_tau(&modal, &self.sigma);
                self.available.push((modal, psi.clone(), modal_dist));
            }
        }
        if self.available.len() > before {
            self.available
                .sort_by(|(ma, _, da), (mb, _, db)| (da, ma.items()).cmp(&(db, mb.items())));
        }
    }

    /// Number of sub-rankings in the full decomposition.
    pub fn total_subrankings(&self) -> usize {
        self.scored.len()
    }
}

impl MisAmpLite {
    /// Convenience constructor fixing the two main knobs.
    pub fn new(num_proposals: usize, samples_per_proposal: usize) -> Self {
        MisAmpLite {
            num_proposals,
            samples_per_proposal,
            ..MisAmpLite::default()
        }
    }

    /// Disables the compensation factors (used by the ablation experiments).
    pub fn without_compensation(mut self) -> Self {
        self.compensation = false;
        self
    }

    /// Builds the reusable proposal pool for an instance: decomposes the
    /// union and scores its sub-rankings by estimated distance from the
    /// centre. The walk that generates greedy modals is performed lazily by
    /// [`MisAmpLite::prepare_from_pool`].
    pub fn build_pool(
        &self,
        mallows: &MallowsModel,
        labeling: &Labeling,
        union: &PatternUnion,
    ) -> Result<ProposalPool> {
        let universe = mallows.sigma().items();
        let sigma = mallows.sigma().clone();
        let phi = mallows.phi();
        let mut pool = ProposalPool {
            sigma,
            phi,
            modal_cap: self.modal_cap,
            scored: Vec::new(),
            mass_all: 0.0,
            walked: 0,
            mass_selected: 0.0,
            available: Vec::new(),
            unsatisfiable: false,
        };
        let decomposition = match decompose_union(union, universe, labeling, &self.limits) {
            Ok(d) => d,
            // No member is satisfiable: the probability is exactly zero.
            Err(PatternError::EmptySelector(_)) => {
                pool.unsatisfiable = true;
                return Ok(pool);
            }
            Err(e) => return Err(e.into()),
        };
        let mut scored: Vec<(usize, SubRanking)> = decomposition
            .subrankings
            .into_iter()
            .map(|psi| (approximate_distance(&psi, &pool.sigma), psi))
            .collect();
        scored.sort_by(|(da, pa), (db, pb)| (da, pa.items()).cmp(&(db, pb.items())));
        pool.mass_all = scored.iter().map(|&(d, _)| pool.phi_pow(d)).sum();
        pool.scored = scored;
        Ok(pool)
    }

    /// Draws the proposal distributions for this configuration's
    /// `num_proposals` from a pool, extending the pool's greedy-modal walk as
    /// needed, reusing the decomposition and every modal generated by
    /// earlier draws.
    ///
    /// Bit-identical with a fresh [`MisAmpLite::prepare`] **as long as the
    /// proposal counts drawn from one pool never decrease** (the adaptive
    /// solver's access pattern): the walk only ever extends, so a draw with
    /// a *smaller* count than an earlier one reuses the wider walk and
    /// yields different (more thoroughly compensated) factors than a fresh
    /// preparation would.
    pub fn prepare_from_pool(&self, pool: &mut ProposalPool) -> Result<PreparedProposals> {
        if pool.unsatisfiable {
            return Ok(PreparedProposals::empty());
        }
        let d_target = self.num_proposals.max(1);
        pool.extend_to(d_target);
        if pool.available.is_empty() {
            return Ok(PreparedProposals::empty());
        }

        // Keep the d modals closest to the centre: `available` is sorted by
        // `extend_to`, so the draw is a prefix slice — only the kept modals
        // are cloned (to build their samplers), never the whole pool.
        let mass_all_modals: f64 = pool
            .available
            .iter()
            .map(|&(_, _, d)| pool.phi_pow(d))
            .sum();
        let kept: &[(Ranking, SubRanking, usize)] =
            &pool.available[..d_target.min(pool.available.len())];
        let mass_kept_modals: f64 = kept.iter().map(|&(_, _, d)| pool.phi_pow(d)).sum();

        let compensation_subrankings = if pool.mass_selected > 0.0 {
            pool.mass_all / pool.mass_selected
        } else {
            1.0
        };
        let compensation_modals = if mass_kept_modals > 0.0 {
            mass_all_modals / mass_kept_modals
        } else {
            1.0
        };

        let mut samplers = Vec::with_capacity(kept.len());
        for (modal, psi, _) in kept {
            samplers.push(AmpSampler::for_subranking(modal.clone(), pool.phi, psi)?);
        }
        Ok(PreparedProposals {
            samplers,
            compensation_subrankings,
            compensation_modals,
            total_subrankings: pool.scored.len(),
            selected_subrankings: pool.walked,
        })
    }

    /// Builds the proposal distributions for the given instance.
    pub fn prepare(
        &self,
        mallows: &MallowsModel,
        labeling: &Labeling,
        union: &PatternUnion,
    ) -> Result<PreparedProposals> {
        let mut pool = self.build_pool(mallows, labeling, union)?;
        self.prepare_from_pool(&mut pool)
    }

    /// Runs the sampling stage on prepared proposals and returns the
    /// (optionally compensated) estimate — a proper probability in `[0, 1]`
    /// by construction. The total mixture budget is `d · samples_per_proposal`
    /// (see [`MisAmpLite::estimate_prepared_total`] for an explicit budget).
    ///
    /// The plain MIS average estimates the probability of the **covered
    /// region**: the rankings reachable from the kept proposals. Pruning
    /// compensation extrapolates from there to the full union using the
    /// `φ^distance` mass ratios `c_ψ · c_r ≥ 1`. Multiplying the covered
    /// probability directly (the original Section 5.5 heuristic) over-counts
    /// the overlap between sub-ranking events and pushed the raw estimator
    /// above 1 on high-probability unions; the factors are therefore applied
    /// in **odds space** (see `compensate` below), which agrees with the
    /// multiplicative form to first order in the covered probability — the
    /// rare-event regime compensation exists for — while saturating below 1
    /// as the covered probability grows.
    pub fn estimate_prepared(
        &self,
        mallows: &MallowsModel,
        prepared: &PreparedProposals,
        rng: &mut dyn RngCore,
    ) -> f64 {
        self.estimate_prepared_with_moments(mallows, prepared, rng)
            .0
    }

    /// [`MisAmpLite::estimate_prepared`], additionally reporting the first
    /// and second moments of the per-sample MIS weights. The estimate is
    /// bit-identical to [`MisAmpLite::estimate_prepared`] with the same RNG
    /// state: the weight sum is accumulated by exactly the same operations
    /// (the extra squared-weight accumulator never feeds back into it). The
    /// error-budgeted estimator uses the moments to size its sample budget
    /// from the empirical variance.
    pub fn estimate_prepared_with_moments(
        &self,
        mallows: &MallowsModel,
        prepared: &PreparedProposals,
        rng: &mut dyn RngCore,
    ) -> (f64, SampleMoments) {
        let total = prepared.num_proposals() * self.samples_per_proposal.max(1);
        self.estimate_prepared_total(mallows, prepared, total, rng)
    }

    /// The sampling stage with an explicit **total** mixture budget: the
    /// budget is split across the kept proposals by
    /// [`stratified_allocation`] (in pool order — the closest modals take the
    /// remainder), every sample is weighted against the balance-heuristic
    /// mixture `Σ_i (n_i/N)·q_i` over **all** kept proposals, and the mean
    /// weight (clamped, then compensated in odds space) is the estimate.
    /// Samples where the mixture density vanishes contribute zero and are
    /// counted in [`SampleMoments::zero_density`].
    ///
    /// This is the entry point the error-budgeted estimator doubles through:
    /// growing `total` directly — rather than in per-proposal quota steps of
    /// `d` — lets its confidence interval close at the smallest sufficient
    /// budget.
    pub fn estimate_prepared_total(
        &self,
        mallows: &MallowsModel,
        prepared: &PreparedProposals,
        total_samples: usize,
        rng: &mut dyn RngCore,
    ) -> (f64, SampleMoments) {
        let d = prepared.num_proposals();
        if d == 0 {
            return (0.0, SampleMoments::default());
        }
        let total = total_samples.max(1);
        let allocation = stratified_allocation(total, d);
        let coefficients = mixture_coefficients(&allocation, total);
        let moments = mixture_weight_moments(
            mallows,
            prepared.samplers(),
            &allocation,
            &coefficients,
            rng,
        );
        // The uncompensated MIS average estimates the covered-region
        // probability; finite-sample noise can stray marginally above 1, so
        // clamp before compensating (exactly what the compensation-free
        // estimator always did).
        let covered = moments.mean().clamp(0.0, 1.0);
        let estimate = if self.compensation {
            compensate(
                covered,
                prepared.compensation_subrankings * prepared.compensation_modals,
            )
        } else {
            covered
        };
        debug_assert!(
            (0.0..=1.0).contains(&estimate),
            "odds-space compensation must yield a probability, got {estimate}"
        );
        (estimate.clamp(0.0, 1.0), moments)
    }
}

/// First and second moments of the per-sample MIS weights from one sampling
/// pass, as reported by [`MisAmpLite::estimate_prepared_with_moments`]. The
/// mean of the weights estimates the covered-region probability; the moments
/// give its empirical variance, which the error-budgeted estimator turns into
/// a confidence-interval halfwidth.
#[derive(Debug, Clone, Copy, Default)]
pub struct SampleMoments {
    /// Sum of the per-sample weights (samples with zero mixture probability
    /// contribute zero).
    pub sum: f64,
    /// Sum of the squared per-sample weights.
    pub sum_squares: f64,
    /// Total number of samples drawn.
    pub samples: usize,
    /// Samples on which every kept proposal had zero density: they
    /// contribute zero weight, so a large count means the kept mixture
    /// covers its own draws poorly (an estimator-health signal, surfaced as
    /// a solver stat and an observability counter by the engine).
    pub zero_density: usize,
}

impl SampleMoments {
    /// Mean of the per-sample weights: the uncompensated covered-region
    /// estimate, before clamping.
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum / self.samples as f64
        }
    }

    /// Unbiased sample variance of the per-sample weights.
    pub fn variance(&self) -> f64 {
        if self.samples < 2 {
            return 0.0;
        }
        let n = self.samples as f64;
        let mean = self.mean();
        ((self.sum_squares - n * mean * mean) / (n - 1.0)).max(0.0)
    }

    /// Standard error of the mean weight.
    pub fn standard_error(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            (self.variance() / self.samples as f64).sqrt()
        }
    }
}

/// Applies a pruning-compensation factor `c ≥ 1` to the covered-region
/// probability `p` in **odds space**: `p′ = c·p / (c·p + (1 − p))`, i.e. the
/// odds `p/(1−p)` are multiplied by `c` rather than the probability itself.
///
/// This is the normalization that makes the compensated estimator a proper
/// probability: for any `p ∈ [0, 1]` and `c ≥ 1` the result is in `[p, 1]`,
/// and for small `p` it reduces to the multiplicative `c·p` (to first order)
/// that the paper's compensation targets. `c = 1` (nothing pruned) is an
/// exact no-op bit for bit.
pub(crate) fn compensate(p: f64, c: f64) -> f64 {
    if c <= 1.0 {
        return p;
    }
    let scaled = c * p;
    scaled / (scaled + (1.0 - p))
}

impl ApproxSolver for MisAmpLite {
    fn name(&self) -> &'static str {
        "mis-amp-lite"
    }

    fn estimate(
        &self,
        mallows: &MallowsModel,
        labeling: &Labeling,
        union: &PatternUnion,
        rng: &mut dyn RngCore,
    ) -> Result<f64> {
        if self.num_proposals == 0 || self.samples_per_proposal == 0 {
            return Err(SolverError::InvalidInstance(
                "MIS-AMP-lite needs at least one proposal and one sample".into(),
            ));
        }
        let prepared = self.prepare(mallows, labeling, union)?;
        Ok(self.estimate_prepared(mallows, &prepared, rng))
    }

    fn estimate_with_stats(
        &self,
        mallows: &MallowsModel,
        labeling: &Labeling,
        union: &PatternUnion,
        rng: &mut dyn RngCore,
    ) -> Result<(f64, EstimateStats)> {
        if self.num_proposals == 0 || self.samples_per_proposal == 0 {
            return Err(SolverError::InvalidInstance(
                "MIS-AMP-lite needs at least one proposal and one sample".into(),
            ));
        }
        let prepared = self.prepare(mallows, labeling, union)?;
        let (estimate, moments) = self.estimate_prepared_with_moments(mallows, &prepared, rng);
        Ok((
            estimate,
            EstimateStats {
                samples: moments.samples,
                zero_density_samples: moments.zero_density,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::brute::BruteForceSolver;
    use crate::testutil::{cyclic_labeling, mallows, sel};
    use crate::traits::ExactSolver;
    use ppd_patterns::{Pattern, PatternUnion};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn relative_error(exact: f64, est: f64) -> f64 {
        if exact == 0.0 {
            est.abs()
        } else {
            ((est - exact) / exact).abs()
        }
    }

    #[test]
    fn accurate_on_two_label_unions() {
        let mut rng = StdRng::seed_from_u64(31);
        let model = mallows(6, 0.3);
        let lab = cyclic_labeling(6, 3);
        let union = PatternUnion::new(vec![
            Pattern::two_label(sel(2), sel(0)),
            Pattern::two_label(sel(1), sel(0)),
        ])
        .unwrap();
        let exact = BruteForceSolver::new()
            .solve(&model.to_rim(), &lab, &union)
            .unwrap();
        let solver = MisAmpLite::new(10, 2_000);
        let est = solver.estimate(&model, &lab, &union, &mut rng).unwrap();
        assert!(
            relative_error(exact, est) < 0.1,
            "exact {exact}, estimate {est}"
        );
    }

    #[test]
    fn accurate_on_rare_bipartite_unions() {
        // A low-probability union (the kind rejection sampling cannot handle).
        let mut rng = StdRng::seed_from_u64(47);
        let model = mallows(7, 0.1);
        let lab = cyclic_labeling(7, 7);
        let union = PatternUnion::singleton(
            Pattern::new(
                vec![sel(6), sel(5), sel(0), sel(1)],
                vec![(0, 2), (0, 3), (1, 3)],
            )
            .unwrap(),
        )
        .unwrap();
        let exact = BruteForceSolver::new()
            .solve(&model.to_rim(), &lab, &union)
            .unwrap();
        assert!(exact < 0.01, "the test needs a rare event, got {exact}");
        let solver = MisAmpLite::new(20, 2_000);
        let est = solver.estimate(&model, &lab, &union, &mut rng).unwrap();
        assert!(
            relative_error(exact, est) < 0.25,
            "exact {exact}, estimate {est}"
        );
    }

    #[test]
    fn accurate_on_general_chain_union() {
        let mut rng = StdRng::seed_from_u64(53);
        let model = mallows(6, 0.4);
        let lab = cyclic_labeling(6, 3);
        let chain = Pattern::new(vec![sel(1), sel(2), sel(0)], vec![(0, 1), (1, 2)]).unwrap();
        let union = PatternUnion::new(vec![chain, Pattern::two_label(sel(2), sel(1))]).unwrap();
        let exact = BruteForceSolver::new()
            .solve(&model.to_rim(), &lab, &union)
            .unwrap();
        let solver = MisAmpLite::new(15, 2_000);
        let est = solver.estimate(&model, &lab, &union, &mut rng).unwrap();
        assert!(
            relative_error(exact, est) < 0.15,
            "exact {exact}, estimate {est}"
        );
    }

    #[test]
    fn compensation_never_decreases_the_estimate() {
        let mut rng = StdRng::seed_from_u64(61);
        let model = mallows(6, 0.2);
        let lab = cyclic_labeling(6, 3);
        let union = PatternUnion::singleton(Pattern::two_label(sel(2), sel(0))).unwrap();
        let with = MisAmpLite::new(1, 500);
        let without = MisAmpLite::new(1, 500).without_compensation();
        let prepared = with.prepare(&model, &lab, &union).unwrap();
        assert!(prepared.compensation_subrankings >= 1.0);
        assert!(prepared.compensation_modals >= 1.0);
        let mut rng2 = StdRng::seed_from_u64(61);
        let est_with = with.estimate_prepared(&model, &prepared, &mut rng);
        let est_without = without.estimate_prepared(&model, &prepared, &mut rng2);
        assert!(est_with >= est_without);
    }

    #[test]
    fn pool_based_preparation_matches_fresh_preparation() {
        let model = mallows(6, 0.4);
        let lab = cyclic_labeling(6, 3);
        let chain = Pattern::new(vec![sel(1), sel(2), sel(0)], vec![(0, 1), (1, 2)]).unwrap();
        let union = PatternUnion::new(vec![chain, Pattern::two_label(sel(2), sel(1))]).unwrap();
        let mut pool = MisAmpLite::default()
            .build_pool(&model, &lab, &union)
            .unwrap();
        // Growing proposal counts, as the adaptive solver requests them.
        for d in [1usize, 3, 6, 12] {
            let lite = MisAmpLite::new(d, 200);
            let fresh = lite.prepare(&model, &lab, &union).unwrap();
            let pooled = lite.prepare_from_pool(&mut pool).unwrap();
            assert_eq!(fresh.num_proposals(), pooled.num_proposals());
            assert_eq!(
                fresh.compensation_subrankings,
                pooled.compensation_subrankings
            );
            assert_eq!(fresh.compensation_modals, pooled.compensation_modals);
            assert_eq!(fresh.total_subrankings, pooled.total_subrankings);
            assert_eq!(fresh.selected_subrankings, pooled.selected_subrankings);
            let mut rng_fresh = StdRng::seed_from_u64(99);
            let mut rng_pooled = StdRng::seed_from_u64(99);
            let est_fresh = lite.estimate_prepared(&model, &fresh, &mut rng_fresh);
            let est_pooled = lite.estimate_prepared(&model, &pooled, &mut rng_pooled);
            assert_eq!(est_fresh, est_pooled);
        }
    }

    #[test]
    fn pruning_compensation_is_a_proper_probability() {
        // A certain union (`a ≻ b ∨ b ≻ a` over non-empty labels) estimated
        // with a single kept proposal: heavy pruning makes `c_ψ · c_r` large,
        // and the *multiplicative* compensation of the original Section 5.5
        // heuristic pushed the raw estimator above 1 here (PR 1's agreement
        // tests dodged the case by using a proposal budget large enough that
        // nothing was pruned). The odds-space normalization must instead
        // yield a probability that still tracks the exact answer.
        let model = mallows(6, 0.8);
        let lab = cyclic_labeling(6, 2);
        let union = PatternUnion::new(vec![
            Pattern::two_label(sel(0), sel(1)),
            Pattern::two_label(sel(1), sel(0)),
        ])
        .unwrap();
        let exact = BruteForceSolver::new()
            .solve(&model.to_rim(), &lab, &union)
            .unwrap();
        assert!(exact > 0.999, "the union is certain, got {exact}");
        let solver = MisAmpLite::new(1, 400);
        let prepared = solver.prepare(&model, &lab, &union).unwrap();
        let mut rng_nc = StdRng::seed_from_u64(13);
        let uncompensated =
            solver
                .clone()
                .without_compensation()
                .estimate_prepared(&model, &prepared, &mut rng_nc);
        let factors = prepared.compensation_subrankings * prepared.compensation_modals;
        assert!(
            uncompensated * factors > 1.0,
            "the regression premise needs the multiplicative form to overshoot, got {}",
            uncompensated * factors
        );
        let mut rng = StdRng::seed_from_u64(13);
        let est = solver.estimate_prepared(&model, &prepared, &mut rng);
        assert!(
            (0.0..=1.0).contains(&est),
            "normalized compensation must stay a probability, got {est}"
        );
        assert!(
            est > uncompensated,
            "compensation must still push the covered estimate ({uncompensated}) up, got {est}"
        );
        assert!(
            (exact - est).abs() < 0.2,
            "normalized estimate {est} should track the exact answer {exact}"
        );
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        // Exact-bits regression pin for the buffer-reuse optimization and
        // the mixture weighting: re-run the sampling loop with a fresh
        // allocation per sample (via the allocating public entry points),
        // weighting each sample against the coefficient-weighted mixture,
        // and require the production loop — which reuses one scratch set
        // across all samples and batches the density evaluation through
        // `AmpSampler::mix_prob_of` — to produce the same bits.
        let model = mallows(6, 0.35);
        let lab = cyclic_labeling(6, 3);
        let chain = Pattern::new(vec![sel(1), sel(2), sel(0)], vec![(0, 1), (1, 2)]).unwrap();
        let union = PatternUnion::new(vec![chain, Pattern::two_label(sel(2), sel(1))]).unwrap();
        for &(seed, n) in &[(2024u64, 150usize), (7u64, 300)] {
            let solver = MisAmpLite::new(4, n);
            let prepared = solver.prepare(&model, &lab, &union).unwrap();
            let d = prepared.num_proposals();
            assert!(d > 0);
            let total_budget = d * n;
            // Equal stratified allocation (d divides the budget), so every
            // mixture coefficient is n / (d·n) — computed exactly as the
            // production path computes it.
            let coefficients: Vec<f64> = vec![n as f64 / total_budget as f64; d];
            let mut rng = StdRng::seed_from_u64(seed);
            let mut total = 0.0;
            for sampler in prepared.samplers() {
                for _ in 0..n {
                    let (tau, _) = sampler.sample_with_prob(&mut rng);
                    let p = model.prob_of(&tau);
                    let mix: f64 = prepared
                        .samplers()
                        .iter()
                        .zip(&coefficients)
                        .map(|(q, &c)| c * q.prob_of(&tau))
                        .sum();
                    if mix > 0.0 {
                        total += p / mix;
                    }
                }
            }
            let covered = (total / total_budget as f64).clamp(0.0, 1.0);
            let expected = super::compensate(
                covered,
                prepared.compensation_subrankings * prepared.compensation_modals,
            );
            let mut rng = StdRng::seed_from_u64(seed);
            let got = solver.estimate_prepared(&model, &prepared, &mut rng);
            assert_eq!(
                expected.to_bits(),
                got.to_bits(),
                "seed {seed}: naive {expected} vs scratch {got}"
            );
        }
    }

    #[test]
    fn total_budget_entry_point_allocates_stratified() {
        // A budget that does not divide evenly must still draw exactly
        // `total` samples, with the remainder going to the closest modals,
        // and `d · n` budgets must match the per-proposal entry point bit
        // for bit.
        let model = mallows(6, 0.4);
        let lab = cyclic_labeling(6, 3);
        let chain = Pattern::new(vec![sel(1), sel(2), sel(0)], vec![(0, 1), (1, 2)]).unwrap();
        let union = PatternUnion::new(vec![chain, Pattern::two_label(sel(2), sel(1))]).unwrap();
        let solver = MisAmpLite::new(4, 100);
        let prepared = solver.prepare(&model, &lab, &union).unwrap();
        let d = prepared.num_proposals();
        assert!(d > 1);

        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(3);
        let (est_a, mom_a) = solver.estimate_prepared_with_moments(&model, &prepared, &mut rng_a);
        let (est_b, mom_b) = solver.estimate_prepared_total(&model, &prepared, d * 100, &mut rng_b);
        assert_eq!(est_a.to_bits(), est_b.to_bits());
        assert_eq!(mom_a.samples, mom_b.samples);

        let mut rng = StdRng::seed_from_u64(4);
        let (_, moments) = solver.estimate_prepared_total(&model, &prepared, 101, &mut rng);
        assert_eq!(moments.samples, 101, "awkward budgets are spent exactly");
    }

    #[test]
    fn unsatisfiable_union_estimates_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        let model = mallows(5, 0.5);
        let lab = cyclic_labeling(5, 3);
        let union = PatternUnion::singleton(Pattern::two_label(sel(8), sel(9))).unwrap();
        let est = MisAmpLite::new(5, 100)
            .estimate(&model, &lab, &union, &mut rng)
            .unwrap();
        assert_eq!(est, 0.0);
    }

    #[test]
    fn more_proposals_do_not_hurt_much() {
        // Accuracy with 10 proposals should be at least comparable to 1
        // proposal on a multi-pattern union (Figure 10's trend).
        let mut rng = StdRng::seed_from_u64(71);
        let model = mallows(7, 0.1);
        let lab = cyclic_labeling(7, 4);
        let union = PatternUnion::new(vec![
            Pattern::two_label(sel(3), sel(0)),
            Pattern::two_label(sel(2), sel(1)),
            Pattern::two_label(sel(3), sel(1)),
        ])
        .unwrap();
        let exact = BruteForceSolver::new()
            .solve(&model.to_rim(), &lab, &union)
            .unwrap();
        let few = MisAmpLite::new(1, 3_000)
            .estimate(&model, &lab, &union, &mut rng)
            .unwrap();
        let many = MisAmpLite::new(10, 3_000)
            .estimate(&model, &lab, &union, &mut rng)
            .unwrap();
        assert!(relative_error(exact, many) <= relative_error(exact, few) + 0.05);
    }
}
