//! IS-AMP: importance sampling with a single AMP proposal distribution
//! (Section 5.3 of the paper).

use crate::Result;
use ppd_rim::{AmpSampler, MallowsModel, SubRanking};
use rand::RngCore;

/// Estimates `Pr(τ |= ψ)` for `τ ∼ MAL(σ, φ)` — the probability that a random
/// ranking is consistent with the sub-ranking `ψ` — by importance sampling
/// with the proposal distribution `AMP(σ, φ, ψ)`.
///
/// Every sample drawn from the proposal satisfies `ψ`, so the indicator is
/// identically 1 and the estimator reduces to the mean importance factor
/// `p(x) / q(x)`. As Example 5.1 of the paper shows, a single proposal
/// centred on `σ` can badly underestimate multi-modal posteriors; the
/// MIS-AMP estimator addresses that.
pub fn is_amp_estimate(
    mallows: &MallowsModel,
    psi: &SubRanking,
    num_samples: usize,
    rng: &mut dyn RngCore,
) -> Result<f64> {
    let sampler = AmpSampler::for_subranking(mallows.sigma().clone(), mallows.phi(), psi)?;
    let mut total = 0.0;
    let n = num_samples.max(1);
    for _ in 0..n {
        let (tau, q) = sampler.sample_with_prob(rng);
        let p = mallows.prob_of(&tau);
        if q > 0.0 {
            total += p / q;
        }
    }
    // Importance weights have unbounded variance in the tails, so the raw
    // mean can stray above 1; clamp to the valid probability range.
    Ok((total / n as f64).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppd_rim::Ranking;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Exact Pr(τ consistent with ψ) by enumeration.
    fn exact_consistency(mallows: &MallowsModel, psi: &SubRanking) -> f64 {
        Ranking::enumerate_all(mallows.sigma().items())
            .iter()
            .filter(|t| psi.is_consistent(t))
            .map(|t| mallows.prob_of(t))
            .sum()
    }

    #[test]
    fn unconstrained_subranking_estimates_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = MallowsModel::new(Ranking::identity(5), 0.4).unwrap();
        let est = is_amp_estimate(&model, &SubRanking::empty(), 500, &mut rng).unwrap();
        assert!((est - 1.0).abs() < 1e-9);
    }

    #[test]
    fn accurate_on_unimodal_posteriors() {
        // ψ consistent with the centre: the posterior is unimodal around σ
        // and a single proposal suffices.
        let mut rng = StdRng::seed_from_u64(11);
        let model = MallowsModel::new(Ranking::identity(6), 0.5).unwrap();
        let psi = SubRanking::new(vec![1, 3, 5]).unwrap();
        let exact = exact_consistency(&model, &psi);
        let est = is_amp_estimate(&model, &psi, 20_000, &mut rng).unwrap();
        assert!(
            ((est - exact) / exact).abs() < 0.05,
            "exact {exact}, estimate {est}"
        );
    }

    #[test]
    fn example_5_1_proposal_ignores_second_mode() {
        // Example 5.1: ψ = ⟨σ3, σ1⟩ with φ = 0.01 has a bimodal posterior
        // (modes ⟨σ3,σ1,σ2⟩ and ⟨σ2,σ3,σ1⟩). The single AMP proposal centred
        // on σ places almost all of its mass on the first mode, which is what
        // makes the plain IS-AMP estimator extremely high-variance here.
        let model = MallowsModel::new(Ranking::new(vec![1, 2, 3]).unwrap(), 0.01).unwrap();
        let psi = SubRanking::new(vec![3, 1]).unwrap();
        let sampler =
            ppd_rim::AmpSampler::for_subranking(model.sigma().clone(), model.phi(), &psi).unwrap();
        let mode_a = Ranking::new(vec![3, 1, 2]).unwrap();
        let mode_b = Ranking::new(vec![2, 3, 1]).unwrap();
        // The two modes carry (essentially) equal posterior mass…
        assert!((model.prob_of(&mode_a) - model.prob_of(&mode_b)).abs() < 1e-9);
        // …but the proposal all but ignores the second one.
        assert!(sampler.prob_of(&mode_a) > 0.9);
        assert!(sampler.prob_of(&mode_b) < 0.05);
        // With plenty of samples the estimator still converges (it is
        // unbiased), so accuracy itself is not the failure mode.
        let mut rng = StdRng::seed_from_u64(19);
        let exact = exact_consistency(&model, &psi);
        let est = is_amp_estimate(&model, &psi, 20_000, &mut rng).unwrap();
        assert!(((est - exact) / exact).abs() < 0.5);
    }
}
