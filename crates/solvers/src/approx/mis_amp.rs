//! MIS-AMP: multiple importance sampling for a single sub-ranking
//! (Section 5.4 of the paper).

use crate::approx::mixture::{mixture_coefficients, mixture_weight_moments, stratified_allocation};
use crate::Result;
use ppd_rim::{greedy_modals, AmpSampler, MallowsModel, SubRanking};
use rand::RngCore;

/// Estimates `Pr(τ |= ψ)` for `τ ∼ MAL(σ, φ)` with Multiple Importance
/// Sampling: the greedy modal search (Algorithm 5) locates the modes of the
/// posterior conditioned on `ψ`, one AMP proposal distribution is built per
/// mode, and a total budget of `modes × samples_per_proposal` samples is
/// drawn from their stratified mixture and combined with the balance
/// heuristic of Veach & Guibas (Eq. 6 of the paper).
///
/// The sampling pass reuses hoisted scratch buffers throughout (no per-call
/// modal clones, no per-sample allocation); the scratch-free replication in
/// `mixture_semantics_are_bit_pinned` pins the exact bits.
pub fn mis_amp_estimate(
    mallows: &MallowsModel,
    psi: &SubRanking,
    samples_per_proposal: usize,
    modal_cap: usize,
    rng: &mut dyn RngCore,
) -> Result<f64> {
    let modals = greedy_modals(psi, mallows.sigma(), modal_cap);
    // The modal rankings are moved into their samplers rather than cloned —
    // the modal list has no further use here.
    let proposals: Vec<AmpSampler> = modals
        .into_iter()
        .map(|modal| AmpSampler::for_subranking(modal, mallows.phi(), psi))
        .collect::<std::result::Result<_, _>>()?;
    let d = proposals.len();
    if d == 0 {
        return Ok(0.0);
    }
    let total = d * samples_per_proposal.max(1);
    let allocation = stratified_allocation(total, d);
    let coefficients = mixture_coefficients(&allocation, total);
    let moments = mixture_weight_moments(mallows, &proposals, &allocation, &coefficients, rng);
    // Importance weights have unbounded variance in the tails, so the raw
    // mean can stray above 1; clamp to the valid probability range.
    Ok(moments.mean().clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppd_rim::Ranking;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn exact_consistency(mallows: &MallowsModel, psi: &SubRanking) -> f64 {
        Ranking::enumerate_all(mallows.sigma().items())
            .iter()
            .filter(|t| psi.is_consistent(t))
            .map(|t| mallows.prob_of(t))
            .sum()
    }

    #[test]
    fn example_5_2_recovers_multimodal_mass() {
        // The instance on which IS-AMP fails (Example 5.1/5.2): MIS-AMP with
        // both greedy modals recovers the full posterior mass.
        let mut rng = StdRng::seed_from_u64(23);
        let model = MallowsModel::new(Ranking::new(vec![1, 2, 3]).unwrap(), 0.01).unwrap();
        let psi = SubRanking::new(vec![3, 1]).unwrap();
        let exact = exact_consistency(&model, &psi);
        let est = mis_amp_estimate(&model, &psi, 5_000, 16, &mut rng).unwrap();
        assert!(
            ((est - exact) / exact).abs() < 0.1,
            "exact {exact}, estimate {est}"
        );
    }

    #[test]
    fn accurate_across_dispersions() {
        let mut rng = StdRng::seed_from_u64(5);
        for &phi in &[0.1, 0.5, 0.9] {
            let model = MallowsModel::new(Ranking::identity(6), phi).unwrap();
            let psi = SubRanking::new(vec![4, 1, 5]).unwrap();
            let exact = exact_consistency(&model, &psi);
            let est = mis_amp_estimate(&model, &psi, 4_000, 32, &mut rng).unwrap();
            assert!(
                ((est - exact) / exact).abs() < 0.15,
                "phi={phi}: exact {exact}, estimate {est}"
            );
        }
    }

    #[test]
    fn mixture_semantics_are_bit_pinned() {
        // Exact-bits regression pin for the allocation hoisting: replicate
        // the estimator with the allocating public entry points (fresh
        // buffers per sample, per-component `prob_of` calls) under the same
        // mixture weighting, and require identical bits from the production
        // scratch-reusing pass.
        let model = MallowsModel::new(Ranking::identity(6), 0.45).unwrap();
        let psi = SubRanking::new(vec![4, 1, 5]).unwrap();
        for &(seed, n, cap) in &[(19u64, 120usize, 16usize), (4u64, 250, 32)] {
            let modals = ppd_rim::greedy_modals(&psi, model.sigma(), cap);
            let proposals: Vec<AmpSampler> = modals
                .iter()
                .map(|modal| AmpSampler::for_subranking(modal.clone(), model.phi(), &psi))
                .collect::<std::result::Result<_, _>>()
                .unwrap();
            let d = proposals.len();
            assert!(d > 0);
            let total = d * n;
            let coefficients = vec![n as f64 / total as f64; d];
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sum = 0.0;
            for proposal in &proposals {
                for _ in 0..n {
                    let (tau, _) = proposal.sample_with_prob(&mut rng);
                    let p = model.prob_of(&tau);
                    let mix: f64 = proposals
                        .iter()
                        .zip(&coefficients)
                        .map(|(q, &c)| c * q.prob_of(&tau))
                        .sum();
                    if mix > 0.0 {
                        sum += p / mix;
                    }
                }
            }
            let expected = (sum / total as f64).clamp(0.0, 1.0);
            let mut rng = StdRng::seed_from_u64(seed);
            let got = mis_amp_estimate(&model, &psi, n, cap, &mut rng).unwrap();
            assert_eq!(
                expected.to_bits(),
                got.to_bits(),
                "seed {seed}: naive {expected} vs production {got}"
            );
        }
    }

    #[test]
    fn empty_subranking_estimates_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = MallowsModel::new(Ranking::identity(5), 0.3).unwrap();
        let est = mis_amp_estimate(&model, &SubRanking::empty(), 200, 8, &mut rng).unwrap();
        assert!((est - 1.0).abs() < 1e-9);
    }
}
