//! Error-budgeted MIS-AMP: sample until an empirical confidence interval on
//! the estimate closes to a caller-specified halfwidth.
//!
//! The fixed-budget estimators take a samples-per-proposal knob whose right
//! value depends on the instance: easy unions waste samples, hard ones come
//! back noisier than the caller can tolerate. [`MisAmpBudgeted`] instead takes
//! an *error budget* `(ε, confidence)` and runs MIS-AMP-lite in doubling
//! rounds, after each round computing a normal-approximation confidence
//! interval on the estimate from the empirical variance of the MIS weights
//! ([`SampleMoments`]). It stops as soon as the interval's halfwidth is at
//! most `ε`, or reports non-convergence after the final round so the caller
//! can fall back to an exact solver.
//!
//! Determinism: the proposal preparation is deterministic, all rounds draw
//! from one seeded RNG stream, and every stopping decision is a pure function
//! of the recorded moments — so the total sample budget, and therefore the
//! estimate, depend only on the instance and the seed. The evaluation
//! engine's bit-reproducibility contract holds in error-budget mode exactly
//! as it does for the fixed-budget estimators.

use crate::approx::mis_lite::{compensate, MisAmpLite, ProposalPool, SampleMoments};
use crate::{Result, SolverError};
use ppd_patterns::{DecompositionLimits, Labeling, PatternUnion};
use ppd_rim::MallowsModel;
use rand::RngCore;

/// Configuration of the error-budgeted estimator.
#[derive(Debug, Clone)]
pub struct MisAmpBudgeted {
    /// Target confidence-interval halfwidth on the (absolute) probability.
    pub epsilon: f64,
    /// Coverage of the interval, e.g. `0.95`.
    pub confidence: f64,
    /// Number of proposal distributions (fixed across rounds).
    pub num_proposals: usize,
    /// Total mixture samples in the first round; each round doubles the
    /// total. The budget is split across the proposal pool by stratified
    /// allocation, so a round can be smaller than the proposal count —
    /// easy unions converge on a handful of samples instead of a full
    /// per-proposal quota.
    pub initial_samples: usize,
    /// Maximum number of doubling rounds before giving up.
    pub max_rounds: usize,
    /// Cap on modals per sub-ranking (forwarded to MIS-AMP-lite).
    pub modal_cap: usize,
    /// Decomposition caps (forwarded to MIS-AMP-lite).
    pub limits: DecompositionLimits,
}

impl MisAmpBudgeted {
    /// A configuration targeting the given error budget with the default
    /// sampling shape (10 proposals, 64 total initial samples, 12 doubling
    /// rounds — a worst case of `64 × (2¹² − 1) ≈ 262k` samples before the
    /// exact fallback). The first rounds are an order of magnitude smaller
    /// than the per-proposal-quota scheme they replaced (which started at
    /// `64 × 10` samples), so easy instances stop much earlier; the extra
    /// rounds at the top keep the worst-case certification power.
    pub fn new(epsilon: f64, confidence: f64) -> Self {
        MisAmpBudgeted {
            epsilon,
            confidence,
            num_proposals: 10,
            initial_samples: 64,
            max_rounds: 12,
            modal_cap: 64,
            limits: DecompositionLimits::default(),
        }
    }

    /// The MIS-AMP-lite configuration whose preparation and total-budget
    /// sampling stage this estimator drives.
    fn lite(&self) -> MisAmpLite {
        MisAmpLite {
            num_proposals: self.num_proposals,
            samples_per_proposal: self.initial_samples.max(1),
            compensation: true,
            modal_cap: self.modal_cap,
            limits: self.limits,
        }
    }

    /// Builds the reusable proposal pool for an instance — the union
    /// decomposition plus greedy-modal walk that [`MisAmpBudgeted::run`]
    /// performs internally. Exposed so callers that re-estimate the same
    /// instance under different budgets (the engine's proposal-pool cache)
    /// can pay for the decomposition once: this estimator always draws the
    /// same fixed `num_proposals` from the pool, so re-running from a shared
    /// pool is bit-identical to a fresh run (the non-decreasing-draws
    /// contract of [`MisAmpLite::prepare_from_pool`] holds trivially).
    pub fn build_pool(
        &self,
        mallows: &MallowsModel,
        labeling: &Labeling,
        union: &PatternUnion,
    ) -> Result<ProposalPool> {
        self.lite().build_pool(mallows, labeling, union)
    }

    /// Runs the doubling loop. `converged = false` in the outcome means the
    /// interval never closed to `ε`; the estimate is still the best (largest
    /// sample) round's, but callers wanting the guarantee should fall back to
    /// an exact solver — [`crate::SolverKind::budgeted`] does so
    /// automatically.
    pub fn run(
        &self,
        mallows: &MallowsModel,
        labeling: &Labeling,
        union: &PatternUnion,
        rng: &mut dyn RngCore,
    ) -> Result<BudgetedOutcome> {
        self.validate()?;
        let mut pool = self.build_pool(mallows, labeling, union)?;
        self.run_with_pool(mallows, &mut pool, rng)
    }

    /// [`MisAmpBudgeted::run`] on an already-built proposal pool: skips the
    /// union decomposition and reuses every greedy modal the pool has
    /// already generated. The pool must have been built for the same
    /// `(model, modal_cap, limits)` — [`MisAmpBudgeted::build_pool`] is the
    /// matching constructor — and as long as every estimator drawing from
    /// one pool uses the same `num_proposals` (this type never varies its
    /// draw), results are bit-identical to a cold [`MisAmpBudgeted::run`].
    pub fn run_with_pool(
        &self,
        mallows: &MallowsModel,
        pool: &mut ProposalPool,
        rng: &mut dyn RngCore,
    ) -> Result<BudgetedOutcome> {
        self.validate()?;
        let z = normal_quantile(0.5 + self.confidence / 2.0);
        let lite = self.lite();
        let prepared = lite.prepare_from_pool(pool)?;
        if prepared.num_proposals() == 0 {
            // Unsatisfiable union: the probability is exactly zero, with a
            // zero-width interval.
            return Ok(BudgetedOutcome {
                estimate: 0.0,
                total_samples: 0,
                zero_density_samples: 0,
                rounds: 0,
                halfwidth: 0.0,
                converged: true,
            });
        }
        let factor = prepared.compensation_subrankings * prepared.compensation_modals;

        let mut round_budget = self.initial_samples;
        let mut total_samples = 0;
        let mut zero_density_samples = 0;
        let mut rounds = 0;
        let mut estimate = 0.0;
        let mut halfwidth = f64::INFINITY;
        let mut converged = false;
        while rounds < self.max_rounds.max(1) {
            rounds += 1;
            let (round_estimate, moments) =
                lite.estimate_prepared_total(mallows, &prepared, round_budget, rng);
            total_samples += moments.samples;
            zero_density_samples += moments.zero_density;
            estimate = round_estimate;
            halfwidth = compensated_halfwidth(&moments, factor, z);
            if halfwidth <= self.epsilon {
                converged = true;
                break;
            }
            round_budget *= 2;
        }
        Ok(BudgetedOutcome {
            estimate,
            total_samples,
            zero_density_samples,
            rounds,
            halfwidth,
            converged,
        })
    }

    fn validate(&self) -> Result<()> {
        if !self.epsilon.is_finite()
            || self.epsilon <= 0.0
            || self.confidence.is_nan()
            || self.confidence <= 0.0
            || self.confidence >= 1.0
        {
            return Err(SolverError::InvalidInstance(format!(
                "error budget needs epsilon > 0 and confidence in (0, 1), got ({}, {})",
                self.epsilon, self.confidence
            )));
        }
        if self.num_proposals == 0 || self.initial_samples == 0 {
            return Err(SolverError::InvalidInstance(
                "error-budgeted MIS-AMP needs at least one proposal and one sample".into(),
            ));
        }
        Ok(())
    }
}

/// Outcome of an error-budgeted run.
#[derive(Debug, Clone)]
pub struct BudgetedOutcome {
    /// The final round's estimate.
    pub estimate: f64,
    /// Total samples drawn across all rounds.
    pub total_samples: usize,
    /// Samples (across all rounds) on which the proposal mixture had zero
    /// density — drawn but contributing nothing. A health signal, surfaced
    /// by the engine as the `ppd_sampler_zero_density_total` counter.
    pub zero_density_samples: usize,
    /// Number of doubling rounds executed.
    pub rounds: usize,
    /// Confidence-interval halfwidth of the final round.
    pub halfwidth: f64,
    /// Whether the halfwidth closed to `ε` (as opposed to exhausting
    /// `max_rounds`).
    pub converged: bool,
}

/// Confidence-interval halfwidth of the *compensated* estimate: the normal
/// interval on the covered-region mean is mapped endpoint-wise through the
/// odds-space compensation (a monotone map, so the image of an interval is an
/// interval) and the halfwidth of the image is reported.
fn compensated_halfwidth(moments: &SampleMoments, factor: f64, z: f64) -> f64 {
    // Fewer than two samples carry no variance information: the empirical
    // interval would collapse to a point and certify any ε vacuously.
    if moments.samples < 2 {
        return f64::INFINITY;
    }
    let se = moments.standard_error();
    let mean = moments.mean().clamp(0.0, 1.0);
    let lo = compensate((mean - z * se).clamp(0.0, 1.0), factor);
    let hi = compensate((mean + z * se).clamp(0.0, 1.0), factor);
    (hi - lo) / 2.0
}

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9 — far below what a sampling stop rule needs).
/// Self-contained so the solver crate stays dependency-free.
fn normal_quantile(p: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&p) && p > 0.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::brute::BruteForceSolver;
    use crate::testutil::{cyclic_labeling, mallows, sel};
    use crate::traits::ExactSolver;
    use ppd_patterns::{Pattern, PatternUnion};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_quantile_matches_known_values() {
        for &(p, expected) in &[
            (0.5, 0.0),
            (0.975, 1.959964),
            (0.95, 1.644854),
            (0.995, 2.575829),
            (0.025, -1.959964),
        ] {
            let got = normal_quantile(p);
            assert!(
                (got - expected).abs() < 1e-4,
                "quantile({p}): expected {expected}, got {got}"
            );
        }
    }

    #[test]
    fn meets_the_budget_and_matches_brute_force() {
        let model = mallows(6, 0.3);
        let lab = cyclic_labeling(6, 3);
        let union = PatternUnion::new(vec![
            Pattern::two_label(sel(2), sel(0)),
            Pattern::two_label(sel(1), sel(0)),
        ])
        .unwrap();
        let exact = BruteForceSolver::new()
            .solve(&model.to_rim(), &lab, &union)
            .unwrap();
        let solver = MisAmpBudgeted::new(0.02, 0.95);
        let mut rng = StdRng::seed_from_u64(101);
        let outcome = solver.run(&model, &lab, &union, &mut rng).unwrap();
        assert!(outcome.converged, "interval never closed: {outcome:?}");
        assert!(outcome.halfwidth <= 0.02);
        assert!(
            (outcome.estimate - exact).abs() < 0.05,
            "exact {exact}, estimate {}",
            outcome.estimate
        );
    }

    #[test]
    fn looser_budgets_use_fewer_samples() {
        let model = mallows(7, 0.5);
        let lab = cyclic_labeling(7, 4);
        let union = PatternUnion::new(vec![
            Pattern::two_label(sel(3), sel(0)),
            Pattern::two_label(sel(2), sel(1)),
        ])
        .unwrap();
        let mut rng_loose = StdRng::seed_from_u64(5);
        let mut rng_tight = StdRng::seed_from_u64(5);
        let loose = MisAmpBudgeted::new(0.1, 0.9)
            .run(&model, &lab, &union, &mut rng_loose)
            .unwrap();
        let tight = MisAmpBudgeted::new(0.005, 0.99)
            .run(&model, &lab, &union, &mut rng_tight)
            .unwrap();
        assert!(loose.total_samples <= tight.total_samples);
    }

    #[test]
    fn is_deterministic_in_the_seed() {
        let model = mallows(6, 0.4);
        let lab = cyclic_labeling(6, 3);
        let union = PatternUnion::singleton(Pattern::two_label(sel(1), sel(0))).unwrap();
        let solver = MisAmpBudgeted::new(0.01, 0.95);
        let mut a_rng = StdRng::seed_from_u64(9);
        let mut b_rng = StdRng::seed_from_u64(9);
        let a = solver.run(&model, &lab, &union, &mut a_rng).unwrap();
        let b = solver.run(&model, &lab, &union, &mut b_rng).unwrap();
        assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        assert_eq!(a.total_samples, b.total_samples);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn warm_pool_reruns_are_bit_identical_to_cold_runs() {
        // The engine's proposal-pool cache replays `run_with_pool` on a pool
        // built by an earlier solve (possibly under a different ε): answers
        // must match a cold `run` bit for bit, with zero further
        // decomposition work — the budgeted estimator always draws the same
        // fixed proposal count, so the pool-reuse contract holds.
        let model = mallows(6, 0.4);
        let lab = cyclic_labeling(6, 3);
        let union = PatternUnion::new(vec![
            Pattern::two_label(sel(2), sel(0)),
            Pattern::two_label(sel(1), sel(0)),
        ])
        .unwrap();
        let loose = MisAmpBudgeted::new(0.05, 0.9);
        let tight = MisAmpBudgeted::new(0.01, 0.95);
        let mut pool = loose.build_pool(&model, &lab, &union).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let warm_loose = loose.run_with_pool(&model, &mut pool, &mut rng).unwrap();
        // Re-estimation under a tighter budget reuses the same pool.
        let mut rng = StdRng::seed_from_u64(22);
        let warm_tight = tight.run_with_pool(&model, &mut pool, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let cold_loose = loose.run(&model, &lab, &union, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(22);
        let cold_tight = tight.run(&model, &lab, &union, &mut rng).unwrap();
        assert_eq!(warm_loose.estimate.to_bits(), cold_loose.estimate.to_bits());
        assert_eq!(warm_loose.total_samples, cold_loose.total_samples);
        assert_eq!(warm_tight.estimate.to_bits(), cold_tight.estimate.to_bits());
        assert_eq!(warm_tight.total_samples, cold_tight.total_samples);
    }

    #[test]
    fn easy_instances_converge_below_one_per_proposal_quota() {
        // The mixture budget doubles as a *total*: an easy union (unique
        // labels, so the pattern is a single sub-ranking whose AMP proposal
        // covers it near-perfectly) should certify ε = 0.05 with fewer
        // samples than even one old-style per-proposal quota round
        // (num_proposals × initial_samples).
        let model = mallows(5, 0.5);
        let lab = cyclic_labeling(5, 5);
        let union = PatternUnion::singleton(Pattern::two_label(sel(1), sel(0))).unwrap();
        let solver = MisAmpBudgeted::new(0.05, 0.95);
        let mut rng = StdRng::seed_from_u64(11);
        let outcome = solver.run(&model, &lab, &union, &mut rng).unwrap();
        assert!(outcome.converged);
        assert!(
            outcome.total_samples < solver.num_proposals * solver.initial_samples,
            "budget granularity should beat per-proposal quotas, used {}",
            outcome.total_samples
        );
    }

    #[test]
    fn unsatisfiable_union_is_exactly_zero() {
        let model = mallows(5, 0.5);
        let lab = cyclic_labeling(5, 3);
        let union = PatternUnion::singleton(Pattern::two_label(sel(8), sel(9))).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = MisAmpBudgeted::new(0.01, 0.95)
            .run(&model, &lab, &union, &mut rng)
            .unwrap();
        assert_eq!(outcome.estimate, 0.0);
        assert_eq!(outcome.total_samples, 0);
        assert!(outcome.converged);
    }

    #[test]
    fn degenerate_budgets_are_rejected() {
        let model = mallows(4, 0.5);
        let lab = cyclic_labeling(4, 2);
        let union = PatternUnion::singleton(Pattern::two_label(sel(0), sel(1))).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for bad in [
            MisAmpBudgeted::new(0.0, 0.95),
            MisAmpBudgeted::new(-1.0, 0.95),
            MisAmpBudgeted::new(0.01, 0.0),
            MisAmpBudgeted::new(0.01, 1.0),
            MisAmpBudgeted::new(f64::NAN, 0.95),
        ] {
            assert!(
                bad.run(&model, &lab, &union, &mut rng).is_err(),
                "({}, {}) should be rejected",
                bad.epsilon,
                bad.confidence
            );
        }
    }
}
