//! The shared mixture-sampling core of the MIS estimators: deterministic
//! stratified allocation of one total sample budget across the prepared
//! proposal pool, and the single-pass weighting loop that evaluates the
//! balance-heuristic mixture density with reused scratch buffers.
//!
//! Every MIS estimator in this crate (`mis_amp_estimate`, [`MisAmpLite`],
//! [`MisAmpBudgeted`], [`MisAmpAdaptive`]) draws its samples through this
//! module: the budget `N` is split over the `d` kept proposals in **fixed
//! pool order** (`⌈N/d⌉` for the first `N mod d` proposals — the modals
//! closest to the centre — and `⌊N/d⌋` for the rest), each sample drawn from
//! proposal `i` is weighted by `p(τ) / Σ_j (n_j/N)·q_j(τ)` (Veach & Guibas'
//! balance heuristic, Eq. 6 of the paper, with the mixture coefficients
//! `n_j/N` rather than the equal-quota `1/d`), and samples on which every
//! proposal has zero density are counted instead of silently dropped.
//!
//! Determinism: the allocation is a pure function of `(N, d)`, proposals are
//! visited in pool order, and all draws come from the caller's single seeded
//! RNG stream — so the weight sums, and therefore every estimate built on
//! them, depend only on the instance, the budget, and the seed.
//!
//! [`MisAmpLite`]: crate::MisAmpLite
//! [`MisAmpBudgeted`]: crate::MisAmpBudgeted
//! [`MisAmpAdaptive`]: crate::MisAmpAdaptive
//! [`mis_amp_estimate`]: crate::mis_amp_estimate

use crate::approx::mis_lite::SampleMoments;
use ppd_rim::{AmpSampler, AmpScratch, MallowsModel, Ranking};
use rand::RngCore;

/// Splits a total sample budget of `total` across `parts` proposals in fixed
/// pool order: the first `total mod parts` proposals receive `⌈total/parts⌉`
/// samples, the rest `⌊total/parts⌋`. The leftmost proposals are the modals
/// closest to the Mallows centre, so the remainder lands where the posterior
/// mass is. Returns an empty allocation when `parts == 0`.
pub fn stratified_allocation(total: usize, parts: usize) -> Vec<usize> {
    if parts == 0 {
        return Vec::new();
    }
    let base = total / parts;
    let remainder = total % parts;
    (0..parts)
        .map(|i| base + usize::from(i < remainder))
        .collect()
}

/// The mixture coefficients `n_i / N` matching a stratified allocation: the
/// share of the total budget drawn from each proposal, which is exactly the
/// weight of that proposal's density in the balance-heuristic denominator.
/// All-zero (empty mixture) when `total == 0`.
pub fn mixture_coefficients(allocation: &[usize], total: usize) -> Vec<f64> {
    if total == 0 {
        return vec![0.0; allocation.len()];
    }
    allocation
        .iter()
        .map(|&n| n as f64 / total as f64)
        .collect()
}

/// Runs one mixture sampling pass: draws `allocation[i]` samples from
/// `samplers[i]` (in pool order, from one RNG stream), weights each by
/// `p(τ) / mix(τ)` with `mix(τ) = Σ_j coefficients[j]·q_j(τ)`, and returns
/// the accumulated weight moments. Samples where the mixture density is zero
/// contribute nothing to the sums and are counted in
/// [`SampleMoments::zero_density`].
///
/// All per-sample state (the sampled ranking, the AMP insertion buffers for
/// sampling and for density evaluation) lives in buffers hoisted out of the
/// loop, so the pass performs no per-sample allocation.
pub(crate) fn mixture_weight_moments(
    mallows: &MallowsModel,
    samplers: &[AmpSampler],
    allocation: &[usize],
    coefficients: &[f64],
    rng: &mut dyn RngCore,
) -> SampleMoments {
    debug_assert_eq!(samplers.len(), allocation.len());
    debug_assert_eq!(samplers.len(), coefficients.len());
    let mut sum = 0.0;
    let mut sum_squares = 0.0;
    let mut zero_density = 0usize;
    let mut sample_scratch = AmpScratch::default();
    let mut prob_scratch = AmpScratch::default();
    let mut tau = Ranking::new(Vec::new()).expect("the empty ranking is valid");
    for (sampler, &quota) in samplers.iter().zip(allocation) {
        for _ in 0..quota {
            sampler.sample_with_prob_into(rng, &mut sample_scratch, &mut tau);
            let p = mallows.prob_of(&tau);
            let mix = AmpSampler::mix_prob_of(samplers, coefficients, &tau, &mut prob_scratch);
            if mix > 0.0 {
                let w = p / mix;
                sum += w;
                sum_squares += w * w;
            } else {
                zero_density += 1;
            }
        }
    }
    SampleMoments {
        sum,
        sum_squares,
        samples: allocation.iter().sum(),
        zero_density,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::mallows;
    use ppd_rim::{PartialOrder, SubRanking};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn allocation_is_stratified_in_pool_order() {
        assert_eq!(stratified_allocation(10, 3), vec![4, 3, 3]);
        assert_eq!(stratified_allocation(9, 3), vec![3, 3, 3]);
        assert_eq!(stratified_allocation(2, 4), vec![1, 1, 0, 0]);
        assert_eq!(stratified_allocation(0, 3), vec![0, 0, 0]);
        assert_eq!(stratified_allocation(5, 0), Vec::<usize>::new());
        for (total, parts) in [(1usize, 1usize), (7, 3), (64, 10), (1000, 7)] {
            let allocation = stratified_allocation(total, parts);
            assert_eq!(allocation.iter().sum::<usize>(), total);
            assert!(allocation.windows(2).all(|w| w[0] >= w[1]), "front-loaded");
        }
    }

    #[test]
    fn coefficients_sum_to_one_for_positive_budgets() {
        for (total, parts) in [(1usize, 1usize), (7, 3), (64, 10), (999, 13)] {
            let allocation = stratified_allocation(total, parts);
            let coefficients = mixture_coefficients(&allocation, total);
            let sum: f64 = coefficients.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "N={total} d={parts}: {sum}");
        }
        assert_eq!(mixture_coefficients(&[0, 0], 0), vec![0.0, 0.0]);
    }

    #[test]
    fn weight_mean_is_unbiased_for_the_covered_region() {
        // One pass over a two-proposal mixture with an uneven allocation:
        // the mean weight must estimate the probability mass of the union of
        // the proposals' supports (here: everything, since one component is
        // unconstrained), not the equal-quota average.
        let model = mallows(5, 0.5);
        let samplers = vec![
            AmpSampler::new(model.sigma().clone(), model.phi(), &PartialOrder::new()).unwrap(),
            AmpSampler::for_subranking(
                model.sigma().clone(),
                model.phi(),
                &SubRanking::new(vec![4, 0]).unwrap(),
            )
            .unwrap(),
        ];
        let allocation = stratified_allocation(5_001, samplers.len());
        let coefficients = mixture_coefficients(&allocation, 5_001);
        let mut rng = StdRng::seed_from_u64(77);
        let moments =
            mixture_weight_moments(&model, &samplers, &allocation, &coefficients, &mut rng);
        assert_eq!(moments.samples, 5_001);
        assert_eq!(moments.zero_density, 0, "the mixture covers every sample");
        assert!(
            (moments.mean() - 1.0).abs() < 0.05,
            "covered region is the full ranking space, got {}",
            moments.mean()
        );
    }
}
