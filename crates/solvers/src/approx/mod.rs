//! Approximate solvers (Section 5 of the paper): rejection sampling and the
//! importance-sampling family built on the AMP posterior sampler.

pub mod budgeted;
pub mod is_amp;
pub mod mis_adaptive;
pub mod mis_amp;
pub mod mis_lite;
pub mod mixture;
pub mod rejection;
