//! Exact solvers (Section 4 of the paper).

pub mod bipartite;
pub mod brute;
pub mod general;
pub(crate) mod packed;
pub mod pattern;
pub mod two_label;
