//! Exact marginal probability of a *single* label pattern over a labeled RIM
//! model — the subroutine the general inclusion–exclusion solver needs for
//! every conjunction of union members.
//!
//! The paper delegates this step to the LTM solver of Cohen et al.
//! (SIGMOD'18). We substitute two exact strategies (see DESIGN.md):
//!
//! * bipartite (including two-label) patterns are dispatched to the
//!   min/max-position DP of [`crate::BipartiteSolver`];
//! * general DAG patterns are solved by a *relevant-item-position* DP over
//!   the RIM insertion process: the state records the absolute positions of
//!   the inserted items that can participate in an embedding (items matching
//!   at least one pattern node). A state whose placed items already satisfy
//!   the pattern is absorbed into the answer immediately — inserting more
//!   items never invalidates an embedding — which keeps the reachable state
//!   space far below its worst-case size.
//!
//! Both strategies are exact; the general one is exponential in the number of
//! relevant items, matching the role of the general solver as a provably
//! correct but non-scalable baseline.

use crate::budget::Budget;
use crate::exact::bipartite::BipartiteSolver;
use crate::traits::ExactSolver;
use crate::{Result, SolverError};
use ppd_patterns::{satisfies_pattern, Labeling, Pattern, PatternError, PatternUnion};
use ppd_rim::{Item, Ranking, RimModel};
use std::collections::BTreeMap;

/// Exact single-pattern solver (the LTM substitute).
#[derive(Debug, Clone, Default)]
pub struct PatternSolver {
    budget: Option<Budget>,
}

impl PatternSolver {
    /// Creates a solver without resource limits.
    pub fn new() -> Self {
        PatternSolver::default()
    }

    /// Attaches a resource budget (checked once per insertion step).
    pub fn with_budget(budget: Budget) -> Self {
        PatternSolver {
            budget: Some(budget),
        }
    }

    /// Computes `Pr(g | σ, Π, λ)` for a single pattern.
    pub fn solve_pattern(
        &self,
        rim: &RimModel,
        labeling: &Labeling,
        pattern: &Pattern,
    ) -> Result<f64> {
        let m = rim.num_items();
        if m == 0 {
            return Err(SolverError::InvalidInstance("empty item universe".into()));
        }
        // A pattern with an unmatched selector can never be satisfied.
        let candidates = match pattern.candidate_sets(rim.sigma().items(), labeling) {
            Ok(c) => c,
            Err(PatternError::EmptySelector(_)) => return Ok(0.0),
            Err(e) => return Err(e.into()),
        };
        if pattern.is_bipartite() {
            let solver = match &self.budget {
                Some(b) => BipartiteSolver::new().with_budget(b.clone()),
                None => BipartiteSolver::new(),
            };
            return solver.solve(rim, labeling, &PatternUnion::singleton(pattern.clone())?);
        }
        if pattern.num_edges() == 0 {
            // Every selector matches some item, and with no edges any ranking
            // over the full universe satisfies the pattern.
            return Ok(1.0);
        }
        self.solve_general(rim, labeling, pattern, &candidates)
    }

    /// Relevant-item-position DP for general DAG patterns.
    fn solve_general(
        &self,
        rim: &RimModel,
        labeling: &Labeling,
        pattern: &Pattern,
        candidates: &[Vec<Item>],
    ) -> Result<f64> {
        let m = rim.num_items();
        // Relevant items: anything that matches at least one pattern node.
        let mut relevant: Vec<Item> = candidates.iter().flatten().copied().collect();
        relevant.sort_unstable();
        relevant.dedup();
        let is_relevant: Vec<bool> = (0..m)
            .map(|i| relevant.binary_search(&rim.sigma().item_at(i)).is_ok())
            .collect();

        // A state is the sequence of placed relevant items with their current
        // absolute positions, ordered by position.
        type State = Vec<(Item, u32)>;
        // BTreeMap, not HashMap: deterministic iteration fixes the float
        // summation order, making the result bit-reproducible across calls
        // (the evaluation engine's determinism contract relies on this).
        let mut states: BTreeMap<State, f64> = BTreeMap::new();
        states.insert(Vec::new(), 1.0);
        let mut satisfied_mass = 0.0;

        let placed_satisfies = |placed: &State| -> bool {
            let ranking = Ranking::new(placed.iter().map(|&(it, _)| it).collect())
                .expect("placed items are distinct");
            satisfies_pattern(&ranking, labeling, pattern)
        };

        // `i` is the RIM insertion step, used for `item_at`, `insertion_prob`
        // and the position range — not merely an index into `is_relevant`.
        #[allow(clippy::needless_range_loop)]
        for i in 0..m {
            let item = rim.sigma().item_at(i);
            let mut next: BTreeMap<State, f64> = BTreeMap::new();
            for (state, prob) in &states {
                for j in 0..=i {
                    let p_new = prob * rim.insertion_prob(i, j);
                    // Shift the placed items at or below the insertion point.
                    let mut placed: State = state
                        .iter()
                        .map(|&(it, pos)| (it, if pos >= j as u32 { pos + 1 } else { pos }))
                        .collect();
                    if is_relevant[i] {
                        let insert_at = placed.partition_point(|&(_, pos)| pos < j as u32);
                        placed.insert(insert_at, (item, j as u32));
                        if placed_satisfies(&placed) {
                            satisfied_mass += p_new;
                            continue;
                        }
                    }
                    *next.entry(placed).or_insert(0.0) += p_new;
                }
            }
            if let Some(budget) = &self.budget {
                budget.check(next.len())?;
            }
            states = next;
        }
        // States that survive to the end never satisfied the pattern: the
        // relative order of all relevant items is fully determined and the
        // satisfaction check already ran when the last relevant item was
        // placed.
        Ok(satisfied_mass.clamp(0.0, 1.0))
    }
}

impl ExactSolver for PatternSolver {
    fn name(&self) -> &'static str {
        "pattern-exact"
    }

    /// Treats a singleton union as its member pattern; larger unions are the
    /// job of [`crate::GeneralSolver`].
    fn solve(&self, rim: &RimModel, labeling: &Labeling, union: &PatternUnion) -> Result<f64> {
        if union.num_patterns() != 1 {
            return Err(SolverError::Unsupported(
                "PatternSolver handles a single pattern; use GeneralSolver for unions".into(),
            ));
        }
        self.solve_pattern(rim, labeling, &union.patterns()[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::brute::BruteForceSolver;
    use crate::testutil::{cyclic_labeling, rim, sel};
    use ppd_patterns::Pattern;

    #[test]
    fn chain_patterns_agree_with_brute_force() {
        let brute = BruteForceSolver::new();
        let solver = PatternSolver::new();
        let chain3 = Pattern::new(vec![sel(1), sel(2), sel(0)], vec![(0, 1), (1, 2)]).unwrap();
        let diamond = Pattern::new(
            vec![sel(0), sel(1), sel(2), sel(0)],
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
        )
        .unwrap();
        for &m in &[4usize, 5, 6] {
            for &phi in &[0.1, 0.6, 1.0] {
                let model = rim(m, phi);
                let lab = cyclic_labeling(m, 3);
                for pattern in [&chain3, &diamond] {
                    let expected = brute
                        .solve(
                            &model,
                            &lab,
                            &PatternUnion::singleton(pattern.clone()).unwrap(),
                        )
                        .unwrap();
                    let got = solver.solve_pattern(&model, &lab, pattern).unwrap();
                    assert!(
                        (expected - got).abs() < 1e-9,
                        "m={m} phi={phi} pattern={pattern:?}: {expected} vs {got}"
                    );
                }
            }
        }
    }

    #[test]
    fn bipartite_dispatch_agrees_with_brute_force() {
        let model = rim(6, 0.3);
        let lab = cyclic_labeling(6, 3);
        let vee = Pattern::new(vec![sel(2), sel(0), sel(1)], vec![(0, 1), (0, 2)]).unwrap();
        let expected = BruteForceSolver::new()
            .solve(&model, &lab, &PatternUnion::singleton(vee.clone()).unwrap())
            .unwrap();
        let got = PatternSolver::new()
            .solve_pattern(&model, &lab, &vee)
            .unwrap();
        assert!((expected - got).abs() < 1e-9);
    }

    #[test]
    fn unsatisfiable_pattern_is_zero() {
        let model = rim(5, 0.5);
        let lab = cyclic_labeling(5, 3);
        let p = Pattern::new(vec![sel(0), sel(9), sel(1)], vec![(0, 1), (1, 2)]).unwrap();
        assert_eq!(
            PatternSolver::new()
                .solve_pattern(&model, &lab, &p)
                .unwrap(),
            0.0
        );
    }

    #[test]
    fn edgeless_pattern_is_one_when_selectors_match() {
        let model = rim(5, 0.5);
        let lab = cyclic_labeling(5, 3);
        let p = Pattern::new(vec![sel(0), sel(1)], vec![]).unwrap();
        assert_eq!(
            PatternSolver::new()
                .solve_pattern(&model, &lab, &p)
                .unwrap(),
            1.0
        );
    }

    #[test]
    fn non_singleton_union_rejected_via_trait() {
        let model = rim(5, 0.5);
        let lab = cyclic_labeling(5, 3);
        let union = PatternUnion::new(vec![
            Pattern::two_label(sel(0), sel(1)),
            Pattern::two_label(sel(1), sel(2)),
        ])
        .unwrap();
        assert!(matches!(
            PatternSolver::new().solve(&model, &lab, &union),
            Err(SolverError::Unsupported(_))
        ));
    }

    #[test]
    fn crowdrank_style_chain_on_moderate_m() {
        // A 3-node chain over m = 8 with overlapping candidate sets stays
        // exact and within [0, 1].
        let model = rim(8, 0.5);
        let lab = cyclic_labeling(8, 3);
        let chain = Pattern::new(vec![sel(0), sel(1), sel(2)], vec![(0, 1), (1, 2)]).unwrap();
        let p = PatternSolver::new()
            .solve_pattern(&model, &lab, &chain)
            .unwrap();
        let expected = BruteForceSolver::new()
            .solve(&model, &lab, &PatternUnion::singleton(chain).unwrap())
            .unwrap();
        assert!((expected - p).abs() < 1e-9);
    }
}
