//! Exact marginal probability of a *single* label pattern over a labeled RIM
//! model — the subroutine the general inclusion–exclusion solver needs for
//! every conjunction of union members.
//!
//! The paper delegates this step to the LTM solver of Cohen et al.
//! (SIGMOD'18). We substitute two exact strategies (see DESIGN.md):
//!
//! * bipartite (including two-label) patterns are dispatched to the
//!   min/max-position DP of [`crate::BipartiteSolver`];
//! * general DAG patterns are solved by a *relevant-item-position* DP over
//!   the RIM insertion process: the state records, for every item that can
//!   participate in an embedding (items matching at least one pattern node),
//!   its current absolute position — or nothing, if it has not been inserted
//!   yet. A state whose placed items already satisfy the pattern is absorbed
//!   into the answer immediately — inserting more items never invalidates an
//!   embedding — which keeps the reachable state space far below its
//!   worst-case size.
//!
//! Both strategies are exact; the general one is exponential in the number of
//! relevant items, matching the role of the general solver as a provably
//! correct but non-scalable baseline. The general DP, like the two-label and
//! bipartite solvers, has a packed kernel (one `slot_bits(m)`-wide field per
//! relevant item in a `u64`/`u128`, see `exact::packed`) and a
//! retained map-based reference kernel for the equivalence suite, used as
//! the fallback when the packing width exceeds 128 bits.

use crate::budget::Budget;
use crate::exact::bipartite::BipartiteSolver;
use crate::exact::packed::{self, Frontier, InsertionRow, Word};
use crate::traits::ExactSolver;
use crate::{Result, SolverError};
use ppd_patterns::{satisfies_pattern, Labeling, Pattern, PatternError, PatternUnion};
use ppd_rim::{Item, Ranking, RimModel};
use std::collections::BTreeMap;

/// Exact single-pattern solver (the LTM substitute).
#[derive(Debug, Clone, Default)]
pub struct PatternSolver {
    budget: Option<Budget>,
    force_reference: bool,
}

impl PatternSolver {
    /// Creates a solver without resource limits.
    pub fn new() -> Self {
        PatternSolver::default()
    }

    /// Attaches a resource budget (checked once per insertion step).
    pub fn with_budget(budget: Budget) -> Self {
        PatternSolver {
            budget: Some(budget),
            force_reference: false,
        }
    }

    /// A solver pinned to the map-based reference kernel for its general-DAG
    /// DP (bipartite dispatch also uses the reference bipartite kernel);
    /// used by the equivalence suite and the `solver_kernels` benchmark.
    pub fn reference() -> Self {
        PatternSolver {
            budget: None,
            force_reference: true,
        }
    }

    /// Width in bits of the packed general-DAG state for this pattern (one
    /// slot per relevant item), or `None` when the instance falls back to
    /// the reference kernel or is not solved by the general DP at all
    /// (bipartite dispatch, unsatisfiable or edgeless patterns). Exposed for
    /// the fallback-path tests and the kernel benchmark.
    #[doc(hidden)]
    pub fn packed_state_width(
        rim: &RimModel,
        labeling: &Labeling,
        pattern: &Pattern,
    ) -> Option<u32> {
        if pattern.is_bipartite() || pattern.num_edges() == 0 {
            return None;
        }
        let candidates = pattern.candidate_sets(rim.sigma().items(), labeling).ok()?;
        let relevant = relevant_items(&candidates);
        let width = packed::slot_bits(rim.num_items()) * relevant.len() as u32;
        (width <= 128).then_some(width)
    }

    /// Computes `Pr(g | σ, Π, λ)` for a single pattern.
    pub fn solve_pattern(
        &self,
        rim: &RimModel,
        labeling: &Labeling,
        pattern: &Pattern,
    ) -> Result<f64> {
        let m = rim.num_items();
        if m == 0 {
            return Err(SolverError::InvalidInstance("empty item universe".into()));
        }
        // A pattern with an unmatched selector can never be satisfied.
        let candidates = match pattern.candidate_sets(rim.sigma().items(), labeling) {
            Ok(c) => c,
            Err(PatternError::EmptySelector(_)) => return Ok(0.0),
            Err(e) => return Err(e.into()),
        };
        if pattern.is_bipartite() {
            let mut solver = if self.force_reference {
                BipartiteSolver::reference()
            } else {
                BipartiteSolver::new()
            };
            if let Some(b) = &self.budget {
                solver = solver.with_budget(b.clone());
            }
            return solver.solve(rim, labeling, &PatternUnion::singleton(pattern.clone())?);
        }
        if pattern.num_edges() == 0 {
            // Every selector matches some item, and with no edges any ranking
            // over the full universe satisfies the pattern.
            return Ok(1.0);
        }
        self.solve_general(rim, labeling, pattern, &candidates)
    }

    /// Relevant-item-position DP for general DAG patterns.
    fn solve_general(
        &self,
        rim: &RimModel,
        labeling: &Labeling,
        pattern: &Pattern,
        candidates: &[Vec<Item>],
    ) -> Result<f64> {
        let m = rim.num_items();
        let relevant = relevant_items(candidates);
        // Per insertion step: the relevant-item slot the step's item owns.
        let slot_of_step: Vec<Option<usize>> = (0..m)
            .map(|i| relevant.binary_search(&rim.sigma().item_at(i)).ok())
            .collect();
        let budget = self.budget.as_ref();
        let width = packed::slot_bits(m) * relevant.len() as u32;
        if self.force_reference || width > 128 {
            reference::solve(rim, labeling, pattern, &relevant, &slot_of_step, budget)
        } else if width <= 64 {
            solve_general_packed::<u64>(rim, labeling, pattern, &relevant, &slot_of_step, budget)
        } else {
            solve_general_packed::<u128>(rim, labeling, pattern, &relevant, &slot_of_step, budget)
        }
    }
}

/// Relevant items: anything that matches at least one pattern node, sorted
/// so each item owns a stable slot index.
fn relevant_items(candidates: &[Vec<Item>]) -> Vec<Item> {
    let mut relevant: Vec<Item> = candidates.iter().flatten().copied().collect();
    relevant.sort_unstable();
    relevant.dedup();
    relevant
}

/// The retained map-based general-DAG kernel. The state is the vector of
/// current absolute positions of the relevant items (`None` = not inserted
/// yet), whose derived lexicographic `Ord` matches the packed kernel's
/// big-endian slot layout — both kernels therefore iterate states in the
/// same order and sum floats identically.
pub(crate) mod reference {
    use super::*;

    type State = Vec<Option<u32>>;

    pub(crate) fn solve(
        rim: &RimModel,
        labeling: &Labeling,
        pattern: &Pattern,
        relevant: &[Item],
        slot_of_step: &[Option<usize>],
        budget: Option<&Budget>,
    ) -> Result<f64> {
        let m = rim.num_items();
        // BTreeMap, not HashMap: deterministic iteration fixes the float
        // summation order, making the result bit-reproducible across calls
        // (the evaluation engine's determinism contract relies on this).
        let mut states: BTreeMap<State, f64> = BTreeMap::new();
        states.insert(vec![None; relevant.len()], 1.0);
        let mut satisfied_mass = 0.0;

        let placed_satisfies = |placed: &State| -> bool {
            let mut by_position: Vec<(u32, Item)> = placed
                .iter()
                .zip(relevant)
                .filter_map(|(slot, &item)| slot.map(|pos| (pos, item)))
                .collect();
            by_position.sort_unstable();
            let ranking = Ranking::new(by_position.into_iter().map(|(_, it)| it).collect())
                .expect("placed items are distinct");
            satisfies_pattern(&ranking, labeling, pattern)
        };

        for (i, &slot) in slot_of_step.iter().enumerate().take(m) {
            let mut next: BTreeMap<State, f64> = BTreeMap::new();
            for (state, prob) in &states {
                for j in 0..=i {
                    let p_new = prob * rim.insertion_prob(i, j);
                    // Shift the placed items at or below the insertion point.
                    let mut placed: State = state
                        .iter()
                        .map(|slot| slot.map(|pos| if pos >= j as u32 { pos + 1 } else { pos }))
                        .collect();
                    if let Some(r) = slot {
                        placed[r] = Some(j as u32);
                        if placed_satisfies(&placed) {
                            satisfied_mass += p_new;
                            continue;
                        }
                    }
                    *next.entry(placed).or_insert(0.0) += p_new;
                }
            }
            if let Some(budget) = budget {
                budget.check(next.len())?;
            }
            states = next;
        }
        // States that survive to the end never satisfied the pattern: the
        // relative order of all relevant items is fully determined and the
        // satisfaction check already ran when the last relevant item was
        // placed.
        Ok(satisfied_mass.clamp(0.0, 1.0))
    }
}

/// The packed general-DAG kernel: one `slot_bits(m)`-wide field per relevant
/// item, flat sorted frontier, reused buffers, per-step insertion row.
fn solve_general_packed<W: Word>(
    rim: &RimModel,
    labeling: &Labeling,
    pattern: &Pattern,
    relevant: &[Item],
    slot_of_step: &[Option<usize>],
    budget: Option<&Budget>,
) -> Result<f64> {
    let m = rim.num_items();
    let bits = packed::slot_bits(m);
    let mask = (1u32 << bits) - 1;
    let num_slots = relevant.len();
    let shift_of = |r: usize| bits * ((num_slots - 1 - r) as u32);

    // Reused decode buffers for the satisfaction check.
    let mut by_position: Vec<(u32, Item)> = Vec::with_capacity(num_slots);
    let mut placed_items: Vec<Item> = Vec::with_capacity(num_slots);
    let mut probe = Ranking::new(Vec::new()).expect("the empty ranking is valid");

    let mut frontier: Frontier<W> = Frontier::new(W::ZERO);
    let mut row = InsertionRow::new(m);
    let mut satisfied_mass = 0.0;
    for (i, &step_slot) in slot_of_step.iter().enumerate().take(m) {
        let row = row.fill(rim, i);
        let states = frontier.take_states();
        for &(state, prob) in &states {
            for (j, &pj) in row.iter().enumerate() {
                let jenc = j as u32 + 1;
                let p_new = prob * pj;
                // Shift the placed items at or below the insertion point.
                let mut placed = W::ZERO;
                for r in 0..num_slots {
                    let shift = shift_of(r);
                    let mut v = packed::get_slot(state, shift, mask);
                    if v >= jenc {
                        v += 1;
                    }
                    placed = placed.or(W::from_u32(v).shl(shift));
                }
                if let Some(r) = step_slot {
                    let shift = shift_of(r);
                    placed = placed.or(W::from_u32(jenc).shl(shift));
                    // Decode the placed prefix ranking and check whether it
                    // already embeds the pattern.
                    by_position.clear();
                    for (r, &item) in relevant.iter().enumerate() {
                        let v = packed::get_slot(placed, shift_of(r), mask);
                        if v != 0 {
                            by_position.push((v - 1, item));
                        }
                    }
                    by_position.sort_unstable();
                    placed_items.clear();
                    placed_items.extend(by_position.iter().map(|&(_, it)| it));
                    probe
                        .assign(&placed_items)
                        .expect("placed items are distinct");
                    if satisfies_pattern(&probe, labeling, pattern) {
                        satisfied_mass += p_new;
                        continue;
                    }
                }
                frontier.push(placed, p_new);
            }
        }
        let next_len = frontier.merge_step(states);
        if let Some(budget) = budget {
            budget.check(next_len)?;
        }
    }
    Ok(satisfied_mass.clamp(0.0, 1.0))
}

impl ExactSolver for PatternSolver {
    fn name(&self) -> &'static str {
        if self.force_reference {
            "pattern-exact-reference"
        } else {
            "pattern-exact"
        }
    }

    /// Treats a singleton union as its member pattern; larger unions are the
    /// job of [`crate::GeneralSolver`].
    fn solve(&self, rim: &RimModel, labeling: &Labeling, union: &PatternUnion) -> Result<f64> {
        if union.num_patterns() != 1 {
            return Err(SolverError::Unsupported(
                "PatternSolver handles a single pattern; use GeneralSolver for unions".into(),
            ));
        }
        self.solve_pattern(rim, labeling, &union.patterns()[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::brute::BruteForceSolver;
    use crate::testutil::{cyclic_labeling, rim, sel};
    use ppd_patterns::Pattern;

    #[test]
    fn chain_patterns_agree_with_brute_force() {
        let brute = BruteForceSolver::new();
        let solver = PatternSolver::new();
        let chain3 = Pattern::new(vec![sel(1), sel(2), sel(0)], vec![(0, 1), (1, 2)]).unwrap();
        let diamond = Pattern::new(
            vec![sel(0), sel(1), sel(2), sel(0)],
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
        )
        .unwrap();
        for &m in &[4usize, 5, 6] {
            for &phi in &[0.1, 0.6, 1.0] {
                let model = rim(m, phi);
                let lab = cyclic_labeling(m, 3);
                for pattern in [&chain3, &diamond] {
                    let expected = brute
                        .solve(
                            &model,
                            &lab,
                            &PatternUnion::singleton(pattern.clone()).unwrap(),
                        )
                        .unwrap();
                    let got = solver.solve_pattern(&model, &lab, pattern).unwrap();
                    assert!(
                        (expected - got).abs() < 1e-9,
                        "m={m} phi={phi} pattern={pattern:?}: {expected} vs {got}"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_kernel_is_bit_identical_to_reference() {
        let packed = PatternSolver::new();
        let reference = PatternSolver::reference();
        let chain3 = Pattern::new(vec![sel(1), sel(2), sel(0)], vec![(0, 1), (1, 2)]).unwrap();
        let diamond = Pattern::new(
            vec![sel(0), sel(1), sel(2), sel(0)],
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
        )
        .unwrap();
        for &m in &[4usize, 6, 7] {
            for &phi in &[0.0, 0.4, 1.0] {
                let model = rim(m, phi);
                let lab = cyclic_labeling(m, 3);
                for pattern in [&chain3, &diamond] {
                    let a = packed.solve_pattern(&model, &lab, pattern).unwrap();
                    let b = reference.solve_pattern(&model, &lab, pattern).unwrap();
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "m={m} phi={phi}: packed {a} vs reference {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn bipartite_dispatch_agrees_with_brute_force() {
        let model = rim(6, 0.3);
        let lab = cyclic_labeling(6, 3);
        let vee = Pattern::new(vec![sel(2), sel(0), sel(1)], vec![(0, 1), (0, 2)]).unwrap();
        let expected = BruteForceSolver::new()
            .solve(&model, &lab, &PatternUnion::singleton(vee.clone()).unwrap())
            .unwrap();
        let got = PatternSolver::new()
            .solve_pattern(&model, &lab, &vee)
            .unwrap();
        assert!((expected - got).abs() < 1e-9);
    }

    #[test]
    fn unsatisfiable_pattern_is_zero() {
        let model = rim(5, 0.5);
        let lab = cyclic_labeling(5, 3);
        let p = Pattern::new(vec![sel(0), sel(9), sel(1)], vec![(0, 1), (1, 2)]).unwrap();
        assert_eq!(
            PatternSolver::new()
                .solve_pattern(&model, &lab, &p)
                .unwrap(),
            0.0
        );
    }

    #[test]
    fn edgeless_pattern_is_one_when_selectors_match() {
        let model = rim(5, 0.5);
        let lab = cyclic_labeling(5, 3);
        let p = Pattern::new(vec![sel(0), sel(1)], vec![]).unwrap();
        assert_eq!(
            PatternSolver::new()
                .solve_pattern(&model, &lab, &p)
                .unwrap(),
            1.0
        );
    }

    #[test]
    fn non_singleton_union_rejected_via_trait() {
        let model = rim(5, 0.5);
        let lab = cyclic_labeling(5, 3);
        let union = PatternUnion::new(vec![
            Pattern::two_label(sel(0), sel(1)),
            Pattern::two_label(sel(1), sel(2)),
        ])
        .unwrap();
        assert!(matches!(
            PatternSolver::new().solve(&model, &lab, &union),
            Err(SolverError::Unsupported(_))
        ));
    }

    #[test]
    fn crowdrank_style_chain_on_moderate_m() {
        // A 3-node chain over m = 8 with overlapping candidate sets stays
        // exact and within [0, 1].
        let model = rim(8, 0.5);
        let lab = cyclic_labeling(8, 3);
        let chain = Pattern::new(vec![sel(0), sel(1), sel(2)], vec![(0, 1), (1, 2)]).unwrap();
        let p = PatternSolver::new()
            .solve_pattern(&model, &lab, &chain)
            .unwrap();
        let expected = BruteForceSolver::new()
            .solve(&model, &lab, &PatternUnion::singleton(chain).unwrap())
            .unwrap();
        assert!((expected - p).abs() < 1e-9);
    }

    #[test]
    fn packed_state_width_reported() {
        let model = rim(6, 0.5);
        let lab = cyclic_labeling(6, 3);
        let chain = Pattern::new(vec![sel(0), sel(1), sel(2)], vec![(0, 1), (1, 2)]).unwrap();
        // All 6 items match some node under the 3-label cyclic labeling:
        // 6 slots × 3 bits.
        assert_eq!(
            PatternSolver::packed_state_width(&model, &lab, &chain),
            Some(18)
        );
        // Bipartite patterns never use the general DP.
        let vee = Pattern::new(vec![sel(2), sel(0), sel(1)], vec![(0, 1), (0, 2)]).unwrap();
        assert_eq!(PatternSolver::packed_state_width(&model, &lab, &vee), None);
    }
}
