//! Packed integer state keys and flat frontiers for the exact DP kernels.
//!
//! The exact solvers advance a frontier of DP states across the `m` RIM
//! insertion steps. The original kernels (retained as `reference` modules in
//! each solver for equivalence testing) key a `BTreeMap<State, f64>` by
//! heap-allocated position vectors, paying an allocation plus an `O(z′)`
//! lexicographic comparison per transition. The packed kernels encode the
//! same state into a single `u64`/`u128` and keep the frontier as a sorted
//! `Vec<(key, f64)>` rebuilt by a deterministic merge per insertion step.
//!
//! # Bit-determinism
//!
//! The engine's determinism contract requires every solve of the same
//! instance to produce the same `f64` bits, and this PR additionally pins
//! packed kernels to their map-based references *bitwise*. Both properties
//! reduce to fixing the float summation order, which the packed kernels
//! guarantee by construction:
//!
//! * Slot values are encoded order-preservingly (`None → 0`,
//!   `Some(p) → p + 1`) and laid out big-endian (slot 0 in the most
//!   significant bits), so unsigned comparison of packed keys equals the
//!   derived lexicographic `Ord` of the reference state structs. A frontier
//!   sorted by packed key is therefore iterated in exactly the order a
//!   `BTreeMap` over reference states would iterate.
//! * Transitions are emitted with a sequence number, and
//!   [`Frontier::merge_step`] sorts by `(key, seq)` before summing equal
//!   keys left to right. Contributions to each target state are thus added
//!   in generation order — the same order in which the reference kernel's
//!   `*map.entry(state) += p` accumulates them.

use std::fmt::Debug;

/// An unsigned machine word a DP state can be packed into.
///
/// Implemented for `u64` and `u128`; the kernels pick the narrowest word
/// that fits the instance's packing width and fall back to the reference
/// kernel when even 128 bits are exceeded.
pub(crate) trait Word: Copy + Ord + Eq + Debug {
    const ZERO: Self;
    fn from_u32(v: u32) -> Self;
    fn low_u32(self) -> u32;
    fn shl(self, s: u32) -> Self;
    fn shr(self, s: u32) -> Self;
    fn or(self, o: Self) -> Self;
}

macro_rules! impl_word {
    ($t:ty) => {
        impl Word for $t {
            const ZERO: Self = 0;
            #[inline(always)]
            fn from_u32(v: u32) -> Self {
                v as $t
            }
            #[inline(always)]
            fn low_u32(self) -> u32 {
                self as u32
            }
            #[inline(always)]
            fn shl(self, s: u32) -> Self {
                self << s
            }
            #[inline(always)]
            fn shr(self, s: u32) -> Self {
                self >> s
            }
            #[inline(always)]
            fn or(self, o: Self) -> Self {
                self | o
            }
        }
    };
}

impl_word!(u64);
impl_word!(u128);

/// Number of bits needed per position slot for a universe of `m` items: slot
/// values are `0` (no witness) or `p + 1` for a 0-based position `p < m`, so
/// the largest encoded value is `m`.
pub(crate) fn slot_bits(m: usize) -> u32 {
    debug_assert!(m >= 1);
    usize::BITS - m.leading_zeros()
}

/// Extracts the slot at `shift` (already masked to `bits` wide).
#[inline(always)]
pub(crate) fn get_slot<W: Word>(state: W, shift: u32, mask: u32) -> u32 {
    state.shr(shift).low_u32() & mask
}

/// The double-buffered flat frontier shared by the packed kernels.
///
/// A step iterates `states` (sorted by key), pushes every surviving
/// transition via [`Frontier::push`], and closes with
/// [`Frontier::merge_step`], which merges duplicate keys deterministically
/// and installs the result as the next step's frontier. Both buffers are
/// reused across all `m` steps — after warm-up the kernel allocates nothing.
pub(crate) struct Frontier<W> {
    states: Vec<(W, f64)>,
    scratch: Vec<(W, u32, f64)>,
}

impl<W: Word> Frontier<W> {
    /// A frontier holding the single initial state with mass 1.
    pub(crate) fn new(initial: W) -> Self {
        Frontier {
            states: vec![(initial, 1.0)],
            scratch: Vec::new(),
        }
    }

    /// Takes the current step's states out of the frontier (the buffer is
    /// recycled by [`Frontier::merge_step`]).
    pub(crate) fn take_states(&mut self) -> Vec<(W, f64)> {
        std::mem::take(&mut self.states)
    }

    /// Records one transition into the next frontier.
    #[inline(always)]
    pub(crate) fn push(&mut self, key: W, mass: f64) {
        let seq = self.scratch.len() as u32;
        self.scratch.push((key, seq, mass));
    }

    /// Sorts the recorded transitions by `(key, generation order)`, sums
    /// duplicate keys in generation order (matching the reference kernels'
    /// map-entry accumulation bit for bit), installs the merged frontier
    /// into `recycled`, and returns the number of distinct states.
    pub(crate) fn merge_step(&mut self, mut recycled: Vec<(W, f64)>) -> usize {
        self.scratch
            .sort_unstable_by_key(|&(key, seq, _)| (key, seq));
        recycled.clear();
        for &(key, _, mass) in &self.scratch {
            match recycled.last_mut() {
                Some((last, acc)) if *last == key => *acc += mass,
                _ => recycled.push((key, mass)),
            }
        }
        self.scratch.clear();
        self.states = recycled;
        self.states.len()
    }

    /// The current frontier, sorted by key.
    #[cfg(test)]
    pub(crate) fn states(&self) -> &[(W, f64)] {
        &self.states
    }

    /// Sum of the frontier's masses in key order — the same order in which
    /// `BTreeMap::values().sum()` folds the reference kernel's map.
    pub(crate) fn total_mass(&self) -> f64 {
        self.states.iter().map(|&(_, p)| p).sum()
    }
}

/// A reusable buffer of the current step's RIM insertion-probability row
/// `Π_i = (π(i, 0), …, π(i, i))`, precomputed once per step instead of once
/// per state transition.
pub(crate) struct InsertionRow {
    row: Vec<f64>,
}

impl InsertionRow {
    pub(crate) fn new(m: usize) -> Self {
        InsertionRow {
            row: Vec::with_capacity(m),
        }
    }

    /// Fills the row for insertion step `i`.
    pub(crate) fn fill(&mut self, rim: &ppd_rim::RimModel, i: usize) -> &[f64] {
        self.row.clear();
        self.row.extend((0..=i).map(|j| rim.insertion_prob(i, j)));
        &self.row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_bits_covers_encoded_range() {
        // Largest encoded value for m items is m itself.
        for m in 1..200usize {
            let bits = slot_bits(m);
            assert!(m < (1usize << bits), "m={m} bits={bits}");
            assert!(m >= (1usize << (bits - 1)), "m={m} bits={bits} too wide");
        }
    }

    #[test]
    fn packed_order_matches_vec_of_option_order() {
        // The encoding must be order-isomorphic to Vec<Option<u32>> with the
        // derived Ord (None < Some(p), lexicographic, slot 0 first).
        let encode = |v: &[Option<u32>]| -> u64 {
            let bits = slot_bits(8);
            let mut acc = 0u64;
            for (idx, slot) in v.iter().enumerate() {
                let enc = match slot {
                    None => 0,
                    Some(p) => p + 1,
                };
                acc |= (enc as u64) << (bits * (v.len() as u32 - 1 - idx as u32));
            }
            acc
        };
        let vecs: Vec<Vec<Option<u32>>> = vec![
            vec![None, None, None],
            vec![None, None, Some(0)],
            vec![None, Some(7), None],
            vec![Some(0), None, Some(3)],
            vec![Some(0), Some(1), None],
            vec![Some(2), None, None],
            vec![Some(7), Some(7), Some(7)],
        ];
        for a in &vecs {
            for b in &vecs {
                assert_eq!(
                    a.cmp(b),
                    encode(a).cmp(&encode(b)),
                    "ordering mismatch for {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn merge_sums_in_generation_order() {
        let mut f: Frontier<u64> = Frontier::new(0);
        let recycled = f.take_states();
        // Two contributions to key 5, one to key 3, interleaved.
        f.push(5, 0.25);
        f.push(3, 0.5);
        f.push(5, 0.125);
        let n = f.merge_step(recycled);
        assert_eq!(n, 2);
        assert_eq!(f.states(), &[(3, 0.5), (5, 0.25 + 0.125)]);
        assert_eq!(f.total_mass(), 0.5 + 0.375);
    }
}
