//! The bipartite solver (Algorithm 4 of the paper).
//!
//! Handles unions of *bipartite patterns*: patterns whose nodes are used
//! either only as the preferred side (L-type) or only as the less-preferred
//! side (R-type) of edges. A ranking satisfies such a pattern iff every edge
//! `(l, r)` satisfies `α(l) < β(r)`, where `α` is the minimum position of an
//! item matching `l` and `β` the maximum position of an item matching `r` —
//! the earliest L-witness and the latest R-witness can serve every edge
//! simultaneously.
//!
//! The solver is a dynamic program over the RIM insertion process whose
//! states track these min/max positions. The *sophisticated* variant
//! (default) additionally prunes bookkeeping that can no longer influence the
//! outcome: satisfied edges, violated patterns, and the positions of
//! selectors that no longer appear in any uncertain edge. The *basic*
//! variant keeps everything and classifies states only after the last
//! insertion; it exists for the ablation benchmarks.

use crate::budget::Budget;
use crate::traits::ExactSolver;
use crate::{Result, SolverError};
use ppd_patterns::{Labeling, NodeSelector, PatternUnion, UnionClass};
use ppd_rim::RimModel;
use std::collections::BTreeMap;

/// Exact solver for unions of bipartite patterns (Algorithm 4).
///
/// Complexity: `O(m^{Σ_g q_g})` states in the worst case (`q_g` = number of
/// nodes of member `g`), with substantial practical savings from pruning.
#[derive(Debug, Clone)]
pub struct BipartiteSolver {
    budget: Option<Budget>,
    prune: bool,
}

impl Default for BipartiteSolver {
    fn default() -> Self {
        BipartiteSolver {
            budget: None,
            prune: true,
        }
    }
}

impl BipartiteSolver {
    /// The default, pruning solver.
    pub fn new() -> Self {
        BipartiteSolver::default()
    }

    /// The "basic" variant without pruning (Section 4.3.1's first algorithm),
    /// kept for ablation benchmarks.
    pub fn basic() -> Self {
        BipartiteSolver {
            budget: None,
            prune: false,
        }
    }

    /// Attaches a resource budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// `true` when this instance prunes satisfied/violated bookkeeping.
    pub fn prunes(&self) -> bool {
        self.prune
    }
}

/// Compiled form of the union: deduplicated (selector, role) entries and the
/// per-pattern edges expressed over entry indices.
struct Compiled {
    l_selectors: Vec<NodeSelector>,
    r_selectors: Vec<NodeSelector>,
    /// For each member pattern, its edges as (l-entry, r-entry) pairs.
    pattern_edges: Vec<Vec<(usize, usize)>>,
    /// Per reference-item step: which L/R entries the inserted item matches.
    match_l: Vec<Vec<bool>>,
    match_r: Vec<Vec<bool>>,
    /// Last insertion step at which a candidate of the entry appears.
    last_l: Vec<usize>,
    last_r: Vec<usize>,
}

fn compile(rim: &RimModel, labeling: &Labeling, union: &PatternUnion) -> Result<Compiled> {
    let m = rim.num_items();
    let mut l_selectors: Vec<NodeSelector> = Vec::new();
    let mut r_selectors: Vec<NodeSelector> = Vec::new();
    let mut pattern_edges: Vec<Vec<(usize, usize)>> = Vec::new();
    for pattern in union.patterns() {
        let mut edges = Vec::with_capacity(pattern.num_edges());
        for &(a, b) in pattern.edges() {
            let left = pattern.nodes()[a].clone();
            let right = pattern.nodes()[b].clone();
            let li = match l_selectors.iter().position(|s| *s == left) {
                Some(i) => i,
                None => {
                    l_selectors.push(left);
                    l_selectors.len() - 1
                }
            };
            let ri = match r_selectors.iter().position(|s| *s == right) {
                Some(i) => i,
                None => {
                    r_selectors.push(right);
                    r_selectors.len() - 1
                }
            };
            if !edges.contains(&(li, ri)) {
                edges.push((li, ri));
            }
        }
        pattern_edges.push(edges);
    }
    let match_l: Vec<Vec<bool>> = (0..m)
        .map(|i| {
            let item = rim.sigma().item_at(i);
            l_selectors
                .iter()
                .map(|s| s.matches(item, labeling))
                .collect()
        })
        .collect();
    let match_r: Vec<Vec<bool>> = (0..m)
        .map(|i| {
            let item = rim.sigma().item_at(i);
            r_selectors
                .iter()
                .map(|s| s.matches(item, labeling))
                .collect()
        })
        .collect();
    let last_step = |matches: &Vec<Vec<bool>>, e: usize| -> usize {
        (0..m).rev().find(|&i| matches[i][e]).unwrap_or(0)
    };
    let last_l = (0..l_selectors.len())
        .map(|e| last_step(&match_l, e))
        .collect();
    let last_r = (0..r_selectors.len())
        .map(|e| last_step(&match_r, e))
        .collect();
    Ok(Compiled {
        l_selectors,
        r_selectors,
        pattern_edges,
        match_l,
        match_r,
        last_l,
        last_r,
    })
}

/// Min/max positions of the tracked entries (`None` = no witness inserted
/// yet, or the entry is no longer tracked by this state).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Positions {
    alpha: Vec<Option<u32>>,
    beta: Vec<Option<u32>>,
}

impl Positions {
    fn empty(num_l: usize, num_r: usize) -> Self {
        Positions {
            alpha: vec![None; num_l],
            beta: vec![None; num_r],
        }
    }

    /// Shift-then-update insertion at position `j`; only the entries selected
    /// by `track_l` / `track_r` are maintained.
    fn insert(
        &self,
        j: u32,
        matches_l: &[bool],
        matches_r: &[bool],
        track_l: &[bool],
        track_r: &[bool],
    ) -> Positions {
        let mut next = self.clone();
        for (e, slot) in next.alpha.iter_mut().enumerate() {
            if !track_l[e] {
                *slot = None;
                continue;
            }
            if let Some(p) = slot {
                if *p >= j {
                    *p += 1;
                }
            }
            if matches_l[e] {
                *slot = Some(match *slot {
                    Some(p) => p.min(j),
                    None => j,
                });
            }
        }
        for (e, slot) in next.beta.iter_mut().enumerate() {
            if !track_r[e] {
                *slot = None;
                continue;
            }
            if let Some(p) = slot {
                if *p >= j {
                    *p += 1;
                }
            }
            if matches_r[e] {
                *slot = Some(match *slot {
                    Some(p) => p.max(j),
                    None => j,
                });
            }
        }
        next
    }

    fn edge_satisfied(&self, l: usize, r: usize) -> bool {
        matches!((self.alpha[l], self.beta[r]), (Some(a), Some(b)) if a < b)
    }
}

/// State of the pruning DP: positions plus the per-pattern sets of still
/// uncertain edges.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct PrunedState {
    positions: Positions,
    /// `(pattern index, indices into that pattern's edge list)` for patterns
    /// that are neither satisfied nor violated yet.
    uncertain: Vec<(u16, Vec<u8>)>,
}

impl ExactSolver for BipartiteSolver {
    fn name(&self) -> &'static str {
        if self.prune {
            "bipartite"
        } else {
            "bipartite-basic"
        }
    }

    fn solve(&self, rim: &RimModel, labeling: &Labeling, union: &PatternUnion) -> Result<f64> {
        match union.classify() {
            UnionClass::TwoLabel | UnionClass::Bipartite => {}
            UnionClass::General => {
                return Err(SolverError::Unsupported(
                    "the bipartite solver requires a union of bipartite patterns".into(),
                ))
            }
        }
        let m = rim.num_items();
        if m == 0 {
            return Err(SolverError::InvalidInstance("empty item universe".into()));
        }
        let union = match union.prune_unsatisfiable(rim.sigma().items(), labeling) {
            Some(u) => u,
            None => return Ok(0.0),
        };
        let compiled = compile(rim, labeling, &union)?;
        if self.prune {
            self.solve_pruned(rim, &compiled)
        } else {
            self.solve_basic(rim, &compiled)
        }
    }
}

impl BipartiteSolver {
    fn solve_pruned(&self, rim: &RimModel, c: &Compiled) -> Result<f64> {
        let m = rim.num_items();
        let initial_uncertain: Vec<(u16, Vec<u8>)> = c
            .pattern_edges
            .iter()
            .enumerate()
            .map(|(p, edges)| (p as u16, (0..edges.len() as u8).collect()))
            .collect();
        // BTreeMap, not HashMap: deterministic iteration fixes the float
        // summation order, making the result bit-reproducible across calls
        // (the evaluation engine's determinism contract relies on this).
        let mut states: BTreeMap<PrunedState, f64> = BTreeMap::new();
        states.insert(
            PrunedState {
                positions: Positions::empty(c.l_selectors.len(), c.r_selectors.len()),
                uncertain: initial_uncertain,
            },
            1.0,
        );
        let mut satisfied_mass = 0.0;

        for i in 0..m {
            let mut next: BTreeMap<PrunedState, f64> = BTreeMap::new();
            for (state, prob) in &states {
                // Entries needed by this state's uncertain edges.
                let mut track_l = vec![false; c.l_selectors.len()];
                let mut track_r = vec![false; c.r_selectors.len()];
                for (p, edges) in &state.uncertain {
                    for &e in edges {
                        let (l, r) = c.pattern_edges[*p as usize][e as usize];
                        track_l[l] = true;
                        track_r[r] = true;
                    }
                }
                for j in 0..=i {
                    let p_new = prob * rim.insertion_prob(i, j);
                    let positions = state.positions.insert(
                        j as u32,
                        &c.match_l[i],
                        &c.match_r[i],
                        &track_l,
                        &track_r,
                    );
                    // Re-evaluate the uncertain edges of every pattern.
                    let mut new_uncertain: Vec<(u16, Vec<u8>)> = Vec::new();
                    let mut union_satisfied = false;
                    for (p, edges) in &state.uncertain {
                        let mut remaining: Vec<u8> = Vec::with_capacity(edges.len());
                        let mut violated = false;
                        for &e in edges {
                            let (l, r) = c.pattern_edges[*p as usize][e as usize];
                            if positions.edge_satisfied(l, r) {
                                continue;
                            }
                            if i >= c.last_l[l] && i >= c.last_r[r] {
                                // All witnesses are in and the edge still does
                                // not hold: it never will.
                                violated = true;
                                break;
                            }
                            remaining.push(e);
                        }
                        if violated {
                            continue;
                        }
                        if remaining.is_empty() {
                            union_satisfied = true;
                            break;
                        }
                        new_uncertain.push((*p, remaining));
                    }
                    if union_satisfied {
                        satisfied_mass += p_new;
                        continue;
                    }
                    if new_uncertain.is_empty() {
                        // Every pattern is violated; this state can never
                        // satisfy the union.
                        continue;
                    }
                    // Drop positions of entries no longer referenced so that
                    // behaviourally identical states merge.
                    let mut keep_l = vec![false; c.l_selectors.len()];
                    let mut keep_r = vec![false; c.r_selectors.len()];
                    for (p, edges) in &new_uncertain {
                        for &e in edges {
                            let (l, r) = c.pattern_edges[*p as usize][e as usize];
                            keep_l[l] = true;
                            keep_r[r] = true;
                        }
                    }
                    let mut positions = positions;
                    for (e, slot) in positions.alpha.iter_mut().enumerate() {
                        if !keep_l[e] {
                            *slot = None;
                        }
                    }
                    for (e, slot) in positions.beta.iter_mut().enumerate() {
                        if !keep_r[e] {
                            *slot = None;
                        }
                    }
                    *next
                        .entry(PrunedState {
                            positions,
                            uncertain: new_uncertain,
                        })
                        .or_insert(0.0) += p_new;
                }
            }
            if let Some(budget) = &self.budget {
                budget.check(next.len())?;
            }
            states = next;
        }
        Ok(satisfied_mass.clamp(0.0, 1.0))
    }

    fn solve_basic(&self, rim: &RimModel, c: &Compiled) -> Result<f64> {
        let m = rim.num_items();
        let all_l = vec![true; c.l_selectors.len()];
        let all_r = vec![true; c.r_selectors.len()];
        let mut states: BTreeMap<Positions, f64> = BTreeMap::new();
        states.insert(
            Positions::empty(c.l_selectors.len(), c.r_selectors.len()),
            1.0,
        );
        for i in 0..m {
            let mut next: BTreeMap<Positions, f64> = BTreeMap::new();
            for (state, prob) in &states {
                for j in 0..=i {
                    let new_state =
                        state.insert(j as u32, &c.match_l[i], &c.match_r[i], &all_l, &all_r);
                    *next.entry(new_state).or_insert(0.0) += prob * rim.insertion_prob(i, j);
                }
            }
            if let Some(budget) = &self.budget {
                budget.check(next.len())?;
            }
            states = next;
        }
        let mut total = 0.0;
        for (state, prob) in &states {
            let satisfied = c
                .pattern_edges
                .iter()
                .any(|edges| edges.iter().all(|&(l, r)| state.edge_satisfied(l, r)));
            if satisfied {
                total += prob;
            }
        }
        Ok(total.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::brute::BruteForceSolver;
    use crate::exact::two_label::TwoLabelSolver;
    use crate::testutil::{cyclic_labeling, rim, sel};
    use ppd_patterns::{Pattern, PatternUnion};

    fn bipartite_unions() -> Vec<PatternUnion> {
        let two = Pattern::two_label(sel(0), sel(1));
        let vee = Pattern::new(vec![sel(2), sel(0), sel(1)], vec![(0, 1), (0, 2)]).unwrap();
        let benchmark_a_shape = Pattern::new(
            vec![sel(0), sel(1), sel(2), sel(3)],
            vec![(0, 2), (0, 3), (1, 3)],
        )
        .unwrap();
        vec![
            PatternUnion::singleton(two.clone()).unwrap(),
            PatternUnion::singleton(vee.clone()).unwrap(),
            PatternUnion::singleton(benchmark_a_shape.clone()).unwrap(),
            PatternUnion::new(vec![two.clone(), vee]).unwrap(),
            PatternUnion::new(vec![benchmark_a_shape, two]).unwrap(),
        ]
    }

    #[test]
    fn rejects_general_unions() {
        let chain = Pattern::new(vec![sel(0), sel(1), sel(2)], vec![(0, 1), (1, 2)]).unwrap();
        let union = PatternUnion::singleton(chain).unwrap();
        let model = rim(5, 0.5);
        let lab = cyclic_labeling(5, 3);
        assert!(matches!(
            BipartiteSolver::new().solve(&model, &lab, &union),
            Err(SolverError::Unsupported(_))
        ));
    }

    #[test]
    fn agrees_with_brute_force_pruned_and_basic() {
        let brute = BruteForceSolver::new();
        for &m in &[4usize, 5, 6] {
            for &phi in &[0.0, 0.2, 0.7, 1.0] {
                let model = rim(m, phi);
                for &labels in &[3u32, 4] {
                    let lab = cyclic_labeling(m, labels);
                    for union in bipartite_unions() {
                        let expected = brute.solve(&model, &lab, &union).unwrap();
                        let pruned = BipartiteSolver::new().solve(&model, &lab, &union).unwrap();
                        let basic = BipartiteSolver::basic()
                            .solve(&model, &lab, &union)
                            .unwrap();
                        assert!(
                            (expected - pruned).abs() < 1e-9,
                            "pruned m={m} phi={phi} labels={labels}: {expected} vs {pruned}"
                        );
                        assert!(
                            (expected - basic).abs() < 1e-9,
                            "basic m={m} phi={phi} labels={labels}: {expected} vs {basic}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn two_label_unions_also_supported() {
        // The bipartite solver must handle two-label unions as a special case
        // and agree with the dedicated two-label solver.
        let model = rim(7, 0.4);
        let lab = cyclic_labeling(7, 3);
        let union = PatternUnion::new(vec![
            Pattern::two_label(sel(2), sel(0)),
            Pattern::two_label(sel(1), sel(0)),
        ])
        .unwrap();
        let a = TwoLabelSolver::new().solve(&model, &lab, &union).unwrap();
        let b = BipartiteSolver::new().solve(&model, &lab, &union).unwrap();
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn unsatisfiable_members_do_not_crash() {
        let model = rim(5, 0.5);
        let lab = cyclic_labeling(5, 3);
        let good = Pattern::two_label(sel(1), sel(0));
        let bad = Pattern::new(vec![sel(9), sel(0), sel(1)], vec![(0, 1), (0, 2)]).unwrap();
        let union = PatternUnion::new(vec![good.clone(), bad]).unwrap();
        let expected = BruteForceSolver::new().solve(&model, &lab, &union).unwrap();
        let got = BipartiteSolver::new().solve(&model, &lab, &union).unwrap();
        assert!((expected - got).abs() < 1e-9);
        // A union in which nothing is satisfiable has probability zero.
        let bad2 = Pattern::two_label(sel(9), sel(8));
        let empty = PatternUnion::singleton(bad2).unwrap();
        assert_eq!(
            BipartiteSolver::new().solve(&model, &lab, &empty).unwrap(),
            0.0
        );
    }

    #[test]
    fn budget_abort_is_reported() {
        let model = rim(10, 0.5);
        let lab = cyclic_labeling(10, 4);
        let union = PatternUnion::singleton(
            Pattern::new(
                vec![sel(0), sel(1), sel(2), sel(3)],
                vec![(0, 2), (0, 3), (1, 3)],
            )
            .unwrap(),
        )
        .unwrap();
        let solver = BipartiteSolver::new().with_budget(Budget::with_max_states(2));
        assert!(matches!(
            solver.solve(&model, &lab, &union),
            Err(SolverError::BudgetExceeded(_))
        ));
    }

    #[test]
    fn pruned_is_not_larger_than_basic_state_space() {
        // Smoke test on a mid-sized instance: both agree and stay in [0, 1].
        let model = rim(12, 0.3);
        let lab = cyclic_labeling(12, 4);
        let union = PatternUnion::singleton(
            Pattern::new(
                vec![sel(0), sel(1), sel(2), sel(3)],
                vec![(0, 2), (0, 3), (1, 3)],
            )
            .unwrap(),
        )
        .unwrap();
        let pruned = BipartiteSolver::new().solve(&model, &lab, &union).unwrap();
        let basic = BipartiteSolver::basic()
            .solve(&model, &lab, &union)
            .unwrap();
        assert!((pruned - basic).abs() < 1e-9);
        assert!((0.0..=1.0).contains(&pruned));
    }
}
