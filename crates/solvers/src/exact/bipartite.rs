//! The bipartite solver (Algorithm 4 of the paper).
//!
//! Handles unions of *bipartite patterns*: patterns whose nodes are used
//! either only as the preferred side (L-type) or only as the less-preferred
//! side (R-type) of edges. A ranking satisfies such a pattern iff every edge
//! `(l, r)` satisfies `α(l) < β(r)`, where `α` is the minimum position of an
//! item matching `l` and `β` the maximum position of an item matching `r` —
//! the earliest L-witness and the latest R-witness can serve every edge
//! simultaneously.
//!
//! The solver is a dynamic program over the RIM insertion process whose
//! states track these min/max positions. The *sophisticated* variant
//! (default) additionally prunes bookkeeping that can no longer influence the
//! outcome: satisfied edges, violated patterns, and the positions of
//! selectors that no longer appear in any uncertain edge. The *basic*
//! variant keeps everything and classifies states only after the last
//! insertion; it exists for the ablation benchmarks.
//!
//! Like the two-label solver, the pruning DP has two kernels: the default
//! **packed** kernel encodes a state — position slots plus one
//! uncertain-edge bitmask field per member pattern — into a single
//! `u64`/`u128` and advances a flat sorted frontier (see
//! `exact::packed` for the determinism argument), while the
//! **reference** kernel keeps the original map-based formulation for the
//! equivalence suite and as the fallback when the packing width exceeds
//! 128 bits.

use crate::budget::Budget;
use crate::exact::packed::{self, Frontier, InsertionRow, Word};
use crate::traits::ExactSolver;
use crate::{Result, SolverError};
use ppd_patterns::{Labeling, NodeSelector, PatternUnion, UnionClass};
use ppd_rim::RimModel;
use std::collections::BTreeMap;

/// Exact solver for unions of bipartite patterns (Algorithm 4).
///
/// Complexity: `O(m^{Σ_g q_g})` states in the worst case (`q_g` = number of
/// nodes of member `g`), with substantial practical savings from pruning.
#[derive(Debug, Clone)]
pub struct BipartiteSolver {
    budget: Option<Budget>,
    prune: bool,
    force_reference: bool,
}

impl Default for BipartiteSolver {
    fn default() -> Self {
        BipartiteSolver {
            budget: None,
            prune: true,
            force_reference: false,
        }
    }
}

impl BipartiteSolver {
    /// The default, pruning solver.
    pub fn new() -> Self {
        BipartiteSolver::default()
    }

    /// The "basic" variant without pruning (Section 4.3.1's first algorithm),
    /// kept for ablation benchmarks.
    pub fn basic() -> Self {
        BipartiteSolver {
            budget: None,
            prune: false,
            force_reference: false,
        }
    }

    /// A pruning solver pinned to the original map-based kernel; used by the
    /// equivalence suite and the `solver_kernels` benchmark.
    pub fn reference() -> Self {
        BipartiteSolver {
            budget: None,
            prune: true,
            force_reference: true,
        }
    }

    /// Attaches a resource budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// `true` when this instance prunes satisfied/violated bookkeeping.
    pub fn prunes(&self) -> bool {
        self.prune
    }

    /// Width in bits of the packed state for this instance (position slots
    /// plus per-pattern uncertain-edge masks), or `None` when the instance
    /// exceeds 128 bits and the pruning solver falls back to the reference
    /// kernel. Exposed for the fallback-path tests and the kernel benchmark.
    #[doc(hidden)]
    pub fn packed_state_width(
        rim: &RimModel,
        labeling: &Labeling,
        union: &PatternUnion,
    ) -> Option<u32> {
        let union = union.prune_unsatisfiable(rim.sigma().items(), labeling)?;
        let c = compile(rim, labeling, &union).ok()?;
        let width = packed_width(rim.num_items(), &c);
        (width <= 128 && masks_fit(&c)).then_some(width)
    }
}

/// Compiled form of the union: deduplicated (selector, role) entries and the
/// per-pattern edges expressed over entry indices.
struct Compiled {
    l_selectors: Vec<NodeSelector>,
    r_selectors: Vec<NodeSelector>,
    /// For each member pattern, its edges as (l-entry, r-entry) pairs.
    pattern_edges: Vec<Vec<(usize, usize)>>,
    /// Per reference-item step: which L/R entries the inserted item matches.
    match_l: Vec<Vec<bool>>,
    match_r: Vec<Vec<bool>>,
    /// Last insertion step at which a candidate of the entry appears.
    last_l: Vec<usize>,
    last_r: Vec<usize>,
}

fn compile(rim: &RimModel, labeling: &Labeling, union: &PatternUnion) -> Result<Compiled> {
    let m = rim.num_items();
    let mut l_selectors: Vec<NodeSelector> = Vec::new();
    let mut r_selectors: Vec<NodeSelector> = Vec::new();
    let mut pattern_edges: Vec<Vec<(usize, usize)>> = Vec::new();
    for pattern in union.patterns() {
        let mut edges = Vec::with_capacity(pattern.num_edges());
        for &(a, b) in pattern.edges() {
            let left = pattern.nodes()[a].clone();
            let right = pattern.nodes()[b].clone();
            let li = match l_selectors.iter().position(|s| *s == left) {
                Some(i) => i,
                None => {
                    l_selectors.push(left);
                    l_selectors.len() - 1
                }
            };
            let ri = match r_selectors.iter().position(|s| *s == right) {
                Some(i) => i,
                None => {
                    r_selectors.push(right);
                    r_selectors.len() - 1
                }
            };
            if !edges.contains(&(li, ri)) {
                edges.push((li, ri));
            }
        }
        pattern_edges.push(edges);
    }
    let match_l: Vec<Vec<bool>> = (0..m)
        .map(|i| {
            let item = rim.sigma().item_at(i);
            l_selectors
                .iter()
                .map(|s| s.matches(item, labeling))
                .collect()
        })
        .collect();
    let match_r: Vec<Vec<bool>> = (0..m)
        .map(|i| {
            let item = rim.sigma().item_at(i);
            r_selectors
                .iter()
                .map(|s| s.matches(item, labeling))
                .collect()
        })
        .collect();
    let last_step = |matches: &Vec<Vec<bool>>, e: usize| -> usize {
        (0..m).rev().find(|&i| matches[i][e]).unwrap_or(0)
    };
    let last_l = (0..l_selectors.len())
        .map(|e| last_step(&match_l, e))
        .collect();
    let last_r = (0..r_selectors.len())
        .map(|e| last_step(&match_r, e))
        .collect();
    Ok(Compiled {
        l_selectors,
        r_selectors,
        pattern_edges,
        match_l,
        match_r,
        last_l,
        last_r,
    })
}

/// Packed width of the pruning DP state: one slot per tracked position plus
/// one bitmask field (edge-count bits) per member pattern.
fn packed_width(m: usize, c: &Compiled) -> u32 {
    let bits = packed::slot_bits(m);
    let slots = (c.l_selectors.len() + c.r_selectors.len()) as u32;
    let mask_bits: u32 = c.pattern_edges.iter().map(|e| e.len() as u32).sum();
    bits * slots + mask_bits
}

/// The packed kernel manipulates per-pattern uncertain-edge masks as `u32`s;
/// a (pathological) member with more than 32 deduplicated edges falls back
/// to the reference kernel, whose `u64` masks carry it to 64 edges. Beyond
/// that the pruning DP reports [`SolverError::Unsupported`] (such an
/// instance needs ≥ 16 distinct selectors, putting the state space far out
/// of reach regardless of representation; the mask-free basic variant
/// remains available).
fn masks_fit(c: &Compiled) -> bool {
    c.pattern_edges.iter().all(|e| e.len() <= 32)
}

/// `(1 << len) - 1` without shift overflow at `len = 64`.
fn full_mask_u64(len: usize) -> u64 {
    debug_assert!(len <= 64);
    if len >= 64 {
        u64::MAX
    } else {
        (1u64 << len) - 1
    }
}

/// Min/max positions of the tracked entries (`None` = no witness inserted
/// yet, or the entry is no longer tracked by this state).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Positions {
    alpha: Vec<Option<u32>>,
    beta: Vec<Option<u32>>,
}

impl Positions {
    fn empty(num_l: usize, num_r: usize) -> Self {
        Positions {
            alpha: vec![None; num_l],
            beta: vec![None; num_r],
        }
    }

    /// Shift-then-update insertion at position `j`; only the entries selected
    /// by `track_l` / `track_r` are maintained.
    fn insert(
        &self,
        j: u32,
        matches_l: &[bool],
        matches_r: &[bool],
        track_l: &[bool],
        track_r: &[bool],
    ) -> Positions {
        let mut next = self.clone();
        for (e, slot) in next.alpha.iter_mut().enumerate() {
            if !track_l[e] {
                *slot = None;
                continue;
            }
            if let Some(p) = slot {
                if *p >= j {
                    *p += 1;
                }
            }
            if matches_l[e] {
                *slot = Some(match *slot {
                    Some(p) => p.min(j),
                    None => j,
                });
            }
        }
        for (e, slot) in next.beta.iter_mut().enumerate() {
            if !track_r[e] {
                *slot = None;
                continue;
            }
            if let Some(p) = slot {
                if *p >= j {
                    *p += 1;
                }
            }
            if matches_r[e] {
                *slot = Some(match *slot {
                    Some(p) => p.max(j),
                    None => j,
                });
            }
        }
        next
    }

    fn edge_satisfied(&self, l: usize, r: usize) -> bool {
        matches!((self.alpha[l], self.beta[r]), (Some(a), Some(b)) if a < b)
    }
}

/// State of the pruning DP: positions plus, per member pattern, the bitmask
/// of its still-uncertain edges (over that pattern's compiled edge list).
/// A zero mask means the pattern is violated; a pattern whose last uncertain
/// edge resolves to satisfied absorbs the state into the answer instead of
/// being stored.
///
/// The field order ((positions, masks), with the derived lexicographic Ord)
/// matches the packed kernel's bit layout, so both kernels iterate states in
/// the same order and sum floats identically.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct PrunedState {
    positions: Positions,
    uncertain: Vec<u64>,
}

impl ExactSolver for BipartiteSolver {
    fn name(&self) -> &'static str {
        if !self.prune {
            "bipartite-basic"
        } else if self.force_reference {
            "bipartite-reference"
        } else {
            "bipartite"
        }
    }

    fn solve(&self, rim: &RimModel, labeling: &Labeling, union: &PatternUnion) -> Result<f64> {
        match union.classify() {
            UnionClass::TwoLabel | UnionClass::Bipartite => {}
            UnionClass::General => {
                return Err(SolverError::Unsupported(
                    "the bipartite solver requires a union of bipartite patterns".into(),
                ))
            }
        }
        let m = rim.num_items();
        if m == 0 {
            return Err(SolverError::InvalidInstance("empty item universe".into()));
        }
        let union = match union.prune_unsatisfiable(rim.sigma().items(), labeling) {
            Some(u) => u,
            None => return Ok(0.0),
        };
        // A satisfiable member without edges is satisfied by every ranking.
        // (Handled before kernel dispatch so all kernels agree exactly.)
        if union.patterns().iter().any(|p| p.num_edges() == 0) {
            return Ok(1.0);
        }
        let compiled = compile(rim, labeling, &union)?;
        if !self.prune {
            return self.solve_basic(rim, &compiled);
        }
        if let Some(edges) = compiled.pattern_edges.iter().find(|e| e.len() > 64) {
            return Err(SolverError::Unsupported(format!(
                "a member with {} deduplicated edges exceeds the pruning DP's 64-edge \
                 uncertain-mask capacity (and its state space is intractable anyway); \
                 use BipartiteSolver::basic()",
                edges.len()
            )));
        }
        let budget = self.budget.as_ref();
        let width = packed_width(m, &compiled);
        if self.force_reference || width > 128 || !masks_fit(&compiled) {
            reference_solve_pruned(rim, &compiled, budget)
        } else if width <= 64 {
            solve_pruned_packed::<u64>(rim, &compiled, budget)
        } else {
            solve_pruned_packed::<u128>(rim, &compiled, budget)
        }
    }
}

/// The retained map-based pruning kernel (the pre-packing implementation),
/// used by the equivalence suite and as the wide-state fallback.
fn reference_solve_pruned(rim: &RimModel, c: &Compiled, budget: Option<&Budget>) -> Result<f64> {
    let m = rim.num_items();
    let num_patterns = c.pattern_edges.len();
    let full_masks: Vec<u64> = c
        .pattern_edges
        .iter()
        .map(|edges| full_mask_u64(edges.len()))
        .collect();
    // BTreeMap, not HashMap: deterministic iteration fixes the float
    // summation order, making the result bit-reproducible across calls
    // (the evaluation engine's determinism contract relies on this).
    let mut states: BTreeMap<PrunedState, f64> = BTreeMap::new();
    states.insert(
        PrunedState {
            positions: Positions::empty(c.l_selectors.len(), c.r_selectors.len()),
            uncertain: full_masks,
        },
        1.0,
    );
    let mut satisfied_mass = 0.0;

    let mut track_l = vec![false; c.l_selectors.len()];
    let mut track_r = vec![false; c.r_selectors.len()];
    for i in 0..m {
        let mut next: BTreeMap<PrunedState, f64> = BTreeMap::new();
        for (state, prob) in &states {
            // Entries needed by this state's uncertain edges.
            track_l.iter_mut().for_each(|t| *t = false);
            track_r.iter_mut().for_each(|t| *t = false);
            for (p, &mask) in state.uncertain.iter().enumerate() {
                for (e, &(l, r)) in c.pattern_edges[p].iter().enumerate() {
                    if mask & (1u64 << e) != 0 {
                        track_l[l] = true;
                        track_r[r] = true;
                    }
                }
            }
            for j in 0..=i {
                let p_new = prob * rim.insertion_prob(i, j);
                let positions = state.positions.insert(
                    j as u32,
                    &c.match_l[i],
                    &c.match_r[i],
                    &track_l,
                    &track_r,
                );
                // Re-evaluate the uncertain edges of every pattern.
                let mut new_uncertain: Vec<u64> = vec![0; num_patterns];
                let mut union_satisfied = false;
                let mut any_uncertain = false;
                for (p, &mask) in state.uncertain.iter().enumerate() {
                    if mask == 0 {
                        continue;
                    }
                    let mut remaining = 0u64;
                    let mut violated = false;
                    for (e, &(l, r)) in c.pattern_edges[p].iter().enumerate() {
                        if mask & (1u64 << e) == 0 {
                            continue;
                        }
                        if positions.edge_satisfied(l, r) {
                            continue;
                        }
                        if i >= c.last_l[l] && i >= c.last_r[r] {
                            // All witnesses are in and the edge still does
                            // not hold: it never will.
                            violated = true;
                            break;
                        }
                        remaining |= 1u64 << e;
                    }
                    if violated {
                        continue;
                    }
                    if remaining == 0 {
                        union_satisfied = true;
                        break;
                    }
                    new_uncertain[p] = remaining;
                    any_uncertain = true;
                }
                if union_satisfied {
                    satisfied_mass += p_new;
                    continue;
                }
                if !any_uncertain {
                    // Every pattern is violated; this state can never
                    // satisfy the union.
                    continue;
                }
                // Drop positions of entries no longer referenced so that
                // behaviourally identical states merge.
                let mut keep_l = vec![false; c.l_selectors.len()];
                let mut keep_r = vec![false; c.r_selectors.len()];
                for (p, &mask) in new_uncertain.iter().enumerate() {
                    for (e, &(l, r)) in c.pattern_edges[p].iter().enumerate() {
                        if mask & (1u64 << e) != 0 {
                            keep_l[l] = true;
                            keep_r[r] = true;
                        }
                    }
                }
                let mut positions = positions;
                for (e, slot) in positions.alpha.iter_mut().enumerate() {
                    if !keep_l[e] {
                        *slot = None;
                    }
                }
                for (e, slot) in positions.beta.iter_mut().enumerate() {
                    if !keep_r[e] {
                        *slot = None;
                    }
                }
                *next
                    .entry(PrunedState {
                        positions,
                        uncertain: new_uncertain,
                    })
                    .or_insert(0.0) += p_new;
            }
        }
        if let Some(budget) = budget {
            budget.check(next.len())?;
        }
        states = next;
    }
    Ok(satisfied_mass.clamp(0.0, 1.0))
}

/// The packed pruning kernel. Bit layout, most to least significant:
/// `α` slots, `β` slots (each `slot_bits(m)` wide, `None → 0`,
/// `Some(p) → p+1`), then one uncertain-edge bitmask field per member
/// pattern (pattern 0 highest). Integer order over this layout equals the
/// reference [`PrunedState`]'s derived Ord, which is what makes the two
/// kernels sum floats in the same order.
fn solve_pruned_packed<W: Word>(
    rim: &RimModel,
    c: &Compiled,
    budget: Option<&Budget>,
) -> Result<f64> {
    let m = rim.num_items();
    let bits = packed::slot_bits(m);
    let slot_mask = (1u32 << bits) - 1;
    let num_l = c.l_selectors.len();
    let num_r = c.r_selectors.len();
    let num_patterns = c.pattern_edges.len();
    let mask_bits: u32 = c.pattern_edges.iter().map(|e| e.len() as u32).sum();
    // Position slot `idx` (α entries first, then β).
    let shift_of = |idx: usize| mask_bits + bits * ((num_l + num_r - 1 - idx) as u32);
    // Uncertain-mask field of pattern `p`.
    let mask_shift: Vec<u32> = {
        let mut shifts = vec![0u32; num_patterns];
        let mut acc = 0u32;
        for p in (0..num_patterns).rev() {
            shifts[p] = acc;
            acc += c.pattern_edges[p].len() as u32;
        }
        shifts
    };
    let full_mask_of = |p: usize| ((1u64 << c.pattern_edges[p].len()) - 1) as u32;

    let mut initial = W::ZERO;
    for (p, &shift) in mask_shift.iter().enumerate() {
        initial = initial.or(W::from_u32(full_mask_of(p)).shl(shift));
    }

    let mut frontier: Frontier<W> = Frontier::new(initial);
    let mut row = InsertionRow::new(m);
    let mut satisfied_mass = 0.0;
    for i in 0..m {
        let row = row.fill(rim, i);
        let match_l = &c.match_l[i];
        let match_r = &c.match_r[i];
        let states = frontier.take_states();
        for &(state, prob) in &states {
            // Entries needed by this state's uncertain edges.
            let mut track_l = 0u64;
            let mut track_r = 0u64;
            for (p, &mshift) in mask_shift.iter().enumerate() {
                let mask = packed::get_slot(state, mshift, full_mask_of(p));
                for (e, &(l, r)) in c.pattern_edges[p].iter().enumerate() {
                    if mask & (1u32 << e) != 0 {
                        track_l |= 1u64 << l;
                        track_r |= 1u64 << r;
                    }
                }
            }
            'insertion: for (j, &pj) in row.iter().enumerate() {
                let jenc = j as u32 + 1;
                let p_new = prob * pj;
                // Insert into the tracked position slots (shift, then fold
                // in the new witness — see the reference kernel for why).
                let mut positions = W::ZERO;
                for (e, &is_match) in match_l.iter().enumerate() {
                    if track_l & (1u64 << e) == 0 {
                        continue;
                    }
                    let shift = shift_of(e);
                    let mut v = packed::get_slot(state, shift, slot_mask);
                    if v >= jenc {
                        v += 1;
                    }
                    if is_match {
                        v = if v == 0 { jenc } else { v.min(jenc) };
                    }
                    positions = positions.or(W::from_u32(v).shl(shift));
                }
                for (e, &is_match) in match_r.iter().enumerate() {
                    if track_r & (1u64 << e) == 0 {
                        continue;
                    }
                    let shift = shift_of(num_l + e);
                    let mut v = packed::get_slot(state, shift, slot_mask);
                    if v >= jenc {
                        v += 1;
                    }
                    if is_match {
                        v = v.max(jenc);
                    }
                    positions = positions.or(W::from_u32(v).shl(shift));
                }
                let edge_satisfied = |l: usize, r: usize| -> bool {
                    let a = packed::get_slot(positions, shift_of(l), slot_mask);
                    let b = packed::get_slot(positions, shift_of(num_l + r), slot_mask);
                    a != 0 && a < b
                };
                // Re-evaluate the uncertain edges of every pattern.
                let mut new_state = W::ZERO;
                let mut keep_l = 0u64;
                let mut keep_r = 0u64;
                let mut any_uncertain = false;
                for (p, &mshift) in mask_shift.iter().enumerate() {
                    let mask = packed::get_slot(state, mshift, full_mask_of(p));
                    if mask == 0 {
                        continue;
                    }
                    let mut remaining = 0u32;
                    let mut violated = false;
                    for (e, &(l, r)) in c.pattern_edges[p].iter().enumerate() {
                        if mask & (1u32 << e) == 0 {
                            continue;
                        }
                        if edge_satisfied(l, r) {
                            continue;
                        }
                        if i >= c.last_l[l] && i >= c.last_r[r] {
                            violated = true;
                            break;
                        }
                        remaining |= 1u32 << e;
                    }
                    if violated {
                        continue;
                    }
                    if remaining == 0 {
                        // The pattern — hence the union — is satisfied.
                        satisfied_mass += p_new;
                        continue 'insertion;
                    }
                    new_state = new_state.or(W::from_u32(remaining).shl(mshift));
                    any_uncertain = true;
                    for (e, &(l, r)) in c.pattern_edges[p].iter().enumerate() {
                        if remaining & (1u32 << e) != 0 {
                            keep_l |= 1u64 << l;
                            keep_r |= 1u64 << r;
                        }
                    }
                }
                if !any_uncertain {
                    // Every pattern is violated.
                    continue;
                }
                // Keep only the positions still referenced by uncertain
                // edges so behaviourally identical states merge.
                for e in 0..num_l {
                    if keep_l & (1u64 << e) != 0 {
                        let shift = shift_of(e);
                        new_state = new_state
                            .or(W::from_u32(packed::get_slot(positions, shift, slot_mask))
                                .shl(shift));
                    }
                }
                for e in 0..num_r {
                    if keep_r & (1u64 << e) != 0 {
                        let shift = shift_of(num_l + e);
                        new_state = new_state
                            .or(W::from_u32(packed::get_slot(positions, shift, slot_mask))
                                .shl(shift));
                    }
                }
                frontier.push(new_state, p_new);
            }
        }
        let next_len = frontier.merge_step(states);
        if let Some(budget) = budget {
            budget.check(next_len)?;
        }
    }
    Ok(satisfied_mass.clamp(0.0, 1.0))
}

impl BipartiteSolver {
    fn solve_basic(&self, rim: &RimModel, c: &Compiled) -> Result<f64> {
        let m = rim.num_items();
        let all_l = vec![true; c.l_selectors.len()];
        let all_r = vec![true; c.r_selectors.len()];
        let mut states: BTreeMap<Positions, f64> = BTreeMap::new();
        states.insert(
            Positions::empty(c.l_selectors.len(), c.r_selectors.len()),
            1.0,
        );
        for i in 0..m {
            let mut next: BTreeMap<Positions, f64> = BTreeMap::new();
            for (state, prob) in &states {
                for j in 0..=i {
                    let new_state =
                        state.insert(j as u32, &c.match_l[i], &c.match_r[i], &all_l, &all_r);
                    *next.entry(new_state).or_insert(0.0) += prob * rim.insertion_prob(i, j);
                }
            }
            if let Some(budget) = &self.budget {
                budget.check(next.len())?;
            }
            states = next;
        }
        let mut total = 0.0;
        for (state, prob) in &states {
            let satisfied = c
                .pattern_edges
                .iter()
                .any(|edges| edges.iter().all(|&(l, r)| state.edge_satisfied(l, r)));
            if satisfied {
                total += prob;
            }
        }
        Ok(total.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::brute::BruteForceSolver;
    use crate::exact::two_label::TwoLabelSolver;
    use crate::testutil::{cyclic_labeling, rim, sel};
    use ppd_patterns::{Pattern, PatternUnion};

    fn bipartite_unions() -> Vec<PatternUnion> {
        let two = Pattern::two_label(sel(0), sel(1));
        let vee = Pattern::new(vec![sel(2), sel(0), sel(1)], vec![(0, 1), (0, 2)]).unwrap();
        let benchmark_a_shape = Pattern::new(
            vec![sel(0), sel(1), sel(2), sel(3)],
            vec![(0, 2), (0, 3), (1, 3)],
        )
        .unwrap();
        vec![
            PatternUnion::singleton(two.clone()).unwrap(),
            PatternUnion::singleton(vee.clone()).unwrap(),
            PatternUnion::singleton(benchmark_a_shape.clone()).unwrap(),
            PatternUnion::new(vec![two.clone(), vee]).unwrap(),
            PatternUnion::new(vec![benchmark_a_shape, two]).unwrap(),
        ]
    }

    #[test]
    fn rejects_general_unions() {
        let chain = Pattern::new(vec![sel(0), sel(1), sel(2)], vec![(0, 1), (1, 2)]).unwrap();
        let union = PatternUnion::singleton(chain).unwrap();
        let model = rim(5, 0.5);
        let lab = cyclic_labeling(5, 3);
        assert!(matches!(
            BipartiteSolver::new().solve(&model, &lab, &union),
            Err(SolverError::Unsupported(_))
        ));
    }

    #[test]
    fn agrees_with_brute_force_pruned_and_basic() {
        let brute = BruteForceSolver::new();
        for &m in &[4usize, 5, 6] {
            for &phi in &[0.0, 0.2, 0.7, 1.0] {
                let model = rim(m, phi);
                for &labels in &[3u32, 4] {
                    let lab = cyclic_labeling(m, labels);
                    for union in bipartite_unions() {
                        let expected = brute.solve(&model, &lab, &union).unwrap();
                        let pruned = BipartiteSolver::new().solve(&model, &lab, &union).unwrap();
                        let basic = BipartiteSolver::basic()
                            .solve(&model, &lab, &union)
                            .unwrap();
                        assert!(
                            (expected - pruned).abs() < 1e-9,
                            "pruned m={m} phi={phi} labels={labels}: {expected} vs {pruned}"
                        );
                        assert!(
                            (expected - basic).abs() < 1e-9,
                            "basic m={m} phi={phi} labels={labels}: {expected} vs {basic}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn packed_kernel_is_bit_identical_to_reference() {
        let packed = BipartiteSolver::new();
        let reference = BipartiteSolver::reference();
        for &m in &[4usize, 6, 8] {
            for &phi in &[0.0, 0.4, 1.0] {
                let model = rim(m, phi);
                let lab = cyclic_labeling(m, 4);
                for union in bipartite_unions() {
                    let a = packed.solve(&model, &lab, &union).unwrap();
                    let b = reference.solve(&model, &lab, &union).unwrap();
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "m={m}, phi={phi}: packed {a} vs reference {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn two_label_unions_also_supported() {
        // The bipartite solver must handle two-label unions as a special case
        // and agree with the dedicated two-label solver.
        let model = rim(7, 0.4);
        let lab = cyclic_labeling(7, 3);
        let union = PatternUnion::new(vec![
            Pattern::two_label(sel(2), sel(0)),
            Pattern::two_label(sel(1), sel(0)),
        ])
        .unwrap();
        let a = TwoLabelSolver::new().solve(&model, &lab, &union).unwrap();
        let b = BipartiteSolver::new().solve(&model, &lab, &union).unwrap();
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn unsatisfiable_members_do_not_crash() {
        let model = rim(5, 0.5);
        let lab = cyclic_labeling(5, 3);
        let good = Pattern::two_label(sel(1), sel(0));
        let bad = Pattern::new(vec![sel(9), sel(0), sel(1)], vec![(0, 1), (0, 2)]).unwrap();
        let union = PatternUnion::new(vec![good.clone(), bad]).unwrap();
        let expected = BruteForceSolver::new().solve(&model, &lab, &union).unwrap();
        let got = BipartiteSolver::new().solve(&model, &lab, &union).unwrap();
        assert!((expected - got).abs() < 1e-9);
        // A union in which nothing is satisfiable has probability zero.
        let bad2 = Pattern::two_label(sel(9), sel(8));
        let empty = PatternUnion::singleton(bad2).unwrap();
        assert_eq!(
            BipartiteSolver::new().solve(&model, &lab, &empty).unwrap(),
            0.0
        );
    }

    #[test]
    fn edgeless_members_classify_as_general_and_are_rejected() {
        // An edgeless pattern is not bipartite (`Pattern::is_bipartite`), so
        // a union containing one classifies as General and is rejected here
        // before any kernel runs; the in-solver edgeless shortcut is defence
        // in depth for the (currently unreachable) direct path.
        let model = rim(5, 0.5);
        let lab = cyclic_labeling(5, 3);
        let edgeless = Pattern::new(vec![sel(0), sel(1)], vec![]).unwrap();
        let union = PatternUnion::new(vec![edgeless, Pattern::two_label(sel(1), sel(0))]).unwrap();
        assert!(matches!(
            BipartiteSolver::new().solve(&model, &lab, &union),
            Err(SolverError::Unsupported(_))
        ));
    }

    #[test]
    fn budget_abort_is_reported() {
        let model = rim(10, 0.5);
        let lab = cyclic_labeling(10, 4);
        let union = PatternUnion::singleton(
            Pattern::new(
                vec![sel(0), sel(1), sel(2), sel(3)],
                vec![(0, 2), (0, 3), (1, 3)],
            )
            .unwrap(),
        )
        .unwrap();
        for solver in [
            BipartiteSolver::new().with_budget(Budget::with_max_states(2)),
            BipartiteSolver::reference().with_budget(Budget::with_max_states(2)),
        ] {
            assert!(matches!(
                solver.solve(&model, &lab, &union),
                Err(SolverError::BudgetExceeded(_))
            ));
        }
    }

    #[test]
    fn pruned_is_not_larger_than_basic_state_space() {
        // Smoke test on a mid-sized instance: both agree and stay in [0, 1].
        let model = rim(12, 0.3);
        let lab = cyclic_labeling(12, 4);
        let union = PatternUnion::singleton(
            Pattern::new(
                vec![sel(0), sel(1), sel(2), sel(3)],
                vec![(0, 2), (0, 3), (1, 3)],
            )
            .unwrap(),
        )
        .unwrap();
        let pruned = BipartiteSolver::new().solve(&model, &lab, &union).unwrap();
        let basic = BipartiteSolver::basic()
            .solve(&model, &lab, &union)
            .unwrap();
        assert!((pruned - basic).abs() < 1e-9);
        assert!((0.0..=1.0).contains(&pruned));
    }

    #[test]
    fn sixty_four_edge_member_uses_reference_masks_without_overflow() {
        // A complete 8×8 bipartite member has exactly 64 deduplicated edges:
        // too wide for the packed kernel's u32 masks, exactly at the
        // reference kernel's u64 capacity (the `1 << 64` overflow case).
        // Keep m tiny so the reference DP is trivially tractable.
        let m = 2usize;
        let model = rim(m, 0.5);
        let mut lab = Labeling::new();
        for item in 0..m as u32 {
            for k in 0..9u32 {
                lab.add(item, k);
                lab.add(item, 100 + k);
            }
        }
        let build = |num_l: u32| {
            let mut nodes: Vec<NodeSelector> = (0..num_l).map(sel).collect();
            nodes.extend((0..8u32).map(|k| sel(100 + k)));
            let edges: Vec<(usize, usize)> = (0..num_l as usize)
                .flat_map(|l| (0..8usize).map(move |r| (l, num_l as usize + r)))
                .collect();
            PatternUnion::singleton(Pattern::new(nodes, edges).unwrap()).unwrap()
        };
        let union64 = build(8);
        assert_eq!(
            BipartiteSolver::packed_state_width(&model, &lab, &union64),
            None
        );
        let expected = BruteForceSolver::new()
            .solve(&model, &lab, &union64)
            .unwrap();
        let got = BipartiteSolver::new()
            .solve(&model, &lab, &union64)
            .unwrap();
        assert_eq!(got.to_bits(), expected.to_bits(), "{expected} vs {got}");
        // Beyond 64 edges the pruning DP refuses cleanly instead of
        // answering wrongly; the mask-free basic variant still works.
        let union72 = build(9);
        assert!(matches!(
            BipartiteSolver::new().solve(&model, &lab, &union72),
            Err(SolverError::Unsupported(_))
        ));
        let basic = BipartiteSolver::basic()
            .solve(&model, &lab, &union72)
            .unwrap();
        let expected72 = BruteForceSolver::new()
            .solve(&model, &lab, &union72)
            .unwrap();
        assert!((basic - expected72).abs() < 1e-9);
    }

    #[test]
    fn packed_state_width_reported() {
        let model = rim(6, 0.5);
        let lab = cyclic_labeling(6, 3);
        // The vee: 1 L selector, 2 R selectors, 2 edges over m = 6
        // (3 bits/slot): 3 × 3 + 2 = 11 bits.
        let vee = Pattern::new(vec![sel(2), sel(0), sel(1)], vec![(0, 1), (0, 2)]).unwrap();
        let union = PatternUnion::singleton(vee).unwrap();
        assert_eq!(
            BipartiteSolver::packed_state_width(&model, &lab, &union),
            Some(11)
        );
    }
}
