//! The two-label solver (Algorithm 3 of the paper).
//!
//! Handles unions of *two-label patterns* `G = ⋃_{i} {l_i ≻ r_i}`: the most
//! common query shape, asking whether an item matching one selector is
//! preferred to an item matching another. The solver runs a dynamic program
//! over the RIM insertion process whose states record, for every selector
//! used on the left of an edge, the minimum position of a matching item
//! (`α`), and for every selector used on the right, the maximum position of a
//! matching item (`β`). A ranking satisfies the edge `l ≻ r` iff
//! `α(l) < β(r)`, so tracking only the *violating* states and subtracting
//! their mass from 1 yields the marginal probability of `G`.
//!
//! Two kernels implement the DP:
//!
//! * the **packed** kernel (default) encodes each state's `α`/`β` vector into
//!   a single `u64`/`u128` (see `exact::packed`) and advances a flat
//!   sorted frontier with reused buffers and a precomputed per-step insertion
//!   row;
//! * the **reference** kernel (`reference`) is the original
//!   `BTreeMap<State, f64>` formulation, retained so the equivalence suite
//!   can check — forever, and bit for bit — that packing changed nothing.
//!
//! When the packing width exceeds 128 bits (more than `⌊128 / ⌈log₂(m+1)⌉⌋`
//! distinct tracked selectors) the solver falls back to the reference kernel.

use crate::budget::Budget;
use crate::exact::packed::{self, Frontier, InsertionRow, Word};
use crate::traits::ExactSolver;
use crate::{Result, SolverError};
use ppd_patterns::{Labeling, NodeSelector, PatternUnion, UnionClass};
use ppd_rim::RimModel;

/// Exact solver for unions of two-label patterns (Algorithm 3).
///
/// Complexity: `O(m^{2z'+1})` states in the worst case, where `z'` is the
/// number of *distinct* selectors tracked (identical selectors across edges
/// share a tracked position). The solver aborts with
/// [`SolverError::BudgetExceeded`] when the optional [`Budget`] is exhausted.
#[derive(Debug, Clone, Default)]
pub struct TwoLabelSolver {
    budget: Option<Budget>,
    force_reference: bool,
}

impl TwoLabelSolver {
    /// Creates a solver without resource limits.
    pub fn new() -> Self {
        TwoLabelSolver::default()
    }

    /// Creates a solver that enforces the given budget.
    pub fn with_budget(budget: Budget) -> Self {
        TwoLabelSolver {
            budget: Some(budget),
            force_reference: false,
        }
    }

    /// A solver pinned to the original map-based kernel. Used by the
    /// equivalence suite and the `solver_kernels` benchmark; query evaluation
    /// always uses the packed kernel (with automatic fallback).
    pub fn reference() -> Self {
        TwoLabelSolver {
            budget: None,
            force_reference: true,
        }
    }

    /// Width in bits of the packed state for this instance, or `None` when
    /// the instance exceeds 128 bits and the solver falls back to the
    /// reference kernel. Exposed for the fallback-path tests and the kernel
    /// benchmark; not part of the query API.
    #[doc(hidden)]
    pub fn packed_state_width(
        rim: &RimModel,
        labeling: &Labeling,
        union: &PatternUnion,
    ) -> Option<u32> {
        let union = union.prune_unsatisfiable(rim.sigma().items(), labeling)?;
        let compiled = compile(rim, labeling, &union);
        let bits = packed::slot_bits(rim.num_items());
        let width = bits * (compiled.num_l() + compiled.num_r()) as u32;
        (width <= 128).then_some(width)
    }
}

/// Compiled form of the union: deduplicated per-role selectors, edges over
/// selector indices, and per-step match rows — shared by both kernels.
pub(crate) struct Compiled {
    l_selectors: Vec<NodeSelector>,
    r_selectors: Vec<NodeSelector>,
    pub(crate) edges: Vec<(usize, usize)>,
    /// Per insertion step: which tracked L/R selectors the item matches.
    pub(crate) match_l: Vec<Vec<bool>>,
    pub(crate) match_r: Vec<Vec<bool>>,
}

impl Compiled {
    pub(crate) fn num_l(&self) -> usize {
        self.l_selectors.len()
    }

    pub(crate) fn num_r(&self) -> usize {
        self.r_selectors.len()
    }
}

pub(crate) fn compile(rim: &RimModel, labeling: &Labeling, union: &PatternUnion) -> Compiled {
    let m = rim.num_items();
    let mut l_selectors: Vec<NodeSelector> = Vec::new();
    let mut r_selectors: Vec<NodeSelector> = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for pattern in union.patterns() {
        let (a, b) = pattern.edges()[0];
        let left = pattern.nodes()[a].clone();
        let right = pattern.nodes()[b].clone();
        let li = match l_selectors.iter().position(|s| *s == left) {
            Some(i) => i,
            None => {
                l_selectors.push(left);
                l_selectors.len() - 1
            }
        };
        let ri = match r_selectors.iter().position(|s| *s == right) {
            Some(i) => i,
            None => {
                r_selectors.push(right);
                r_selectors.len() - 1
            }
        };
        if !edges.contains(&(li, ri)) {
            edges.push((li, ri));
        }
    }
    let match_l: Vec<Vec<bool>> = (0..m)
        .map(|i| {
            let item = rim.sigma().item_at(i);
            l_selectors
                .iter()
                .map(|s| s.matches(item, labeling))
                .collect()
        })
        .collect();
    let match_r: Vec<Vec<bool>> = (0..m)
        .map(|i| {
            let item = rim.sigma().item_at(i);
            r_selectors
                .iter()
                .map(|s| s.matches(item, labeling))
                .collect()
        })
        .collect();
    Compiled {
        l_selectors,
        r_selectors,
        edges,
        match_l,
        match_r,
    }
}

/// The retained map-based kernel (the pre-packing implementation), used by
/// the equivalence suite, the kernel benchmark, and as the fallback when the
/// packed state exceeds 128 bits.
pub(crate) mod reference {
    use super::*;
    use std::collections::BTreeMap;

    /// A DP state: minimum positions of L-selectors and maximum positions of
    /// R-selectors among the items inserted so far (`None` = no matching item
    /// inserted yet). Positions are 0-based.
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
    struct State {
        alpha: Vec<Option<u32>>,
        beta: Vec<Option<u32>>,
    }

    impl State {
        fn empty(num_l: usize, num_r: usize) -> Self {
            State {
                alpha: vec![None; num_l],
                beta: vec![None; num_r],
            }
        }

        /// Inserts an item at position `j`, given which L/R selectors it
        /// matches.
        ///
        /// Note on the update order: positions already at or below the
        /// insertion point shift down by one *before* taking the min/max with
        /// `j`. (The paper states the two cases — "item carries the label"
        /// and "item does not" — as alternatives; shifting first and then
        /// folding in `j` keeps `α`/`β` equal to the true minimum/maximum
        /// positions in all cases, including when the previous witness itself
        /// shifts.)
        fn insert(&self, j: u32, matches_l: &[bool], matches_r: &[bool]) -> State {
            let mut next = self.clone();
            for (e, slot) in next.alpha.iter_mut().enumerate() {
                if let Some(p) = slot {
                    if *p >= j {
                        *p += 1;
                    }
                }
                if matches_l[e] {
                    *slot = Some(match *slot {
                        Some(p) => p.min(j),
                        None => j,
                    });
                }
            }
            for (e, slot) in next.beta.iter_mut().enumerate() {
                if let Some(p) = slot {
                    if *p >= j {
                        *p += 1;
                    }
                }
                if matches_r[e] {
                    *slot = Some(match *slot {
                        Some(p) => p.max(j),
                        None => j,
                    });
                }
            }
            next
        }

        /// `true` when at least one edge `(l, r)` is already satisfied
        /// (`α(l) < β(r)`). Such states are pruned: once satisfied, an edge
        /// stays satisfied, so these rankings can never contribute to the
        /// violating mass.
        fn satisfies_some_edge(&self, edges: &[(usize, usize)]) -> bool {
            edges
                .iter()
                .any(|&(l, r)| match (self.alpha[l], self.beta[r]) {
                    (Some(a), Some(b)) => a < b,
                    _ => false,
                })
        }
    }

    /// DP over insertions, tracking only the violating states.
    ///
    /// BTreeMap, not HashMap: deterministic iteration fixes the float
    /// summation order, making the result bit-reproducible across calls (the
    /// evaluation engine's determinism contract relies on this). The packed
    /// kernel reproduces this exact order (see `exact::packed`).
    pub(crate) fn solve(rim: &RimModel, c: &Compiled, budget: Option<&Budget>) -> Result<f64> {
        let m = rim.num_items();
        let mut states: BTreeMap<State, f64> = BTreeMap::new();
        states.insert(State::empty(c.num_l(), c.num_r()), 1.0);
        for i in 0..m {
            let mut next: BTreeMap<State, f64> = BTreeMap::new();
            for (state, prob) in &states {
                for j in 0..=i {
                    let new_state = state.insert(j as u32, &c.match_l[i], &c.match_r[i]);
                    if new_state.satisfies_some_edge(&c.edges) {
                        continue;
                    }
                    let p = prob * rim.insertion_prob(i, j);
                    *next.entry(new_state).or_insert(0.0) += p;
                }
            }
            if let Some(budget) = budget {
                budget.check(next.len())?;
            }
            states = next;
        }
        let violating: f64 = states.values().sum();
        Ok((1.0 - violating).clamp(0.0, 1.0))
    }
}

/// The packed kernel: states are single machine words, the frontier is a
/// flat sorted vector, and both frontier buffers plus the insertion row are
/// reused across all `m` steps.
fn solve_packed<W: Word>(rim: &RimModel, c: &Compiled, budget: Option<&Budget>) -> Result<f64> {
    let m = rim.num_items();
    let bits = packed::slot_bits(m);
    let mask = (1u32 << bits) - 1;
    let num_l = c.num_l();
    let total_slots = (num_l + c.num_r()) as u32;
    // Slot `idx` (α entries first, then β) sits at the packed offset that
    // makes integer comparison equal the reference state's lexicographic Ord.
    let shift_of = |idx: usize| bits * (total_slots - 1 - idx as u32);
    let edge_shifts: Vec<(u32, u32)> = c
        .edges
        .iter()
        .map(|&(l, r)| (shift_of(l), shift_of(num_l + r)))
        .collect();

    let mut frontier: Frontier<W> = Frontier::new(W::ZERO);
    let mut row = InsertionRow::new(m);
    for i in 0..m {
        let row = row.fill(rim, i);
        let match_l = &c.match_l[i];
        let match_r = &c.match_r[i];
        let states = frontier.take_states();
        for &(state, prob) in &states {
            'insertion: for (j, &pj) in row.iter().enumerate() {
                let jenc = j as u32 + 1;
                let mut next = W::ZERO;
                for (e, &is_match) in match_l.iter().enumerate() {
                    let shift = shift_of(e);
                    let mut v = packed::get_slot(state, shift, mask);
                    // Encoded positions are p+1, so `p >= j` is `v >= jenc`
                    // (v = 0 encodes "no witness" and jenc >= 1 skips it).
                    if v >= jenc {
                        v += 1;
                    }
                    if is_match {
                        v = if v == 0 { jenc } else { v.min(jenc) };
                    }
                    next = next.or(W::from_u32(v).shl(shift));
                }
                for (e, &is_match) in match_r.iter().enumerate() {
                    let shift = shift_of(num_l + e);
                    let mut v = packed::get_slot(state, shift, mask);
                    if v >= jenc {
                        v += 1;
                    }
                    if is_match {
                        // max folds in the new witness and handles v = 0.
                        v = v.max(jenc);
                    }
                    next = next.or(W::from_u32(v).shl(shift));
                }
                for &(sl, sr) in &edge_shifts {
                    let a = packed::get_slot(next, sl, mask);
                    let b = packed::get_slot(next, sr, mask);
                    if a != 0 && a < b {
                        // The edge is satisfied: this ranking prefix can
                        // never contribute to the violating mass.
                        continue 'insertion;
                    }
                }
                frontier.push(next, prob * pj);
            }
        }
        let next_len = frontier.merge_step(states);
        if let Some(budget) = budget {
            budget.check(next_len)?;
        }
    }
    Ok((1.0 - frontier.total_mass()).clamp(0.0, 1.0))
}

impl ExactSolver for TwoLabelSolver {
    fn name(&self) -> &'static str {
        if self.force_reference {
            "two-label-reference"
        } else {
            "two-label"
        }
    }

    fn solve(&self, rim: &RimModel, labeling: &Labeling, union: &PatternUnion) -> Result<f64> {
        if union.classify() != UnionClass::TwoLabel {
            return Err(SolverError::Unsupported(
                "the two-label solver requires a union of single-edge patterns".into(),
            ));
        }
        let m = rim.num_items();
        if m == 0 {
            return Err(SolverError::InvalidInstance("empty item universe".into()));
        }
        let universe = rim.sigma().items();

        // Members whose selectors match no item can never be satisfied and
        // contribute nothing to the union.
        let union = match union.prune_unsatisfiable(universe, labeling) {
            Some(u) => u,
            None => return Ok(0.0),
        };
        let compiled = compile(rim, labeling, &union);
        let budget = self.budget.as_ref();
        let width = packed::slot_bits(m) * (compiled.num_l() + compiled.num_r()) as u32;
        if self.force_reference || width > 128 {
            reference::solve(rim, &compiled, budget)
        } else if width <= 64 {
            solve_packed::<u64>(rim, &compiled, budget)
        } else {
            solve_packed::<u128>(rim, &compiled, budget)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::brute::BruteForceSolver;
    use crate::testutil::{cyclic_labeling, rim, sel};
    use ppd_patterns::{Pattern, PatternUnion};

    fn two_label_unions() -> Vec<PatternUnion> {
        vec![
            PatternUnion::singleton(Pattern::two_label(sel(0), sel(1))).unwrap(),
            PatternUnion::singleton(Pattern::two_label(sel(2), sel(0))).unwrap(),
            PatternUnion::new(vec![
                Pattern::two_label(sel(0), sel(1)),
                Pattern::two_label(sel(2), sel(0)),
            ])
            .unwrap(),
            PatternUnion::new(vec![
                Pattern::two_label(sel(2), sel(0)),
                Pattern::two_label(sel(2), sel(1)),
                Pattern::two_label(sel(1), sel(0)),
            ])
            .unwrap(),
        ]
    }

    #[test]
    fn rejects_non_two_label_unions() {
        let chain = Pattern::new(vec![sel(0), sel(1), sel(2)], vec![(0, 1), (1, 2)]).unwrap();
        let union = PatternUnion::singleton(chain).unwrap();
        let model = rim(5, 0.5);
        let lab = cyclic_labeling(5, 3);
        assert!(matches!(
            TwoLabelSolver::new().solve(&model, &lab, &union),
            Err(SolverError::Unsupported(_))
        ));
    }

    #[test]
    fn agrees_with_brute_force() {
        let brute = BruteForceSolver::new();
        let solver = TwoLabelSolver::new();
        for &m in &[4usize, 5, 6, 7] {
            for &phi in &[0.0, 0.1, 0.5, 1.0] {
                let model = rim(m, phi);
                let lab = cyclic_labeling(m, 3);
                for union in two_label_unions() {
                    let expected = brute.solve(&model, &lab, &union).unwrap();
                    let got = solver.solve(&model, &lab, &union).unwrap();
                    assert!(
                        (expected - got).abs() < 1e-9,
                        "m={m}, phi={phi}: expected {expected}, got {got}"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_kernel_is_bit_identical_to_reference() {
        let packed = TwoLabelSolver::new();
        let reference = TwoLabelSolver::reference();
        for &m in &[4usize, 6, 9] {
            for &phi in &[0.0, 0.3, 1.0] {
                let model = rim(m, phi);
                let lab = cyclic_labeling(m, 3);
                for union in two_label_unions() {
                    let a = packed.solve(&model, &lab, &union).unwrap();
                    let b = reference.solve(&model, &lab, &union).unwrap();
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "m={m}, phi={phi}: packed {a} vs reference {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn unsatisfiable_union_has_probability_zero() {
        let model = rim(5, 0.5);
        let lab = cyclic_labeling(5, 3);
        let union = PatternUnion::singleton(Pattern::two_label(sel(7), sel(8))).unwrap();
        assert_eq!(
            TwoLabelSolver::new().solve(&model, &lab, &union).unwrap(),
            0.0
        );
    }

    #[test]
    fn shared_selectors_are_deduplicated() {
        // Two edges sharing the same L selector: still correct.
        let model = rim(6, 0.4);
        let lab = cyclic_labeling(6, 3);
        let union = PatternUnion::new(vec![
            Pattern::two_label(sel(2), sel(0)),
            Pattern::two_label(sel(2), sel(1)),
        ])
        .unwrap();
        let expected = BruteForceSolver::new().solve(&model, &lab, &union).unwrap();
        let got = TwoLabelSolver::new().solve(&model, &lab, &union).unwrap();
        assert!((expected - got).abs() < 1e-9);
    }

    #[test]
    fn budget_abort_is_reported_by_both_kernels() {
        let model = rim(8, 0.5);
        let lab = cyclic_labeling(8, 4);
        let union = PatternUnion::new(vec![
            Pattern::two_label(sel(3), sel(0)),
            Pattern::two_label(sel(2), sel(1)),
            Pattern::two_label(sel(1), sel(0)),
        ])
        .unwrap();
        for solver in [
            TwoLabelSolver::with_budget(Budget::with_max_states(2)),
            TwoLabelSolver {
                budget: Some(Budget::with_max_states(2)),
                force_reference: true,
            },
        ] {
            assert!(matches!(
                solver.solve(&model, &lab, &union),
                Err(SolverError::BudgetExceeded(_))
            ));
        }
    }

    #[test]
    fn probability_in_unit_interval_on_larger_instances() {
        let model = rim(15, 0.3);
        let lab = cyclic_labeling(15, 4);
        let union = PatternUnion::new(vec![
            Pattern::two_label(sel(3), sel(0)),
            Pattern::two_label(sel(2), sel(1)),
        ])
        .unwrap();
        let p = TwoLabelSolver::new().solve(&model, &lab, &union).unwrap();
        assert!((0.0..=1.0).contains(&p));
        assert!(p > 0.0);
    }

    #[test]
    fn packed_state_width_reported() {
        let model = rim(6, 0.5);
        let lab = cyclic_labeling(6, 3);
        let union = PatternUnion::singleton(Pattern::two_label(sel(0), sel(1))).unwrap();
        // One L and one R selector over m = 6: 2 slots × 3 bits.
        assert_eq!(
            TwoLabelSolver::packed_state_width(&model, &lab, &union),
            Some(6)
        );
    }
}
