//! The general solver (Section 4.1): inclusion–exclusion over the members of
//! a pattern union, with every conjunction evaluated by the exact
//! single-pattern solver.
//!
//! `Pr(g₁ ∪ … ∪ g_z) = Σ_i Pr(g_i) − Σ_{i<j} Pr(g_i ∧ g_j) + …` where the
//! conjunction of patterns is the pattern containing all of their nodes and
//! edges. The solver is exponential in `z` (it evaluates `2^z − 1`
//! conjunctions) *and* each conjunction is itself costly, which is exactly why
//! the paper treats it as the non-scalable baseline; the specialised
//! two-label and bipartite solvers and the MIS-AMP family exist to avoid it.

use crate::budget::Budget;
use crate::exact::pattern::PatternSolver;
use crate::traits::ExactSolver;
use crate::{Result, SolverError};
use ppd_patterns::{Labeling, PatternUnion};
use ppd_rim::RimModel;
use std::collections::HashMap;

/// Exact solver for arbitrary pattern unions via inclusion–exclusion.
#[derive(Debug, Clone, Default)]
pub struct GeneralSolver {
    budget: Option<Budget>,
    max_union_size: Option<usize>,
}

impl GeneralSolver {
    /// Creates a solver with the default union-size cap (16 members, i.e. at
    /// most 65 535 conjunctions).
    pub fn new() -> Self {
        GeneralSolver::default()
    }

    /// Attaches a resource budget, forwarded to every conjunction evaluation.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Overrides the maximum number of union members accepted.
    pub fn with_max_union_size(mut self, max: usize) -> Self {
        self.max_union_size = Some(max);
        self
    }

    fn cap(&self) -> usize {
        self.max_union_size.unwrap_or(16)
    }

    /// Evaluates one conjunction of members; exposed so that experiment
    /// harnesses (Figure 5) can time individual conjunction evaluations.
    pub fn conjunction_probability(
        &self,
        rim: &RimModel,
        labeling: &Labeling,
        union: &PatternUnion,
        member_indices: &[usize],
    ) -> Result<f64> {
        let conjunction = union.conjunction_of(member_indices)?;
        let solver = match &self.budget {
            Some(b) => PatternSolver::with_budget(b.clone()),
            None => PatternSolver::new(),
        };
        solver.solve_pattern(rim, labeling, &conjunction)
    }
}

impl ExactSolver for GeneralSolver {
    fn name(&self) -> &'static str {
        "general"
    }

    fn solve(&self, rim: &RimModel, labeling: &Labeling, union: &PatternUnion) -> Result<f64> {
        self.solve_counting(rim, labeling, union).map(|(p, _)| p)
    }
}

impl GeneralSolver {
    /// [`ExactSolver::solve`], additionally reporting how many *distinct*
    /// conjunctions were actually evaluated. Within a single solve,
    /// conjunction probabilities are memoized by canonical conjunction:
    /// duplicate members canonicalize to the same conjunction pattern
    /// (`g ∧ g = g` — an embedding of each copy is an embedding of one), so
    /// distinct member subsets can share one evaluation. The count is
    /// exposed for the memoization tests and the experiment harnesses.
    pub fn solve_counting(
        &self,
        rim: &RimModel,
        labeling: &Labeling,
        union: &PatternUnion,
    ) -> Result<(f64, usize)> {
        if rim.num_items() == 0 {
            return Err(SolverError::InvalidInstance("empty item universe".into()));
        }
        // Members that cannot be satisfied contribute nothing, and removing
        // them shrinks the inclusion–exclusion expansion.
        let union = match union.prune_unsatisfiable(rim.sigma().items(), labeling) {
            Some(u) => u,
            None => return Ok((0.0, 0)),
        };
        let z = union.num_patterns();
        if z > self.cap() {
            return Err(SolverError::Unsupported(format!(
                "inclusion–exclusion over {z} members exceeds the cap of {}",
                self.cap()
            )));
        }
        // Content classes: members with structurally equal patterns share a
        // class, keyed by the index of the class's first occurrence.
        let class_of: Vec<usize> = (0..z)
            .map(|i| {
                (0..i)
                    .find(|&j| union.patterns()[j] == union.patterns()[i])
                    .unwrap_or(i)
            })
            .collect();
        let mut memo: HashMap<Vec<usize>, f64> = HashMap::new();
        let mut total = 0.0;
        // Iterate over all non-empty subsets of members.
        for mask in 1u64..(1u64 << z) {
            // The per-conjunction PatternSolver polls the budget inside its
            // DP, but memo hits skip it entirely; poll the cancellation probe
            // here so even a fully memoized expansion stays interruptible.
            if let Some(budget) = &self.budget {
                budget.check_cancelled()?;
            }
            // Canonical conjunction: the sorted set of distinct content
            // classes. Conjunction is idempotent and order-insensitive in
            // probability, so equal keys have equal conjunction marginals.
            let mut key: Vec<usize> = (0..z)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| class_of[i])
                .collect();
            key.sort_unstable();
            key.dedup();
            let p = match memo.get(&key) {
                Some(&p) => p,
                None => {
                    let p = self.conjunction_probability(rim, labeling, &union, &key)?;
                    memo.insert(key, p);
                    p
                }
            };
            // Inclusion–exclusion sign from the *original* subset size
            // (duplicates included).
            if mask.count_ones() % 2 == 1 {
                total += p;
            } else {
                total -= p;
            }
        }
        Ok((total.clamp(0.0, 1.0), memo.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::bipartite::BipartiteSolver;
    use crate::exact::brute::BruteForceSolver;
    use crate::exact::two_label::TwoLabelSolver;
    use crate::testutil::{cyclic_labeling, rim, sample_unions, sel};
    use ppd_patterns::{Pattern, PatternUnion, UnionClass};

    #[test]
    fn example_4_1_inclusion_exclusion() {
        // G = {l1 ≻ l2} ∪ {l3 ≻ l4}: Pr(G) = Pr(g1) + Pr(g2) − Pr(g1 ∧ g2).
        let model = rim(6, 0.5);
        let lab = cyclic_labeling(6, 4);
        let g1 = Pattern::two_label(sel(1), sel(2));
        let g2 = Pattern::two_label(sel(3), sel(0));
        let union = PatternUnion::new(vec![g1.clone(), g2.clone()]).unwrap();
        let solver = GeneralSolver::new();
        let p1 = solver
            .conjunction_probability(&model, &lab, &union, &[0])
            .unwrap();
        let p2 = solver
            .conjunction_probability(&model, &lab, &union, &[1])
            .unwrap();
        let p12 = solver
            .conjunction_probability(&model, &lab, &union, &[0, 1])
            .unwrap();
        let total = solver.solve(&model, &lab, &union).unwrap();
        assert!((total - (p1 + p2 - p12)).abs() < 1e-9);
        // The members are not mutually exclusive: Pr(G) < Pr(g1) + Pr(g2).
        assert!(total < p1 + p2);
    }

    #[test]
    fn agrees_with_brute_force_on_all_sample_unions() {
        let brute = BruteForceSolver::new();
        let solver = GeneralSolver::new();
        for &m in &[5usize, 6] {
            for &phi in &[0.2, 0.8] {
                let model = rim(m, phi);
                let lab = cyclic_labeling(m, 4);
                for union in sample_unions() {
                    let expected = brute.solve(&model, &lab, &union).unwrap();
                    let got = solver.solve(&model, &lab, &union).unwrap();
                    assert!(
                        (expected - got).abs() < 1e-9,
                        "m={m} phi={phi} union={union:?}: {expected} vs {got}"
                    );
                }
            }
        }
    }

    #[test]
    fn agrees_with_specialised_solvers_on_their_fragments() {
        let model = rim(7, 0.4);
        let lab = cyclic_labeling(7, 4);
        let general = GeneralSolver::new();
        for union in sample_unions() {
            let p = general.solve(&model, &lab, &union).unwrap();
            match union.classify() {
                UnionClass::TwoLabel => {
                    let q = TwoLabelSolver::new().solve(&model, &lab, &union).unwrap();
                    assert!((p - q).abs() < 1e-9);
                }
                UnionClass::Bipartite => {
                    let q = BipartiteSolver::new().solve(&model, &lab, &union).unwrap();
                    assert!((p - q).abs() < 1e-9);
                }
                UnionClass::General => {}
            }
        }
    }

    #[test]
    fn union_size_cap_enforced() {
        let model = rim(5, 0.5);
        let lab = cyclic_labeling(5, 3);
        let members: Vec<Pattern> = (0..5).map(|_| Pattern::two_label(sel(1), sel(0))).collect();
        let union = PatternUnion::new(members).unwrap();
        let solver = GeneralSolver::new().with_max_union_size(3);
        assert!(matches!(
            solver.solve(&model, &lab, &union),
            Err(SolverError::Unsupported(_))
        ));
    }

    #[test]
    fn duplicate_members_share_conjunction_evaluations() {
        // G = {g, g', g}: 7 non-empty subsets, but only 3 canonical
        // conjunctions ({g}, {g'}, {g ∧ g'}) need solving.
        let model = rim(6, 0.5);
        let lab = cyclic_labeling(6, 3);
        let g = Pattern::two_label(sel(1), sel(2));
        let g2 = Pattern::new(vec![sel(1), sel(2), sel(0)], vec![(0, 1), (1, 2)]).unwrap();
        let union = PatternUnion::new(vec![g.clone(), g2.clone(), g.clone()]).unwrap();
        let (p, evaluated) = GeneralSolver::new()
            .solve_counting(&model, &lab, &union)
            .unwrap();
        assert_eq!(evaluated, 3);
        let expected = BruteForceSolver::new().solve(&model, &lab, &union).unwrap();
        assert!((expected - p).abs() < 1e-9, "{expected} vs {p}");
        // A duplicate-free union evaluates every subset exactly once.
        let distinct = PatternUnion::new(vec![g, g2]).unwrap();
        let (_, evaluated) = GeneralSolver::new()
            .solve_counting(&model, &lab, &distinct)
            .unwrap();
        assert_eq!(evaluated, 3);
    }

    #[test]
    fn wholly_unsatisfiable_union_is_zero() {
        let model = rim(5, 0.5);
        let lab = cyclic_labeling(5, 3);
        let union = PatternUnion::singleton(Pattern::two_label(sel(9), sel(8))).unwrap();
        assert_eq!(
            GeneralSolver::new().solve(&model, &lab, &union).unwrap(),
            0.0
        );
    }
}
