//! Brute-force reference solver: enumerate all `m!` rankings.

use crate::traits::ExactSolver;
use crate::{Result, SolverError};
use ppd_patterns::{satisfies_union, Labeling, PatternUnion};
use ppd_rim::{Ranking, RimModel};

/// Enumerates every ranking of the model's items and sums the probabilities
/// of those that satisfy the union. Exponential in `m`, but it implements
/// Eq. 2 literally and therefore serves as the correctness oracle for every
/// other solver (unit tests, property tests, and the accuracy experiments on
/// small instances).
#[derive(Debug, Clone, Default)]
pub struct BruteForceSolver {
    /// Largest `m` the solver will accept (guards against accidental
    /// factorial blow-ups in experiments); defaults to 9.
    max_items: Option<usize>,
}

impl BruteForceSolver {
    /// Creates a brute-force solver with the default item cap (9).
    pub fn new() -> Self {
        BruteForceSolver::default()
    }

    /// Overrides the item cap.
    pub fn with_max_items(max_items: usize) -> Self {
        BruteForceSolver {
            max_items: Some(max_items),
        }
    }

    fn cap(&self) -> usize {
        self.max_items.unwrap_or(9)
    }
}

impl ExactSolver for BruteForceSolver {
    fn name(&self) -> &'static str {
        "brute-force"
    }

    fn solve(&self, rim: &RimModel, labeling: &Labeling, union: &PatternUnion) -> Result<f64> {
        let m = rim.num_items();
        if m == 0 {
            return Err(SolverError::InvalidInstance("empty item universe".into()));
        }
        if m > self.cap() {
            return Err(SolverError::Unsupported(format!(
                "brute force refuses m = {m} > {}",
                self.cap()
            )));
        }
        let mut total = 0.0;
        for tau in Ranking::enumerate_all(rim.sigma().items()) {
            if satisfies_union(&tau, labeling, union) {
                total += rim.prob_of(&tau);
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{cyclic_labeling, rim, sel};
    use ppd_patterns::{Pattern, PatternUnion};

    #[test]
    fn refuses_large_instances() {
        let solver = BruteForceSolver::new();
        let model = rim(12, 0.5);
        let lab = cyclic_labeling(12, 3);
        let union = PatternUnion::singleton(Pattern::two_label(sel(0), sel(1))).unwrap();
        assert!(matches!(
            solver.solve(&model, &lab, &union),
            Err(SolverError::Unsupported(_))
        ));
    }

    #[test]
    fn uniform_two_label_probability_is_analytic() {
        // Under the uniform distribution (φ = 1) with exactly one item per
        // label, Pr(l0-item before l1-item) = 1/2.
        let model = rim(4, 1.0);
        let lab = cyclic_labeling(4, 4);
        let union = PatternUnion::singleton(Pattern::two_label(sel(0), sel(1))).unwrap();
        let p = BruteForceSolver::new().solve(&model, &lab, &union).unwrap();
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn phi_zero_probability_is_indicator_on_center() {
        // With φ = 0 the only possible world is σ itself, so the probability
        // of a pattern is 1 or 0 depending on whether σ satisfies it.
        let model = rim(5, 0.0);
        let lab = cyclic_labeling(5, 5);
        let forward = PatternUnion::singleton(Pattern::two_label(sel(0), sel(4))).unwrap();
        let backward = PatternUnion::singleton(Pattern::two_label(sel(4), sel(0))).unwrap();
        let solver = BruteForceSolver::new();
        assert!((solver.solve(&model, &lab, &forward).unwrap() - 1.0).abs() < 1e-12);
        assert!(solver.solve(&model, &lab, &backward).unwrap().abs() < 1e-12);
    }

    #[test]
    fn union_probability_is_monotone_in_members() {
        let model = rim(5, 0.3);
        let lab = cyclic_labeling(5, 3);
        let g1 = Pattern::two_label(sel(2), sel(0));
        let g2 = Pattern::two_label(sel(1), sel(0));
        let solver = BruteForceSolver::new();
        let p1 = solver
            .solve(&model, &lab, &PatternUnion::singleton(g1.clone()).unwrap())
            .unwrap();
        let p12 = solver
            .solve(&model, &lab, &PatternUnion::new(vec![g1, g2]).unwrap())
            .unwrap();
        assert!(p12 >= p1 - 1e-12);
        assert!(p12 <= 1.0 + 1e-12);
    }
}
