//! A synthetic stand-in for the MovieLens dataset (Section 6.1).
//!
//! The paper selects the 200 most-rated movies, learns a 16-component Mallows
//! mixture from the ratings of ~6000 users, and stores movie metadata in a
//! relation `M(id, title, year, genre)`. The raw ratings are not
//! redistributable here, so this generator produces a movie catalogue with
//! the same attribute structure (plus the runtime and lead-actor attributes
//! used by the Section 6.4 query) and user sessions whose models are drawn
//! from a synthetic 16-component mixture with genre/era-correlated centres.

use ppd_core::{DatabaseBuilder, PpdDatabase, PreferenceRelation, Relation, Session, Value};
use ppd_rim::{Item, MallowsModel, Ranking};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration of the MovieLens-like generator.
#[derive(Debug, Clone, Copy)]
pub struct MovieLensConfig {
    /// Number of movies in the catalogue (the paper uses 200).
    pub num_movies: usize,
    /// Number of mixture components (the paper learns 16).
    pub num_components: usize,
    /// Number of user sessions to materialise.
    pub num_users: usize,
    /// Mallows dispersion of each component.
    pub phi: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MovieLensConfig {
    fn default() -> Self {
        MovieLensConfig {
            num_movies: 200,
            num_components: 16,
            num_users: 64,
            phi: 0.3,
            seed: 1997,
        }
    }
}

const GENRES: [&str; 8] = [
    "Drama",
    "Comedy",
    "Thriller",
    "Action",
    "Romance",
    "SciFi",
    "Horror",
    "Animation",
];

/// Generates the MovieLens-like database: item relation
/// `Movies(id, title, year, genre, runtime, lead_sex, lead_age)` and a
/// p-relation `Ratings(user)` with one session per user.
pub fn movielens_database(config: &MovieLensConfig) -> PpdDatabase {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let m = config.num_movies.max(2);

    let mut movie_tuples = Vec::with_capacity(m);
    for i in 0..m {
        let year = 1960 + rng.gen_range(0..46) as i64;
        let genre = GENRES[rng.gen_range(0..GENRES.len())];
        let runtime = if rng.gen_bool(0.3) { "short" } else { "long" };
        let lead_sex = if rng.gen_bool(0.5) { "F" } else { "M" };
        let lead_age = 20 + 10 * rng.gen_range(0..5) as i64;
        movie_tuples.push(vec![
            Value::from(i as i64),
            Value::from(format!("movie{i}")),
            Value::from(year),
            Value::from(genre),
            Value::from(runtime),
            Value::from(lead_sex),
            Value::from(lead_age),
        ]);
    }
    let movies = Relation::new(
        "Movies",
        vec![
            "id", "title", "year", "genre", "runtime", "lead_sex", "lead_age",
        ],
        movie_tuples.clone(),
    )
    .expect("well-formed movie tuples");

    // Mixture components: each centre mildly prefers one genre/era slice by
    // sorting with a per-component random affinity plus noise.
    let mut components: Vec<MallowsModel> = Vec::with_capacity(config.num_components);
    for _ in 0..config.num_components.max(1) {
        let favourite_genre = rng.gen_range(0..GENRES.len());
        let era_split = 1960 + rng.gen_range(0..46) as i64;
        let mut scored: Vec<(f64, Item)> = (0..m)
            .map(|i| {
                let genre = movie_tuples[i][3].render();
                let year = movie_tuples[i][2].as_int().unwrap_or(1980);
                let mut score = rng.gen::<f64>();
                if genre == GENRES[favourite_genre] {
                    score -= 0.8;
                }
                if year >= era_split {
                    score -= 0.4;
                }
                (score, i as Item)
            })
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let sigma = Ranking::new(scored.into_iter().map(|(_, it)| it).collect())
            .expect("permutation of movie ids");
        components.push(MallowsModel::new(sigma, config.phi).expect("valid phi"));
    }

    let mut sessions = Vec::with_capacity(config.num_users);
    for u in 0..config.num_users {
        let model = components
            .choose(&mut rng)
            .expect("at least one component")
            .clone();
        sessions.push(Session::new(vec![Value::from(format!("user{u}"))], model));
    }
    let ratings =
        PreferenceRelation::new("Ratings", vec!["user"], sessions).expect("valid sessions");

    DatabaseBuilder::new()
        .item_relation(movies, "id")
        .preference_relation(ratings)
        .build()
        .expect("movielens database is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_sizes() {
        let db = movielens_database(&MovieLensConfig {
            num_movies: 40,
            num_components: 4,
            num_users: 10,
            phi: 0.3,
            seed: 2,
        });
        assert_eq!(db.num_items(), 40);
        assert_eq!(
            db.preference_relation("Ratings").unwrap().num_sessions(),
            10
        );
        // Year and genre labels exist.
        assert!(db
            .item_attribute(0, "year")
            .and_then(|v| v.as_int())
            .is_some());
        assert!(GENRES.contains(&db.item_attribute(0, "genre").unwrap().render().as_str()));
    }

    #[test]
    fn sessions_reuse_the_mixture_components() {
        let db = movielens_database(&MovieLensConfig {
            num_movies: 30,
            num_components: 3,
            num_users: 40,
            phi: 0.2,
            seed: 9,
        });
        let sessions = db.preference_relation("Ratings").unwrap().sessions();
        let distinct: std::collections::HashSet<Vec<u32>> = sessions
            .iter()
            .map(|s| s.model().sigma().items().to_vec())
            .collect();
        assert!(distinct.len() <= 3);
        assert!(distinct.len() >= 2);
    }
}
