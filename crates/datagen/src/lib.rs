//! # ppd-datagen
//!
//! Generators for the six dataset families of the paper's experimental
//! evaluation (Section 6.1):
//!
//! * [`polls`] — the synthetic 2016-election polling database (item relation
//!   `Candidates`, o-relation `Voters`, p-relation `Polls`);
//! * [`benchmarks`] — Benchmark-A, -B, -C and -D: families of pattern unions
//!   over labeled Mallows models, used to stress individual solvers;
//! * [`movielens`] — a synthetic stand-in for the MovieLens dataset: a movie
//!   catalogue with year/genre/runtime/lead attributes and user sessions
//!   drawn from a 16-component Mallows mixture;
//! * [`crowdrank`] — a synthetic stand-in for the CrowdRank dataset: one HIT
//!   of 20 movies with 7 Mallows models and up to 200 000 synthetic worker
//!   sessions.
//!
//! The real MovieLens ratings and CrowdRank HITs are not redistributable
//! inputs, so the generators reproduce their *statistical shape* (catalogue
//! sizes, number of mixture components, attribute distributions); see
//! DESIGN.md's substitution table.

pub mod benchmarks;
pub mod crowdrank;
pub mod movielens;
pub mod polls;

pub use benchmarks::{
    benchmark_a, benchmark_b, benchmark_c, benchmark_d, BenchmarkBConfig, BenchmarkCConfig,
    BenchmarkDConfig,
};
pub use crowdrank::{crowdrank_database, CrowdRankConfig};
pub use movielens::{movielens_database, MovieLensConfig};
pub use polls::{polls_database, polls_q1_query, PollsConfig};

use ppd_patterns::{Labeling, PatternUnion};
use ppd_rim::MallowsModel;

/// A self-contained solver workload: a labeled Mallows model plus a pattern
/// union whose marginal probability is to be computed. The benchmark
/// generators produce lists of these.
#[derive(Debug, Clone)]
pub struct SolverInstance {
    /// Human-readable description of the instance parameters.
    pub description: String,
    /// The Mallows model.
    pub model: MallowsModel,
    /// The labeling function over the model's items.
    pub labeling: Labeling,
    /// The pattern union to evaluate.
    pub union: PatternUnion,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppd_patterns::UnionClass;
    use ppd_solvers::{BipartiteSolver, ExactSolver};

    #[test]
    fn benchmark_a_instances_are_bipartite_and_solvable() {
        let instances = benchmark_a(4, 99);
        assert_eq!(instances.len(), 4);
        for inst in &instances {
            assert_eq!(inst.union.num_patterns(), 3);
            assert_eq!(inst.union.classify(), UnionClass::Bipartite);
            assert_eq!(inst.model.num_items(), 15);
            let p = BipartiteSolver::new()
                .solve(&inst.model.to_rim(), &inst.labeling, &inst.union)
                .unwrap();
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
