//! Benchmark-A, -B, -C, -D: synthetic pattern-union workloads over labeled
//! Mallows models (Section 6.1 of the paper).

use crate::SolverInstance;
use ppd_patterns::{Labeling, NodeSelector, Pattern, PatternUnion};
use ppd_rim::{Item, MallowsModel, Ranking};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Samples `count` distinct items, item `σ_i` (1-based) drawn with
/// probability ∝ `weight(i)`.
fn weighted_distinct_items<R: Rng + ?Sized>(
    m: usize,
    count: usize,
    weight: impl Fn(usize) -> f64,
    rng: &mut R,
) -> Vec<Item> {
    let mut chosen: Vec<Item> = Vec::with_capacity(count);
    let mut available: Vec<usize> = (1..=m).collect();
    for _ in 0..count.min(m) {
        let weights: Vec<f64> = available.iter().map(|&i| weight(i)).collect();
        let total: f64 = weights.iter().sum();
        let mut u = rng.gen::<f64>() * total;
        let mut pick = available.len() - 1;
        for (idx, w) in weights.iter().enumerate() {
            if u < *w {
                pick = idx;
                break;
            }
            u -= w;
        }
        chosen.push((available.remove(pick) - 1) as Item);
        if available.is_empty() {
            break;
        }
    }
    chosen
}

/// Benchmark-A: `count` pattern unions over `MAL(⟨σ_1…σ_15⟩, 0.1)`. Every
/// union has three bipartite patterns `{A ≻ C, A ≻ D, B ≻ D}`; the three
/// patterns share the items of labels `B` and `D`; labels `A`/`B` prefer
/// high-rank items (`p_i ∝ i^1.5`) while `C`/`D` prefer low-rank items
/// (`p_i ∝ (16 − i)^1.5`), producing unions with low probabilities that
/// stress the accuracy of the approximate solvers. The paper uses 33 unions;
/// `count` makes the family size configurable.
pub fn benchmark_a(count: usize, seed: u64) -> Vec<SolverInstance> {
    let m = 15usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    for idx in 0..count {
        let model = MallowsModel::new(Ranking::identity(m), 0.1).unwrap();
        let mut labeling = Labeling::new();
        for item in 0..m as Item {
            labeling.add_item(item);
        }
        let mut next_label = 0u32;
        let mut fresh = || {
            next_label += 1;
            next_label - 1
        };
        // Shared labels B and D.
        let top_weight = |i: usize| (i as f64).powf(1.5);
        let bottom_weight = |i: usize| ((16 - i) as f64).powf(1.5);
        let label_b = fresh();
        let label_d = fresh();
        for item in weighted_distinct_items(m, 3, top_weight, &mut rng) {
            labeling.add(item, label_b);
        }
        for item in weighted_distinct_items(m, 3, bottom_weight, &mut rng) {
            labeling.add(item, label_d);
        }
        let mut patterns = Vec::with_capacity(3);
        for _ in 0..3 {
            let label_a = fresh();
            let label_c = fresh();
            for item in weighted_distinct_items(m, 3, top_weight, &mut rng) {
                labeling.add(item, label_a);
            }
            for item in weighted_distinct_items(m, 3, bottom_weight, &mut rng) {
                labeling.add(item, label_c);
            }
            let pattern = Pattern::new(
                vec![
                    NodeSelector::single(label_a),
                    NodeSelector::single(label_b),
                    NodeSelector::single(label_c),
                    NodeSelector::single(label_d),
                ],
                vec![(0, 2), (0, 3), (1, 3)],
            )
            .unwrap();
            patterns.push(pattern);
        }
        out.push(SolverInstance {
            description: format!("benchmark-a #{idx} (m=15, phi=0.1)"),
            model,
            labeling,
            union: PatternUnion::new(patterns).unwrap(),
        });
    }
    out
}

/// Parameters of one Benchmark-B cell.
#[derive(Debug, Clone, Copy)]
pub struct BenchmarkBConfig {
    /// Number of items in the Mallows model.
    pub num_items: usize,
    /// Mallows dispersion.
    pub phi: f64,
    /// Number of patterns per union.
    pub patterns_per_union: usize,
    /// Number of labels per pattern.
    pub labels_per_pattern: usize,
    /// Number of items per label.
    pub items_per_label: usize,
    /// Number of instances to generate.
    pub instances: usize,
}

impl Default for BenchmarkBConfig {
    fn default() -> Self {
        BenchmarkBConfig {
            num_items: 20,
            phi: 0.1,
            patterns_per_union: 2,
            labels_per_pattern: 3,
            items_per_label: 3,
            instances: 10,
        }
    }
}

/// Benchmark-B: unions of general patterns over a random partial order of
/// labels. All patterns of a union share the same edge structure (the same
/// random partial order of label *slots*) but use different labels, i.e.
/// different candidate item sets.
pub fn benchmark_b(config: &BenchmarkBConfig, seed: u64) -> Vec<SolverInstance> {
    generate_random_union_family(config, seed, EdgeStyle::RandomPartialOrder, "benchmark-b")
}

/// Parameters of one Benchmark-C cell.
#[derive(Debug, Clone, Copy)]
pub struct BenchmarkCConfig {
    /// Number of items in the Mallows model.
    pub num_items: usize,
    /// Mallows dispersion.
    pub phi: f64,
    /// Number of patterns per union.
    pub patterns_per_union: usize,
    /// Number of labels per pattern.
    pub labels_per_pattern: usize,
    /// Number of items per label.
    pub items_per_label: usize,
    /// Number of instances to generate.
    pub instances: usize,
}

impl Default for BenchmarkCConfig {
    fn default() -> Self {
        BenchmarkCConfig {
            num_items: 12,
            phi: 0.1,
            patterns_per_union: 2,
            labels_per_pattern: 3,
            items_per_label: 3,
            instances: 10,
        }
    }
}

/// Benchmark-C: unions of bipartite patterns whose edges form a random
/// bipartite DAG over the label slots; smaller models than Benchmark-B.
pub fn benchmark_c(config: &BenchmarkCConfig, seed: u64) -> Vec<SolverInstance> {
    let b = BenchmarkBConfig {
        num_items: config.num_items,
        phi: config.phi,
        patterns_per_union: config.patterns_per_union,
        labels_per_pattern: config.labels_per_pattern,
        items_per_label: config.items_per_label,
        instances: config.instances,
    };
    generate_random_union_family(&b, seed, EdgeStyle::RandomBipartite, "benchmark-c")
}

/// Parameters of one Benchmark-D cell.
#[derive(Debug, Clone, Copy)]
pub struct BenchmarkDConfig {
    /// Number of items in the Mallows model.
    pub num_items: usize,
    /// Mallows dispersion.
    pub phi: f64,
    /// Number of two-label patterns per union.
    pub patterns_per_union: usize,
    /// Number of items per label.
    pub items_per_label: usize,
    /// Number of instances to generate.
    pub instances: usize,
}

impl Default for BenchmarkDConfig {
    fn default() -> Self {
        BenchmarkDConfig {
            num_items: 20,
            phi: 0.5,
            patterns_per_union: 2,
            items_per_label: 3,
            instances: 10,
        }
    }
}

/// Benchmark-D: randomly generated unions of two-label patterns, used to map
/// out the two-label solver's scalability (Figure 6).
pub fn benchmark_d(config: &BenchmarkDConfig, seed: u64) -> Vec<SolverInstance> {
    let b = BenchmarkBConfig {
        num_items: config.num_items,
        phi: config.phi,
        patterns_per_union: config.patterns_per_union,
        labels_per_pattern: 2,
        items_per_label: config.items_per_label,
        instances: config.instances,
    };
    generate_random_union_family(&b, seed, EdgeStyle::SingleEdge, "benchmark-d")
}

enum EdgeStyle {
    RandomPartialOrder,
    RandomBipartite,
    SingleEdge,
}

fn generate_random_union_family(
    config: &BenchmarkBConfig,
    seed: u64,
    style: EdgeStyle,
    family: &str,
) -> Vec<SolverInstance> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(config.instances);
    for idx in 0..config.instances {
        let m = config.num_items;
        let q = config.labels_per_pattern.max(2);
        let model = MallowsModel::new(Ranking::identity(m), config.phi).unwrap();
        // Shared edge structure over label slots 0..q.
        let edges: Vec<(usize, usize)> = match style {
            EdgeStyle::SingleEdge => vec![(0, 1)],
            EdgeStyle::RandomPartialOrder => {
                let mut e = Vec::new();
                for a in 0..q {
                    for b in (a + 1)..q {
                        if rng.gen_bool(0.5) {
                            e.push((a, b));
                        }
                    }
                }
                if e.is_empty() {
                    e.push((0, q - 1));
                }
                e
            }
            EdgeStyle::RandomBipartite => {
                // Split the slots into a left and right part and connect them
                // randomly (each right slot gets at least one incoming edge).
                let split = (q / 2).max(1);
                let mut e = Vec::new();
                for b in split..q {
                    let a = rng.gen_range(0..split);
                    e.push((a, b));
                }
                for a in 0..split {
                    for b in split..q {
                        if !e.contains(&(a, b)) && rng.gen_bool(0.3) {
                            e.push((a, b));
                        }
                    }
                }
                // Every left slot needs at least one edge, otherwise the
                // pattern would contain an isolated node and no longer count
                // as bipartite.
                for a in 0..split {
                    if !e.iter().any(|&(x, _)| x == a) {
                        let b = rng.gen_range(split..q);
                        e.push((a, b));
                    }
                }
                e
            }
        };
        // One pattern per union member: fresh labels, random item sets.
        let mut labeling = Labeling::new();
        for item in 0..m as Item {
            labeling.add_item(item);
        }
        let mut next_label = 0u32;
        let mut patterns = Vec::with_capacity(config.patterns_per_union);
        let all_items: Vec<Item> = (0..m as Item).collect();
        for _ in 0..config.patterns_per_union {
            let mut selectors = Vec::with_capacity(q);
            for _ in 0..q {
                let label = next_label;
                next_label += 1;
                let chosen: Vec<Item> = all_items
                    .choose_multiple(&mut rng, config.items_per_label.min(m))
                    .copied()
                    .collect();
                for item in chosen {
                    labeling.add(item, label);
                }
                selectors.push(NodeSelector::single(label));
            }
            patterns.push(Pattern::new(selectors, edges.clone()).unwrap());
        }
        out.push(SolverInstance {
            description: format!(
                "{family} #{idx} (m={m}, phi={}, z={}, q={q}, items/label={})",
                config.phi, config.patterns_per_union, config.items_per_label
            ),
            model,
            labeling,
            union: PatternUnion::new(patterns).unwrap(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppd_patterns::UnionClass;

    #[test]
    fn benchmark_b_respects_configuration() {
        let config = BenchmarkBConfig {
            num_items: 20,
            phi: 0.1,
            patterns_per_union: 3,
            labels_per_pattern: 4,
            items_per_label: 5,
            instances: 5,
        };
        let instances = benchmark_b(&config, 7);
        assert_eq!(instances.len(), 5);
        for inst in &instances {
            assert_eq!(inst.model.num_items(), 20);
            assert_eq!(inst.union.num_patterns(), 3);
            for p in inst.union.patterns() {
                assert_eq!(p.num_nodes(), 4);
                assert!(p.num_edges() >= 1);
            }
        }
    }

    #[test]
    fn benchmark_c_is_bipartite() {
        let config = BenchmarkCConfig {
            num_items: 12,
            patterns_per_union: 2,
            labels_per_pattern: 4,
            items_per_label: 3,
            instances: 6,
            phi: 0.1,
        };
        for inst in benchmark_c(&config, 11) {
            assert!(matches!(
                inst.union.classify(),
                UnionClass::Bipartite | UnionClass::TwoLabel
            ));
        }
    }

    #[test]
    fn benchmark_d_is_two_label() {
        let config = BenchmarkDConfig {
            num_items: 20,
            patterns_per_union: 4,
            items_per_label: 3,
            instances: 6,
            phi: 0.5,
        };
        for inst in benchmark_d(&config, 13) {
            assert_eq!(inst.union.classify(), UnionClass::TwoLabel);
            assert_eq!(inst.union.num_patterns(), 4);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = benchmark_a(3, 5);
        let b = benchmark_a(3, 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.union, y.union);
            assert_eq!(x.labeling, y.labeling);
        }
        let c = benchmark_a(3, 6);
        assert!(a
            .iter()
            .zip(&c)
            .any(|(x, y)| x.union != y.union || x.labeling != y.labeling));
    }

    #[test]
    fn weighted_sampling_prefers_heavy_items() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut top_hits = 0;
        for _ in 0..200 {
            let items = weighted_distinct_items(15, 3, |i| (i as f64).powf(3.0), &mut rng);
            assert_eq!(items.len(), 3);
            if items.iter().any(|&it| it >= 12) {
                top_hits += 1;
            }
        }
        assert!(top_hits > 150);
    }
}
