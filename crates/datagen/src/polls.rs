//! The synthetic `Polls` database (Section 6.1), modelled on the 2016 US
//! presidential election example of Figure 1.

use ppd_core::{
    ConjunctiveQuery, DatabaseBuilder, PpdDatabase, PreferenceRelation, Relation, Session, Term,
    Value,
};
use ppd_rim::{Item, MallowsModel, Ranking};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration of the Polls generator.
#[derive(Debug, Clone, Copy)]
pub struct PollsConfig {
    /// Number of candidates (items).
    pub num_candidates: usize,
    /// Number of voters; each voter yields one polling session.
    pub num_voters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PollsConfig {
    fn default() -> Self {
        PollsConfig {
            num_candidates: 20,
            num_voters: 1000,
            seed: 2016,
        }
    }
}

/// Q1 of the paper over the Polls schema: "a female candidate is preferred
/// to a male candidate". The canonical workload query of the engine's
/// benches and determinism tests — kept here, next to the schema it is
/// written against, so a schema change cannot silently leave the harnesses
/// querying different shapes.
pub fn polls_q1_query() -> ConjunctiveQuery {
    ConjunctiveQuery::new("Q1")
        .prefer(
            "Polls",
            vec![Term::any(), Term::any()],
            Term::var("c1"),
            Term::var("c2"),
        )
        .atom(
            "Candidates",
            vec![
                Term::var("c1"),
                Term::any(),
                Term::val("F"),
                Term::any(),
                Term::any(),
                Term::any(),
            ],
        )
        .atom(
            "Candidates",
            vec![
                Term::var("c2"),
                Term::any(),
                Term::val("M"),
                Term::any(),
                Term::any(),
                Term::any(),
            ],
        )
}

const PARTIES: [&str; 2] = ["D", "R"];
const SEXES: [&str; 2] = ["F", "M"];
const REGIONS: [&str; 6] = ["NE", "MW", "S", "W", "SW", "NW"];
const EDUS: [&str; 6] = ["HS", "BS", "BA", "MS", "JD", "PhD"];
const AGES: [i64; 6] = [20, 30, 40, 50, 60, 70];
const DATES: [&str; 2] = ["5/5", "6/5"];

/// Generates the Polls database: a `Candidates` item relation, a `Voters`
/// o-relation, and a `Polls` p-relation with one session per voter.
///
/// Voters fall into 72 demographic groups (sex × age bracket × education);
/// each group owns 9 Mallows models (3 random reference rankings × 3
/// dispersions {0.2, 0.5, 0.8}), and every voter is assigned one model from
/// their group and a random poll date — the recipe described in Section 6.1.
pub fn polls_database(config: &PollsConfig) -> PpdDatabase {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let m = config.num_candidates.max(2);

    // Candidates.
    let mut candidate_tuples = Vec::with_capacity(m);
    for i in 0..m {
        candidate_tuples.push(vec![
            Value::from(format!("cand{i}")),
            Value::from(PARTIES[rng.gen_range(0..PARTIES.len())]),
            Value::from(SEXES[rng.gen_range(0..SEXES.len())]),
            Value::from(AGES[rng.gen_range(0..AGES.len())]),
            Value::from(EDUS[rng.gen_range(0..EDUS.len())]),
            Value::from(REGIONS[rng.gen_range(0..REGIONS.len())]),
        ]);
    }
    let candidates = Relation::new(
        "Candidates",
        vec!["candidate", "party", "sex", "age", "edu", "reg"],
        candidate_tuples,
    )
    .expect("well-formed candidate tuples");

    // Demographic groups: sex × age × edu, each with 9 Mallows models.
    let phis = [0.2, 0.5, 0.8];
    let mut group_models: Vec<Vec<MallowsModel>> = Vec::new();
    let num_groups = SEXES.len() * AGES.len() * EDUS.len();
    for _ in 0..num_groups {
        let mut models = Vec::with_capacity(9);
        for _ in 0..3 {
            let mut items: Vec<Item> = (0..m as Item).collect();
            items.shuffle(&mut rng);
            let sigma = Ranking::new(items).expect("shuffled permutation");
            for &phi in &phis {
                models.push(MallowsModel::new(sigma.clone(), phi).expect("valid phi"));
            }
        }
        group_models.push(models);
    }
    let group_of = |sex: usize, age: usize, edu: usize| -> usize {
        sex * AGES.len() * EDUS.len() + age * EDUS.len() + edu
    };

    // Voters and their polling sessions.
    let mut voter_tuples = Vec::with_capacity(config.num_voters);
    let mut sessions = Vec::with_capacity(config.num_voters);
    for v in 0..config.num_voters {
        let sex = rng.gen_range(0..SEXES.len());
        let age = rng.gen_range(0..AGES.len());
        let edu = rng.gen_range(0..EDUS.len());
        let name = format!("voter{v}");
        voter_tuples.push(vec![
            Value::from(name.clone()),
            Value::from(SEXES[sex]),
            Value::from(AGES[age]),
            Value::from(EDUS[edu]),
        ]);
        let models = &group_models[group_of(sex, age, edu)];
        let model = models[rng.gen_range(0..models.len())].clone();
        let date = DATES[rng.gen_range(0..DATES.len())];
        sessions.push(Session::new(
            vec![Value::from(name), Value::from(date)],
            model,
        ));
    }
    let voters = Relation::new("Voters", vec!["voter", "sex", "age", "edu"], voter_tuples)
        .expect("well-formed voter tuples");
    let polls =
        PreferenceRelation::new("Polls", vec!["voter", "date"], sessions).expect("valid sessions");

    DatabaseBuilder::new()
        .item_relation(candidates, "candidate")
        .relation(voters)
        .preference_relation(polls)
        .build()
        .expect("polls database is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppd_core::{evaluate_boolean, ConjunctiveQuery, EvalConfig, Term as T};

    #[test]
    fn generates_requested_sizes() {
        let db = polls_database(&PollsConfig {
            num_candidates: 12,
            num_voters: 50,
            seed: 1,
        });
        assert_eq!(db.num_items(), 12);
        assert_eq!(db.relation("Voters").unwrap().len(), 50);
        assert_eq!(db.preference_relation("Polls").unwrap().num_sessions(), 50);
        // Every session ranks all candidates.
        for s in db.preference_relation("Polls").unwrap().sessions() {
            assert_eq!(s.model().num_items(), 12);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = polls_database(&PollsConfig {
            num_candidates: 8,
            num_voters: 10,
            seed: 3,
        });
        let b = polls_database(&PollsConfig {
            num_candidates: 8,
            num_voters: 10,
            seed: 3,
        });
        let sa = a.preference_relation("Polls").unwrap().sessions();
        let sb = b.preference_relation("Polls").unwrap().sessions();
        for (x, y) in sa.iter().zip(sb) {
            assert_eq!(x.model().sigma().items(), y.model().sigma().items());
            assert_eq!(x.model().phi(), y.model().phi());
        }
    }

    #[test]
    fn figure_4_query_is_evaluable_on_a_small_instance() {
        // The Figure 4 query: a male candidate preferred to a female
        // candidate of the same party.
        let db = polls_database(&PollsConfig {
            num_candidates: 8,
            num_voters: 6,
            seed: 5,
        });
        let q = ConjunctiveQuery::new("fig4")
            .prefer("Polls", vec![T::any(), T::any()], T::var("l"), T::var("r"))
            .atom(
                "Candidates",
                vec![
                    T::var("l"),
                    T::var("p"),
                    T::val("M"),
                    T::any(),
                    T::any(),
                    T::any(),
                ],
            )
            .atom(
                "Candidates",
                vec![
                    T::var("r"),
                    T::var("p"),
                    T::val("F"),
                    T::any(),
                    T::any(),
                    T::any(),
                ],
            );
        let p = evaluate_boolean(&db, &q, &EvalConfig::exact()).unwrap();
        assert!((0.0..=1.0).contains(&p));
    }
}
