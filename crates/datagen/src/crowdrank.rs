//! A synthetic stand-in for the CrowdRank dataset (Section 6.1 / 6.4).
//!
//! The paper selects one Human Intelligence Task of 20 movies ranked by 100
//! workers, mines a 7-component Mallows mixture from it, and synthesises
//! 200 000 worker profiles (with demographics) whose preference models come
//! from that mixture. This generator reproduces that shape directly: a
//! 20-movie catalogue, 7 Mallows models, and `num_workers` sessions whose
//! demographics and model assignment are drawn from simple categorical
//! distributions. Because many workers share a model and the Section 6.4
//! query binds only coarse demographics, grouping identical requests
//! collapses the 200 000 sessions into a handful of solver calls — the effect
//! Figure 15 measures.

use ppd_core::{DatabaseBuilder, PpdDatabase, PreferenceRelation, Relation, Session, Value};
use ppd_rim::{Item, MallowsModel, Ranking};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration of the CrowdRank-like generator.
#[derive(Debug, Clone, Copy)]
pub struct CrowdRankConfig {
    /// Number of movies in the HIT (the paper uses 20).
    pub num_movies: usize,
    /// Number of Mallows models mined from the HIT (the paper uses 7).
    pub num_models: usize,
    /// Number of synthetic worker sessions (the paper synthesises 200 000).
    pub num_workers: usize,
    /// Mallows dispersion of each model.
    pub phi: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CrowdRankConfig {
    fn default() -> Self {
        CrowdRankConfig {
            num_movies: 20,
            num_models: 7,
            num_workers: 200_000,
            phi: 0.4,
            seed: 777,
        }
    }
}

const GENRES: [&str; 5] = ["Thriller", "Drama", "Comedy", "Action", "Romance"];
const AGE_BRACKETS: [i64; 5] = [20, 30, 40, 50, 60];

/// Generates the CrowdRank-like database: item relation
/// `Movies(id, genre, lead_sex, lead_age, runtime)`, o-relation
/// `Workers(worker, sex, age)` and p-relation `HitRankings(worker)`.
pub fn crowdrank_database(config: &CrowdRankConfig) -> PpdDatabase {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let m = config.num_movies.max(2);

    let mut movie_tuples = Vec::with_capacity(m);
    for i in 0..m {
        movie_tuples.push(vec![
            Value::from(i as i64),
            Value::from(GENRES[rng.gen_range(0..GENRES.len())]),
            Value::from(if rng.gen_bool(0.5) { "F" } else { "M" }),
            Value::from(AGE_BRACKETS[rng.gen_range(0..AGE_BRACKETS.len())]),
            Value::from(if rng.gen_bool(0.4) { "short" } else { "long" }),
        ]);
    }
    let movies = Relation::new(
        "Movies",
        vec!["id", "genre", "lead_sex", "lead_age", "runtime"],
        movie_tuples,
    )
    .expect("well-formed movie tuples");

    let mut models = Vec::with_capacity(config.num_models.max(1));
    for _ in 0..config.num_models.max(1) {
        let mut items: Vec<Item> = (0..m as Item).collect();
        items.shuffle(&mut rng);
        models.push(
            MallowsModel::new(Ranking::new(items).expect("permutation"), config.phi)
                .expect("valid phi"),
        );
    }

    let mut worker_tuples = Vec::with_capacity(config.num_workers);
    let mut sessions = Vec::with_capacity(config.num_workers);
    for w in 0..config.num_workers {
        let name = format!("w{w}");
        let sex = if rng.gen_bool(0.5) { "F" } else { "M" };
        let age = AGE_BRACKETS[rng.gen_range(0..AGE_BRACKETS.len())];
        worker_tuples.push(vec![
            Value::from(name.clone()),
            Value::from(sex),
            Value::from(age),
        ]);
        let model = models.choose(&mut rng).expect("non-empty").clone();
        sessions.push(Session::new(vec![Value::from(name)], model));
    }
    let workers = Relation::new("Workers", vec!["worker", "sex", "age"], worker_tuples)
        .expect("well-formed worker tuples");
    let rankings =
        PreferenceRelation::new("HitRankings", vec!["worker"], sessions).expect("valid sessions");

    DatabaseBuilder::new()
        .item_relation(movies, "id")
        .relation(workers)
        .preference_relation(rankings)
        .build()
        .expect("crowdrank database is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_sizes() {
        let db = crowdrank_database(&CrowdRankConfig {
            num_movies: 20,
            num_models: 7,
            num_workers: 500,
            phi: 0.4,
            seed: 4,
        });
        assert_eq!(db.num_items(), 20);
        assert_eq!(db.relation("Workers").unwrap().len(), 500);
        assert_eq!(
            db.preference_relation("HitRankings")
                .unwrap()
                .num_sessions(),
            500
        );
        // At most 7 distinct models are in use.
        let distinct: std::collections::HashSet<(Vec<u32>, u64)> = db
            .preference_relation("HitRankings")
            .unwrap()
            .sessions()
            .iter()
            .map(|s| s.model_key())
            .collect();
        assert!(distinct.len() <= 7);
    }

    #[test]
    fn worker_demographics_cover_both_sexes() {
        let db = crowdrank_database(&CrowdRankConfig {
            num_movies: 10,
            num_models: 3,
            num_workers: 200,
            phi: 0.4,
            seed: 6,
        });
        let workers = db.relation("Workers").unwrap();
        let sexes = workers.active_domain(1);
        assert_eq!(sexes.len(), 2);
    }
}
