//! Conjunctive queries over a RIM-PPD.
//!
//! The query language follows the paper's examples: a conjunction of
//! *preference atoms* `P(session…; a; b)` ("in this session, `a` is preferred
//! to `b`"), *relation atoms* over o-relations, and comparisons. Queries are
//! built programmatically with [`ConjunctiveQuery`]'s builder methods; e.g.
//! the query `Q2` of the paper —
//!
//! ```text
//! Q2() ← P(_, _; c1; c2), C(c1, D, _, _, e, _), C(c2, R, _, _, e, _)
//! ```
//!
//! — is expressed as
//!
//! ```
//! use ppd_core::{ConjunctiveQuery, Term};
//! let q2 = ConjunctiveQuery::new("Q2")
//!     .prefer("Polls", vec![Term::any(), Term::any()], Term::var("c1"), Term::var("c2"))
//!     .atom("Candidates", vec![
//!         Term::var("c1"), Term::val("D"), Term::any(), Term::any(), Term::var("e"), Term::any(),
//!     ])
//!     .atom("Candidates", vec![
//!         Term::var("c2"), Term::val("R"), Term::any(), Term::any(), Term::var("e"), Term::any(),
//!     ]);
//! assert_eq!(q2.preference_atoms().len(), 1);
//! ```

use crate::value::Value;

/// A term of a query atom: a variable, a constant, or a wildcard (`_`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A named variable.
    Var(String),
    /// A constant value.
    Const(Value),
    /// An anonymous wildcard.
    Wildcard,
}

impl Term {
    /// A variable term.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// A constant term.
    pub fn val(value: impl Into<Value>) -> Term {
        Term::Const(value.into())
    }

    /// A wildcard term.
    pub fn any() -> Term {
        Term::Wildcard
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            _ => None,
        }
    }

    /// The constant value, if this is a constant.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Const(v) => Some(v),
            _ => None,
        }
    }
}

/// A preference atom `P(session terms…; left; right)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PreferenceAtom {
    /// Name of the p-relation.
    pub relation: String,
    /// Terms over the p-relation's session columns.
    pub session_terms: Vec<Term>,
    /// The preferred item (variable or item-key constant).
    pub left: Term,
    /// The less-preferred item.
    pub right: Term,
}

/// A relation atom `R(t₁, …, t_k)` over an o-relation.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationAtom {
    /// Name of the o-relation (the item relation or another relation).
    pub relation: String,
    /// Terms aligned with the relation's columns.
    pub terms: Vec<Term>,
}

/// Comparison operators usable in [`Comparison`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Strictly less than (numeric).
    Lt,
    /// Less than or equal (numeric).
    Le,
    /// Strictly greater than (numeric).
    Gt,
    /// Greater than or equal (numeric).
    Ge,
}

impl CompareOp {
    /// Evaluates `left op right`.
    pub fn eval(&self, left: &Value, right: &Value) -> bool {
        match self {
            CompareOp::Eq => left.semantically_equals(right),
            CompareOp::Ne => !left.semantically_equals(right),
            CompareOp::Lt | CompareOp::Le | CompareOp::Gt | CompareOp::Ge => {
                match left.compare_numeric(right) {
                    Some(ord) => match self {
                        CompareOp::Lt => ord.is_lt(),
                        CompareOp::Le => ord.is_le(),
                        CompareOp::Gt => ord.is_gt(),
                        CompareOp::Ge => ord.is_ge(),
                        _ => unreachable!(),
                    },
                    None => false,
                }
            }
        }
    }

    /// A compact rendering used when deriving labels from predicates.
    pub fn symbol(&self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }
}

/// A comparison `var op constant` (e.g. `year1 >= 1990`, `date = "5/5"`).
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// The constrained variable.
    pub var: String,
    /// The operator.
    pub op: CompareOp,
    /// The constant right-hand side.
    pub value: Value,
}

/// A Boolean conjunctive query over a RIM-PPD.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConjunctiveQuery {
    name: String,
    preference_atoms: Vec<PreferenceAtom>,
    relation_atoms: Vec<RelationAtom>,
    comparisons: Vec<Comparison>,
}

impl ConjunctiveQuery {
    /// Starts a new query with a (purely informational) name.
    pub fn new(name: impl Into<String>) -> Self {
        ConjunctiveQuery {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Adds a preference atom `relation(session…; left; right)`.
    pub fn prefer(
        mut self,
        relation: impl Into<String>,
        session_terms: Vec<Term>,
        left: Term,
        right: Term,
    ) -> Self {
        self.preference_atoms.push(PreferenceAtom {
            relation: relation.into(),
            session_terms,
            left,
            right,
        });
        self
    }

    /// Adds a relation atom.
    pub fn atom(mut self, relation: impl Into<String>, terms: Vec<Term>) -> Self {
        self.relation_atoms.push(RelationAtom {
            relation: relation.into(),
            terms,
        });
        self
    }

    /// Adds a comparison.
    pub fn compare(
        mut self,
        var: impl Into<String>,
        op: CompareOp,
        value: impl Into<Value>,
    ) -> Self {
        self.comparisons.push(Comparison {
            var: var.into(),
            op,
            value: value.into(),
        });
        self
    }

    /// The query name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The preference atoms.
    pub fn preference_atoms(&self) -> &[PreferenceAtom] {
        &self.preference_atoms
    }

    /// The relation atoms.
    pub fn relation_atoms(&self) -> &[RelationAtom] {
        &self.relation_atoms
    }

    /// The comparisons.
    pub fn comparisons(&self) -> &[Comparison] {
        &self.comparisons
    }

    /// Comparisons constraining a particular variable.
    pub fn comparisons_on(&self, var: &str) -> Vec<&Comparison> {
        self.comparisons.iter().filter(|c| c.var == var).collect()
    }

    /// Names of the item variables (variables used as preferred or
    /// less-preferred terms of preference atoms).
    pub fn item_variables(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for atom in &self.preference_atoms {
            for term in [&atom.left, &atom.right] {
                if let Some(v) = term.as_var() {
                    if !out.iter().any(|x| x == v) {
                        out.push(v.to_string());
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_atoms() {
        let q = ConjunctiveQuery::new("Q")
            .prefer("P", vec![Term::any()], Term::var("x"), Term::var("y"))
            .prefer("P", vec![Term::any()], Term::var("y"), Term::val("z-item"))
            .atom("C", vec![Term::var("x"), Term::val("F")])
            .compare("a", CompareOp::Ge, 1990);
        assert_eq!(q.name(), "Q");
        assert_eq!(q.preference_atoms().len(), 2);
        assert_eq!(q.relation_atoms().len(), 1);
        assert_eq!(q.comparisons().len(), 1);
        assert_eq!(q.item_variables(), vec!["x".to_string(), "y".to_string()]);
        assert_eq!(q.comparisons_on("a").len(), 1);
        assert_eq!(q.comparisons_on("b").len(), 0);
    }

    #[test]
    fn term_helpers() {
        assert_eq!(Term::var("x").as_var(), Some("x"));
        assert_eq!(Term::val(3).as_const(), Some(&Value::Int(3)));
        assert_eq!(Term::any().as_var(), None);
        assert_eq!(Term::any().as_const(), None);
    }

    #[test]
    fn compare_op_semantics() {
        assert!(CompareOp::Eq.eval(&Value::from(5), &Value::from("5")));
        assert!(CompareOp::Ne.eval(&Value::from("a"), &Value::from("b")));
        assert!(CompareOp::Ge.eval(&Value::from(1995), &Value::from(1990)));
        assert!(CompareOp::Lt.eval(&Value::from(1980), &Value::from(1990)));
        assert!(!CompareOp::Lt.eval(&Value::from("abc"), &Value::from(1990)));
        assert!(CompareOp::Le.eval(&Value::from(5), &Value::from(5)));
        assert!(!CompareOp::Gt.eval(&Value::from(5), &Value::from(5)));
        assert_eq!(CompareOp::Ge.symbol(), ">=");
    }
}
