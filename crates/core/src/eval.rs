//! Evaluation of Boolean conjunctive queries: per-session inference, grouping
//! of identical requests, and aggregation across sessions.

use crate::database::PpdDatabase;
use crate::query::ConjunctiveQuery;
use crate::translate::{ground_query, GroundedSessionQuery};
use crate::Result;
use ppd_patterns::Pattern;
use ppd_solvers::{choose_exact_solver, ApproxSolver, ExactSolver, GeneralSolver, MisAmpAdaptive};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Which inference engine to use for the per-session marginal probabilities.
#[derive(Debug, Clone)]
pub enum SolverChoice {
    /// Pick the cheapest exact solver matching each union's class
    /// (two-label / bipartite / general).
    ExactAuto,
    /// Always use the inclusion–exclusion general solver (the paper's
    /// baseline; mostly useful for experiments).
    GeneralExact,
    /// Use the MIS-AMP-adaptive approximate solver with the given number of
    /// samples per proposal distribution.
    Approximate {
        /// Samples drawn from each proposal distribution per round.
        samples_per_proposal: usize,
    },
}

/// Configuration of query evaluation.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// The inference engine.
    pub solver: SolverChoice,
    /// Whether sessions sharing the same (model, pattern union) are solved
    /// once and the result reused (Section 6.4).
    pub group_identical: bool,
    /// Seed for the approximate solvers' random number generator.
    pub seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            solver: SolverChoice::ExactAuto,
            group_identical: true,
            seed: 42,
        }
    }
}

impl EvalConfig {
    /// Exact evaluation with automatic solver selection and grouping.
    pub fn exact() -> Self {
        EvalConfig::default()
    }

    /// Approximate evaluation with MIS-AMP-adaptive.
    pub fn approximate(samples_per_proposal: usize) -> Self {
        EvalConfig {
            solver: SolverChoice::Approximate {
                samples_per_proposal,
            },
            ..EvalConfig::default()
        }
    }

    /// Disables grouping of identical (model, union) requests.
    pub fn without_grouping(mut self) -> Self {
        self.group_identical = false;
        self
    }
}

/// Computes, for every qualifying session, the probability that the query
/// holds in that session. Sessions that cannot satisfy the query are omitted
/// (their probability is zero).
pub fn session_probabilities(
    db: &PpdDatabase,
    query: &ConjunctiveQuery,
    config: &EvalConfig,
) -> Result<Vec<(usize, f64)>> {
    let plan = ground_query(db, query)?;
    session_probabilities_for_plan(db, &plan, config)
}

/// Like [`session_probabilities`] but starting from an already-grounded plan
/// (lets experiment harnesses time grounding and inference separately).
pub fn session_probabilities_for_plan(
    db: &PpdDatabase,
    plan: &GroundedSessionQuery,
    config: &EvalConfig,
) -> Result<Vec<(usize, f64)>> {
    let prel = db
        .preference_relation(&plan.prelation)
        .ok_or_else(|| crate::PpdError::UnknownName(plan.prelation.clone()))?;
    let mut results = Vec::with_capacity(plan.sessions.len());
    // Cache keyed by (model content, union content).
    type GroupKey = ((Vec<u32>, u64), Vec<Pattern>);
    let mut cache: HashMap<GroupKey, f64> = HashMap::new();
    for (order, squery) in plan.sessions.iter().enumerate() {
        let session = &prel.sessions()[squery.session_index];
        let key: GroupKey = (session.model_key(), squery.union.patterns().to_vec());
        let cached = if config.group_identical {
            cache.get(&key).copied()
        } else {
            None
        };
        let probability = match cached {
            Some(p) => p,
            None => {
                let p = solve_one(
                    session.model(),
                    &plan.labeling,
                    &squery.union,
                    config,
                    order as u64,
                )?;
                if config.group_identical {
                    cache.insert(key, p);
                }
                p
            }
        };
        results.push((squery.session_index, probability));
    }
    Ok(results)
}

fn solve_one(
    model: &ppd_rim::MallowsModel,
    labeling: &ppd_patterns::Labeling,
    union: &ppd_patterns::PatternUnion,
    config: &EvalConfig,
    salt: u64,
) -> Result<f64> {
    let p = match &config.solver {
        SolverChoice::ExactAuto => {
            let solver = choose_exact_solver(union);
            solver.solve(&model.to_rim(), labeling, union)?
        }
        SolverChoice::GeneralExact => {
            GeneralSolver::new().solve(&model.to_rim(), labeling, union)?
        }
        SolverChoice::Approximate {
            samples_per_proposal,
        } => {
            let solver = MisAmpAdaptive::new(*samples_per_proposal);
            let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(salt));
            solver.estimate(model, labeling, union, &mut rng)?
        }
    };
    Ok(p.clamp(0.0, 1.0))
}

/// Evaluates a Boolean query: the probability that *some* session satisfies
/// it, assuming session independence: `1 − Π_i (1 − Pr(Q | s_i))`.
pub fn evaluate_boolean(
    db: &PpdDatabase,
    query: &ConjunctiveQuery,
    config: &EvalConfig,
) -> Result<f64> {
    let per_session = session_probabilities(db, query, config)?;
    let mut miss = 1.0;
    for (_, p) in per_session {
        miss *= 1.0 - p;
    }
    Ok(1.0 - miss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{CompareOp, ConjunctiveQuery, Term as T};
    use crate::testdb::polling_database;
    use ppd_patterns::satisfies_union;
    use ppd_rim::Ranking;

    fn q1() -> ConjunctiveQuery {
        ConjunctiveQuery::new("Q1")
            .prefer(
                "Polls",
                vec![T::any(), T::any()],
                T::var("c1"),
                T::var("c2"),
            )
            .atom(
                "Candidates",
                vec![
                    T::var("c1"),
                    T::any(),
                    T::val("F"),
                    T::any(),
                    T::any(),
                    T::any(),
                ],
            )
            .atom(
                "Candidates",
                vec![
                    T::var("c2"),
                    T::any(),
                    T::val("M"),
                    T::any(),
                    T::any(),
                    T::any(),
                ],
            )
    }

    /// Brute-force a session probability straight from the definition.
    fn brute_session_probability(
        db: &PpdDatabase,
        query: &ConjunctiveQuery,
        session_index: usize,
    ) -> f64 {
        let plan = ground_query(db, query).unwrap();
        let squery = plan
            .sessions
            .iter()
            .find(|s| s.session_index == session_index)
            .unwrap();
        let prel = db.preference_relation("Polls").unwrap();
        let model = prel.sessions()[session_index].model();
        Ranking::enumerate_all(model.sigma().items())
            .iter()
            .filter(|t| satisfies_union(t, &plan.labeling, &squery.union))
            .map(|t| model.prob_of(t))
            .sum()
    }

    #[test]
    fn per_session_probabilities_match_brute_force() {
        let db = polling_database();
        let q = q1();
        let per_session = session_probabilities(&db, &q, &EvalConfig::exact()).unwrap();
        assert_eq!(per_session.len(), 3);
        for &(sidx, p) in &per_session {
            let expected = brute_session_probability(&db, &q, sidx);
            assert!((p - expected).abs() < 1e-9, "session {sidx}");
        }
    }

    #[test]
    fn boolean_aggregation_uses_independence() {
        let db = polling_database();
        let q = q1();
        let per_session = session_probabilities(&db, &q, &EvalConfig::exact()).unwrap();
        let expected = 1.0 - per_session.iter().map(|&(_, p)| 1.0 - p).product::<f64>();
        let got = evaluate_boolean(&db, &q, &EvalConfig::exact()).unwrap();
        assert!((expected - got).abs() < 1e-12);
        assert!(got > 0.0 && got <= 1.0);
    }

    #[test]
    fn grouping_does_not_change_results() {
        let db = polling_database();
        let q = q1();
        let grouped = session_probabilities(&db, &q, &EvalConfig::exact()).unwrap();
        let ungrouped =
            session_probabilities(&db, &q, &EvalConfig::exact().without_grouping()).unwrap();
        assert_eq!(grouped.len(), ungrouped.len());
        for (a, b) in grouped.iter().zip(&ungrouped) {
            assert_eq!(a.0, b.0);
            assert!((a.1 - b.1).abs() < 1e-12);
        }
    }

    #[test]
    fn general_solver_choice_agrees_with_auto() {
        let db = polling_database();
        let q = q1();
        let auto = session_probabilities(&db, &q, &EvalConfig::exact()).unwrap();
        let config = EvalConfig {
            solver: SolverChoice::GeneralExact,
            ..EvalConfig::default()
        };
        let general = session_probabilities(&db, &q, &config).unwrap();
        for (a, b) in auto.iter().zip(&general) {
            assert!((a.1 - b.1).abs() < 1e-9);
        }
    }

    #[test]
    fn approximate_evaluation_is_close_to_exact() {
        let db = polling_database();
        let q = q1();
        let exact = evaluate_boolean(&db, &q, &EvalConfig::exact()).unwrap();
        let approx = evaluate_boolean(&db, &q, &EvalConfig::approximate(1_500)).unwrap();
        assert!(
            (exact - approx).abs() < 0.05,
            "exact {exact}, approximate {approx}"
        );
    }

    #[test]
    fn non_itemwise_query_evaluates() {
        // Q2 of the paper (Democrat preferred to Republican with same edu).
        let db = polling_database();
        let q = ConjunctiveQuery::new("Q2")
            .prefer(
                "Polls",
                vec![T::any(), T::any()],
                T::var("c1"),
                T::var("c2"),
            )
            .atom(
                "Candidates",
                vec![
                    T::var("c1"),
                    T::val("D"),
                    T::any(),
                    T::any(),
                    T::var("e"),
                    T::any(),
                ],
            )
            .atom(
                "Candidates",
                vec![
                    T::var("c2"),
                    T::val("R"),
                    T::any(),
                    T::any(),
                    T::var("e"),
                    T::any(),
                ],
            );
        let per_session = session_probabilities(&db, &q, &EvalConfig::exact()).unwrap();
        assert_eq!(per_session.len(), 3);
        for &(sidx, p) in &per_session {
            let expected = brute_session_probability(&db, &q, sidx);
            assert!((p - expected).abs() < 1e-9, "session {sidx}");
            assert!(p > 0.0 && p < 1.0);
        }
        // Ann and Dave share the same centre ranking (Clinton first), so the
        // query is very likely for them and less likely for Bob.
        let p_of = |i: usize| per_session.iter().find(|&&(s, _)| s == i).unwrap().1;
        assert!(p_of(0) > p_of(1));
        assert!(p_of(2) > p_of(1));
    }

    #[test]
    fn session_filter_with_comparison() {
        let db = polling_database();
        let q = ConjunctiveQuery::new("dated")
            .prefer(
                "Polls",
                vec![T::any(), T::var("d")],
                T::val("Clinton"),
                T::val("Trump"),
            )
            .compare("d", CompareOp::Eq, "6/5");
        let per_session = session_probabilities(&db, &q, &EvalConfig::exact()).unwrap();
        assert_eq!(per_session.len(), 1);
        assert_eq!(per_session[0].0, 2);
    }
}
