//! Evaluation of Boolean conjunctive queries: the user-facing configuration
//! and the free-function entry points, all routed through the
//! [`crate::engine::Engine`].

use crate::database::PpdDatabase;
use crate::engine::{CacheCapacity, Engine};
use crate::query::ConjunctiveQuery;
use crate::translate::GroundedSessionQuery;
use crate::Result;

/// An accuracy target for [`SolverChoice::ErrorBudget`]: the per-unit
/// marginal must land within `±epsilon` of the exact value at the given
/// confidence level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorBudget {
    /// Target half-width of the confidence interval (absolute probability
    /// error). Must be positive.
    pub epsilon: f64,
    /// Coverage of the interval, in `(0, 1)` (e.g. `0.95`).
    pub confidence: f64,
}

/// Which inference engine to use for the per-session marginal probabilities.
#[derive(Debug, Clone)]
pub enum SolverChoice {
    /// Pick the cheapest exact solver matching each union's class
    /// (two-label / bipartite / general).
    ExactAuto,
    /// Always use the inclusion–exclusion general solver (the paper's
    /// baseline; mostly useful for experiments).
    GeneralExact,
    /// Use the MIS-AMP-adaptive approximate solver with the given number of
    /// samples per proposal distribution.
    Approximate {
        /// Samples drawn from each proposal distribution per round.
        samples_per_proposal: usize,
    },
    /// Pick per unit between exact DP and the error-budgeted sampler: units
    /// whose *static* cost estimate is at or below
    /// [`EvalConfig::exact_cost_threshold`] are solved exactly (the DP is
    /// cheaper than any sampling run that could certify `ε`), the rest run
    /// the budgeted MIS-AMP estimator, which doubles its total mixture
    /// budget until the compensated confidence interval closes to
    /// `±epsilon` — and falls back to exact when it cannot. The selection
    /// thresholds the *static* formula, never measured timings, so which
    /// solver runs — hence the answer's bits — is a pure function of unit
    /// content and configuration, warm or cold calibration store alike.
    ErrorBudget(ErrorBudget),
}

/// Configuration of query evaluation.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// The inference engine.
    pub solver: SolverChoice,
    /// Whether sessions sharing the same (model, pattern union) content are
    /// deduplicated into one work unit, solved once, and cached across
    /// queries (Section 6.4). Turning this off solves every session
    /// independently; because RNG seeds derive from work-unit content, the
    /// answers are identical either way.
    pub group_identical: bool,
    /// Base seed for the approximate solvers. Each work unit draws its RNG
    /// seed from this base combined with the unit's content hash, so
    /// estimates are reproducible and independent of evaluation order.
    pub seed: u64,
    /// Worker threads for the evaluation engine: `0` uses one worker per
    /// available hardware thread, `1` is the serial path, any other value
    /// is an explicit pool size. Results are bit-identical for every
    /// setting.
    pub threads: usize,
    /// Number of independently locked shards of the engine's marginal
    /// cache (clamped to at least 1). More shards reduce lock contention
    /// between worker threads; the count never affects results, only
    /// throughput. Default: 16.
    pub cache_shards: usize,
    /// Capacity bound of the marginal cache, split evenly across shards
    /// and enforced with per-shard LRU eviction. Default:
    /// [`CacheCapacity::Unbounded`] (the cache grows for the engine's
    /// lifetime, the pre-eviction behaviour). Eviction never affects
    /// results — an evicted unit is re-solved to the same bits on next
    /// demand.
    pub cache_capacity: CacheCapacity,
    /// Whether the engine records each work unit's measured solve time and
    /// feeds the calibrated cost back into wave ordering and byte-mode
    /// eviction weights. Calibration steers *wall-clock only*: seeds,
    /// cache keys, and solver selection stay pure functions of content, so
    /// answers are bit-identical with calibration on or off, warm or cold.
    /// Default: `true`.
    pub calibrate: bool,
    /// Static-cost threshold of [`SolverChoice::ErrorBudget`]'s per-unit
    /// solver selection: units whose static exact cost is at or under this
    /// value run the exact DP, the rest run the budgeted estimator. Part of
    /// the configuration precisely so that selection — hence the answer's
    /// bits — stays a pure function of unit content and explicit
    /// configuration; the engine never reads a measured or suggested value
    /// here on its own. Deployments wanting a machine-specific setting can
    /// feed
    /// [`Engine::suggested_exact_cost_threshold`](crate::engine::Engine::suggested_exact_cost_threshold)
    /// back into this field between engine generations. Default: `1e5`.
    pub exact_cost_threshold: f64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            solver: SolverChoice::ExactAuto,
            group_identical: true,
            seed: 42,
            threads: 0,
            cache_shards: 16,
            cache_capacity: CacheCapacity::Unbounded,
            calibrate: true,
            exact_cost_threshold: 1e5,
        }
    }
}

impl EvalConfig {
    /// Exact evaluation with automatic solver selection and grouping.
    pub fn exact() -> Self {
        EvalConfig::default()
    }

    /// Approximate evaluation with MIS-AMP-adaptive.
    pub fn approximate(samples_per_proposal: usize) -> Self {
        EvalConfig {
            solver: SolverChoice::Approximate {
                samples_per_proposal,
            },
            ..EvalConfig::default()
        }
    }

    /// Error-budgeted evaluation: each unit is answered within `±epsilon`
    /// at the given confidence, by exact DP or by the budgeted sampler —
    /// whichever the static cost model predicts is cheaper.
    pub fn error_budget(epsilon: f64, confidence: f64) -> Self {
        EvalConfig {
            solver: SolverChoice::ErrorBudget(ErrorBudget {
                epsilon,
                confidence,
            }),
            ..EvalConfig::default()
        }
    }

    /// Disables measured-cost calibration: wave ordering and eviction
    /// weights use the static cost formula only. Answers are unaffected.
    pub fn without_calibration(mut self) -> Self {
        self.calibrate = false;
        self
    }

    /// Disables grouping of identical (model, union) requests.
    pub fn without_grouping(mut self) -> Self {
        self.group_identical = false;
        self
    }

    /// Sets the worker-thread count (`0` = auto, `1` = serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the marginal-cache shard count (clamped to at least 1).
    pub fn with_cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = shards;
        self
    }

    /// Sets the marginal-cache capacity bound.
    pub fn with_cache_capacity(mut self, capacity: CacheCapacity) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Sets the static-cost threshold of error-budget solver selection.
    /// Changing it changes which units sample — and therefore their bits —
    /// so treat it like the seed: fix it per deployment, don't tune it
    /// per query.
    pub fn with_exact_cost_threshold(mut self, threshold: f64) -> Self {
        self.exact_cost_threshold = threshold;
        self
    }
}

/// Computes, for every qualifying session, the probability that the query
/// holds in that session. Sessions that cannot satisfy the query are omitted
/// (their probability is zero).
///
/// Constructs a transient [`Engine`] per call; long-running services should
/// hold an [`Engine`] instead to reuse its cross-query caches.
pub fn session_probabilities(
    db: &PpdDatabase,
    query: &ConjunctiveQuery,
    config: &EvalConfig,
) -> Result<Vec<(usize, f64)>> {
    Engine::new(config.clone()).session_probabilities(db, query)
}

/// Like [`session_probabilities`] but starting from an already-grounded plan
/// (lets experiment harnesses time grounding and inference separately).
pub fn session_probabilities_for_plan(
    db: &PpdDatabase,
    plan: &GroundedSessionQuery,
    config: &EvalConfig,
) -> Result<Vec<(usize, f64)>> {
    Engine::new(config.clone()).session_probabilities_for_plan(db, plan)
}

/// Evaluates a Boolean query: the probability that *some* session satisfies
/// it, assuming session independence: `1 − Π_i (1 − Pr(Q | s_i))`.
pub fn evaluate_boolean(
    db: &PpdDatabase,
    query: &ConjunctiveQuery,
    config: &EvalConfig,
) -> Result<f64> {
    Engine::new(config.clone()).evaluate_boolean(db, query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{CompareOp, ConjunctiveQuery, Term as T};
    use crate::testdb::polling_database;
    use crate::translate::ground_query;
    use ppd_patterns::satisfies_union;
    use ppd_rim::Ranking;

    fn q1() -> ConjunctiveQuery {
        ConjunctiveQuery::new("Q1")
            .prefer(
                "Polls",
                vec![T::any(), T::any()],
                T::var("c1"),
                T::var("c2"),
            )
            .atom(
                "Candidates",
                vec![
                    T::var("c1"),
                    T::any(),
                    T::val("F"),
                    T::any(),
                    T::any(),
                    T::any(),
                ],
            )
            .atom(
                "Candidates",
                vec![
                    T::var("c2"),
                    T::any(),
                    T::val("M"),
                    T::any(),
                    T::any(),
                    T::any(),
                ],
            )
    }

    /// Brute-force a session probability straight from the definition.
    fn brute_session_probability(
        db: &PpdDatabase,
        query: &ConjunctiveQuery,
        session_index: usize,
    ) -> f64 {
        let plan = ground_query(db, query).unwrap();
        let squery = plan
            .sessions
            .iter()
            .find(|s| s.session_index == session_index)
            .unwrap();
        let prel = db.preference_relation("Polls").unwrap();
        let model = prel.sessions()[session_index].model();
        Ranking::enumerate_all(model.sigma().items())
            .iter()
            .filter(|t| satisfies_union(t, &plan.labeling, &squery.union))
            .map(|t| model.prob_of(t))
            .sum()
    }

    #[test]
    fn per_session_probabilities_match_brute_force() {
        let db = polling_database();
        let q = q1();
        let per_session = session_probabilities(&db, &q, &EvalConfig::exact()).unwrap();
        assert_eq!(per_session.len(), 3);
        for &(sidx, p) in &per_session {
            let expected = brute_session_probability(&db, &q, sidx);
            assert!((p - expected).abs() < 1e-9, "session {sidx}");
        }
    }

    #[test]
    fn boolean_aggregation_uses_independence() {
        let db = polling_database();
        let q = q1();
        let per_session = session_probabilities(&db, &q, &EvalConfig::exact()).unwrap();
        let expected = 1.0 - per_session.iter().map(|&(_, p)| 1.0 - p).product::<f64>();
        let got = evaluate_boolean(&db, &q, &EvalConfig::exact()).unwrap();
        assert!((expected - got).abs() < 1e-12);
        assert!(got > 0.0 && got <= 1.0);
    }

    #[test]
    fn grouping_does_not_change_results() {
        let db = polling_database();
        let q = q1();
        let grouped = session_probabilities(&db, &q, &EvalConfig::exact()).unwrap();
        let ungrouped =
            session_probabilities(&db, &q, &EvalConfig::exact().without_grouping()).unwrap();
        assert_eq!(grouped.len(), ungrouped.len());
        for (a, b) in grouped.iter().zip(&ungrouped) {
            assert_eq!(a.0, b.0);
            assert!((a.1 - b.1).abs() < 1e-12);
        }
    }

    #[test]
    fn general_solver_choice_agrees_with_auto() {
        let db = polling_database();
        let q = q1();
        let auto = session_probabilities(&db, &q, &EvalConfig::exact()).unwrap();
        let config = EvalConfig {
            solver: SolverChoice::GeneralExact,
            ..EvalConfig::default()
        };
        let general = session_probabilities(&db, &q, &config).unwrap();
        for (a, b) in auto.iter().zip(&general) {
            assert!((a.1 - b.1).abs() < 1e-9);
        }
    }

    #[test]
    fn approximate_estimates_are_bit_identical_under_grouping_toggle() {
        // Seeds derive from work-unit content (not plan iteration order), so
        // disabling grouping must not change a single bit of the estimates.
        let db = polling_database();
        let q = q1();
        let config = EvalConfig::approximate(300);
        let grouped = session_probabilities(&db, &q, &config).unwrap();
        let ungrouped = session_probabilities(&db, &q, &config.clone().without_grouping()).unwrap();
        assert_eq!(grouped, ungrouped);
    }

    #[test]
    fn approximate_evaluation_is_close_to_exact() {
        let db = polling_database();
        let q = q1();
        let exact = evaluate_boolean(&db, &q, &EvalConfig::exact()).unwrap();
        let approx = evaluate_boolean(&db, &q, &EvalConfig::approximate(1_500)).unwrap();
        assert!(
            (exact - approx).abs() < 0.05,
            "exact {exact}, approximate {approx}"
        );
    }

    #[test]
    fn non_itemwise_query_evaluates() {
        // Q2 of the paper (Democrat preferred to Republican with same edu).
        let db = polling_database();
        let q = ConjunctiveQuery::new("Q2")
            .prefer(
                "Polls",
                vec![T::any(), T::any()],
                T::var("c1"),
                T::var("c2"),
            )
            .atom(
                "Candidates",
                vec![
                    T::var("c1"),
                    T::val("D"),
                    T::any(),
                    T::any(),
                    T::var("e"),
                    T::any(),
                ],
            )
            .atom(
                "Candidates",
                vec![
                    T::var("c2"),
                    T::val("R"),
                    T::any(),
                    T::any(),
                    T::var("e"),
                    T::any(),
                ],
            );
        let per_session = session_probabilities(&db, &q, &EvalConfig::exact()).unwrap();
        assert_eq!(per_session.len(), 3);
        for &(sidx, p) in &per_session {
            let expected = brute_session_probability(&db, &q, sidx);
            assert!((p - expected).abs() < 1e-9, "session {sidx}");
            assert!(p > 0.0 && p < 1.0);
        }
        // Ann and Dave share the same centre ranking (Clinton first), so the
        // query is very likely for them and less likely for Bob.
        let p_of = |i: usize| per_session.iter().find(|&&(s, _)| s == i).unwrap().1;
        assert!(p_of(0) > p_of(1));
        assert!(p_of(2) > p_of(1));
    }

    #[test]
    fn session_filter_with_comparison() {
        let db = polling_database();
        let q = ConjunctiveQuery::new("dated")
            .prefer(
                "Polls",
                vec![T::any(), T::var("d")],
                T::val("Clinton"),
                T::val("Trump"),
            )
            .compare("d", CompareOp::Eq, "6/5");
        let per_session = session_probabilities(&db, &q, &EvalConfig::exact()).unwrap();
        assert_eq!(per_session.len(), 1);
        assert_eq!(per_session[0].0, 2);
    }
}
