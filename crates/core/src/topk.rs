//! Most-Probable-Session queries (Section 3.2): the `k` sessions most likely
//! to satisfy a query, with the upper-bound-driven top-k optimization.
//!
//! Both strategies run on the evaluation engine: the naive strategy solves
//! all full unions as one parallel wave of work units, and the upper-bound
//! strategy parallelizes its bounding stage the same way before walking the
//! bounded sessions serially (the early-termination loop is inherently
//! sequential). Full-union marginals go through the engine's cache, so
//! repeated top-k queries — or a top-k after a Boolean query — reuse
//! earlier work.

use crate::database::PpdDatabase;
use crate::engine::{Engine, UnitRequest};
use crate::eval::EvalConfig;
use crate::query::ConjunctiveQuery;
use crate::translate::ground_query;
use crate::{PpdError, Result};
use ppd_patterns::{relaxed_upper_bound_union, PatternUnion};

/// Evaluation strategy for `top(Q, k)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopKStrategy {
    /// Compute the exact probability of every session, then sort ("full" in
    /// Figure 8).
    Naive,
    /// First compute cheap upper bounds from a relaxed union that keeps only
    /// the hardest `edges_per_pattern` transitive-closure edges per pattern
    /// ("1-edge" / "2-edge" in Figure 8), then evaluate sessions exactly in
    /// decreasing upper-bound order until the answer is certain.
    UpperBound {
        /// Number of edges kept per pattern when building the relaxation.
        edges_per_pattern: usize,
    },
}

/// One entry of a top-k answer.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionScore {
    /// Index of the session within its p-relation.
    pub session_index: usize,
    /// Exact (or approximate, per the configuration) probability that the
    /// session satisfies the query.
    pub probability: f64,
}

/// Bookkeeping about a top-k evaluation, used by the Figure 8 harness.
///
/// Both counters tally the sessions each strategy *requested* an answer for
/// — the quantity the paper's strategy comparison is about. Since evaluation
/// runs on the [`Engine`], a request may be served from the engine's
/// marginal cache (e.g. on a warm engine, or when sessions share a work
/// unit) without invoking a solver; use [`Engine::cache_stats`] to see how
/// much inference actually ran.
#[derive(Debug, Clone, Default)]
pub struct TopKStats {
    /// Number of sessions whose probability was requested with the full
    /// (non-relaxed) union.
    pub exact_evaluations: usize,
    /// Number of sessions whose upper bound was requested.
    pub upper_bounds_computed: usize,
}

/// Evaluates `top(Q, k)`: the `k` sessions with the highest probability of
/// satisfying `Q`, together with evaluation statistics.
///
/// Constructs a transient [`Engine`] per call; hold an [`Engine`] and use
/// [`Engine::most_probable_sessions`] to reuse caches across queries.
pub fn most_probable_sessions(
    db: &PpdDatabase,
    query: &ConjunctiveQuery,
    k: usize,
    strategy: TopKStrategy,
    config: &EvalConfig,
) -> Result<(Vec<SessionScore>, TopKStats)> {
    Engine::new(config.clone()).most_probable_sessions(db, query, k, strategy)
}

/// The engine-backed top-k evaluation both [`most_probable_sessions`] and
/// [`Engine::most_probable_sessions`] delegate to.
pub(crate) fn most_probable_with_engine(
    engine: &Engine,
    db: &PpdDatabase,
    query: &ConjunctiveQuery,
    k: usize,
    strategy: TopKStrategy,
) -> Result<(Vec<SessionScore>, TopKStats)> {
    let plan = ground_query(db, query)?;
    let prel = db
        .preference_relation(&plan.prelation)
        .ok_or_else(|| PpdError::UnknownName(plan.prelation.clone()))?;
    let mut stats = TopKStats::default();

    fn request_for<'a>(
        prel: &'a crate::session::PreferenceRelation,
        labeling: &'a ppd_patterns::Labeling,
        session_index: usize,
        union: &'a PatternUnion,
    ) -> UnitRequest<'a> {
        UnitRequest {
            session: &prel.sessions()[session_index],
            labeling,
            union,
        }
    }

    let mut scores: Vec<SessionScore> = Vec::new();
    match strategy {
        TopKStrategy::Naive => {
            // One parallel wave over every session's full union.
            let requests: Vec<UnitRequest<'_>> = plan
                .sessions
                .iter()
                .map(|s| request_for(prel, &plan.labeling, s.session_index, &s.union))
                .collect();
            let probabilities = engine.solve_requests(&requests, false)?;
            stats.exact_evaluations += requests.len();
            scores = plan
                .sessions
                .iter()
                .zip(probabilities)
                .map(|(squery, probability)| SessionScore {
                    session_index: squery.session_index,
                    probability,
                })
                .collect();
        }
        TopKStrategy::UpperBound { edges_per_pattern } => {
            // Stage 1: cheap upper bounds from the relaxed unions, as one
            // parallel wave. Bounds must be sound, so they are always solved
            // exactly regardless of the engine's solver choice.
            let relaxed: Vec<PatternUnion> = plan
                .sessions
                .iter()
                .map(|squery| {
                    relaxed_upper_bound_union(
                        &squery.union,
                        prel.sessions()[squery.session_index].model().sigma(),
                        &plan.labeling,
                        edges_per_pattern,
                    )
                    .map_err(PpdError::from)
                })
                .collect::<Result<_>>()?;
            let ub_requests: Vec<UnitRequest<'_>> = plan
                .sessions
                .iter()
                .zip(&relaxed)
                .map(|(squery, union)| {
                    request_for(prel, &plan.labeling, squery.session_index, union)
                })
                .collect();
            let upper_bounds = engine.solve_requests(&ub_requests, true)?;
            stats.upper_bounds_computed += upper_bounds.len();
            let mut bounded: Vec<(usize, f64)> = plan
                .sessions
                .iter()
                .map(|s| s.session_index)
                .zip(upper_bounds)
                .collect();
            // Stage 2: exact evaluation in decreasing upper-bound order.
            // Inherently serial — each solve may prove the answer complete —
            // but every solve still flows through the engine's unit cache.
            bounded.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            let union_of = |session_index: usize| {
                plan.sessions
                    .iter()
                    .find(|s| s.session_index == session_index)
                    .map(|s| &s.union)
                    .expect("bounded sessions come from the plan")
            };
            for (pos, &(session_index, _ub)) in bounded.iter().enumerate() {
                let request =
                    request_for(prel, &plan.labeling, session_index, union_of(session_index));
                let p = engine.solve_requests(&[request], false)?[0];
                stats.exact_evaluations += 1;
                scores.push(SessionScore {
                    session_index,
                    probability: p,
                });
                // Termination test: the k-th best exact probability found so
                // far dominates every remaining upper bound.
                if scores.len() >= k {
                    let mut exact_so_far: Vec<f64> = scores.iter().map(|s| s.probability).collect();
                    exact_so_far.sort_by(|a, b| b.partial_cmp(a).unwrap());
                    let kth = exact_so_far[k - 1];
                    let next_ub = bounded.get(pos + 1).map(|&(_, ub)| ub).unwrap_or(0.0);
                    if kth >= next_ub - 1e-12 {
                        break;
                    }
                }
            }
        }
    }
    scores.sort_by(|a, b| {
        b.probability
            .partial_cmp(&a.probability)
            .unwrap()
            .then(a.session_index.cmp(&b.session_index))
    });
    scores.truncate(k);
    Ok((scores, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Term as T;
    use crate::testdb::polling_database;

    fn query_f_over_m() -> ConjunctiveQuery {
        ConjunctiveQuery::new("topk-f-over-m")
            .prefer(
                "Polls",
                vec![T::any(), T::any()],
                T::var("c1"),
                T::var("c2"),
            )
            .atom(
                "Candidates",
                vec![
                    T::var("c1"),
                    T::any(),
                    T::val("F"),
                    T::any(),
                    T::any(),
                    T::any(),
                ],
            )
            .atom(
                "Candidates",
                vec![
                    T::var("c2"),
                    T::any(),
                    T::val("M"),
                    T::any(),
                    T::any(),
                    T::any(),
                ],
            )
    }

    #[test]
    fn naive_and_upper_bound_strategies_agree() {
        let db = polling_database();
        let q = query_f_over_m();
        for k in 1..=3 {
            let (naive, _) =
                most_probable_sessions(&db, &q, k, TopKStrategy::Naive, &EvalConfig::exact())
                    .unwrap();
            for edges in 1..=2 {
                let (optimized, stats) = most_probable_sessions(
                    &db,
                    &q,
                    k,
                    TopKStrategy::UpperBound {
                        edges_per_pattern: edges,
                    },
                    &EvalConfig::exact(),
                )
                .unwrap();
                assert_eq!(naive.len(), optimized.len());
                for (a, b) in naive.iter().zip(&optimized) {
                    assert_eq!(a.session_index, b.session_index);
                    assert!((a.probability - b.probability).abs() < 1e-9);
                }
                assert!(stats.upper_bounds_computed == 3);
                assert!(stats.exact_evaluations >= k);
            }
        }
    }

    #[test]
    fn upper_bound_strategy_can_skip_exact_evaluations() {
        let db = polling_database();
        // Ann and Dave strongly prefer Clinton; Bob does not. With k = 1 the
        // optimizer should not need to evaluate every session exactly.
        let q = ConjunctiveQuery::new("clinton-first")
            .prefer(
                "Polls",
                vec![T::any(), T::any()],
                T::val("Clinton"),
                T::val("Trump"),
            )
            .prefer(
                "Polls",
                vec![T::any(), T::any()],
                T::val("Clinton"),
                T::val("Rubio"),
            );
        let (top, stats) = most_probable_sessions(
            &db,
            &q,
            1,
            TopKStrategy::UpperBound {
                edges_per_pattern: 2,
            },
            &EvalConfig::exact(),
        )
        .unwrap();
        assert_eq!(top.len(), 1);
        assert!(top[0].session_index == 0 || top[0].session_index == 2);
        assert!(stats.exact_evaluations <= 3);
        let (naive, naive_stats) =
            most_probable_sessions(&db, &q, 1, TopKStrategy::Naive, &EvalConfig::exact()).unwrap();
        assert_eq!(naive_stats.exact_evaluations, 3);
        assert!((naive[0].probability - top[0].probability).abs() < 1e-9);
    }

    #[test]
    fn k_larger_than_session_count_returns_everything() {
        let db = polling_database();
        let q = query_f_over_m();
        let (top, _) =
            most_probable_sessions(&db, &q, 10, TopKStrategy::Naive, &EvalConfig::exact()).unwrap();
        assert_eq!(top.len(), 3);
        // Scores are sorted in decreasing order.
        for w in top.windows(2) {
            assert!(w[0].probability >= w[1].probability);
        }
    }
}
